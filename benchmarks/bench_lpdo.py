"""LPDO backend benchmark — exact noisy evolution past dense-density reach.

Three sections:

1. **Correctness anchor** (small register): a noisy NDAR-style qutrit QAOA
   circuit where the LPDO backend at *unbounded* bond/Kraus dimension must
   match the dense density matrix entrywise to 1e-8 — channels applied
   exactly, zero Monte-Carlo error.  The same observable scored by the MPS
   backend's stochastic unravelling is recorded alongside, documenting the
   sampling noise the LPDO engine eliminates.

2. **Scale demonstration**: a 12-qutrit noisy circuit — the dense density
   matrix would hold ``3^24 ≈ 2.8e11`` entries (~4.1 TiB), far beyond any
   dense engine — evolved at bounded bond/Kraus caps, reporting wall time,
   peak legs, and the separate ``truncation_error`` (bond) and
   ``purification_error`` (Kraus leg) accounts.

3. **sQED noise study**: the paper's encoding-damage score
   (:func:`repro.sqed.noise_study.trajectory_damage`) on a 12-site rotor
   chain with ``method="lpdo"`` — exact mixed-state evolution of a
   register whose density matrix could never be allocated, with no
   stochastic unravelling in the score.

Run as a script to (re)generate the committed ``BENCH_lpdo.json``::

    PYTHONPATH=src python benchmarks/bench_lpdo.py

The ``bench_smoke`` tier-1 tests call :func:`run_benchmarks` at tiny sizes
so a regression in the LPDO engine fails tier-1 without slowing the suite.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import DensityMatrix, get_backend
from repro.qaoa import random_coloring_instance
from repro.qaoa.circuits import add_photon_loss, qaoa_circuit

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_lpdo.json"


def _ndar_style_circuit(n_nodes: int, loss: float, seed: int = 21):
    """One NDAR round: p=1 qutrit QAOA on a random graph + photon loss."""
    problem = random_coloring_instance(
        n_nodes, 3, degree=min(4, n_nodes - 1), seed=seed
    )
    circuit = qaoa_circuit(problem, [0.6], [0.4])
    return problem, add_photon_loss(circuit, loss)


def _bench_correctness(n_nodes: int, n_trajectories: int) -> dict:
    """Unbounded LPDO vs the dense density matrix on a small register."""
    _, noisy = _ndar_style_circuit(n_nodes, loss=0.15)
    exact = DensityMatrix.zero(noisy.dims).evolve(noisy)
    start = time.perf_counter()
    lpdo = get_backend("lpdo").run(noisy)
    lpdo_s = time.perf_counter() - start
    rho_err = float(
        np.abs(lpdo.state.to_density_matrix().matrix - exact.matrix).max()
    )
    op = np.diag([0.0, 1.0, 2.0])
    exact_value = float(np.real(exact.expectation(op, 0)))
    lpdo_value = lpdo.expectation(op, 0)
    mps = get_backend("mps").run(noisy, n_trajectories=n_trajectories, rng=5)
    mc_value = mps.expectation(op, 0)
    return {
        "register": [3] * n_nodes,
        "max_density_matrix_error": rho_err,
        "observable_exact": exact_value,
        "observable_lpdo": lpdo_value,
        "observable_lpdo_abs_error": abs(lpdo_value - exact_value),
        "observable_mps_mc": mc_value,
        "observable_mps_mc_abs_error": abs(mc_value - exact_value),
        "mps_n_trajectories": n_trajectories,
        "lpdo_evolve_s": round(lpdo_s, 4),
        "truncation_error": lpdo.truncation_error,
        "purification_error": lpdo.purification_error,
    }


def _bench_scale(
    n_nodes: int, max_bond: int, max_kraus: int, loss: float, shots: int
) -> dict:
    """Bounded-cap exact noisy evolution far beyond dense-density reach."""
    _, noisy = _ndar_style_circuit(n_nodes, loss=loss)
    backend = get_backend("lpdo", max_bond=max_bond, max_kraus=max_kraus)
    start = time.perf_counter()
    result = backend.run(noisy)
    evolve_s = time.perf_counter() - start
    state = result.state
    start = time.perf_counter()
    counts = result.sample(shots, rng=8)
    sample_s = time.perf_counter() - start
    op = np.diag([0.0, 1.0, 2.0])
    expectation = result.expectation(op, n_nodes // 2)
    return {
        "register": [3] * n_nodes,
        "n_qutrits": n_nodes,
        "dense_rho_entries": float(3.0 ** (2 * n_nodes)),
        "dense_rho_tib": round(3.0 ** (2 * n_nodes) * 16 / 2**40, 1),
        "n_instructions": len(noisy),
        "max_bond": max_bond,
        "max_kraus": max_kraus,
        "evolve_s": round(evolve_s, 4),
        "sample_s": round(sample_s, 4),
        "peak_bond": int(max(state.bond_dimensions())),
        "peak_kraus": int(max(state.kraus_dimensions())),
        "truncation_error": float(state.truncation_error),
        "purification_error": float(state.purification_error),
        "trace": float(state.trace()),
        "observable": expectation,
        "shots": shots,
        "distinct_outcomes": len(counts),
    }


def _bench_sqed(
    n_sites: int, epsilon: float, n_steps: int, max_bond: int, max_kraus: int
) -> dict:
    """The paper's damage score at a chain length no dense backend reaches."""
    from repro.sqed.encodings import QuditEncoding
    from repro.sqed.noise_study import trajectory_damage
    from repro.sqed.rotor import RotorChain

    chain = RotorChain(n_sites=n_sites, spin=1)
    encoding = QuditEncoding(chain)
    start = time.perf_counter()
    damage = trajectory_damage(
        encoding,
        epsilon,
        t_total=1.0,
        n_steps=n_steps,
        method="lpdo",
        max_bond=max_bond,
        max_kraus=max_kraus,
    )
    damage_s = time.perf_counter() - start
    return {
        "n_sites": n_sites,
        "site_dim": chain.site_dim,
        "epsilon": epsilon,
        "n_steps": n_steps,
        "max_bond": max_bond,
        "max_kraus": max_kraus,
        "damage": float(damage),
        "damage_s": round(damage_s, 4),
        "stochastic_unravelling": False,
    }


def run_benchmarks(
    n_small: int = 5,
    n_large: int = 12,
    max_bond: int = 24,
    max_kraus: int = 8,
    loss: float = 0.1,
    n_trajectories: int = 200,
    shots: int = 25,
    sqed_sites: int = 12,
    sqed_steps: int = 2,
    out_path: Path | str | None = None,
) -> dict:
    """Run the LPDO benchmark suite and optionally emit JSON.

    Args:
        n_small: qutrits in the correctness-anchor circuit (dense-checkable).
        n_large: qutrits in the scale circuit (must exceed dense-rho reach).
        max_bond: bond cap for the bounded-cap sections.
        max_kraus: Kraus-leg cap for the bounded-cap sections.
        loss: per-layer photon-loss probability.
        n_trajectories: MPS Monte-Carlo width recorded for comparison.
        shots: samples drawn from the large register.
        sqed_sites: rotor-chain length for the noise-study section.
        sqed_steps: Trotter steps in the noise-study section.
        out_path: where to write the JSON report (``None`` = don't write).

    Returns:
        The report dictionary (also written to ``out_path`` if given).
    """
    correctness = _bench_correctness(n_small, n_trajectories)
    scale = _bench_scale(n_large, max_bond, max_kraus, loss, shots)
    sqed = _bench_sqed(sqed_sites, 0.03, sqed_steps, max_bond, max_kraus)
    report = {
        "meta": {
            "benchmark": "bench_lpdo",
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "correctness": correctness,
        "scale": scale,
        "sqed_noise_study": sqed,
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    report = run_benchmarks(out_path=BENCH_JSON)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_JSON}")


if __name__ == "__main__":
    main()
