"""E-CSUM — CSUM synthesis cost and fidelity vs dimension (Table I challenge).

Both applications' "main challenge" column points at CSUM.  The bench
sweeps the qudit dimension and the mode-pair geometry, reporting the
native-pulse budget and first-order fidelity of the Fourier-route CSUM,
plus an exactness check of the compiled circuit.
"""

import numpy as np

from _report import record
from repro.compile.synthesis import csum_circuit, csum_cost
from repro.core.gates import csum as csum_matrix
from repro.hardware import linear_cavity_array

DIMS = (2, 3, 4, 6, 8, 10)


def _sweep():
    rows = []
    for d in DIMS:
        device = linear_cavity_array(3, 2, d)
        coloc = csum_cost(device, 0, 1)
        adj = csum_cost(device, 1, 2)
        err = float(
            np.abs(csum_circuit(d).to_unitary() - csum_matrix(d)).max()
        ) if d <= 8 else 0.0
        rows.append((d, coloc, adj, err))
    return rows


def bench_csum_cost_sweep(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "E-CSUM — Fourier-route CSUM cost (co-located vs adjacent qumodes):",
        "  d   snap  disp  coloc-F   adj-F    coloc-T(us)  route-error",
    ]
    for d, coloc, adj, err in rows:
        lines.append(
            f"  {d:<3} {coloc.n_snap:<5} {coloc.n_disp:<5} "
            f"{coloc.fidelity:.4f}   {adj.fidelity:.4f}   "
            f"{coloc.duration * 1e6:<12.1f} {err:.1e}"
        )
    lines.append("  -> cost grows linearly in d; adjacent pairs always lose fidelity,")
    lines.append("     quantifying Table I's co-located/adjacent distinction.")
    record("csum", lines)
    for d, coloc, adj, err in rows:
        assert adj.fidelity < coloc.fidelity
        assert err < 1e-9
