"""E-C2 — SNAP+displacement synthesis fidelity vs dimension (ref [20]).

Claim: "precise handling of single-qudit rotation operations controlling
up to eight energy levels ... achieving gate fidelities exceeding 99% in
noiseless setting".  The bench synthesises the QAOA mixing rotation for
d = 2..8 and reports the achieved infidelities.
"""

from _report import record
from repro.compile.synthesis import synthesize_unitary
from repro.core.gates import qudit_complete_mixer

DIMS = (2, 3, 4, 5, 6, 8)


def _synthesize_all():
    out = {}
    for d in DIMS:
        result = synthesize_unitary(
            qudit_complete_mixer(d, 0.7),
            seed=0,
            max_restarts=3,
            maxiter=350,
            tol_infidelity=1e-4,
        )
        out[d] = result
    return out


def bench_snap_displacement_synthesis(benchmark):
    results = benchmark.pedantic(_synthesize_all, rounds=1, iterations=1)
    lines = ["E-C2 — SNAP+displacement synthesis of single-qudit QAOA mixers:"]
    for d, result in results.items():
        lines.append(
            f"  d={d}: fidelity {result.fidelity:.6f} "
            f"(infidelity {result.infidelity:.2e}, "
            f"{result.sequence.n_layers} SNAP layers, "
            f"{result.n_restarts_used} restart(s))"
        )
    worst = max(result.infidelity for result in results.values())
    lines.append(f"  worst infidelity        : {worst:.2e}")
    lines.append(f"  paper claim             : > 99% fidelity up to d=8 -> {worst < 1e-2}")
    record("synthesis", lines)
    assert worst < 1e-2  # the paper's 99% bar
