"""E-C3 — NDAR vs vanilla QAOA under photon loss (ref [21]).

Claim: exploiting the loss attractor "dramatically increases the
probability of optimal solutions".  The bench sweeps the per-layer loss
rate on 6-node instances, aggregating the best-found cost and the final
round's mean sampled cost over several seeds, for NDAR and for vanilla
noisy QAOA with the same total shot budget.
"""

import numpy as np

from _report import record
from repro.qaoa import random_coloring_instance, run_ndar

LOSS_RATES = (0.1, 0.3, 0.5)
SEEDS = (0, 1, 2, 3)


def _sweep():
    problem = random_coloring_instance(6, 3, degree=4, seed=21)
    table = []
    for loss in LOSS_RATES:
        for adaptive in (True, False):
            bests, finals = [], []
            for seed in SEEDS:
                result = run_ndar(
                    problem,
                    n_rounds=4,
                    shots=30,
                    loss_per_layer=loss,
                    adaptive=adaptive,
                    seed=seed,
                )
                bests.append(result.best_cost)
                finals.append(result.rounds[-1].mean_sampled_cost)
            table.append(
                (loss, adaptive, float(np.mean(bests)), float(np.mean(finals)))
            )
    return problem, table


def bench_ndar_vs_vanilla(benchmark):
    problem, table = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "E-C3 — NDAR vs vanilla noisy QAOA (6-node 4-regular 3-coloring,",
        f"        optimum {problem.best_cost()} clashes, mean over {len(SEEDS)} seeds):",
        "  loss   mode      best-found   final-round mean cost",
    ]
    by_loss = {}
    for loss, adaptive, best, final in table:
        mode = "NDAR   " if adaptive else "vanilla"
        lines.append(f"  {loss:<6} {mode}   {best:<12.2f} {final:.2f}")
        by_loss.setdefault(loss, {})[adaptive] = (best, final)
    gains = []
    for loss, modes in by_loss.items():
        gain = modes[False][1] - modes[True][1]
        gains.append(gain)
        lines.append(
            f"  loss={loss}: NDAR final-round advantage {gain:+.2f} clashes"
        )
    lines.append(
        "  -> NDAR's sampled-quality advantage appears once loss is strong"
    )
    record("ndar", lines)
    # At the strongest loss NDAR's final-round quality must beat vanilla.
    strongest = max(by_loss)
    assert by_loss[strongest][True][1] <= by_loss[strongest][False][1]
