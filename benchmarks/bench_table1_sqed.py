"""T1.1 / C8 — Table I row 1: the 9x2, d>=4 sQED campaign estimation.

The paper does not simulate this campaign (the Hilbert space is ~5^18);
it *estimates* it.  This bench does the same with the real compilation
stack: build one second-order Trotter step of the 2+1D dual-rotor ladder,
map it onto the forecast device with the ladder layout (vertical bonds
co-located, horizontal bonds adjacent — Table I's CSUM distinction), and
report native-gate counts, duration, fidelity, and the coherence budget.
A small 3x2 instance is also exactly diagonalised as a physics check.
"""


from _report import record
from repro.compile.resources import estimate_resources
from repro.compile.synthesis import csum_cost
from repro.hardware import DeviceNoiseModel, forecast_device
from repro.sqed import RotorLadder2D, trotter_circuit
from repro.sqed.rotor2d import ladder_mode_layout


def _campaign_estimate():
    lattice = RotorLadder2D(lx=9, ly=2, spin=2, g2=1.0, kappa=0.4)  # d = 5 >= 4
    device = forecast_device()
    layout = ladder_mode_layout(lattice, modes_per_cavity=4)
    step = trotter_circuit(lattice, t_total=0.2, n_steps=1, order=2)
    resources = estimate_resources(step, device, layout)
    noise = DeviceNoiseModel(device)
    coloc = csum_cost(device, layout[0], layout[1], noise)  # vertical bond
    adj = csum_cost(device, layout[0], layout[2], noise)  # horizontal bond
    small = RotorLadder2D(lx=3, ly=2, spin=1, g2=1.0, kappa=0.4)
    return lattice, resources, coloc, adj, small.mass_gap()


def bench_table1_sqed_campaign(benchmark):
    lattice, resources, coloc, adj, small_gap = benchmark.pedantic(
        _campaign_estimate, rounds=1, iterations=1
    )
    n_bonds = len(lattice.bonds())
    record(
        "table1_sqed",
        [
            "Table I row 1 — sQED simulation, 2D lattice Ns = 9x2, d = 5 (>= 4):",
            f"  lattice sites            : {lattice.n_sites} (dim 5^18 ~ 3.8e12 — estimation only)",
            f"  bond terms per step      : {n_bonds} (9 vertical co-located, 16 horizontal adjacent)",
            f"  native gates / Trotter^2 : {dict(sorted(resources.native_counts.items()))}",
            f"  entangling pulses        : {resources.n_entangling}",
            f"  step duration            : {resources.total_duration * 1e6:.1f} us",
            f"  step fidelity estimate   : {resources.fidelity:.3f}",
            f"  busiest-mode time / T1   : {resources.coherence_fraction:.3g}",
            f"  CSUM co-located          : F = {coloc.fidelity:.4f}, {coloc.duration * 1e6:.1f} us",
            f"  CSUM adjacent            : F = {adj.fidelity:.4f}, {adj.duration * 1e6:.1f} us",
            f"  physics check (3x2, d=3) : mass gap {small_gap:.4f} by ED",
            "  -> Table I's verdict reproduced: the *time* budget fits",
            "     (busiest mode uses ~21% of T1) so the campaign is 'in",
            "     principle mappable and executable', but the gate-fidelity",
            "     budget fails by orders of magnitude at today's SNAP/CSUM",
            "     costs — exactly why CSUM synthesis is the 'main challenge'.",
        ],
    )
    # Time budget fits; fidelity budget is the named challenge (tiny).
    assert resources.coherence_fraction < 1.0
    assert resources.fidelity < 0.1
    assert adj.fidelity < coloc.fidelity
    assert coloc.fidelity > 0.8  # single CSUM is near-term feasible


def _beyond_2d():
    from repro.sqed import RotorLattice3D, swap_network_overhead

    lattice = RotorLattice3D(2, 2, 2, spin=1)
    return lattice, swap_network_overhead(lattice), lattice.mass_gap()


def bench_beyond_2d_swap_network(benchmark):
    """§II.A extension: 'beyond 2D ... use a swap network' at 2x2x2."""
    lattice, estimate, gap = benchmark.pedantic(_beyond_2d, rounds=1, iterations=1)
    record(
        "sqed_3d",
        [
            "E-3D — 2x2x2 rotor lattice via column embedding + swap network:",
            f"  sites / bonds            : {lattice.n_sites} / {len(lattice.bonds())}",
            f"  modes per cavity needed  : {estimate.modes_per_cavity_needed} "
            "(forecast device offers 4)",
            f"  direct vs networked bonds: {estimate.direct_bonds} / "
            f"{estimate.networked_bonds}",
            f"  swap layers / swaps      : {estimate.swap_layers} / "
            f"{estimate.total_swaps}",
            f"  physics check (ED gap)   : {gap:.4f}",
            "  -> a small 3D simulation fits two forecast cavities, as §II.A",
            "     anticipates for 'a small number of sites in the near term'.",
        ],
    )
    assert estimate.modes_per_cavity_needed <= 4
    assert gap > 0
