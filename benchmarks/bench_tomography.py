"""E-TOMO — reservoir-processing tomography vs training-set size (ref [28]).

Claim: the learned reservoir map "required smaller training datasets and
simpler resources than competing methods" and "automatically compensates"
imperfections.  The bench sweeps the training-set size at exact and
shot-limited readout and reports mean reconstruction fidelity.
"""

from _report import record
from repro.reservoir import ReservoirTomograph

TRAIN_SIZES = (8, 15, 30, 60, 120)


def _sweep():
    rows = []
    for n_train in TRAIN_SIZES:
        exact = ReservoirTomograph(dim=4, seed=0).train(n_training_states=n_train)
        shot = ReservoirTomograph(dim=4, seed=0).train(
            n_training_states=n_train, shots=500
        )
        rows.append(
            (
                n_train,
                exact.evaluate(n_test_states=12),
                shot.evaluate(n_test_states=12, shots=500),
            )
        )
    return rows


def bench_tomography_training_size(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "E-TOMO — reconstruction fidelity vs training-set size (d=4 cavity):",
        "  n_train   exact readout   500 shots/probe",
    ]
    for n_train, exact_f, shot_f in rows:
        lines.append(f"  {n_train:<9} {exact_f:<15.4f} {shot_f:.4f}")
    lines.append(
        "  -> tens of training states suffice for ~unit fidelity (the paper's"
    )
    lines.append("     'smaller training datasets' selling point).")
    record("tomography", lines)
    assert rows[-1][1] > 0.99  # exact readout converges to ~1
    assert rows[-1][2] > 0.95  # shot-limited stays high
