"""T1.2 — Table I row 2: NDAR-QAOA 3-coloring at N = 9.

Runs the full optimisation campaign at the paper's stated size: a 9-node
4-regular 3-coloring instance on nine qutrits, p = 1 QAOA optimised
noiselessly, then noisy NDAR sampling.  Reports the approximation ratios
and the per-round trajectory.
"""

from _report import record
from repro.qaoa import optimize_qaoa, random_coloring_instance, run_ndar


def _campaign():
    problem = random_coloring_instance(9, 3, degree=4, seed=11)
    qaoa = optimize_qaoa(problem, p=1, maxiter=100)
    ndar = run_ndar(
        problem, n_rounds=4, shots=40, loss_per_layer=0.25, p=1, seed=5
    )
    return problem, qaoa, ndar


def bench_table1_coloring(benchmark):
    problem, qaoa, ndar = benchmark.pedantic(_campaign, rounds=1, iterations=1)
    record(
        "table1_coloring",
        [
            "Table I row 2 — NDAR-QAOA, 3 colors, N = 9 (nine qutrits):",
            f"  instance                  : {problem.n_nodes} nodes, {problem.n_edges} edges, "
            f"optimum {problem.best_cost()} clashes",
            f"  noiseless QAOA p=1        : E[clashes] {qaoa.expected_cost:.3f}, "
            f"ratio {qaoa.approximation_ratio:.3f}",
            f"  NDAR best sample          : {ndar.best_cost} clashes, "
            f"ratio {ndar.approximation_ratio:.3f}",
            "  NDAR mean cost per round  : "
            + str([round(r.mean_sampled_cost, 2) for r in ndar.rounds]),
            "  -> the campaign is executable at Table I size; validity is 1.0 by",
            "     construction (qudit one-hot), see bench_ndar for the loss sweep.",
        ],
    )
    assert qaoa.approximation_ratio > 0.6
    assert ndar.approximation_ratio >= qaoa.approximation_ratio * 0.8
