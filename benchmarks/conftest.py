"""Make the shared ``_report`` helper importable from any invocation dir."""

import sys
from pathlib import Path

_BENCH_DIR = str(Path(__file__).parent)
if _BENCH_DIR not in sys.path:
    sys.path.insert(0, _BENCH_DIR)
