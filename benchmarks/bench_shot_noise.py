"""E-C6 — shot-noise overhead of reservoir readout (Table I row 3 challenge).

Claim: sampling overhead "quickly degrades performance and would prohibit
real-time operation".  The bench trains/tests the NARMA-2 readout with
multinomially sampled population features at increasing shot budgets and
reports the NMSE curve against the exact-expectation floor.
"""

from _report import record
from repro.reservoir import QuantumReservoir, narma_task, shot_noise_sweep

BUDGETS = [30, 100, 300, 1000, 3000, 10000, 30000]


def _sweep():
    task = narma_task(400, order=2, seed=0)
    features = QuantumReservoir().run(task.inputs)
    return shot_noise_sweep(
        features, task.targets, BUDGETS, washout=30, alpha=1e-4, seed=0
    )


def bench_shot_noise_overhead(benchmark):
    sweep = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    exact = next(p for p in sweep if p.shots == 0)
    lines = [
        "E-C6 — readout NMSE vs shots per time step (NARMA-2, 81 features):",
    ]
    for point in sweep:
        if point.shots == 0:
            continue
        overhead = point.nmse / exact.nmse
        lines.append(
            f"  shots {point.shots:>6}: NMSE {point.nmse:.4f} "
            f"({overhead:5.1f}x the exact floor)"
        )
    lines.append(f"  exact floor : NMSE {exact.nmse:.4f}")
    lines.append(
        "  -> useful operation needs >= 10^3-10^4 shots per step; at a ~us"
    )
    lines.append(
        "     clock that is ms-scale wall time per input sample — the"
    )
    lines.append("     real-time bottleneck Table I row 3 flags.")
    record("shot_noise", lines)
    few = next(p for p in sweep if p.shots == BUDGETS[0])
    many = next(p for p in sweep if p.shots == BUDGETS[-1])
    assert few.nmse > 1.5 * many.nmse  # steep degradation at low budgets
    assert many.nmse < 4 * exact.nmse  # large budgets approach the floor
