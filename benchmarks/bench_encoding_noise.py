"""E-C1 — qutrit vs qubit encoding noise thresholds (paper §II.A, ref [11]).

Claim: "the most native qutrit encodings tolerated gate errors 10-100
times higher than qubit encodings".  The bench runs the full threshold
bisection on a 3-site qutrit rotor chain and reports both thresholds, the
ratio (the headline number), and the gate-count leverage behind it.
"""

from _report import record
from repro.sqed import RotorChain, compare_encodings


def _run_comparison():
    chain = RotorChain(n_sites=3, spin=1, g2=1.0, hopping=0.3)
    return compare_encodings(
        chain, damage_tol=0.1, t_total=3.0, n_steps=8, bisection_steps=8
    )


def bench_encoding_noise_threshold(benchmark):
    result = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    in_band = 10.0 <= result.threshold_ratio <= 100.0
    record(
        "encoding_noise",
        [
            "E-C1 — encoding noise thresholds (3-site qutrit rotor chain):",
            f"  qudit threshold eps*     : {result.qudit_threshold:.4g}",
            f"  qubit threshold eps*     : {result.qubit_threshold:.4g}",
            f"  threshold ratio          : {result.threshold_ratio:.1f}x",
            f"  paper band               : 10-100x  -> in band: {in_band}",
            f"  qudit entangling / step  : {result.qudit_entangling_per_step}",
            f"  qubit CNOTs / step       : {result.qubit_cnots_per_step}",
            f"  gate-count ratio         : {result.gate_count_ratio:.1f}x",
        ],
    )
    assert result.threshold_ratio > 5.0  # conservative floor for CI noise
    assert result.qubit_cnots_per_step > 10 * result.qudit_entangling_per_step
