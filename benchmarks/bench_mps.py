"""MPS backend benchmark — registers no dense backend can represent.

Two sections:

1. **Correctness anchor** (small register): a 6-qutrit NDAR-style noisy
   QAOA circuit where the MPS backend at *unbounded* bond dimension must
   match the dense statevector (noiseless part) to 1e-10 and the exact
   density matrix (noisy expectations, many trajectories) within Monte-
   Carlo error.

2. **Scale demonstration**: a 20-qutrit NDAR-style circuit — register
   dimension ``3^20 ≈ 3.5e9``, i.e. ~56 GB of complex128 for *one*
   statevector, far beyond any dense engine here — evolved at bounded
   bond dimension, reporting wall time, peak bond, cumulative truncation
   error, sampling throughput, and the edge-local QAOA energy across a
   chi sweep.

Run as a script to (re)generate the committed ``BENCH_mps.json``::

    PYTHONPATH=src python benchmarks/bench_mps.py

The ``bench_smoke`` tier-1 tests call :func:`run_benchmarks` at tiny sizes
so a regression in the MPS engine fails tier-1 without slowing the suite.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import DensityMatrix, Statevector, get_backend
from repro.qaoa import random_coloring_instance, state_energy
from repro.qaoa.circuits import add_photon_loss, qaoa_circuit

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_mps.json"


def _ndar_style_circuit(n_nodes: int, loss: float, seed: int = 21):
    """One NDAR round: p=1 qutrit QAOA on a random graph + photon loss."""
    problem = random_coloring_instance(
        n_nodes, 3, degree=min(4, n_nodes - 1), seed=seed
    )
    circuit = qaoa_circuit(problem, [0.6], [0.4])
    return problem, add_photon_loss(circuit, loss)


def _bench_correctness(n_nodes: int, n_trajectories: int) -> dict:
    """Unbounded-chi MPS vs the dense backends on a small register."""
    problem, noisy = _ndar_style_circuit(n_nodes, loss=0.15)
    noiseless = qaoa_circuit(problem, [0.6], [0.4])
    sv = Statevector.zero(noiseless.dims).evolve(noiseless)
    mps = get_backend("mps").run(noiseless)
    sv_err = float(
        np.abs(mps.states[0].to_statevector().vector - sv.vector).max()
    )
    exact = DensityMatrix.zero(noisy.dims).evolve(noisy)
    op = np.diag([0.0, 1.0, 2.0])
    exact_value = float(np.real(exact.expectation(op, 0)))
    noisy_result = get_backend("mps").run(
        noisy, n_trajectories=n_trajectories, rng=5
    )
    mc_value = noisy_result.expectation(op, 0)
    return {
        "register": [3] * n_nodes,
        "noiseless_max_amplitude_error": sv_err,
        "noisy_observable_exact": exact_value,
        "noisy_observable_mc": mc_value,
        "noisy_observable_abs_error": abs(mc_value - exact_value),
        "n_trajectories": n_trajectories,
        "full_chi_truncation_error": float(
            max(s.truncation_error for s in noisy_result.states)
        ),
    }


def _bench_scale(
    n_nodes: int, bond_caps, loss: float, shots: int
) -> dict:
    """Bounded-chi evolution of a register far beyond dense reach."""
    problem, noisy = _ndar_style_circuit(n_nodes, loss=loss)
    dense_dim = 3**n_nodes
    sweep = []
    for max_bond in bond_caps:
        backend = get_backend("mps", max_bond=int(max_bond))
        start = time.perf_counter()
        result = backend.run(noisy, rng=7)
        evolve_s = time.perf_counter() - start
        state = result.states[0]
        start = time.perf_counter()
        counts = result.sample(shots, rng=8)
        sample_s = time.perf_counter() - start
        start = time.perf_counter()
        energy = state_energy(problem, result)
        energy_s = time.perf_counter() - start
        sweep.append(
            {
                "max_bond": int(max_bond),
                "evolve_s": round(evolve_s, 4),
                "sample_s": round(sample_s, 4),
                "energy_s": round(energy_s, 4),
                "peak_bond": int(max(state.bond_dimensions())),
                "truncation_error": float(state.truncation_error),
                "qaoa_energy": round(float(energy), 4),
                "distinct_outcomes": len(counts),
            }
        )
    return {
        "register": [3] * n_nodes,
        "n_qutrits": n_nodes,
        "dense_dim": float(dense_dim),
        "dense_statevector_gib": round(dense_dim * 16 / 2**30, 1),
        "n_instructions": len(noisy),
        "n_edges": len(problem.edges),
        "shots": shots,
        "chi_sweep": sweep,
    }


def run_benchmarks(
    n_small: int = 6,
    n_large: int = 20,
    bond_caps=(8, 16, 32),
    loss: float = 0.1,
    n_trajectories: int = 400,
    shots: int = 50,
    out_path: Path | str | None = None,
) -> dict:
    """Run the MPS benchmark suite and optionally emit JSON.

    Args:
        n_small: qutrits in the correctness-anchor circuit (dense-checkable).
        n_large: qutrits in the scale circuit (must exceed dense reach).
        bond_caps: chi values for the bounded-chi sweep.
        loss: per-layer photon-loss probability.
        n_trajectories: Monte-Carlo width for the noisy correctness check.
        shots: samples drawn from the large register.
        out_path: where to write the JSON report (``None`` = don't write).

    Returns:
        The report dictionary (also written to ``out_path`` if given).
    """
    correctness = _bench_correctness(n_small, n_trajectories)
    scale = _bench_scale(n_large, bond_caps, loss, shots)
    report = {
        "meta": {
            "benchmark": "bench_mps",
            "numpy": np.__version__,
            "python": platform.python_version(),
        },
        "correctness": correctness,
        "scale": scale,
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    report = run_benchmarks(out_path=BENCH_JSON)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_JSON}")


if __name__ == "__main__":
    main()
