"""Core-engine throughput benchmark — structured fast paths + batched trajectories.

Measures the two hot paths the fast-path engine optimises, against the
*seed* implementation (dense ``tensordot`` per gate, Python loop per
trajectory) kept in-tree as ``apply_matrix_dense`` / a faithful reference
simulator below:

1. **Gate application**: diagonal (Weyl ``Z``, cross-Kerr) and permutation
   (Weyl ``X``, CSUM) gates on a 7-qutrit register, structured kernel vs
   dense contraction.
2. **Noisy-trajectory throughput**: 200 trajectories of a 7-qutrit
   NDAR-style circuit (QAOA layer + per-layer photon loss), batched engine
   vs the seed per-trajectory loop.

Run as a script to (re)generate the committed ``BENCH_core.json`` at the
repo root::

    PYTHONPATH=src python benchmarks/bench_core_engine.py

The ``bench_smoke`` tier-1 tests call :func:`run_benchmarks` at tiny sizes
to catch fast-path regressions without slowing the suite; full-size runs
stay opt-in.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import QuditCircuit, Statevector, TrajectorySimulator
from repro.core.dims import index_to_digits, total_dim
from repro.core.statevector import apply_matrix, apply_matrix_dense
from repro.core.structure import classify_gate
from repro.core import gates
from repro.qaoa import random_coloring_instance
from repro.qaoa.circuits import add_photon_loss, qaoa_circuit

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_core.json"


# ----------------------------------------------------------------------
# seed-reference trajectory simulator (dense path + Python loop per shot)
# ----------------------------------------------------------------------
class _SeedReferenceSimulator:
    """Faithful re-implementation of the seed (pre-fast-path) simulator.

    Mirrors the original ``TrajectorySimulator`` line for line: every gate
    goes through the dense ``tensordot`` contraction wrapped in a fresh
    ``Statevector``, every Kraus branch is applied to compute its Born
    weight, and every trajectory is a separate Python loop over the
    circuit — exactly the seed hot path this PR replaced.
    """

    def __init__(self, circuit: QuditCircuit, seed: int) -> None:
        self.circuit = circuit
        self._rng = np.random.default_rng(seed)

    def _apply(self, state: Statevector, matrix, targets) -> Statevector:
        tensor = apply_matrix_dense(
            state.tensor, matrix, self.circuit.dims, targets
        )
        return Statevector(tensor.reshape(-1), self.circuit.dims)

    def _jump(self, state, kraus, targets) -> Statevector:
        weights, candidates = [], []
        for op in kraus:
            new = self._apply(state, op, targets)
            weights.append(new.norm() ** 2)
            candidates.append(new)
        weights = np.asarray(weights)
        choice = int(self._rng.choice(len(kraus), p=weights / weights.sum()))
        return candidates[choice].normalized()

    def _run_single(self, initial: Statevector) -> Statevector:
        state = initial
        for instruction in self.circuit:
            if instruction.kind == "unitary":
                state = self._apply(state, instruction.matrix, instruction.qudits)
            elif instruction.kind == "channel":
                state = self._jump(state, instruction.kraus, instruction.qudits)
            elif instruction.kind == "measure":
                continue
            else:
                raise ValueError(f"unsupported kind {instruction.kind}")
        return state

    def sample(self, shots: int) -> dict[tuple[int, ...], int]:
        dims = self.circuit.dims
        initial = Statevector.zero(dims)
        counts: dict[tuple[int, ...], int] = {}
        for _ in range(shots):
            final = self._run_single(initial)
            probs = final.probabilities()
            index = int(
                self._rng.choice(len(probs), p=probs / probs.sum())
            )
            digits = index_to_digits(index, dims)
            counts[digits] = counts.get(digits, 0) + 1
        return counts


# ----------------------------------------------------------------------
# timing helpers
# ----------------------------------------------------------------------
def _time_loop(fn, repeats: int) -> float:
    """Best-of-3 mean seconds per call over ``repeats`` calls."""
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


def _bench_gate_apply(n_qutrits: int, repeats: int) -> tuple[dict, float]:
    """Structured kernels vs dense contraction on one register; returns
    (per-gate results + category summaries, max |fast - dense| error).

    Structures are classified once and reused across calls — exactly how
    the simulators use the per-instruction cache.
    """
    dims = (3,) * n_qutrits
    rng = np.random.default_rng(0)
    state = rng.normal(size=dims) + 1j * rng.normal(size=dims)
    state /= np.linalg.norm(state)
    mid = n_qutrits // 2
    cases = {
        "weyl_z_diagonal_1wire": (gates.weyl_z(3), (0,), "diagonal"),
        "snap_diagonal_1wire": (gates.snap(3, [0.3, 0.1]), (mid,), "diagonal"),
        "cross_kerr_diagonal_2wire": (
            gates.cross_kerr(3, 3, 0.4), (0, n_qutrits - 1), "diagonal",
        ),
        "cphase_diagonal_2wire": (
            gates.controlled_phase(3, 3), (1, mid), "diagonal",
        ),
        "weyl_x_permutation_1wire": (gates.weyl_x(3), (mid,), "permutation"),
        "weyl_x_permutation_last_wire": (
            gates.weyl_x(3), (n_qutrits - 1,), "permutation",
        ),
        "csum_permutation_2wire": (
            gates.csum(3, 3), (1, n_qutrits - 1), "permutation",
        ),
    }
    out = {}
    max_error = 0.0
    by_category: dict[str, list[float]] = {}
    for name, (matrix, targets, category) in cases.items():
        structure = classify_gate(matrix)
        fast = apply_matrix(state, matrix, dims, targets, structure=structure)
        dense = apply_matrix_dense(state, matrix, dims, targets)
        max_error = max(max_error, float(np.abs(fast - dense).max()))
        fast_s = _time_loop(
            lambda m=matrix, t=targets, s=structure: apply_matrix(
                state, m, dims, t, structure=s
            ),
            repeats,
        )
        dense_s = _time_loop(
            lambda m=matrix, t=targets: apply_matrix_dense(state, m, dims, t),
            repeats,
        )
        speedup = dense_s / fast_s
        by_category.setdefault(category, []).append(speedup)
        out[name] = {
            "fast_us": round(fast_s * 1e6, 3),
            "dense_us": round(dense_s * 1e6, 3),
            "speedup": round(speedup, 2),
        }
    for category, speedups in by_category.items():
        out[f"{category}_geomean_speedup"] = round(
            float(np.exp(np.mean(np.log(speedups)))), 2
        )
    return out, max_error


def _ndar_style_circuit(n_nodes: int, loss: float) -> QuditCircuit:
    """One NDAR round's circuit: p=1 qutrit QAOA + per-layer photon loss."""
    problem = random_coloring_instance(n_nodes, 3, degree=min(4, n_nodes - 1), seed=21)
    circuit = qaoa_circuit(problem, [0.6], [0.4])
    return add_photon_loss(circuit, loss)


def _bench_trajectories(n_nodes: int, n_trajectories: int) -> dict:
    circuit = _ndar_style_circuit(n_nodes, loss=0.15)
    batched = TrajectorySimulator(circuit, seed=7)
    batched.sample(min(8, n_trajectories))  # warm structure/plan caches
    batched_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        batched.sample(n_trajectories)
        batched_s = min(batched_s, time.perf_counter() - start)
    reference = _SeedReferenceSimulator(circuit, seed=7)
    reference.sample(min(8, n_trajectories))
    start = time.perf_counter()
    reference.sample(n_trajectories)
    seed_loop_s = time.perf_counter() - start
    return {
        "register": [3] * n_nodes,
        "n_trajectories": n_trajectories,
        "n_instructions": len(circuit),
        "batched_s": round(batched_s, 4),
        "seed_loop_s": round(seed_loop_s, 4),
        "speedup": round(seed_loop_s / batched_s, 2),
        "batched_traj_per_s": round(n_trajectories / batched_s, 1),
        "seed_loop_traj_per_s": round(n_trajectories / seed_loop_s, 1),
    }


def run_benchmarks(
    n_qutrits: int = 7,
    gate_repeats: int = 300,
    n_traj_nodes: int = 7,
    n_trajectories: int = 200,
    out_path: Path | str | None = None,
) -> dict:
    """Run the core-engine benchmark suite and optionally emit JSON.

    Args:
        n_qutrits: register size for the gate-apply section.
        gate_repeats: timed repetitions per gate kernel.
        n_traj_nodes: qutrits in the NDAR-style trajectory circuit.
        n_trajectories: trajectory count for the throughput section.
        out_path: where to write the JSON report (``None`` = don't write).

    Returns:
        The report dictionary (also written to ``out_path`` if given).
    """
    gate_apply, max_error = _bench_gate_apply(n_qutrits, gate_repeats)
    trajectories = _bench_trajectories(n_traj_nodes, n_trajectories)
    report = {
        "meta": {
            "benchmark": "bench_core_engine",
            "numpy": np.__version__,
            "python": platform.python_version(),
            "gate_register_dim": total_dim((3,) * n_qutrits),
            "gate_repeats": gate_repeats,
        },
        "gate_apply": gate_apply,
        "trajectories": {"ndar_style": trajectories},
        "correctness": {"max_fastpath_vs_dense_error": max_error},
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    report = run_benchmarks(out_path=BENCH_JSON)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_JSON}")


if __name__ == "__main__":
    main()
