"""E-C4 — qudit QRAC relaxation at 50+ nodes (refs [22][23]).

Claim: QRAC-style encodings scale coloring "to 50+ [nodes]" on a handful
of registers.  The bench packs 54- and 60-node 3-coloring instances onto
two simulated d=8 qudits, rounds, and scores the true clash count against
the randomised-greedy classical baseline and the random-assignment floor.
"""


from _report import record
from repro.qaoa import (
    greedy_coloring_cost,
    random_coloring_instance,
    solve_coloring_qrac,
)

SIZES = (30, 54, 60)


def _sweep():
    rows = []
    for n in SIZES:
        problem = random_coloring_instance(n, 3, degree=4, seed=3)
        result = solve_coloring_qrac(
            problem, qudit_dim=8, n_restarts=3, maxiter=250, seed=0, best_cost=0
        )
        greedy = min(greedy_coloring_cost(problem, seed=s) for s in range(8))
        random_floor = problem.n_edges / 3.0  # E[clashes] of random coloring
        rows.append((n, problem, result, greedy, random_floor))
    return rows


def bench_qrac_scaling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [
        "E-C4 — qudit QRAC relaxation (carrier d=8, 31 nodes/qudit):",
        "  N    qudits  clashes/edges  ratio   greedy  random-floor",
    ]
    for n, problem, result, greedy, floor in rows:
        lines.append(
            f"  {n:<4} {result.n_qudits:<7} "
            f"{result.clashes}/{problem.n_edges:<11} "
            f"{result.approximation_ratio:<7.3f} {greedy:<7} {floor:.1f}"
        )
    lines.append(
        "  -> 50+ node instances run on 2 simulated qudits and beat the random"
    )
    lines.append(
        "     floor decisively (greedy remains stronger — consistent with the"
    )
    lines.append("     few-register trade-off reported in the cited works).")
    record("qrac", lines)
    for n, problem, result, greedy, floor in rows:
        assert result.clashes < floor  # always beat random assignment
        assert result.n_qudits <= 2
