"""T1.3 / E-C5 — Table I row 3: reservoir computing, 81 effective neurons.

Runs NARMA-2 prediction on the two-oscillator quantum reservoir (9 Fock
levels per mode = 81 joint-population neurons) and sweeps echo-state
networks to find the classical size matching the quantum NMSE — ref
[25]'s "achieving similar performance classically required a much larger
reservoir" comparison, with physical nodes as the honest denominator
(2 oscillators vs tens of classical neurons).
"""

from _report import record
from repro.reservoir import (
    EchoStateNetwork,
    QuantumReservoir,
    RidgeReadout,
    narma_task,
    train_test_split,
)

ESN_SIZES = (5, 10, 20, 40, 81, 160)


def _campaign():
    task = narma_task(500, order=2, seed=0)
    reservoir = QuantumReservoir()
    features = reservoir.run(task.inputs)
    f_tr, y_tr, f_te, y_te = train_test_split(features, task.targets, washout=30)
    quantum_nmse = RidgeReadout(1e-8).fit(f_tr, y_tr).score_nmse(f_te, y_te)
    esn_scores = {}
    for size in ESN_SIZES:
        esn = EchoStateNetwork(size, seed=1)
        states = esn.run(task.inputs)
        f_tr, y_tr, f_te, y_te = train_test_split(states, task.targets, washout=30)
        esn_scores[size] = RidgeReadout(1e-8).fit(f_tr, y_tr).score_nmse(f_te, y_te)
    return reservoir, quantum_nmse, esn_scores


def bench_table1_reservoir(benchmark):
    reservoir, quantum_nmse, esn_scores = benchmark.pedantic(
        _campaign, rounds=1, iterations=1
    )
    matching = [n for n, score in esn_scores.items() if score <= quantum_nmse]
    equivalent = min(matching) if matching else max(ESN_SIZES)
    lines = [
        "Table I row 3 / E-C5 — quantum reservoir vs classical ESN (NARMA-2):",
        f"  quantum reservoir         : 2 oscillators x 9 levels = "
        f"{reservoir.effective_neurons()} neurons, NMSE {quantum_nmse:.4f}",
        "  ESN size sweep:",
    ]
    for size, score in esn_scores.items():
        marker = "  <- first match" if size == equivalent else ""
        lines.append(f"    n={size:>4}: NMSE {score:.4f}{marker}")
    lines.append(
        f"  -> matching the 2-oscillator reservoir takes an ESN of ~{equivalent}"
    )
    lines.append(
        "     classical neurons (>> 2 physical nodes) — claim C5's shape."
    )
    record("table1_reservoir", lines)
    assert quantum_nmse < 0.05
    assert equivalent >= 20  # much larger than the 2 physical oscillators
