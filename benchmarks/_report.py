"""Shared reporting helper for the benchmark harness.

Every benchmark regenerates one paper artefact (a Table I row or a claim
from §II).  Besides pytest-benchmark's timing table, each bench writes its
*scientific* output — the rows the paper reports — to
``benchmarks/results/<name>.txt`` so the numbers survive stdout capture
and can be diffed across runs / pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def record(name: str, lines: list[str]) -> None:
    """Write (and echo) one benchmark's result block."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n--- {name} ---")
    print(text)
