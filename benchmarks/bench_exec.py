"""Campaign-subsystem benchmark — parallel speedup, cache replay, calibration.

Nine sections, emitted to the committed ``BENCH_exec.json``:

1. **calibration** — measures the per-unit cost constants the
   ``get_backend("auto")`` cost model ranks engines with (seconds per
   amplitude·instruction for the dense engines, per
   site·chi^3[·kappa]·instruction for the tensor networks).  Regenerating
   this file *is* how the auto-selector is recalibrated for new hardware.
2. **auto_selection** — the decision table on the anchor workloads: a
   4-qutrit noiseless register must resolve to ``statevector`` and a
   12-qutrit noisy register to a tensor-network engine (``lpdo``/``mps``),
   with the full estimate table on record.
3. **latency_campaign** — a latency-bound campaign (each point sleeps,
   standing in for a remote/IO-bound backend call) run serially and at 8
   workers.  This isolates the *scheduler's* concurrency from the host's
   core count: sleeping points overlap even on a single core, so the
   >= 2x guard is meaningful everywhere.
4. **sqed_campaign** — the acceptance workload: a 64-point sQED
   encoding-damage sweep (``repro.sqed.noise_study.damage_task`` through
   ``method="auto"``) run serially, at 8 workers (CPU-bound speedup is
   recorded together with ``cpu_count`` — on a single-core host it is
   honestly ~1x), and replayed from the result cache (>= 10x, >= 95% of
   points served without recomputation).
5. **pool_reuse** — a battery of short campaigns run twice: once through
   the one-shot :func:`repro.exec.run_campaign` (a fresh pool forked and
   torn down per campaign) and once on a single persistent
   :class:`repro.exec.CampaignExecutor` (one warm pool amortised across
   the battery).  Short sweeps are fork-dominated, so the executor must
   be >= 2x faster end to end.
6. **streaming** — one latency-bound campaign consumed two ways: the
   barrier runner (no value visible until every point is done) vs the
   executor's ``stream_results()`` (first value as soon as point 0
   lands).  Records the streamed time-to-first-result, required to be
   <= 0.5x the barrier runner's total wall time.
7. **supervised_overhead** — the fault-tolerance tax: the same
   latency-bound battery dispatched through a raw, unsupervised
   ``multiprocessing.Pool.imap_unordered`` (the pre-supervision
   architecture: no liveness monitoring, no respawn, no per-point
   timeouts) vs the supervised executor.  The supervised wall time is
   required to be <= 1.10x the raw pool's — crash detection must cost
   under 10% on latency-bound work.
8. **autopilot** — plan quality of the error-budget contract
   (``method="auto"``, ``target_error``, zero hand-set caps) against a
   hand-tuned ``(max_bond, max_kraus)`` grid on the sQED damage ladder:
   the autopilot must meet the target and land within 1.2x the wall
   time of the best hand-tuned configuration that also meets it.
9. **obs_overhead** — the observability tax: a CPU-bound gate-apply
   workload (the hottest instrumented call sites, :mod:`repro.obs`)
   timed with telemetry disabled, enabled, and disabled again,
   min-of-k.  The disabled-after/disabled-before ratio is required to
   be <= 1.05 — the instrumentation must be near-free when off (one
   module-attribute check per call site) and must leave no residue
   behind after an enabled run.  The enabled ratio is on record too,
   together with proof the enabled run actually collected telemetry,
   and a ``serve_scrape`` sub-record: while telemetry is live, an
   :class:`repro.obs.serve.ObsServer` is scraped over HTTP and the
   min scrape latency, response status, and exposed family count are
   recorded (the scrape must return 200 with a non-empty, typed body).

Run as a script to (re)generate the committed record::

    PYTHONPATH=src python benchmarks/bench_exec.py

The ``bench_smoke`` tier-1 tests call :func:`run_benchmarks` at tiny
sizes and separately validate the committed JSON.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core import QuditCircuit, get_backend
from repro.core.channels import photon_loss
from repro.exec import (
    Campaign,
    CampaignExecutor,
    ResultCache,
    run_campaign,
    zip_sweep,
)
from repro.exec.costmodel import DEFAULT_CALIBRATION, select_backend

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_exec.json"


# ----------------------------------------------------------------------
# campaign tasks (module-level so worker processes can import them)
# ----------------------------------------------------------------------
def latency_task(
    point: int, delay_ms: float = 40.0, tag: int = 0, seed: int = 0
) -> int:
    """Stands in for an IO/latency-bound backend call (sleeps, no CPU).

    ``tag`` carries no behaviour — it keeps the points of otherwise
    identical short campaigns distinct in the pool-reuse battery.
    """
    time.sleep(delay_ms / 1000.0)
    return int(point)


# ----------------------------------------------------------------------
# section 1: cost-model calibration
# ----------------------------------------------------------------------
def _clean_circuit(n: int) -> QuditCircuit:
    qc = QuditCircuit([3] * n)
    for i in range(n):
        qc.fourier(i)
    for i in range(n - 1):
        qc.csum(i, i + 1)
    for i in range(n):
        qc.z(i)
    return qc


def _noisy_circuit(n: int, loss: float = 0.1) -> QuditCircuit:
    qc = _clean_circuit(n)
    for i in range(n):
        qc.channel(photon_loss(3, loss).kraus, i, name="loss")
    return qc


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def calibrate(scale: int = 1) -> dict:
    """Measure the auto-selector's per-unit cost constants on this host.

    Args:
        scale: >= 1 grows the probe circuits (full benchmark uses larger
            probes than the tier-1 smoke run for steadier timings).

    Returns:
        A dict with the :data:`repro.exec.costmodel.DEFAULT_CALIBRATION`
        keys, each measured here (memory budget kept at its default).
    """
    out = dict(DEFAULT_CALIBRATION)

    n_sv = 6 + (1 if scale > 1 else 0)
    clean = _clean_circuit(n_sv)
    dim = 3.0**n_sv
    elapsed = _timed(lambda: get_backend("statevector").run(clean))
    out["statevector_amp_op_s"] = elapsed / (dim * len(clean))

    n_rho = 4
    noisy = _noisy_circuit(n_rho)
    dim = 3.0**n_rho
    elapsed = _timed(lambda: get_backend("density").run(noisy))
    out["density_amp2_op_s"] = elapsed / (dim * dim * len(noisy))

    n_traj, batch = 5, 64 * scale
    noisy = _noisy_circuit(n_traj)
    dim = 3.0**n_traj
    elapsed = _timed(
        lambda: get_backend("trajectories").run(
            noisy, n_trajectories=batch, rng=0
        )
    )
    out["trajectories_amp_op_s"] = elapsed / (dim * batch * len(noisy))

    n_mps, chi = 8 + 2 * scale, 16
    clean = _clean_circuit(n_mps)
    elapsed = _timed(lambda: get_backend("mps").run(clean, max_bond=chi))
    out["mps_site_chi3_op_s"] = elapsed / (n_mps * chi**3 * len(clean))

    n_lpdo, chi, kappa = 5 + scale, 16, 4
    noisy = _noisy_circuit(n_lpdo)
    elapsed = _timed(
        lambda: get_backend("lpdo").run(noisy, max_bond=chi, max_kraus=kappa)
    )
    out["lpdo_site_chi3_kappa2_op_s"] = elapsed / (
        n_lpdo * chi**3 * kappa**2 * len(noisy)
    )
    return out


# ----------------------------------------------------------------------
# section 2: auto-selection decision table
# ----------------------------------------------------------------------
def auto_selection_table(calibration: dict) -> dict:
    """The cost model's decisions on the anchor workloads."""
    anchors = {
        "4_qutrit_noiseless": dict(dims=[3] * 4, noisy=False),
        "7_qutrit_noiseless": dict(dims=[3] * 7, noisy=False),
        "3_qutrit_noisy": dict(dims=[3] * 3, noisy=True),
        "12_qutrit_noisy": dict(dims=[3] * 12, noisy=True),
        "20_qutrit_noisy": dict(dims=[3] * 20, noisy=True),
    }
    table = {}
    for label, spec in anchors.items():
        choice = select_backend(
            spec["dims"], noisy=spec["noisy"], calibration=calibration
        )
        table[label] = {
            "backend": choice.name,
            "options": choice.options,
            "estimates": choice.estimates,
        }
    return table


# ----------------------------------------------------------------------
# sections 3 & 4: campaign speedups
# ----------------------------------------------------------------------
def _latency_campaign(n_points: int, delay_ms: float) -> Campaign:
    return Campaign(
        task=latency_task,
        sweep=zip_sweep(point=list(range(n_points))),
        name="latency-smoke",
        base_params={"delay_ms": delay_ms},
        seed=0,
    )


def bench_latency_campaign(n_points: int, delay_ms: float, workers: int) -> dict:
    """Scheduler concurrency on a latency-bound workload (core-count free)."""
    serial = run_campaign(_latency_campaign(n_points, delay_ms))
    parallel = run_campaign(
        _latency_campaign(n_points, delay_ms), workers=workers, chunk_size=1
    )
    assert parallel.values == serial.values
    return {
        "n_points": n_points,
        "delay_ms": delay_ms,
        "workers": workers,
        "serial_s": round(serial.duration_s, 4),
        "parallel_s": round(parallel.duration_s, 4),
        "speedup": round(serial.duration_s / parallel.duration_s, 2),
    }


def bench_pool_reuse(
    n_campaigns: int, n_points: int, delay_ms: float, workers: int
) -> dict:
    """A battery of short campaigns: fresh pool per campaign vs one warm pool.

    Every campaign is tagged so no two share cache keys (no cache is used
    anyway); the work per campaign is deliberately tiny so the fork +
    import cost of a fresh pool dominates the one-shot path.
    """

    def battery():
        return [
            Campaign(
                task=latency_task,
                sweep=zip_sweep(point=list(range(n_points))),
                name=f"short-{tag}",
                base_params={"delay_ms": delay_ms, "tag": tag},
                seed=0,
            )
            for tag in range(n_campaigns)
        ]

    start = time.perf_counter()
    cold_values = [
        run_campaign(campaign, workers=workers, chunk_size=1).values
        for campaign in battery()
    ]
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    with CampaignExecutor(workers, chunk_size=1) as executor:
        warm_values = [
            executor.run(campaign).values for campaign in battery()
        ]
        stats = executor.stats
    warm_s = time.perf_counter() - start
    assert warm_values == cold_values
    assert stats["pools_created"] == 1 and stats["campaigns"] == n_campaigns
    return {
        "n_campaigns": n_campaigns,
        "n_points": n_points,
        "delay_ms": delay_ms,
        "workers": workers,
        "fresh_pool_s": round(cold_s, 4),
        "warm_pool_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2),
    }


def bench_streaming(n_points: int, delay_ms: float, workers: int) -> dict:
    """Streamed time-to-first-result vs the barrier runner's total wall.

    The campaign is latency-bound, so the comparison isolates scheduling:
    the barrier runner cannot show anything until every point is done,
    the stream yields point 0 after one task latency.
    """
    campaign = _latency_campaign(n_points, delay_ms)
    barrier = run_campaign(campaign, workers=workers, chunk_size=1)

    with CampaignExecutor(workers) as executor:
        executor.warm()
        start = time.perf_counter()
        handle = executor.submit(_latency_campaign(n_points, delay_ms))
        stream = handle.stream_results()
        first = next(stream)
        time_to_first_s = time.perf_counter() - start
        values = [first, *stream]
        streamed_total_s = time.perf_counter() - start
    assert values == barrier.values
    return {
        "n_points": n_points,
        "delay_ms": delay_ms,
        "workers": workers,
        "barrier_total_s": round(barrier.duration_s, 4),
        "time_to_first_s": round(time_to_first_s, 4),
        "streamed_total_s": round(streamed_total_s, 4),
        "first_vs_barrier_ratio": round(
            time_to_first_s / barrier.duration_s, 4
        ),
    }


def _raw_pool_point(payload):
    """Unsupervised baseline worker: plain (task_ref, point) execution."""
    from repro.exec.executor import _call_task

    task_ref, point = payload
    return point.index, _call_task(task_ref, point)


def bench_supervised_overhead(
    n_points: int, delay_ms: float, workers: int
) -> dict:
    """The cost of supervision vs an opaque ``multiprocessing.Pool``.

    Both sides pay pool startup and run the identical latency-bound
    battery; the raw pool has no liveness monitoring, no respawn, and no
    per-point deadline bookkeeping, so the wall-clock difference *is*
    the fault-tolerance overhead.
    """
    import multiprocessing

    campaign = _latency_campaign(n_points, delay_ms)
    points = campaign.points()
    task_ref = campaign.task_reference
    payloads = [(task_ref, point) for point in points]

    start = time.perf_counter()
    with multiprocessing.Pool(workers) as pool:
        raw = dict(pool.imap_unordered(_raw_pool_point, payloads, chunksize=1))
    raw_s = time.perf_counter() - start
    raw_values = [raw[i] for i in range(n_points)]

    start = time.perf_counter()
    with CampaignExecutor(workers) as executor:
        supervised = executor.run(campaign)
    supervised_s = time.perf_counter() - start
    assert supervised.values == raw_values
    return {
        "n_points": n_points,
        "delay_ms": delay_ms,
        "workers": workers,
        "raw_pool_s": round(raw_s, 4),
        "supervised_s": round(supervised_s, 4),
        "overhead_ratio": round(supervised_s / raw_s, 4),
    }


def bench_obs_overhead(
    n_qudits: int = 6, gate_loops: int = 40, repeats: int = 5
) -> dict:
    """The cost of the observability instrumentation, on and off.

    Runs a CPU-bound statevector circuit (every gate apply crosses an
    instrumented call site) three ways — telemetry disabled, enabled,
    and disabled again — taking the min over ``repeats`` to suppress
    scheduler noise.  ``disabled_ratio`` (after/before, both disabled)
    is the committed <= 1.05 guard: with collection off the entire cost
    per call site is one module-attribute check, and an enabled run
    must leave no lingering slowdown behind.  The enabled ratio is
    informational (it pays real dict/span work), and the recorded
    sample counts prove the enabled run actually collected telemetry.

    While the registry is hot, an :class:`repro.obs.serve.ObsServer`
    is started on an ephemeral port and ``/metrics`` is scraped once
    per repeat — the ``serve_scrape`` sub-record pins the live HTTP
    path (status 200, non-empty typed exposition) and its latency.
    """
    import urllib.request

    from repro import obs
    from repro.obs.serve import ObsServer

    circuit = _clean_circuit(n_qudits)
    backend = get_backend("statevector")

    def once() -> float:
        start = time.perf_counter()
        for _ in range(gate_loops):
            backend.run(circuit)
        return time.perf_counter() - start

    obs.disable()
    obs.reset()
    disabled_before_s = min(once() for _ in range(repeats))

    obs.enable()
    enabled_s = min(once() for _ in range(repeats))
    snap = obs.metrics.snapshot()
    gate_applies = sum(
        snap.get("gate_applies", {}).get("values", {}).values()
    )
    n_spans = len(obs.tracing.events())

    server = ObsServer(port=0).start()
    try:
        scrape_times = []
        for _ in range(repeats):
            start = time.perf_counter()
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=10
            ) as response:
                scrape_status = response.status
                body = response.read().decode("utf-8")
            scrape_times.append(time.perf_counter() - start)
    finally:
        server.stop()
    families = sum(
        1 for line in body.splitlines() if line.startswith("# TYPE ")
    )
    assert scrape_status == 200 and families > 0  # live scrape worked
    serve_scrape = {
        "scrapes": repeats,
        "status": scrape_status,
        "min_scrape_s": round(min(scrape_times), 6),
        "families": families,
        "body_bytes": len(body.encode("utf-8")),
    }

    obs.disable()
    obs.reset()
    disabled_after_s = min(once() for _ in range(repeats))

    assert gate_applies > 0 and n_spans > 0  # the enabled run collected
    return {
        "n_qudits": n_qudits,
        "gate_loops": gate_loops,
        "repeats": repeats,
        "disabled_before_s": round(disabled_before_s, 4),
        "enabled_s": round(enabled_s, 4),
        "disabled_after_s": round(disabled_after_s, 4),
        "disabled_ratio": round(disabled_after_s / disabled_before_s, 4),
        "enabled_ratio": round(enabled_s / disabled_before_s, 4),
        "gate_applies_observed": int(gate_applies),
        "spans_recorded": n_spans,
        "serve_scrape": serve_scrape,
    }


def bench_sqed_campaign(
    n_points: int, workers: int, cache_dir: Path, n_sites: int, n_steps: int
) -> dict:
    """The acceptance campaign: damage sweep, parallel run, cached replay."""
    epsilons = [float(e) for e in np.geomspace(1e-4, 0.5, n_points)]
    base = dict(
        n_sites=n_sites,
        spin=1,
        t_total=1.0,
        n_steps=n_steps,
        method="auto",
    )

    def campaign() -> Campaign:
        return Campaign(
            task="repro.sqed.noise_study:damage_task",
            sweep=zip_sweep(epsilon=epsilons),
            name="sqed-noise-campaign",
            base_params=base,
            seed=0,
        )

    serial = run_campaign(campaign())
    cache = ResultCache(cache_dir)
    parallel = run_campaign(campaign(), workers=workers, cache=cache)
    assert parallel.values == serial.values
    replay = run_campaign(campaign(), workers=workers, cache=cache)
    assert replay.values == serial.values
    return {
        "n_points": n_points,
        "n_sites": n_sites,
        "n_steps": n_steps,
        "workers": workers,
        "serial_s": round(serial.duration_s, 4),
        "parallel_s": round(parallel.duration_s, 4),
        "parallel_speedup": round(serial.duration_s / parallel.duration_s, 2),
        "replay_s": round(replay.duration_s, 4),
        "replay_speedup": round(serial.duration_s / replay.duration_s, 2),
        "replay_cache_hits": replay.cache_hits,
        "replay_hit_fraction": round(replay.hit_fraction, 4),
        "monotone_damage": bool(
            np.all(np.diff(np.asarray(serial.values)) > -1e-9)
        ),
    }


def bench_autopilot(
    n_points: int,
    n_sites: int,
    n_steps: int,
    target_error: float,
    hand_grid: tuple = ((4, 2), (8, 4), (16, 8)),
) -> dict:
    """Autopilot plan quality vs hand-tuned configurations on the sQED ladder.

    Runs the same damage sweep three ways: an exact dense reference
    (``method="density"``, which doubles as the conservative hand-tuned
    configuration), a grid of hand-tuned LPDO cap configurations (the
    pre-autopilot workflow: pick an engine, guess
    ``max_bond``/``max_kraus``, hope the truncation error is
    acceptable), and the autopilot contract (``method="auto"``,
    ``target_error=...``, zero hand-set caps).

    The committed guard: the autopilot's wall time is <= 1.2x the best
    *hand-tuned configuration that actually meets the target* — i.e. the
    contract API costs at most 20% over an oracle that already knows the
    right engine and caps, and unlike the oracle it never silently
    under-delivers.
    """
    epsilons = [float(e) for e in np.geomspace(1e-4, 0.5, n_points)]
    base = dict(n_sites=n_sites, spin=1, t_total=1.0, n_steps=n_steps)

    def campaign(name: str, **params) -> Campaign:
        return Campaign(
            task="repro.sqed.noise_study:damage_task",
            sweep=zip_sweep(epsilon=epsilons),
            name=name,
            base_params={**base, **params},
            seed=0,
            target_error=params.get("target_error"),
        )

    reference = run_campaign(campaign("autopilot-ref", method="density"), cache=None)
    ref = np.asarray(reference.values, dtype=float)

    # The dense run is itself the conservative hand-tuned configuration
    # (exact by construction), so it anchors the comparison grid.
    hand = [{
        "method": "density",
        "wall_s": round(reference.duration_s, 4),
        "max_abs_error": 0.0,
        "meets_target": True,
    }]
    for chi, kappa in hand_grid:
        result = run_campaign(
            campaign(f"hand-chi{chi}-kappa{kappa}", method="lpdo",
                     max_bond=int(chi), max_kraus=int(kappa)),
            cache=None,
        )
        err = float(np.max(np.abs(np.asarray(result.values, dtype=float) - ref)))
        hand.append({
            "method": "lpdo",
            "max_bond": int(chi),
            "max_kraus": int(kappa),
            "wall_s": round(result.duration_s, 4),
            "max_abs_error": err,
            "meets_target": bool(err <= target_error),
        })

    auto = run_campaign(
        campaign("autopilot-auto", method="auto", target_error=target_error),
        cache=None,
    )
    auto_err = float(np.max(np.abs(np.asarray(auto.values, dtype=float) - ref)))

    meeting = [h for h in hand if h["meets_target"]] or hand
    best_hand_s = min(h["wall_s"] for h in meeting)
    return {
        "n_points": n_points,
        "n_sites": n_sites,
        "n_steps": n_steps,
        "target_error": target_error,
        "hand_tuned": hand,
        "best_hand_s": best_hand_s,
        "autopilot_s": round(auto.duration_s, 4),
        "autopilot_max_abs_error": auto_err,
        "meets_target": bool(auto_err <= target_error),
        "vs_best_hand_ratio": round(
            auto.duration_s / best_hand_s if best_hand_s > 0 else 1.0, 4
        ),
    }


def run_benchmarks(
    sqed_points: int = 64,
    sqed_sites: int = 3,
    sqed_steps: int = 2,
    latency_points: int = 32,
    latency_delay_ms: float = 40.0,
    battery_campaigns: int = 12,
    battery_points: int = 6,
    battery_delay_ms: float = 1.0,
    battery_workers: int = 4,
    streaming_points: int = 32,
    streaming_delay_ms: float = 25.0,
    overhead_points: int = 32,
    overhead_delay_ms: float = 25.0,
    obs_qudits: int = 6,
    obs_gate_loops: int = 40,
    obs_repeats: int = 5,
    autopilot_points: int = 16,
    autopilot_target: float = 1e-6,
    workers: int = 8,
    calibration_scale: int = 2,
    cache_dir: Path | str | None = None,
    out_path: Path | str | None = None,
) -> dict:
    """Run the campaign benchmark suite and optionally emit JSON.

    Args:
        sqed_points: epsilon count of the acceptance campaign (64 for the
            committed record).
        sqed_sites, sqed_steps: damage-task size knobs.
        latency_points, latency_delay_ms: latency-bound section size.
        battery_campaigns, battery_points, battery_delay_ms,
        battery_workers: pool-reuse battery shape (many short campaigns).
        streaming_points, streaming_delay_ms: streaming section size.
        overhead_points, overhead_delay_ms: supervised-overhead section
            size (same latency-bound shape, two dispatch architectures).
        obs_qudits, obs_gate_loops, obs_repeats: observability-overhead
            section size (CPU-bound gate-apply workload, min-of-k).
        autopilot_points, autopilot_target: autopilot-vs-hand-tuned
            section size (same damage task as the acceptance campaign).
        workers: pool width for the parallel sections.
        calibration_scale: probe-size multiplier for the calibration.
        cache_dir: where the replay cache lives (a temp dir if omitted).
        out_path: where to write the JSON report (``None`` = don't write).

    Returns:
        The report dictionary (also written to ``out_path`` if given).
    """
    import tempfile

    calibration = calibrate(scale=calibration_scale)
    selection = auto_selection_table(calibration)
    latency = bench_latency_campaign(latency_points, latency_delay_ms, workers)
    pool_reuse = bench_pool_reuse(
        battery_campaigns, battery_points, battery_delay_ms, battery_workers
    )
    streaming = bench_streaming(streaming_points, streaming_delay_ms, workers)
    overhead = bench_supervised_overhead(
        overhead_points, overhead_delay_ms, workers
    )
    obs_overhead = bench_obs_overhead(obs_qudits, obs_gate_loops, obs_repeats)
    autopilot = bench_autopilot(
        autopilot_points, sqed_sites, sqed_steps, autopilot_target
    )
    if cache_dir is None:
        with tempfile.TemporaryDirectory() as tmp:
            sqed = bench_sqed_campaign(
                sqed_points, workers, Path(tmp), sqed_sites, sqed_steps
            )
    else:
        sqed = bench_sqed_campaign(
            sqed_points, workers, Path(cache_dir), sqed_sites, sqed_steps
        )
    report = {
        "meta": {
            "benchmark": "bench_exec",
            "numpy": np.__version__,
            "python": platform.python_version(),
            "cpu_count": os.cpu_count() or 1,
        },
        "calibration": calibration,
        "auto_selection": selection,
        "latency_campaign": latency,
        "pool_reuse": pool_reuse,
        "streaming": streaming,
        "supervised_overhead": overhead,
        "obs_overhead": obs_overhead,
        "autopilot": autopilot,
        "sqed_campaign": sqed,
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def main() -> None:
    report = run_benchmarks(out_path=BENCH_JSON)
    print(json.dumps(report, indent=2))
    print(f"\nwrote {BENCH_JSON}")


if __name__ == "__main__":
    main()
