"""E-C7 — the forecast device's '>100 qubits' capacity claim (paper §I).

"a multi-cell array composed by ~10 linearly connected cavities, each
contributing ~4 modes that can be occupied by d ~ 10 photons ... would
exceed 100 qubits in Hilbert space dimension."
"""

from _report import record
from repro.hardware import forecast_device, roadmap_summary


def bench_roadmap_capacity(benchmark):
    summary = benchmark.pedantic(
        lambda: roadmap_summary(forecast_device()), rounds=1, iterations=1
    )
    record(
        "roadmap",
        [
            "E-C7 — forecast device capacity:",
            f"  cavities x modes x d      : {summary.n_cavities} x "
            f"{summary.n_modes // summary.n_cavities} x {summary.dim_per_mode}",
            f"  Hilbert dimension         : 10^{summary.hilbert_dimension_log10:.1f}",
            f"  qubit equivalents         : {summary.qubit_equivalent:.1f}",
            f"  exceeds 100 qubits        : {summary.exceeds_100_qubits}",
        ],
    )
    assert summary.exceeds_100_qubits
    assert 130 < summary.qubit_equivalent < 135
