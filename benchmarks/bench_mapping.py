"""E-MAP — noise-aware vs trivial mapping ablation (the novelty band).

Measures the fidelity gained by the noise-aware qudit->mode mapper over
the trivial in-order layout on devices with realistic per-mode coherence
spread, across workload shapes.
"""

import numpy as np

from _report import record
from repro.compile import noise_aware_map, trivial_map
from repro.core import QuditCircuit
from repro.hardware import linear_cavity_array


def _chain_workload(n, d=3, reps=2):
    qc = QuditCircuit([d] * n, name="chain")
    for _ in range(reps):
        for w in range(n):
            qc.fourier(w)
        for w in range(n - 1):
            qc.csum(w, w + 1)
    return qc


def _star_workload(n, d=3, reps=2):
    qc = QuditCircuit([d] * n, name="star")
    for _ in range(reps):
        for w in range(1, n):
            qc.csum(0, w)
    return qc


def _ablation():
    rows = []
    for name, workload in (
        ("chain-5", _chain_workload(5)),
        ("star-5", _star_workload(5)),
        ("chain-8", _chain_workload(8)),
    ):
        gains = []
        for seed in range(4):
            device = linear_cavity_array(
                4, 2, 3, coherence_spread=0.6, seed=seed
            )
            smart = noise_aware_map(workload, device, seed=seed)
            naive = trivial_map(workload, device)
            gains.append(smart.fidelity / max(naive.fidelity, 1e-12))
        rows.append((name, float(np.mean(gains)), float(np.max(gains))))
    return rows


def bench_noise_aware_mapping(benchmark):
    rows = benchmark.pedantic(_ablation, rounds=1, iterations=1)
    lines = [
        "E-MAP — noise-aware mapping vs trivial layout (spread = 0.6, 4 devices):",
        "  workload   mean fidelity gain   best gain",
    ]
    for name, mean_gain, max_gain in rows:
        lines.append(f"  {name:<10} {mean_gain:<20.3f} {max_gain:.3f}")
    lines.append("  -> gains grow with workload asymmetry and device spread.")
    record("mapping", lines)
    for name, mean_gain, max_gain in rows:
        assert mean_gain >= 1.0 - 1e-9
