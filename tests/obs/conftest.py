"""Shared fixtures for the observability suite.

Metrics and tracing state are process-global by design (that is what
makes the disabled path one attribute check), so every test here runs
between hard resets — no sample, span, or enablement flag may leak from
one test into the next.
"""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
