"""Live telemetry endpoints: read-only, correct, and safe mid-flight.

The server's contract: ``/metrics`` is valid Prometheus text from the
live registry, ``/status`` summarises registered campaign handles
without the heavyweight fields, ``/spans`` is a bounded tail of the
span buffer — and none of it perturbs a running campaign (bit-equality
is asserted with the server scraping a 4-worker run mid-flight).
"""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.exec import Campaign, CampaignExecutor, zip_sweep
from repro.obs import metrics, tracing
from repro.obs.serve import ObsServer


def seeded_task(x, seed=0):
    import numpy as np

    return float(x + np.random.default_rng(seed).random())


def _campaign(n=4, **kwargs):
    defaults = dict(task=seeded_task, sweep=zip_sweep(x=list(range(n))), seed=3)
    defaults.update(kwargs)
    return Campaign(**defaults)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


@pytest.fixture
def server():
    srv = ObsServer(port=0).start()
    yield srv
    srv.stop()


class TestEndpoints:
    def test_ephemeral_port_and_url(self, server):
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_metrics_endpoint_serves_exposition(self, server):
        obs.enable()
        metrics.inc("exec_submits")
        status, body = _get(server.url + "/metrics")
        assert status == 200
        assert "# TYPE exec_submits counter" in body
        assert 'exec_submits' in body

    def test_metrics_endpoint_escapes_labels(self, server):
        obs.enable()
        metrics.inc("exec_points", source='we"ird\nvalue\\x')
        _, body = _get(server.url + "/metrics")
        assert r'source="we\"ird\nvalue\\x"' in body
        assert "\nvalue" not in body.split("exec_points", 1)[1].split("\n", 1)[0]

    def test_status_empty_without_campaigns(self, server):
        status, body = _get(server.url + "/status")
        assert status == 200
        assert json.loads(body) == {"campaigns": []}

    def test_spans_tail_and_limit(self, server):
        obs.enable()
        for i in range(10):
            with tracing.span("step", index=i):
                pass
        _, body = _get(server.url + "/spans?limit=3")
        payload = json.loads(body)
        assert payload["total"] == 10
        assert [s["args"]["index"] for s in payload["spans"]] == [7, 8, 9]

    def test_spans_bad_limit_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/spans?limit=nope")
        assert excinfo.value.code == 400

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_requests_counted_by_path(self, server):
        obs.enable()
        _get(server.url + "/metrics")
        _get(server.url + "/metrics")
        snap = metrics.snapshot()
        assert snap["http_requests"]["values"]["path=/metrics"] >= 2.0


class TestExecutorIntegration:
    def test_http_port_starts_server_and_close_stops_it(self, tmp_path):
        executor = CampaignExecutor(1, http_port=0, ledger=False)
        try:
            assert executor.http_port is not None
            assert metrics.enabled  # serving implies collection
            handle = executor.submit(_campaign(n=3))
            result = handle.result()
            # the handle is still alive, so /status must describe it
            status, body = _get(executor.http_url + "/status")
            assert status == 200
            summary = json.loads(body)["campaigns"][0]
            assert summary["resolved"] == 3
            assert summary["pending"] == 0
            assert "timeline" not in summary and "metrics" not in summary
        finally:
            url = executor.http_url
            executor.close()
        with pytest.raises(urllib.error.URLError):
            _get(url + "/status")
        assert len(result.values) == 3

    def test_env_var_opt_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_HTTP", "0")
        with CampaignExecutor(1, ledger=False) as executor:
            assert executor.http_port is not None

    def test_env_var_rejects_garbage(self, monkeypatch):
        from repro.core.exceptions import SimulationError

        monkeypatch.setenv("REPRO_OBS_HTTP", "eighty")
        with pytest.raises(SimulationError, match="REPRO_OBS_HTTP"):
            CampaignExecutor(1)

    def test_midflight_scrape_four_workers_bit_equality(self, tmp_path):
        baseline = None
        with CampaignExecutor(1, ledger=False) as executor:
            baseline = executor.run(_campaign(n=8)).values
        obs.reset()
        with CampaignExecutor(4, http_port=0, ledger=False) as executor:
            handle = executor.submit(_campaign(n=8))
            scraped = []
            for event in handle.as_completed():
                status, body = _get(executor.http_url + "/metrics")
                assert status == 200
                scraped.append(body)
            values = [
                value
                for _, value in sorted(
                    ((e.point.index, e.value) for e in handle.as_completed())
                )
            ]
        assert values == baseline
        # the final scrape saw the live registry mid-run: exposition must
        # be non-empty, typed, and parseable line protocol
        assert any("exec_point_s_bucket" in body for body in scraped)

    def test_status_drops_dead_handles(self):
        import gc

        with CampaignExecutor(1, http_port=0, ledger=False) as executor:
            executor.run(_campaign(n=2))  # handle discarded immediately
            gc.collect()
            _, body = _get(executor.http_url + "/status")
            assert json.loads(body) == {"campaigns": []}
