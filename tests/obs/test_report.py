"""Flight reports: faithful renderings of ledger records, CLI included.

The renderer is pure (record in, text out), so most tests drive it with
hand-built records; the CLI tests run ``main()`` against a real ledger
on disk, including the end-to-end path from an actual executor run.
"""

import json

import numpy as np
import pytest

from repro.exec import Campaign, CampaignExecutor, ResultCache, zip_sweep
from repro.obs import profiling
from repro.obs.ledger import RunLedger
from repro.obs.report import (
    main,
    render_aggregate,
    render_html,
    render_markdown,
)


def seeded_task(x, seed=0):
    return float(x + np.random.default_rng(seed).random())


def _record(**overrides):
    record = {
        "fingerprint": "fp01",
        "name": "demo",
        "task": "pkg.mod:task",
        "version": "1",
        "points": 3,
        "workers": 2,
        "policy": {"mode": "retry", "max_attempts": 3},
        "env": {"cpu_count": 8, "platform": "linux", "python": "3.12.0"},
        "recorded_at": 1700000000.0,
        "duration_s": 1.25,
        "cache_hits": 1,
        "checkpoint_hits": 0,
        "computed": 2,
        "errors": [],
        "timeline": [
            {"index": 0, "source": "cache"},
            {
                "index": 1,
                "source": "computed",
                "ok": True,
                "exec_s": 0.5,
                "queue_wait_s": 0.1,
            },
            {
                "index": 2,
                "source": "computed",
                "ok": False,
                "exec_s": 1.0,
                "queue_wait_s": 0.0,
            },
        ],
        "metrics": None,
        "exec_point_quantiles": {"p50": 0.5, "p95": 1.0, "p99": 1.0},
        "profile": None,
    }
    record.update(overrides)
    return record


class TestMarkdown:
    def test_header_and_summary(self):
        text = render_markdown(_record())
        assert "# Flight report · demo" in text
        assert "fingerprint: fp01" in text
        assert "| cache hits | 1 |" in text
        assert "2023" in text or "recorded:" in text

    def test_quantiles_surface(self):
        text = render_markdown(_record())
        assert "| p50 | 0.5000s |" in text
        assert "| p95 | 1.0000s |" in text

    def test_gantt_marks_hits_and_bars(self):
        text = render_markdown(_record())
        assert "(cache hit)" in text
        assert "█" in text
        assert "░" in text  # point 1 waited in queue
        assert "ERROR" in text  # point 2 failed

    def test_errors_table(self):
        text = render_markdown(
            _record(
                errors=[
                    {
                        "index": 2,
                        "kind": "exception",
                        "error_type": "ValueError",
                        "message": "boom " * 40,
                    }
                ]
            )
        )
        assert "## Errors" in text
        assert "ValueError" in text
        assert "..." in text  # long message truncated

    def test_hot_path_table_from_profile(self):
        profiling.enable()
        with profiling.profiled():
            sorted(range(1000))
        rows = profiling.hot_table(5)
        profiling.disable()
        profiling.reset()
        text = render_markdown(_record(profile=rows))
        assert "## Hot path (merged worker profiles)" in text
        assert "cumtime" in text

    def test_quantiles_fall_back_to_metrics_snapshot(self):
        snapshot = {
            "exec_point_s": {
                "type": "histogram",
                "help": "t",
                "buckets": [0.1, 1.0],
                "values": {
                    "outcome=ok": {"buckets": [2, 1, 0], "sum": 0.7, "count": 3}
                },
            }
        }
        text = render_markdown(
            _record(exec_point_quantiles=None, metrics=snapshot, timeline=[])
        )
        assert "## Per-point execution time" in text

    def test_counter_summary_rows_from_snapshot(self):
        snapshot = {
            "exec_retries": {
                "type": "counter",
                "help": "r",
                "values": {"": 4.0},
            }
        }
        text = render_markdown(_record(metrics=snapshot))
        assert "| retries | 4 |" in text


class TestHtml:
    def test_self_contained_document(self):
        text = render_html(_record())
        assert text.startswith("<!DOCTYPE html>")
        assert "<style>" in text and "</html>" in text
        assert "Flight report · demo" in text

    def test_escapes_untrusted_strings(self):
        text = render_html(_record(name="<script>alert(1)</script>"))
        assert "<script>alert" not in text
        assert "&lt;script&gt;" in text


class TestAggregate:
    def test_multi_run_summary(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        ledger.append(_record())
        ledger.append(_record(recorded_at=1700000100.0))
        text = render_aggregate(ledger, ledger.query())
        assert "runs: 2" in text
        assert "## Per-point exec_s across runs" in text
        assert "| samples | 4 |" in text  # two computed points per record


class TestCli:
    def test_renders_newest_matching_record(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "l.jsonl")
        ledger.append(_record(name="first"))
        ledger.append(_record(name="second"))
        assert main([str(ledger.path)]) == 0
        out = capsys.readouterr().out
        assert "# Flight report · second" in out

    def test_filters_and_out_file(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        ledger.append(_record(name="keep"))
        ledger.append(_record(name="skip"))
        out = tmp_path / "r" / "report.html"
        code = main(
            [str(ledger.path), "--name", "keep", "--format", "html", "--out", str(out)]
        )
        assert code == 0
        assert out.read_text().startswith("<!DOCTYPE html>")

    def test_aggregate_flag(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "l.jsonl")
        ledger.append(_record())
        assert main([str(ledger.path), "--aggregate"]) == 0
        assert "runs: 1" in capsys.readouterr().out

    def test_missing_ledger_errors(self, tmp_path, capsys):
        assert main([str(tmp_path / "none.jsonl")]) == 2
        assert "no ledger" in capsys.readouterr().err

    def test_no_matching_records_errors(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "l.jsonl")
        ledger.append(_record())
        assert main([str(ledger.path), "--fingerprint", "zzz"]) == 2
        assert "no run records" in capsys.readouterr().err

    def test_index_out_of_range_errors(self, tmp_path, capsys):
        ledger = RunLedger(tmp_path / "l.jsonl")
        ledger.append(_record())
        assert main([str(ledger.path), "--index", "5"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_end_to_end_from_executor_run(self, tmp_path, capsys):
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign(
            task=seeded_task, sweep=zip_sweep(x=[0, 1, 2]), seed=5, name="e2e"
        )
        with CampaignExecutor(1, cache=cache) as executor:
            executor.run(campaign)
        assert main([str(cache.ledger_path)]) == 0
        out = capsys.readouterr().out
        assert "# Flight report · e2e" in out
        assert "| points | 3 |" in out
