"""Exposition-format conformance: the text we serve must parse back.

A deliberately minimal Prometheus line-protocol parser lives in this
test module — just enough grammar (``# HELP`` / ``# TYPE`` comments,
``name{label="value"} number`` samples, escape sequences in label
values) to round-trip :func:`repro.obs.metrics.exposition` output and
assert the invariants a real scraper relies on: every family announces
HELP and TYPE before its samples, histogram ``le`` buckets are
cumulative and monotone with a ``+Inf`` terminal, label values with
backslashes, quotes, and newlines survive the escape/unescape cycle.
"""

import math
import re

import pytest

from repro import obs
from repro.obs import metrics

_SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value):
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                raise AssertionError(f"bad escape \\{nxt} in label value")
            i += 2
        else:
            assert ch not in ('"', "\n"), f"unescaped {ch!r} in label value"
            out.append(ch)
            i += 1
    return "".join(out)


def parse_exposition(text):
    """Parse exposition text into ``{family: {...}}``, asserting grammar.

    Each family carries ``help``, ``type``, and ``samples`` — a list of
    ``(metric_name, labels_dict, value)``.  Raises AssertionError on any
    line that is not a well-formed comment or sample, on samples whose
    family never announced HELP/TYPE, or on HELP/TYPE pairs that arrive
    out of order.
    """
    families = {}
    pending_help = None  # family announced by HELP, awaiting its TYPE
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert name not in families, f"duplicate HELP for {name}"
            assert pending_help is None, f"HELP {pending_help} never got a TYPE"
            families[name] = {"help": help_text, "type": None, "samples": []}
            pending_help = name
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if pending_help is not None:
                # HELP/TYPE pairing: a HELP must be immediately followed
                # by its own TYPE line.
                assert name == pending_help, f"TYPE {name} after HELP {pending_help}"
                pending_help = None
            families.setdefault(name, {"help": None, "type": None, "samples": []})
            assert families[name]["type"] is None, f"duplicate TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram"), kind
            families[name]["type"] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        match = _SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        metric_name, _, label_blob, raw_value = match.groups()
        family = metric_name
        for suffix in ("_bucket", "_sum", "_count"):
            if metric_name.endswith(suffix) and metric_name[: -len(suffix)] in families:
                family = metric_name[: -len(suffix)]
        assert family in families, f"sample for unannounced family: {line!r}"
        assert families[family]["type"] is not None
        labels = {}
        if label_blob:
            consumed = _LABEL_RE.sub("", label_blob).strip(", ")
            assert not consumed, f"unparseable labels in {line!r}"
            for key, value in _LABEL_RE.findall(label_blob):
                labels[key] = _unescape(value)
        families[family]["samples"].append((metric_name, labels, float(raw_value)))
    return families


def _non_le(labels):
    return {k: v for k, v in labels.items() if k != "le"}


def _assert_histogram_invariants(family_name, family):
    by_labelset = {}
    for metric_name, labels, value in family["samples"]:
        if metric_name == f"{family_name}_bucket":
            key = tuple(sorted(_non_le(labels).items()))
            by_labelset.setdefault(key, []).append((labels["le"], value))
    assert by_labelset, f"histogram {family_name} exposed no buckets"
    for key, buckets in by_labelset.items():
        bounds = [float(le) for le, _ in buckets]
        counts = [count for _, count in buckets]
        assert bounds == sorted(bounds), f"{family_name}{key}: le out of order"
        assert math.isinf(bounds[-1]), f"{family_name}{key}: missing +Inf bucket"
        assert counts == sorted(counts), (
            f"{family_name}{key}: bucket counts must be cumulative/monotone"
        )
        count_samples = [
            value
            for metric_name, labels, value in family["samples"]
            if metric_name == f"{family_name}_count"
            and tuple(sorted(labels.items())) == key
        ]
        assert count_samples == [counts[-1]], (
            f"{family_name}{key}: +Inf bucket must equal _count"
        )


class TestRoundTrip:
    def test_every_registered_family_round_trips(self):
        obs.enable()
        metrics.inc("exec_submits")
        metrics.inc("exec_points", source="cache")
        metrics.inc("exec_points", source="computed")
        metrics.set_gauge("pool_width", 4.0)
        for value in (0.001, 0.5, 2.0, 999.0):
            metrics.observe("exec_point_s", value, outcome="ok")
        metrics.observe("exec_point_s", 0.25, outcome="error")
        families = parse_exposition(metrics.exposition())
        assert set(families) >= {
            "exec_submits",
            "exec_points",
            "pool_width",
            "exec_point_s",
        }
        for name, family in families.items():
            assert family["type"] is not None, f"{name} missing TYPE"
            assert family["samples"], f"{name} announced but sampled nothing"
            if family["type"] == "histogram":
                _assert_histogram_invariants(name, family)

    def test_label_escaping_round_trips(self):
        obs.enable()
        nasty = 'back\\slash "quoted"\nnewline'
        metrics.inc("exec_points", source=nasty)
        families = parse_exposition(metrics.exposition())
        (_, labels, value) = families["exec_points"]["samples"][0]
        assert labels["source"] == nasty
        assert value == 1.0

    def test_counter_sample_matches_observed_total(self):
        obs.enable()
        metrics.inc("exec_submits")
        metrics.inc("exec_submits", 2.0)
        families = parse_exposition(metrics.exposition())
        assert families["exec_submits"]["samples"] == [("exec_submits", {}, 3.0)]

    def test_histogram_cumulative_counts_exact(self):
        obs.enable()
        hist = metrics.REGISTRY.histogram(
            "roundtrip_s", "test histogram", buckets=(1.0, 2.0)
        )
        for value in (0.5, 1.5, 5.0):
            hist.observe(value)
        families = parse_exposition(metrics.exposition())
        buckets = {
            labels["le"]: value
            for name, labels, value in families["roundtrip_s"]["samples"]
            if name == "roundtrip_s_bucket"
        }
        assert buckets == {"1": 1.0, "2": 2.0, "+Inf": 3.0}

    def test_help_newlines_escaped(self):
        obs.enable()
        metrics.REGISTRY.counter("weird_help", "line one\nline two").inc()
        text = metrics.exposition()
        for line in text.splitlines():
            if line.startswith("# HELP weird_help"):
                assert "line one\\nline two" in line
                break
        else:
            pytest.fail("HELP line missing")
        parse_exposition(text)
