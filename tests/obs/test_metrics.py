"""Unit tests for the metrics registry: bucketing, merge, exposition."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    _escape_label_value,
    _label_key,
    quantile_from_sample,
)


class TestLabelKey:
    def test_empty_labels_key_is_empty(self):
        assert _label_key({}) == ""

    def test_key_is_order_invariant(self):
        assert _label_key({"b": 2, "a": 1}) == _label_key({"a": 1, "b": 2})
        assert _label_key({"a": 1, "b": 2}) == "a=1,b=2"


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        c = Counter("hits")
        c.inc()
        c.inc(2.0)
        c.inc(backend="mps")
        assert c.value() == 3.0
        assert c.value(backend="mps") == 1.0

    def test_negative_increment_raises(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("hits").inc(-1.0)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("chi")
        g.set(4.0, backend="mps")
        g.set(7.0, backend="mps")
        assert g.value(backend="mps") == 7.0
        assert g.value(backend="lpdo") == 0.0


class TestHistogramBucketing:
    def test_observation_lands_in_first_bound_at_least_value(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        h.observe(0.05)
        assert h.sample()["buckets"] == [0, 1, 0, 0]

    def test_boundary_value_is_inclusive(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        h.observe(0.1)
        assert h.sample()["buckets"] == [0, 1, 0, 0]

    def test_overflow_goes_to_final_inf_slot(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        h.observe(50.0)
        assert h.sample()["buckets"] == [0, 0, 0, 1]

    def test_sum_and_count_track_observations(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.25)
        h.observe(4.0)
        sample = h.sample()
        assert sample["count"] == 2
        assert sample["sum"] == pytest.approx(4.25)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("lat", buckets=(1.0, 0.5))

    def test_missing_label_set_samples_none(self):
        assert Histogram("lat").sample(backend="mps") is None

    @given(st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
    def test_every_observation_lands_in_exactly_one_slot(self, value):
        h = Histogram("lat", buckets=DEFAULT_BUCKETS)
        h.observe(value)
        sample = h.sample()
        assert sum(sample["buckets"]) == 1
        slot = sample["buckets"].index(1)
        if slot < len(DEFAULT_BUCKETS):
            assert value <= DEFAULT_BUCKETS[slot]
        if slot > 0:
            assert value > DEFAULT_BUCKETS[slot - 1]


class TestHistogramQuantile:
    def test_interpolates_inside_bucket(self):
        h = Histogram("lat", buckets=(1.0,))
        for _ in range(4):
            h.observe(0.5)
        assert h.quantile(0.5) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(1.0)

    def test_per_label_set(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5, op="svd")
        assert h.quantile(0.5, op="svd") == pytest.approx(0.5)
        assert h.quantile(0.5, op="qr") is None

    def test_overflow_reports_largest_finite_bound(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(99.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_empty_histogram_quantile_is_none(self):
        assert Histogram("lat").quantile(0.5) is None

    def test_out_of_range_q_raises(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_quantile_from_snapshot_sample(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        for _ in range(4):
            h.observe(0.5)
        snap = reg.snapshot()["lat"]
        value = quantile_from_sample(
            snap["values"][""], tuple(snap["buckets"]), 0.5
        )
        assert value == pytest.approx(0.5)

    def test_combined_sample_sums_label_sets(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5, op="svd")
        h.observe(0.25, op="qr")
        combined = h.combined_sample()
        assert combined["count"] == 2
        assert combined["sum"] == pytest.approx(0.75)
        assert Histogram("empty").combined_sample() is None


class TestLabelEscaping:
    def test_escape_handles_backslash_first(self):
        assert _escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_exposition_keeps_nasty_value_on_one_line(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(backend='m"p\ns\\')
        text = reg.exposition()
        assert r'hits{backend="m\"p\ns\\"} 1' in text
        # the newline inside the value must not split the sample line
        assert len([ln for ln in text.splitlines() if ln.startswith("hits{")]) == 1


class TestRegistry:
    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("hits") is reg.counter("hits")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("hits")

    def test_snapshot_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("hits", "cache hits").inc(3, backend="mps")
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["hits"]["type"] == "counter"
        assert snap["hits"]["values"]["backend=mps"] == 3.0
        assert snap["lat"]["buckets"] == [0.1, 1.0]
        assert snap["lat"]["values"][""]["buckets"] == [0, 1, 0]

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg in (a, b):
            reg.counter("hits").inc(2)
            reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        a.merge(b.snapshot())
        assert a.get("hits").value() == 4.0
        assert a.get("lat").sample() == {"buckets": [2, 0], "sum": 1.0, "count": 2}

    def test_merge_gauge_takes_incoming_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("chi").set(4.0)
        b.gauge("chi").set(9.0)
        a.merge(b.snapshot())
        assert a.get("chi").value() == 9.0

    def test_merge_creates_unknown_metrics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("worker_only").inc(5)
        a.merge(b.snapshot())
        assert a.get("worker_only").value() == 5.0

    def test_merge_rejects_bucket_shape_mismatch(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = b.snapshot()  # craft a mismatched incoming sample
        snap["lat"] = {
            "type": "histogram",
            "help": "",
            "buckets": [1.0],
            "values": {"": {"buckets": [1, 0, 0], "sum": 0.5, "count": 1}},
        }
        with pytest.raises(ValueError, match="bucket shapes differ"):
            a.merge(snap)

    def test_drain_clears_samples_but_keeps_registrations(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        delta = reg.drain()
        assert delta["hits"]["values"][""] == 3.0
        assert "hits" in reg
        assert reg.snapshot()["hits"]["values"] == {}

    def test_merge_roundtrip_doubles(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3, backend="mps")
        reg.merge(reg.snapshot())
        assert reg.get("hits").value(backend="mps") == 6.0


class TestExposition:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("hits", "cache hits").inc(3, backend="mps")
        reg.gauge("chi").set(7.0)
        text = reg.exposition()
        assert "# HELP hits cache hits" in text
        assert "# TYPE hits counter" in text
        assert 'hits{backend="mps"} 3' in text
        assert "# TYPE chi gauge\nchi 7" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05, op="svd")
        h.observe(0.5, op="svd")
        h.observe(9.0, op="svd")
        text = reg.exposition()
        assert 'lat_bucket{op="svd",le="0.1"} 1' in text
        assert 'lat_bucket{op="svd",le="1"} 2' in text
        assert 'lat_bucket{op="svd",le="+Inf"} 3' in text
        assert 'lat_sum{op="svd"} 9.55' in text
        assert 'lat_count{op="svd"} 3' in text

    def test_empty_registry_exposes_empty_string(self):
        assert MetricsRegistry().exposition() == ""


class TestModuleHelpers:
    def test_disabled_helpers_record_nothing(self):
        metrics.inc("hits", backend="mps")
        metrics.set_gauge("chi", 4.0)
        metrics.observe("lat", 0.5)
        assert metrics.snapshot() == {}

    def test_enabled_helpers_hit_global_registry(self):
        metrics.enable()
        metrics.inc("hits", backend="mps")
        metrics.set_gauge("chi", 4.0)
        metrics.observe("lat", 0.5)
        snap = metrics.snapshot()
        assert snap["hits"]["values"]["backend=mps"] == 1.0
        assert snap["chi"]["values"][""] == 4.0
        assert snap["lat"]["values"][""]["count"] == 1
        assert "lat_bucket" in metrics.exposition()
