"""Unit tests for span tracing: nesting, persistence, Chrome export."""

import json
import os
import threading

import pytest

from repro.obs import tracing


class TestSpan:
    def test_disabled_span_records_nothing(self):
        with tracing.span("gate_apply", backend="mps") as ev:
            ev["args"]["chi"] = 4  # call sites may write unguarded
        assert tracing.events() == []

    def test_enabled_span_records_event_fields(self):
        tracing.enable()
        with tracing.span("gate_apply", backend="mps"):
            pass
        (ev,) = tracing.events()
        assert ev["name"] == "gate_apply"
        assert ev["args"] == {"backend": "mps"}
        assert ev["pid"] == os.getpid()
        assert ev["tid"] == threading.get_ident()
        assert ev["parent"] is None
        assert ev["dur"] >= 0.0

    def test_nested_span_parent_is_enclosing_id(self):
        tracing.enable()
        with tracing.span("outer"):
            with tracing.span("inner"):
                pass
        inner, outer = tracing.events()  # inner exits (and records) first
        assert inner["name"] == "inner"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None

    def test_span_records_on_exception(self):
        tracing.enable()
        with pytest.raises(RuntimeError):
            with tracing.span("attempt"):
                raise RuntimeError("task failed")
        assert [ev["name"] for ev in tracing.events()] == ["attempt"]

    def test_observed_args_written_inside_block_are_kept(self):
        tracing.enable()
        with tracing.span("truncated_svd", backend="mps") as ev:
            ev["args"]["chi"] = 7
        assert tracing.events()[0]["args"] == {"backend": "mps", "chi": 7}


class TestBufferOps:
    def test_add_event_respects_enabled(self):
        tracing.add_event("queue_wait", ts=1.0, dur=0.5)
        assert tracing.events() == []
        tracing.enable()
        tracing.add_event("queue_wait", ts=1.0, dur=0.5, args={"index": 3})
        (ev,) = tracing.events()
        assert (ev["ts"], ev["dur"], ev["args"]) == (1.0, 0.5, {"index": 3})

    def test_add_events_merges_even_when_disabled(self):
        incoming = [{"name": "point", "ts": 0.0, "dur": 1.0, "pid": 99, "tid": 1}]
        tracing.add_events(incoming)
        assert tracing.events() == incoming

    def test_drain_returns_and_clears(self):
        tracing.enable()
        with tracing.span("a"):
            pass
        drained = tracing.drain()
        assert [ev["name"] for ev in drained] == ["a"]
        assert tracing.events() == []


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        tracing.enable()
        with tracing.span("outer", backend="mps"):
            with tracing.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracing.write_jsonl(path) == 2
        assert tracing.read_jsonl(path) == tracing.events()

    def test_chrome_export_shape(self):
        tracing.enable()
        with tracing.span("gate_apply", backend="mps"):
            pass
        foreign = dict(tracing.events()[0], pid=12345, ts=0.0)
        tracing.add_events([foreign])
        doc = tracing.to_chrome()
        doc = json.loads(json.dumps(doc))  # must round-trip
        assert doc["displayTimeUnit"] == "ms"
        meta = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert {ev["pid"] for ev in meta} == {os.getpid(), 12345}
        assert all(ev["name"] == "process_name" for ev in meta)
        assert len(spans) == 2
        assert min(ev["ts"] for ev in spans) == 0.0  # rebased to earliest
        assert all(ev["cat"] == "repro" for ev in spans)

    def test_chrome_export_empty_buffer(self):
        assert tracing.to_chrome() == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_write_chrome_counts_trace_events(self, tmp_path):
        tracing.enable()
        with tracing.span("a"):
            pass
        path = tmp_path / "trace.json"
        count = tracing.write_chrome(path)
        assert count == 2  # one process_name meta + one span
        assert len(json.loads(path.read_text())["traceEvents"]) == 2
