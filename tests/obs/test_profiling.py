"""Per-worker sampling profiles: capture, merge, and executor transport.

Profiling is the one obs subsystem that is never implied by
``obs.enable()`` — it has real overhead — so these tests pin the
explicit opt-in, the raw-stats buffer contract (capture even on raise,
drain-ships-and-clears, merge is bookkeeping), the ``pstats`` merge
arithmetic, and the end-to-end path through multi-process workers.
"""

import numpy as np
import pytest

from repro.exec import Campaign, CampaignExecutor, zip_sweep
from repro.obs import profiling


def seeded_task(x, seed=0):
    return float(x + np.random.default_rng(seed).random())


def _busy():
    return sum(range(500))


class TestBuffer:
    def test_disabled_profiled_is_noop(self):
        with profiling.profiled():
            _busy()
        assert profiling.raw_profiles() == []

    def test_enabled_profiled_buffers_raw_stats(self):
        profiling.enable()
        with profiling.profiled():
            _busy()
        raw = profiling.raw_profiles()
        assert len(raw) == 1
        # the raw shape is cProfile's picklable stats mapping
        assert all(
            isinstance(key, tuple) and len(key) == 3 for key in raw[0]
        )
        assert any(func == "_busy" for _, _, func in raw[0])

    def test_profile_captured_even_when_block_raises(self):
        profiling.enable()
        with pytest.raises(RuntimeError):
            with profiling.profiled():
                raise RuntimeError("failing point")
        assert len(profiling.raw_profiles()) == 1

    def test_foreign_profiler_degrades_to_unprofiled(self, monkeypatch):
        """A point under an outer profiling tool runs, just unprofiled."""
        import cProfile

        def already_active(self):
            raise ValueError("Another profiling tool is already active")

        profiling.enable()
        monkeypatch.setattr(cProfile.Profile, "enable", already_active)
        with profiling.profiled():
            _busy()  # must not raise
        assert profiling.raw_profiles() == []

    def test_drain_returns_and_clears(self):
        profiling.enable()
        with profiling.profiled():
            _busy()
        drained = profiling.drain()
        assert len(drained) == 1
        assert profiling.raw_profiles() == []
        assert profiling.drain() == []

    def test_add_raw_works_while_disabled(self):
        profiling.enable()
        with profiling.profiled():
            _busy()
        shipped = profiling.drain()
        profiling.disable()
        profiling.add_raw(shipped)  # merging is bookkeeping, not collection
        assert len(profiling.raw_profiles()) == 1


class TestMerge:
    def test_merged_is_none_when_empty(self):
        assert profiling.merged() is None
        assert profiling.hot_table() == []

    def test_merged_sums_call_counts_across_profiles(self):
        profiling.enable()
        with profiling.profiled():
            _busy()
        with profiling.profiled():
            _busy()
            _busy()
        stats = profiling.merged()
        ncalls = [
            entry[1]
            for (_, _, func), entry in stats.stats.items()
            if func == "_busy"
        ]
        assert ncalls == [3]

    def test_hot_table_rows_are_json_safe_and_sorted(self):
        profiling.enable()
        with profiling.profiled():
            _busy()
        rows = profiling.hot_table()
        assert rows
        for row in rows:
            assert set(row) == {
                "func",
                "file",
                "line",
                "ncalls",
                "tottime_s",
                "cumtime_s",
            }
        cumtimes = [row["cumtime_s"] for row in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)
        assert profiling.hot_table(1) == rows[:1]


class TestExecutorIntegration:
    def test_worker_profiles_ship_to_supervisor(self, tmp_path):
        campaign = Campaign(
            task=seeded_task, sweep=zip_sweep(x=[0, 1, 2, 3]), seed=7
        )
        with CampaignExecutor(2, profile=True, ledger=False) as executor:
            executor.run(campaign)
        rows = profiling.hot_table()
        assert rows  # profiles crossed the result pipe and merged
        assert any(row["func"] == "seeded_task" for row in rows)

    def test_values_bit_identical_with_and_without_profiling(self):
        campaign = Campaign(
            task=seeded_task, sweep=zip_sweep(x=[0, 1, 2]), seed=7
        )
        with CampaignExecutor(2, ledger=False) as executor:
            baseline = executor.run(campaign).values
        with CampaignExecutor(2, profile=True, ledger=False) as executor:
            profiled = executor.run(campaign).values
        assert profiled == baseline

    def test_disabled_run_collects_nothing(self):
        campaign = Campaign(task=seeded_task, sweep=zip_sweep(x=[0, 1]), seed=7)
        with CampaignExecutor(2, ledger=False) as executor:
            executor.run(campaign)
        assert profiling.raw_profiles() == []
