"""Campaign-level observability: the telemetry must be free of side effects.

The contract under test everywhere here: **observability changes what is
recorded, never what is computed**.  A campaign run with metrics and
tracing enabled — serial, pooled, resumed, or under injected worker
kills — produces values bit-identical to the same campaign with
observability off, while the collected counters, per-point timeline, and
multi-process spans stay consistent with the :class:`CampaignResult`.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.exec import (
    Campaign,
    CampaignExecutor,
    FailurePolicy,
    FaultPlan,
    ResultCache,
    run_campaign,
    zip_sweep,
)
from repro.exec.cache import MISS
from repro.exec.faults import corrupt_cache_entry
from repro.obs import metrics, tracing


def stochastic_task(x, scale=1.0, seed=0):
    """Seed-sensitive task (module-level: importable in worker processes)."""
    rng = np.random.default_rng(seed)
    return float(x * scale + rng.normal())


def brittle_task(x, bad=(), seed=0):
    if x in tuple(bad):
        raise ValueError(f"point {x} is permanently broken")
    return float(x + np.random.default_rng(seed).random())


def _campaign(n=8, task=stochastic_task, **kwargs):
    defaults = dict(
        task=task,
        sweep=zip_sweep(x=list(range(n))),
        base_params={"scale": 2.0} if task is stochastic_task else {},
        seed=42,
    )
    defaults.update(kwargs)
    return Campaign(**defaults)


def _counter_value(snap, name, **labels):
    key = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return snap.get(name, {}).get("values", {}).get(key, 0.0)


class TestBitEquality:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n=st.integers(min_value=1, max_value=6),
        workers=st.integers(min_value=1, max_value=2),
    )
    def test_values_identical_obs_on_and_off(self, n, workers):
        obs.disable()
        obs.reset()
        baseline = run_campaign(_campaign(n=n), workers=workers).values
        obs.enable()
        observed = run_campaign(_campaign(n=n), workers=workers).values
        obs.disable()
        obs.reset()
        assert observed == baseline  # bit-identical, not approx

    def test_resumed_run_identical_with_obs_on(self, tmp_path):
        checkpoint = tmp_path / "progress.jsonl"
        baseline = run_campaign(_campaign(n=6), checkpoint=checkpoint).values
        obs.enable()
        with CampaignExecutor(workers=1, cache=None) as ex:
            handle = ex.submit(_campaign(n=6), checkpoint=checkpoint)
            resumed = handle.result()
        assert resumed.values == baseline
        assert all(rec["source"] == "checkpoint" for rec in resumed.timeline)

    def test_pool_values_identical_to_serial_with_obs_on(self):
        serial = run_campaign(_campaign(n=8), workers=1).values
        obs.enable()
        parallel = run_campaign(_campaign(n=8), workers=3).values
        assert parallel == serial


class TestCrossProcessCollection:
    def test_worker_metrics_and_spans_merge_under_kills(self):
        """Every first attempt kills its worker; telemetry still adds up."""
        baseline = run_campaign(_campaign(n=6), workers=1).values
        obs.enable()
        plan = FaultPlan(seed=3, p_kill=1.0, max_faulty_attempts=1)
        with CampaignExecutor(workers=2, cache=None) as ex:
            handle = ex.submit(_campaign(n=6), faults=plan)
            result = handle.result()
        assert result.values == baseline
        snap = metrics.snapshot()
        assert _counter_value(snap, "exec_crashes") == 6.0
        assert _counter_value(snap, "exec_respawns") >= 1.0
        # Dispatches: 6 killed attempts + 6 clean ones, all accounted for.
        assert _counter_value(snap, "exec_dispatches") == 12.0
        point_spans = [ev for ev in tracing.events() if ev["name"] == "point"]
        assert len(point_spans) == 6  # killed attempts never report spans
        assert os.getpid() not in {ev["pid"] for ev in point_spans}

    def test_acceptance_32_points_across_workers(self, tmp_path):
        """The ISSUE acceptance scenario, end to end."""
        baseline = run_campaign(_campaign(n=32), workers=1).values

        obs.enable()
        cache = ResultCache(tmp_path / "cache")
        with CampaignExecutor(workers=4, cache=cache) as ex:
            cold = ex.submit(_campaign(n=32)).result()
            warm = ex.submit(_campaign(n=32)).result()

        # (c) values bit-identical to the obs-disabled run.
        assert cold.values == baseline
        assert warm.values == baseline

        # (a) metrics snapshot consistent with the CampaignResult.
        snap = metrics.snapshot()
        assert _counter_value(snap, "cache_misses") == 32.0
        assert _counter_value(snap, "cache_puts") == 32.0
        assert _counter_value(snap, "cache_hits") == float(warm.cache_hits) == 32.0
        assert _counter_value(snap, "exec_points", source="computed") == 32.0
        assert _counter_value(snap, "exec_points", source="cache") == 32.0
        assert _counter_value(snap, "exec_attempts") == 32.0
        assert _counter_value(snap, "exec_submits") == 2.0
        hist = snap["exec_point_s"]["values"]["outcome=ok"]
        assert hist["count"] == 32

        # (b) a valid Chrome trace spanning >= 2 worker processes.
        point_spans = [ev for ev in tracing.events() if ev["name"] == "point"]
        assert len(point_spans) == 32
        worker_pids = {ev["pid"] for ev in point_spans}
        assert len(worker_pids) >= 2
        assert os.getpid() not in worker_pids
        trace_path = tmp_path / "trace.json"
        tracing.write_chrome(trace_path)
        doc = json.loads(trace_path.read_text())
        chrome_pids = {
            ev["pid"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "X" and ev["name"] == "point"
        }
        assert chrome_pids == worker_pids


class TestTimeline:
    def test_serial_timeline_collected_even_with_obs_off(self):
        with CampaignExecutor(workers=1, cache=None) as ex:
            handle = ex.submit(_campaign(n=4))
            result = handle.result()
        assert [rec["index"] for rec in result.timeline] == [0, 1, 2, 3]
        for rec in result.timeline:
            assert rec["source"] == "computed"
            assert rec["ok"] is True
            assert rec["attempts"] == 1
            assert rec["pids"] == [os.getpid()]
            assert rec["exec_s"] >= 0.0
            assert rec["queue_wait_s"] == 0.0
        assert handle.timeline == result.timeline

    def test_pool_timeline_records_worker_pids(self):
        with CampaignExecutor(workers=2, cache=None) as ex:
            result = ex.submit(_campaign(n=6)).result()
        pids = {pid for rec in result.timeline for pid in rec["pids"]}
        assert len(pids) >= 2
        assert os.getpid() not in pids
        assert all(rec["queue_wait_s"] >= 0.0 for rec in result.timeline)

    def test_cache_hits_appear_in_timeline(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign(_campaign(n=3), cache=cache)
        with CampaignExecutor(workers=1, cache=cache) as ex:
            result = ex.submit(_campaign(n=3)).result()
        assert [rec["source"] for rec in result.timeline] == ["cache"] * 3

    def test_stats_reports_progress_and_metrics(self):
        with CampaignExecutor(workers=1, cache=None) as ex:
            handle = ex.submit(_campaign(n=3))
            assert handle.stats()["metrics"] is None  # obs off
            handle.result()
            obs.enable()
            stats = handle.stats()
        assert stats["points"] == stats["resolved"] == 3
        assert stats["computed"] == 3
        assert stats["errors"] == 0
        assert len(stats["timeline"]) == 3
        assert isinstance(stats["metrics"], dict)


class TestFailureTelemetry:
    def test_error_records_carry_cumulative_backoff(self):
        policy = FailurePolicy(
            mode="retry", max_attempts=3, backoff_base=0.004, backoff_max=0.02
        )
        with CampaignExecutor(workers=1, cache=None) as ex:
            result = ex.submit(
                _campaign(n=3, task=brittle_task, base_params={"bad": [1]}),
                policy=policy,
            ).result()
        (error,) = result.errors
        assert error["attempts"] == 3
        assert error["backoff_s"] >= 2 * 0.004  # two sleeps before giving up
        failed = [rec for rec in result.timeline if not rec["ok"]]
        assert len(failed) == 1 and failed[0]["attempts"] == 3

    def test_retry_counters_under_obs(self):
        obs.enable()
        policy = FailurePolicy(mode="retry", max_attempts=2, backoff_base=0.001)
        result = run_campaign(
            _campaign(n=3, task=brittle_task, base_params={"bad": [1]}),
            policy=policy,
        )
        assert len(result.errors) == 1
        snap = metrics.snapshot()
        assert _counter_value(snap, "exec_retries") == 1.0
        assert _counter_value(snap, "exec_attempts") == 4.0  # 2 + 1 + 1
        hist = snap["exec_point_s"]["values"]["outcome=error"]
        assert hist["count"] == 1


class TestCacheCounters:
    def test_lifetime_counts_without_obs(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is MISS  # counted as a miss
        cache.put("ab" * 32, {"v": 1})
        cache.get("ab" * 32)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["hits"] == 1
        assert stats["evictions"] == 0
        assert stats["corrupt_healed"] == 0

    def test_corrupt_heal_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"v": 1})
        corrupt_cache_entry(cache, key, mode="garbage")
        assert cache.get(key) is MISS
        stats = cache.stats()
        assert stats["corrupt_healed"] == 1
        assert stats["misses"] == 1

    def test_eviction_counted_and_mirrored(self, tmp_path):
        obs.enable()
        cache = ResultCache(tmp_path, max_entries=2, evict_interval=1)
        for i in range(4):
            cache.put(f"{i:02d}" * 32, {"v": i})
        stats = cache.stats()
        assert stats["evictions"] == 2
        assert stats["entries"] == 2
        snap = metrics.snapshot()
        assert _counter_value(snap, "cache_evictions") == 2.0
        assert _counter_value(snap, "cache_puts") == 4.0


class TestOnResult:
    def test_callback_fires_per_point_and_replays(self):
        calls = []
        with CampaignExecutor(workers=1, cache=None) as ex:
            handle = ex.submit(_campaign(n=4))
            handle.on_result(lambda point, value: calls.append(point.index))
            result = handle.result()
            # A late registration replays the already-seen events.
            replay = []
            handle.on_result(lambda point, value: replay.append(point.index))
        assert calls == [0, 1, 2, 3]
        assert replay == calls
        assert len(result.values) == 4

    def test_none_callback_is_accepted(self):
        with CampaignExecutor(workers=1, cache=None) as ex:
            result = ex.submit(_campaign(n=2)).on_result(None).result()
        assert len(result.values) == 2

    def test_callback_sees_failed_points(self):
        seen = {}
        with CampaignExecutor(workers=1, cache=None) as ex:
            handle = ex.submit(
                _campaign(n=3, task=brittle_task, base_params={"bad": [1]}),
                policy="continue",
            )
            handle.on_result(lambda point, value: seen.update({point.index: value}))
            handle.result()
        assert seen[1] is None  # failed point reported with value=None
        assert seen[0] is not None and seen[2] is not None
