"""The run ledger: append-only, restart-proof, and queryable.

Two contracts under test.  The store itself: JSON-lines records that
survive process boundaries (fresh ``RunLedger`` objects see everything
earlier ones wrote), tolerate torn tails, and answer filtered queries
and per-point ``exec_s`` aggregations.  The executor integration: every
*completed* run appends exactly one record — co-located with the result
cache by default, invisible to the cache's own scans — while abandoned
streams leave no record and ledger writes never change computed values.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.exec import Campaign, CampaignExecutor, ResultCache, zip_sweep
from repro.obs.ledger import LEDGER_FILENAME, RunLedger


def seeded_task(x, seed=0):
    return float(x + np.random.default_rng(seed).random())


def failing_task(x, seed=0):
    if x == 1:
        raise ValueError("point 1 always fails")
    return float(x)


def _campaign(n=4, task=seeded_task, **kwargs):
    defaults = dict(task=task, sweep=zip_sweep(x=list(range(n))), seed=11)
    defaults.update(kwargs)
    return Campaign(**defaults)


class TestStore:
    def test_append_stamps_recorded_at_and_survives_reopen(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        written = RunLedger(path).append({"fingerprint": "aa", "name": "one"})
        assert written["recorded_at"] > 0
        # a *fresh* object (new process, conceptually) sees the record
        records = list(RunLedger(path).records())
        assert len(records) == 1
        assert records[0]["fingerprint"] == "aa"

    def test_records_skip_torn_and_blank_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append({"fingerprint": "aa"})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n{\"torn\": tru")  # crashed writer's partial line
        ledger.append({"fingerprint": "bb"})
        assert [r["fingerprint"] for r in ledger.records()] == ["aa", "bb"]
        assert len(ledger) == 2

    def test_query_filters(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        ledger.append({"fingerprint": "aa", "task": "m:f", "name": "x", "recorded_at": 100.0})
        ledger.append({"fingerprint": "bb", "task": "m:g", "name": "y", "recorded_at": 200.0})
        ledger.append({"fingerprint": "aa", "task": "m:f", "name": "x", "recorded_at": 300.0})
        assert len(ledger.query(fingerprint="aa")) == 2
        assert len(ledger.query(task="m:g")) == 1
        assert len(ledger.query(name="x", since=150.0)) == 1
        assert len(ledger.query(until=250.0)) == 2
        assert len(ledger.query(predicate=lambda r: r["name"] == "y")) == 1
        assert [r["recorded_at"] for r in ledger.query(fingerprint="aa", limit=1)] == [300.0]
        assert ledger.latest()["recorded_at"] == 300.0
        assert ledger.latest(fingerprint="zz") is None

    def test_exec_s_aggregation(self, tmp_path):
        ledger = RunLedger(tmp_path / "l.jsonl")
        ledger.append(
            {"fingerprint": "aa", "timeline": [{"exec_s": 1.0}, {"exec_s": 3.0}]}
        )
        ledger.append({"fingerprint": "aa", "timeline": [{"exec_s": 2.0}]})
        ledger.append({"fingerprint": "bb", "timeline": [{"exec_s": 99.0}]})
        assert ledger.exec_s_samples(fingerprint="aa") == [1.0, 3.0, 2.0]
        dist = ledger.exec_s_distribution(fingerprint="aa")
        assert dist["count"] == 3.0
        assert dist["min"] == 1.0 and dist["max"] == 3.0
        assert dist["mean"] == pytest.approx(2.0)
        assert ledger.exec_s_distribution(fingerprint="zz") is None

    def test_append_counts_metrics_when_enabled(self, tmp_path):
        obs.enable()
        ledger = RunLedger(tmp_path / "l.jsonl")
        ledger.append({"fingerprint": "aa"})
        snap = obs.snapshot()
        assert snap["ledger_records"]["values"][""] == 1.0
        assert snap["ledger_write_s"]["values"][""]["count"] == 1


class TestExecutorIntegration:
    def test_run_appends_record_colocated_with_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with CampaignExecutor(1, cache=cache) as executor:
            result = executor.run(_campaign(n=3))
        assert cache.ledger_path == tmp_path / "cache" / LEDGER_FILENAME
        records = list(cache.ledger().records())
        assert len(records) == 1
        record = records[0]
        assert record["points"] == 3
        assert record["computed"] == 3
        assert record["cache_hits"] == 0
        assert record["params_shape"] == ["x"]
        assert record["policy"]["mode"] == "fail_fast"
        assert record["env"]["cpu_count"] >= 1
        assert record["fingerprint"]
        assert len(record["timeline"]) == 3
        assert result.values  # results delivered regardless of ledger
        # the ledger file never counts as a cache entry
        assert len(cache) == 3

    def test_record_is_json_parseable_line(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with CampaignExecutor(1, cache=cache) as executor:
            executor.run(_campaign(n=2))
        lines = cache.ledger_path.read_text().strip().split("\n")
        assert len(lines) == 1
        assert json.loads(lines[0])["points"] == 2

    def test_second_run_appends_second_record_with_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with CampaignExecutor(1, cache=cache) as executor:
            executor.run(_campaign(n=3))
        with CampaignExecutor(1, cache=cache) as executor:
            executor.run(_campaign(n=3))
        records = list(cache.ledger().records())
        assert len(records) == 2
        assert records[0]["fingerprint"] == records[1]["fingerprint"]
        assert records[1]["cache_hits"] == 3
        assert records[1]["computed"] == 0

    def test_no_cache_means_no_ledger(self, tmp_path):
        with CampaignExecutor(1) as executor:
            handle = executor.submit(_campaign(n=2))
            handle.result()
        assert not list(tmp_path.iterdir())

    def test_ledger_false_disables(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with CampaignExecutor(1, cache=cache, ledger=False) as executor:
            executor.run(_campaign(n=2))
        assert not cache.ledger_path.exists()

    def test_explicit_ledger_path_wins_over_colocation(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        elsewhere = tmp_path / "elsewhere.jsonl"
        with CampaignExecutor(1, cache=cache, ledger=elsewhere) as executor:
            executor.run(_campaign(n=2))
        assert not cache.ledger_path.exists()
        assert len(RunLedger(elsewhere)) == 1

    def test_per_submission_override(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with CampaignExecutor(1, cache=cache) as executor:
            executor.run(_campaign(n=2), ledger=False)
            executor.run(_campaign(n=3))
        records = list(cache.ledger().records())
        assert [r["points"] for r in records] == [3]

    def test_abandoned_stream_writes_no_record(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with CampaignExecutor(1, cache=cache) as executor:
            handle = executor.submit(_campaign(n=5))
            for _ in handle.as_completed():
                break  # abandon after one point
        assert not cache.ledger_path.exists()

    def test_failed_points_recorded_under_continue_policy(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with CampaignExecutor(1, cache=cache, policy="continue") as executor:
            executor.run(_campaign(n=3, task=failing_task))
        record = cache.ledger().latest()
        assert len(record["errors"]) == 1
        assert record["errors"][0]["error_type"] == "ValueError"

    def test_values_bit_identical_with_and_without_ledger(self, tmp_path):
        with CampaignExecutor(1, ledger=False) as executor:
            baseline = executor.run(_campaign(n=4)).values
        cache = ResultCache(tmp_path / "cache")
        with CampaignExecutor(1, cache=cache) as executor:
            observed = executor.run(_campaign(n=4)).values
        assert observed == baseline
        assert len(cache.ledger()) == 1

    def test_fingerprint_tracks_campaign_content(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        with CampaignExecutor(1, cache=cache) as executor:
            a = executor.submit(_campaign(n=2))
            a.result()
            b = executor.submit(_campaign(n=3))
            b.result()
            again = executor.submit(_campaign(n=2))
            again.result()
        assert a.fingerprint != b.fingerprint
        assert a.fingerprint == again.fingerprint
        by_fp = cache.ledger().query(fingerprint=a.fingerprint)
        assert len(by_fp) == 2
