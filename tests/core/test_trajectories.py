"""Tests for the Monte-Carlo trajectory simulator."""

import numpy as np
import pytest

from repro.core import DensityMatrix, QuditCircuit, Statevector, TrajectorySimulator
from repro.core.channels import depolarizing, photon_loss
from repro.core.exceptions import SimulationError


def _noisy_bell(p=0.2):
    qc = QuditCircuit([3, 3])
    qc.fourier(0)
    qc.csum(0, 1)
    qc.channel(depolarizing(3, p).kraus, 0, name="depol")
    return qc


class TestSampling:
    def test_noiseless_matches_statevector(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        counts = TrajectorySimulator(qc, seed=0).sample(300)
        # only correlated outcomes appear
        assert all(a == b for (a, b) in counts)

    def test_seeded_reproducibility(self):
        qc = _noisy_bell()
        c1 = TrajectorySimulator(qc, seed=42).sample(50)
        c2 = TrajectorySimulator(qc, seed=42).sample(50)
        assert c1 == c2

    def test_noise_breaks_correlations(self):
        counts = TrajectorySimulator(_noisy_bell(0.5), seed=1).sample(400)
        uncorrelated = sum(n for (a, b), n in counts.items() if a != b)
        assert uncorrelated > 0

    def test_custom_initial_state(self):
        qc = QuditCircuit([3])
        counts = TrajectorySimulator(qc, seed=2).sample(
            20, initial=Statevector.basis([3], (2,))
        )
        assert counts == {(2,): 20}


class TestAverageDensity:
    def test_converges_to_exact(self):
        qc = _noisy_bell(0.3)
        avg = TrajectorySimulator(qc, seed=3).average_density(600)
        exact = DensityMatrix.zero([3, 3]).evolve(qc).matrix
        assert np.abs(avg - exact).max() < 0.03

    def test_rejects_large_register(self):
        qc = QuditCircuit([10, 10, 10])
        with pytest.raises(SimulationError):
            TrajectorySimulator(qc, seed=0).average_density(2)


class TestExpectation:
    def test_mean_and_stderr(self):
        qc = _noisy_bell(0.2)

        def prob_correlated(state):
            probs = state.probabilities()
            return float(probs[0] + probs[4] + probs[8])

        mean, err = TrajectorySimulator(qc, seed=4).expectation(
            prob_correlated, n_trajectories=200
        )
        exact_dm = DensityMatrix.zero([3, 3]).evolve(qc)
        exact = sum(exact_dm.probability_of((k, k)) for k in range(3))
        assert abs(mean - exact) < 5 * max(err, 0.01)

    def test_single_trajectory_zero_stderr(self):
        qc = QuditCircuit([3])
        mean, err = TrajectorySimulator(qc, seed=5).expectation(
            lambda s: 1.0, n_trajectories=1
        )
        assert err == 0.0

    def test_requires_positive_trajectories(self):
        qc = QuditCircuit([3])
        with pytest.raises(SimulationError):
            TrajectorySimulator(qc, seed=6).expectation(lambda s: 1.0, 0)


class TestPhotonLossTrajectories:
    def test_loss_attractor_statistics(self):
        """Heavy loss drives samples toward the all-zero outcome."""
        qc = QuditCircuit([4])
        qc.x(0, power=3)  # prepare |3>
        for _ in range(10):
            qc.channel(photon_loss(4, 0.4).kraus, 0, name="loss")
        counts = TrajectorySimulator(qc, seed=7).sample(200)
        assert counts.get((0,), 0) > 150

    def test_reset_instruction(self):
        qc = QuditCircuit([3])
        qc.fourier(0)
        qc.reset(0)
        counts = TrajectorySimulator(qc, seed=8).sample(50)
        assert counts == {(0,): 50}
