"""Property and unit tests for the locally-purified density-MPO backend.

The headline guarantee: at unbounded bond/Kraus dimension the LPDO
evolution of any supported noisy circuit matches the dense density matrix
to 1e-8 on mixed-dim registers up to 5 wires (acceptance criterion of the
LPDO PR) — channels included, with *zero* Monte-Carlo noise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DensityMatrix, LPDOState, QuditCircuit, Statevector, gates
from repro.core.channels import dephasing, depolarizing, photon_loss, thermal_heating
from repro.core.exceptions import DimensionError, SimulationError
from repro.core.random_ops import haar_unitary, random_statevector


def _random_diagonal(dim, rng):
    return np.diag(np.exp(1j * rng.uniform(0, 2 * np.pi, dim)))


def _random_monomial(dim, rng):
    perm = rng.permutation(dim)
    mat = np.zeros((dim, dim), dtype=complex)
    mat[perm, np.arange(dim)] = np.exp(1j * rng.uniform(0, 2 * np.pi, dim))
    return mat


_GATE_MAKERS = [_random_diagonal, _random_monomial, lambda d, rng: haar_unitary(d, rng)]

_CHANNEL_MAKERS = [
    lambda d, rng: depolarizing(d, float(rng.uniform(0.05, 0.6))),
    lambda d, rng: dephasing(d, float(rng.uniform(0.05, 0.6))),
    lambda d, rng: photon_loss(d, float(rng.uniform(0.05, 0.5))),
    lambda d, rng: thermal_heating(d, float(rng.uniform(0.02, 0.2))),
]


@st.composite
def _noisy_circuit_case(draw):
    """Random mixed-dim register (<= 5 wires) with gates *and* channels."""
    n = draw(st.integers(min_value=2, max_value=5))
    dims = tuple(draw(st.integers(min_value=2, max_value=4)) for _ in range(n))
    n_ops = draw(st.integers(min_value=1, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    specs = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["unitary", "unitary", "channel", "reset"]))
        k = draw(st.integers(min_value=1, max_value=2))
        if kind == "reset":
            k = 1
        wires = tuple(draw(st.permutations(range(n)))[:k])
        maker = draw(st.integers(min_value=0, max_value=3))
        specs.append((kind, wires, maker))
    return dims, specs, seed


def _build_circuit(dims, specs, seed):
    rng = np.random.default_rng(seed)
    qc = QuditCircuit(dims)
    for kind, wires, maker in specs:
        gate_dim = 1
        for w in wires:
            gate_dim *= dims[w]
        if kind == "unitary":
            qc.unitary(
                _GATE_MAKERS[maker % 3](gate_dim, rng), wires, name=f"g{maker}"
            )
        elif kind == "channel":
            qc.channel(
                _CHANNEL_MAKERS[maker](gate_dim, rng).kraus, wires, name=f"c{maker}"
            )
        else:
            qc.reset(wires[0])
    return qc


class TestFullRankMatchesDense:
    """Acceptance criterion: unbounded LPDO == dense DensityMatrix @ 1e-8."""

    @given(_noisy_circuit_case())
    @settings(max_examples=25, deadline=None)
    def test_random_noisy_circuits(self, case):
        dims, specs, seed = case
        qc = _build_circuit(dims, specs, seed)
        dense = DensityMatrix.zero(dims).evolve(qc)
        lpdo = LPDOState.zero(dims).evolve(qc)
        np.testing.assert_allclose(
            lpdo.to_density_matrix().matrix, dense.matrix, atol=1e-8
        )
        assert lpdo.truncation_error < 1e-10
        assert lpdo.purification_error < 1e-10
        assert lpdo.dims == tuple(dims)  # swap routing restored the layout

    def test_deep_structured_noisy_circuit(self):
        dims = (3, 2, 3, 2, 3)
        rng = np.random.default_rng(7)
        qc = QuditCircuit(dims)
        for i in range(5):
            qc.fourier(i)
        for layer in range(2):
            for i, j in [(0, 2), (1, 3), (2, 4), (0, 4)]:
                qc.controlled_phase(i, j, 0.3 + 0.1 * layer)
            for i in range(5):
                qc.unitary(haar_unitary(dims[i], rng), i, name="mix")
            qc.channel(photon_loss(3, 0.15).kraus, 0, name="loss")
            qc.channel(depolarizing(4, 0.3).kraus, (3, 1), name="depol2")
        dense = DensityMatrix.zero(dims).evolve(qc)
        lpdo = LPDOState.zero(dims).evolve(qc)
        np.testing.assert_allclose(
            lpdo.to_density_matrix().matrix, dense.matrix, atol=1e-8
        )

    def test_noiseless_circuit_stays_pure(self):
        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.csum(0, 1)
        lpdo = LPDOState.zero(dims).evolve(qc)
        assert lpdo.kraus_dimensions() == (1, 1)
        assert lpdo.to_density_matrix().purity() == pytest.approx(1.0)

    def test_channels_are_deterministic(self):
        """Unlike the MPS unravelling, two runs agree exactly — no rng."""
        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.channel(depolarizing(3, 0.5).kraus, 0, name="depol")
        a = LPDOState.zero(dims).evolve(qc)
        b = LPDOState.zero(dims).evolve(qc)
        np.testing.assert_array_equal(
            a.to_density_matrix().matrix, b.to_density_matrix().matrix
        )


class TestTruncation:
    def _noisy_entangler(self, dims, layers, seed=0):
        rng = np.random.default_rng(seed)
        qc = QuditCircuit(dims)
        for i in range(len(dims)):
            qc.fourier(i)
        for _ in range(layers):
            for i in range(len(dims) - 1):
                qc.unitary(
                    haar_unitary(dims[i] * dims[i + 1], rng), (i, i + 1), name="hr"
                )
            for i in range(len(dims)):
                qc.channel(depolarizing(dims[i], 0.3).kraus, i, name="depol")
        return qc

    def test_caps_enforced_and_errors_tracked(self):
        dims = (2,) * 6
        qc = self._noisy_entangler(dims, layers=3)
        capped = LPDOState.zero(dims, max_bond=4, max_kraus=2).evolve(qc)
        assert max(capped.bond_dimensions()) <= 4
        assert max(capped.kraus_dimensions()) <= 2
        assert capped.truncation_error > 0
        assert capped.purification_error > 0
        assert abs(capped.trace() - 1.0) < 1e-10

    def test_larger_caps_are_more_accurate(self):
        dims = (2,) * 5
        qc = self._noisy_entangler(dims, layers=2)
        exact = DensityMatrix.zero(dims).evolve(qc)
        errors = []
        for cap in (2, 4, 16):
            approx = LPDOState.zero(dims, max_bond=cap, max_kraus=cap).evolve(qc)
            errors.append(
                np.abs(approx.to_density_matrix().matrix - exact.matrix).max()
            )
        assert errors[2] <= errors[0] + 1e-12
        assert errors[2] < 1e-6

    def test_error_counters_monotone_nondecreasing(self):
        dims = (2,) * 5
        qc = self._noisy_entangler(dims, layers=2)
        lpdo = LPDOState.zero(dims, max_bond=2, max_kraus=2)
        seen = [(0.0, 0.0)]
        for instruction in qc:
            lpdo.apply_instruction(instruction)
            assert lpdo.truncation_error >= seen[-1][0]
            assert lpdo.purification_error >= seen[-1][1]
            seen.append((lpdo.truncation_error, lpdo.purification_error))
        assert seen[-1][1] > 0


class TestObservables:
    def _random_mixed(self, dims, seed=0):
        """A genuinely mixed LPDO and its dense reference."""
        rng = np.random.default_rng(seed)
        qc = QuditCircuit(dims)
        for i in range(len(dims)):
            qc.unitary(haar_unitary(dims[i], rng), i, name="u")
        for i in range(len(dims) - 1):
            qc.unitary(
                haar_unitary(dims[i] * dims[i + 1], rng), (i, i + 1), name="uu"
            )
            qc.channel(dephasing(dims[i], 0.3).kraus, i, name="deph")
        return (
            DensityMatrix.zero(dims).evolve(qc),
            LPDOState.zero(dims).evolve(qc),
        )

    @pytest.mark.parametrize(
        "dims, targets",
        [
            ((3, 2, 4, 2), (0,)),
            ((3, 2, 4, 2), (2,)),
            ((3, 2, 4, 2), (1, 2)),       # adjacent
            ((3, 2, 4, 2), (0, 3)),       # distant
            ((3, 2, 4, 2), (3, 1)),       # unsorted distant
            ((2, 2, 2, 2), (0, 1, 2)),    # contiguous run
        ],
    )
    def test_expectation_matches_density(self, dims, targets):
        dense, lpdo = self._random_mixed(dims, seed=11)
        rng = np.random.default_rng(1)
        gate_dim = 1
        for t in targets:
            gate_dim *= dims[t]
        op = rng.normal(size=(gate_dim, gate_dim))
        op = op + op.T  # hermitian
        expected = complex(dense.expectation(op, targets))
        got = lpdo.expectation(op, targets)
        assert abs(got - expected) < 1e-8

    def test_probabilities_of_matches_density(self):
        dims = (3, 2, 3)
        dense, lpdo = self._random_mixed(dims, seed=3)
        for digits in [(0, 0, 0), (2, 1, 0), (1, 1, 2)]:
            assert lpdo.probabilities_of(digits) == pytest.approx(
                dense.probability_of(digits), abs=1e-10
            )

    def test_probabilities_vector_matches_density(self):
        dims = (3, 2, 3)
        dense, lpdo = self._random_mixed(dims, seed=5)
        reference = dense.probabilities()
        np.testing.assert_allclose(
            lpdo.probabilities(), reference / reference.sum(), atol=1e-10
        )

    def test_sampling_statistics_and_replay(self):
        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.csum(0, 1)
        qc.channel(dephasing(3, 0.4).kraus, 0, name="deph")
        lpdo = LPDOState.zero(dims).evolve(qc)
        counts = lpdo.sample(3000, rng=0)
        assert set(counts) == {(0, 0), (1, 1), (2, 2)}
        for value in counts.values():
            assert abs(value / 3000 - 1 / 3) < 0.05
        assert lpdo.sample(100, rng=5) == lpdo.sample(100, rng=5)

    def test_trace_and_purity_under_noise(self):
        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.csum(0, 1)
        qc.channel(depolarizing(3, 0.5).kraus, 0, name="depol")
        lpdo = LPDOState.zero(dims).evolve(qc)
        assert lpdo.trace() == pytest.approx(1.0, abs=1e-10)
        assert lpdo.to_density_matrix().purity() < 0.999


class TestConstructorsAndErrors:
    def test_from_statevector_roundtrip(self):
        dims = (3, 2, 4)
        rng = np.random.default_rng(0)
        sv = Statevector(random_statevector(24, rng), dims)
        lpdo = LPDOState.from_statevector(sv)
        np.testing.assert_allclose(
            lpdo.to_density_matrix().matrix,
            np.outer(sv.vector, sv.vector.conj()),
            atol=1e-12,
        )

    def test_basis_and_zero(self):
        lpdo = LPDOState.basis((3, 4), (2, 1))
        assert lpdo.probabilities_of((2, 1)) == pytest.approx(1.0)
        assert LPDOState.zero((3, 4)).probabilities_of((0, 0)) == pytest.approx(1.0)
        assert lpdo.bond_dimensions() == (1,)
        assert lpdo.kraus_dimensions() == (1, 1)

    def test_reset_sends_wire_to_zero_exactly(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        qc.reset(1)
        lpdo = LPDOState.zero([3, 3]).evolve(qc)
        probs = lpdo.probabilities().reshape(3, 3)
        assert probs[:, 1:].max() < 1e-12
        assert lpdo.trace() == pytest.approx(1.0, abs=1e-10)

    def test_dimension_validation(self):
        with pytest.raises(DimensionError):
            LPDOState.basis((3,), (0, 0))
        with pytest.raises(DimensionError):
            LPDOState.basis((3,), (5,))
        qc = QuditCircuit([3, 3])
        with pytest.raises(DimensionError):
            LPDOState.zero([3, 4]).evolve(qc)

    def test_three_wire_noncontiguous_gate_rejected(self):
        dims = (2, 2, 2, 2, 2)
        lpdo = LPDOState.zero(dims)
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            lpdo.apply_unitary(haar_unitary(8, rng), (0, 2, 4))

    def test_huge_register_refuses_densification(self):
        lpdo = LPDOState.zero((3,) * 20)
        with pytest.raises(SimulationError):
            lpdo.to_density_matrix()

    def test_copy_is_independent(self):
        lpdo = LPDOState.zero((3, 3))
        clone = lpdo.copy()
        clone.apply_unitary(gates.fourier(3), 0)
        assert lpdo.probabilities_of((0, 0)) == pytest.approx(1.0)
        assert clone.probabilities_of((0, 0)) == pytest.approx(1.0 / 3)


class TestScale:
    def test_twelve_qutrits_exact_noisy_evolution(self):
        """A register far beyond the dense density matrix (3^24 entries)
        evolves with exact channels — no trajectories, no dense objects."""
        dims = (3,) * 12
        qc = QuditCircuit(dims)
        for i in range(12):
            qc.fourier(i)
        for i in range(11):
            qc.controlled_phase(i, i + 1, 0.4)
        for i in range(12):
            qc.channel(photon_loss(3, 0.1).kraus, i, name="loss")
        qc.csum(0, 11)  # long-range routing at scale
        lpdo = LPDOState.zero(dims, max_bond=16, max_kraus=8).evolve(qc)
        assert max(lpdo.bond_dimensions()) <= 16
        assert max(lpdo.kraus_dimensions()) <= 8
        assert lpdo.trace() == pytest.approx(1.0, abs=1e-8)
        assert lpdo.truncation_error >= 0.0
        assert lpdo.purification_error >= 0.0
        counts = lpdo.sample(5, rng=0)
        assert sum(counts.values()) == 5
        value = lpdo.expectation(np.diag([0.0, 1.0, 2.0]), 6)
        assert 0.0 <= float(np.real(value)) <= 2.0
