"""Tests for the qudit circuit IR."""

import numpy as np
import pytest

from repro.core import QuditCircuit, gates
from repro.core.channels import depolarizing
from repro.core.circuit import Instruction
from repro.core.exceptions import CircuitError


class TestInstruction:
    def test_unitary_requires_matrix(self):
        with pytest.raises(CircuitError):
            Instruction(name="bad", kind="unitary", qudits=(0,))

    def test_channel_requires_kraus(self):
        with pytest.raises(CircuitError):
            Instruction(name="bad", kind="channel", qudits=(0,))

    def test_unknown_kind(self):
        with pytest.raises(CircuitError):
            Instruction(name="bad", kind="banana", qudits=(0,))

    def test_duplicate_wires(self):
        with pytest.raises(CircuitError):
            Instruction(
                name="bad",
                kind="unitary",
                qudits=(0, 0),
                matrix=np.eye(9, dtype=complex),
            )

    def test_dagger(self):
        inst = Instruction(
            name="f", kind="unitary", qudits=(0,), matrix=gates.fourier(3)
        )
        np.testing.assert_allclose(
            inst.dagger().matrix @ inst.matrix, np.eye(3), atol=1e-12
        )

    def test_dagger_of_measure_fails(self):
        inst = Instruction(name="measure", kind="measure", qudits=(0,))
        with pytest.raises(CircuitError):
            inst.dagger()

    def test_entangling_detection(self):
        one = Instruction(
            name="f", kind="unitary", qudits=(0,), matrix=gates.fourier(3)
        )
        two = Instruction(
            name="csum", kind="unitary", qudits=(0, 1), matrix=gates.csum(3)
        )
        assert not one.is_entangling()
        assert two.is_entangling()


class TestCircuitBuilding:
    def test_dims_and_total_dim(self):
        qc = QuditCircuit([2, 3, 4])
        assert qc.num_qudits == 3
        assert qc.dim == 24

    def test_wire_out_of_range(self):
        qc = QuditCircuit([3, 3])
        with pytest.raises(CircuitError):
            qc.fourier(2)

    def test_shape_mismatch_rejected(self):
        qc = QuditCircuit([3, 3])
        with pytest.raises(CircuitError):
            qc.unitary(np.eye(2), 0)

    def test_gate_conveniences_pick_wire_dimension(self):
        qc = QuditCircuit([2, 5])
        qc.fourier(0)
        qc.fourier(1)
        assert qc.instructions[0].matrix.shape == (2, 2)
        assert qc.instructions[1].matrix.shape == (5, 5)

    def test_two_qudit_mixed_dims(self):
        qc = QuditCircuit([2, 3])
        qc.csum(0, 1)
        assert qc.instructions[0].matrix.shape == (6, 6)

    def test_swap_requires_equal_dims(self):
        qc = QuditCircuit([2, 3])
        with pytest.raises(CircuitError):
            qc.swap(0, 1)

    def test_swap_action(self):
        qc = QuditCircuit([3, 3])
        qc.swap(0, 1)
        from repro.core import Statevector

        sv = Statevector.basis([3, 3], (2, 1)).evolve(qc)
        probs = sv.probabilities()
        assert abs(probs[1 * 3 + 2] - 1.0) < 1e-12

    def test_channel_append(self):
        qc = QuditCircuit([3])
        qc.channel(depolarizing(3, 0.1).kraus, 0, name="depol")
        assert qc.instructions[0].kind == "channel"

    def test_measure_all_default(self):
        qc = QuditCircuit([3, 3, 3])
        qc.measure()
        assert qc.instructions[0].qudits == (0, 1, 2)

    def test_permute_levels_validates_length(self):
        qc = QuditCircuit([3])
        with pytest.raises(CircuitError):
            qc.permute_levels(0, [0, 1])


class TestCircuitTransforms:
    def _bell_circuit(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        return qc

    def test_compose(self):
        qc = self._bell_circuit().compose(self._bell_circuit())
        assert len(qc) == 4

    def test_compose_dim_mismatch(self):
        with pytest.raises(CircuitError):
            self._bell_circuit().compose(QuditCircuit([3, 4]))

    def test_inverse_gives_identity(self):
        qc = self._bell_circuit()
        full = qc.compose(qc.inverse())
        np.testing.assert_allclose(full.to_unitary(), np.eye(9), atol=1e-10)

    def test_copy_is_independent(self):
        qc = self._bell_circuit()
        other = qc.copy()
        other.fourier(1)
        assert len(qc) == 2
        assert len(other) == 3

    def test_repeated(self):
        qc = self._bell_circuit().repeated(3)
        assert len(qc) == 6
        assert qc.repeated(0) is not None

    def test_repeated_negative(self):
        with pytest.raises(CircuitError):
            self._bell_circuit().repeated(-1)


class TestCircuitInspection:
    def test_count_ops(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.fourier(1)
        qc.csum(0, 1)
        assert qc.count_ops() == {"fourier": 2, "csum": 1}

    def test_num_entangling(self):
        qc = QuditCircuit([3, 3, 3])
        qc.csum(0, 1)
        qc.csum(1, 2)
        qc.fourier(0)
        assert qc.num_entangling() == 2

    def test_depth_parallel_gates(self):
        qc = QuditCircuit([3, 3, 3, 3])
        qc.fourier(0)
        qc.fourier(1)
        qc.csum(0, 1)
        qc.csum(2, 3)
        # fourier(0)||fourier(1) then csum(0,1); csum(2,3) fits in slot 1.
        assert qc.depth() == 2

    def test_depth_ignores_channels(self):
        qc = QuditCircuit([3])
        qc.fourier(0)
        qc.channel(depolarizing(3, 0.1).kraus, 0)
        qc.fourier(0)
        assert qc.depth() == 2

    def test_interaction_pairs(self):
        qc = QuditCircuit([3, 3, 3])
        qc.csum(0, 1)
        qc.csum(1, 0)
        qc.csum(1, 2)
        assert qc.interaction_pairs() == {(0, 1): 2, (1, 2): 1}

    def test_wires_used(self):
        qc = QuditCircuit([3, 3, 3])
        qc.fourier(2)
        assert qc.wires_used() == {2}

    def test_to_unitary_rejects_channels(self):
        qc = QuditCircuit([3])
        qc.channel(depolarizing(3, 0.1).kraus, 0)
        with pytest.raises(CircuitError):
            qc.to_unitary()

    def test_to_unitary_rejects_huge(self):
        qc = QuditCircuit([10] * 5)
        with pytest.raises(CircuitError):
            qc.to_unitary()

    def test_to_unitary_matches_manual_kron(self):
        qc = QuditCircuit([2, 3])
        qc.fourier(0)
        expected = np.kron(gates.fourier(2), np.eye(3))
        np.testing.assert_allclose(qc.to_unitary(), expected, atol=1e-12)

    def test_to_unitary_wire_order(self):
        """CSUM(control=1, target=0) must differ from CSUM(0, 1)."""
        qc01 = QuditCircuit([3, 3])
        qc01.csum(0, 1)
        qc10 = QuditCircuit([3, 3])
        qc10.csum(1, 0)
        assert not np.allclose(qc01.to_unitary(), qc10.to_unitary())
