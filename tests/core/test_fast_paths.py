"""Property tests for the structured-gate fast paths and batched engine.

Every fast path (diagonal multiply, permutation gather, batched trailing
axis) must agree with the seed implementation — the dense ``tensordot``
reference kept verbatim as ``apply_matrix_dense`` — to 1e-12.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QuditCircuit, Statevector, TrajectorySimulator, gates
from repro.core.channels import unitary_channel
from repro.core.random_ops import haar_unitary, random_statevector
from repro.core.statevector import apply_matrix, apply_matrix_dense
from repro.core.structure import DENSE, DIAGONAL, PERMUTATION, classify_gate


def _random_diagonal(dim, rng):
    return np.diag(np.exp(1j * rng.uniform(0, 2 * np.pi, dim)))


def _nonidentity_permutation(dim, rng):
    perm = rng.permutation(dim)
    if np.array_equal(perm, np.arange(dim)):
        perm = np.roll(perm, 1)  # identity would classify as diagonal
    return perm


def _random_monomial(dim, rng):
    perm = _nonidentity_permutation(dim, rng)
    mat = np.zeros((dim, dim), dtype=complex)
    mat[perm, np.arange(dim)] = np.exp(1j * rng.uniform(0, 2 * np.pi, dim))
    return mat


def _random_permutation(dim, rng):
    perm = _nonidentity_permutation(dim, rng)
    mat = np.zeros((dim, dim), dtype=complex)
    mat[perm, np.arange(dim)] = 1.0
    return mat


_MAKERS = {
    DIAGONAL: _random_diagonal,
    PERMUTATION: _random_monomial,
    DENSE: lambda dim, rng: haar_unitary(dim, rng),
}


@st.composite
def _register_case(draw):
    """Random mixed-dim register, target subset (any order), matrix kind."""
    n = draw(st.integers(min_value=1, max_value=4))
    dims = tuple(draw(st.integers(min_value=2, max_value=5)) for _ in range(n))
    n_targets = draw(st.integers(min_value=1, max_value=min(n, 2)))
    targets = tuple(draw(st.permutations(range(n)))[:n_targets])
    kind = draw(st.sampled_from([DIAGONAL, PERMUTATION, DENSE]))
    batch = draw(st.sampled_from([0, 1, 3]))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return dims, targets, kind, batch, seed


class TestFastPathsMatchDense:
    @given(_register_case())
    @settings(max_examples=120, deadline=None)
    def test_apply_matches_dense_reference(self, case):
        dims, targets, kind, batch, seed = case
        rng = np.random.default_rng(seed)
        gate_dim = int(np.prod([dims[t] for t in targets]))
        matrix = _MAKERS[kind](gate_dim, rng)
        structure = classify_gate(matrix)
        assert structure.kind == kind
        shape = dims if batch == 0 else dims + (batch,)
        tensor = rng.normal(size=shape) + 1j * rng.normal(size=shape)
        fast = apply_matrix(tensor, matrix, dims, targets)
        dense = apply_matrix_dense(tensor, matrix, dims, targets)
        np.testing.assert_allclose(fast, dense, atol=1e-12)

    @given(_register_case())
    @settings(max_examples=60, deadline=None)
    def test_precomputed_structure_matches_on_the_fly(self, case):
        dims, targets, kind, batch, seed = case
        rng = np.random.default_rng(seed)
        gate_dim = int(np.prod([dims[t] for t in targets]))
        matrix = _MAKERS[kind](gate_dim, rng)
        tensor = rng.normal(size=dims) + 1j * rng.normal(size=dims)
        with_hint = apply_matrix(
            tensor, matrix, dims, targets, structure=classify_gate(matrix)
        )
        without = apply_matrix(tensor, matrix, dims, targets)
        np.testing.assert_array_equal(with_hint, without)

    def test_pure_permutation_has_no_values(self):
        rng = np.random.default_rng(0)
        structure = classify_gate(_random_permutation(6, rng))
        assert structure.kind == PERMUTATION
        assert structure.values is None


class TestClassification:
    """The paper's native gate set lands on the expected fast paths."""

    @pytest.mark.parametrize(
        "matrix, kind",
        [
            (gates.weyl_z(5, 2), DIAGONAL),
            (gates.snap(6, [0.1, 0.2, 0.3]), DIAGONAL),
            (gates.kerr(5, 0.7), DIAGONAL),
            (gates.cross_kerr(3, 4, 0.5), DIAGONAL),
            (gates.controlled_phase(3, 3), DIAGONAL),
            (gates.parity_op(4), DIAGONAL),
            (gates.weyl_x(5, 2), PERMUTATION),
            (gates.weyl(4, 1, 2), PERMUTATION),
            (gates.csum(3, 3), PERMUTATION),
            (gates.csum_dagger(3, 4), PERMUTATION),
            (gates.permutation_gate([2, 0, 1]), PERMUTATION),
            (gates.fourier(3), DENSE),
            (gates.displacement(6, 0.3), DENSE),
            (gates.qudit_mixer(3, 0.4), DENSE),
            (gates.level_rotation(4, 0, 2, 0.3), DENSE),
        ],
    )
    def test_gate_library_kinds(self, matrix, kind):
        assert classify_gate(matrix).kind == kind

    def test_near_diagonal_stays_dense(self):
        """Structural detection is exact: tiny off-diagonal => dense path."""
        matrix = np.eye(4, dtype=complex)
        matrix[0, 1] = 1e-15
        assert classify_gate(matrix).kind == DENSE

    def test_structure_identity_semantics(self):
        """GateStructure holds arrays: equality/hash are by identity."""
        a = classify_gate(np.eye(3, dtype=complex))
        b = classify_gate(np.eye(3, dtype=complex))
        assert a != b and a == a
        assert len({a, b}) == 2  # hashable, identity-based

    def test_instruction_structure_cached(self):
        qc = QuditCircuit([3])
        qc.z(0)
        instruction = qc.instructions[0]
        first = instruction.structure()
        assert first.kind == DIAGONAL
        assert instruction.structure() is first


class TestEvolveMixedKinds:
    def test_evolve_matches_dense_unitary(self):
        """A circuit mixing all three kinds agrees with the full matrix."""
        rng = np.random.default_rng(11)
        dims = (3, 4, 2)
        qc = QuditCircuit(dims)
        qc.z(0, power=2)  # diagonal
        qc.x(1, power=3)  # permutation
        qc.fourier(2)  # dense
        qc.controlled_phase(0, 1, 0.7)  # diagonal, 2-wire
        qc.csum(2, 0)  # permutation, 2-wire, unsorted targets
        qc.unitary(haar_unitary(12, rng), (0, 1), name="haar")  # dense 2-wire
        sv = Statevector(random_statevector(24, rng), dims)
        evolved = sv.evolve(qc).vector
        reference = qc.to_unitary() @ sv.vector
        np.testing.assert_allclose(evolved, reference, atol=1e-12)


class TestBatchedTrajectories:
    def test_unitary_batch_matches_single(self):
        rng = np.random.default_rng(5)
        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.csum(0, 1)
        qc.z(1)
        sv = Statevector(random_statevector(9, rng), dims)
        final = TrajectorySimulator(qc, seed=0).run_batch(4, initial=sv)
        # deterministic circuit: every trajectory identical and correct
        expected = sv.evolve(qc).vector
        for b in range(4):
            np.testing.assert_allclose(final[:, b], expected, atol=1e-12)

    def test_single_kraus_channel_is_deterministic(self):
        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.channel(unitary_channel(gates.weyl_x(3)).kraus, 1, name="ux")
        qc.csum(0, 1)
        batched = TrajectorySimulator(qc, seed=1).run_batch(5)
        loop_sim = TrajectorySimulator(qc, seed=1)
        reference = loop_sim._run_single(Statevector.zero(dims)).vector
        for b in range(5):
            np.testing.assert_allclose(batched[:, b], reference, atol=1e-12)

    def test_chunked_batches_match_unchunked(self):
        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.csum(0, 1)
        full = TrajectorySimulator(qc, seed=2).run_batch(10)
        chunked = TrajectorySimulator(qc, seed=2, max_batch=3).run_batch(10)
        np.testing.assert_allclose(chunked, full, atol=1e-12)

    def test_batched_reset_sends_wire_to_zero(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        qc.reset(1)
        final = TrajectorySimulator(qc, seed=3).run_batch(16)
        probs = np.abs(final) ** 2
        # wire 1 must be |0> in every trajectory: indices 0, 3, 6 only
        support = probs[[0, 3, 6], :].sum(axis=0)
        np.testing.assert_allclose(support, 1.0, atol=1e-10)

    def test_batch_norms_preserved_under_noise(self):
        from repro.core.channels import depolarizing

        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        qc.channel(depolarizing(3, 0.5).kraus, 0, name="depol")
        final = TrajectorySimulator(qc, seed=4).run_batch(32)
        np.testing.assert_allclose(
            np.linalg.norm(final, axis=0), 1.0, atol=1e-10
        )

    def test_weight_plan_built_for_column_sparse_kraus(self):
        """Photon loss has diagonal K†K -> the GEMM weight plan applies."""
        from repro.core.channels import photon_loss

        qc = QuditCircuit([4])
        qc.channel(photon_loss(4, 0.3).kraus, 0, name="loss")
        sim = TrajectorySimulator(qc, seed=10)
        plan = sim._channel_weight_plan(qc.instructions[0])
        assert plan is not None and plan.shape == (4, 4)

    def test_general_kraus_fallback_converges(self):
        """Basis-rotated loss (non-diagonal K†K) uses the general path."""
        from repro.core import DensityMatrix
        from repro.core.channels import photon_loss

        rng = np.random.default_rng(13)
        rotation = haar_unitary(3, rng)
        kraus = [rotation @ k @ rotation.conj().T for k in photon_loss(3, 0.4).kraus]
        qc = QuditCircuit([3])
        qc.fourier(0)
        qc.channel(kraus, 0, name="rotated-loss")
        sim = TrajectorySimulator(qc, seed=11)
        assert sim._channel_weight_plan(qc.instructions[1]) is None
        average = sim.average_density(1500)
        exact = DensityMatrix.zero([3]).evolve(qc).matrix
        assert np.abs(average - exact).max() < 0.05

    def test_matrix_expectation_matches_callable(self):
        from repro.core.channels import dephasing

        qc = QuditCircuit([3])
        qc.fourier(0)
        qc.channel(dephasing(3, 0.3).kraus, 0, name="dephase")
        operator = gates.number_op(3)
        mean_mat, _ = TrajectorySimulator(qc, seed=6).matrix_expectation(
            operator, 64
        )
        mean_fn, _ = TrajectorySimulator(qc, seed=6).expectation(
            lambda s: float(np.real(s.expectation(operator, 0))), 64
        )
        assert abs(mean_mat - mean_fn) < 1e-10

    def test_circuit_growth_invalidates_execution_plan(self):
        """Appending gates after a run must be reflected in the next run."""
        qc = QuditCircuit([3])
        qc.z(0)
        sim = TrajectorySimulator(qc, seed=12)
        sim.run_batch(1)
        qc.x(0)
        final = sim.run_batch(1)
        expected = Statevector.zero([3]).evolve(qc).vector
        np.testing.assert_allclose(final[:, 0], expected, atol=1e-12)

    def test_evolve_states_accepts_unbatched_tensor(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        sim = TrajectorySimulator(qc, seed=7)
        out = sim.evolve_states(Statevector.zero([3, 3]).tensor)
        assert out.shape == (3, 3)
        expected = Statevector.zero([3, 3]).evolve(qc).tensor
        np.testing.assert_allclose(out, expected, atol=1e-12)


class TestMeasureQuditSlicing:
    def test_collapse_matches_projector_semantics(self):
        rng = np.random.default_rng(9)
        dims = (3, 4)
        sv = Statevector(random_statevector(12, rng), dims)
        outcome, collapsed = sv.measure_qudit(1, rng=np.random.default_rng(0))
        # all amplitude lives on the measured outcome of wire 1
        tensor = collapsed.tensor
        mask = np.ones(4, dtype=bool)
        mask[outcome] = False
        assert np.abs(tensor[:, mask]).max() == 0.0
        assert abs(collapsed.norm() - 1.0) < 1e-12
        # surviving amplitudes are a rescale of the original slice
        original = sv.tensor[:, outcome]
        ratio = np.linalg.norm(original)
        np.testing.assert_allclose(
            tensor[:, outcome], original / ratio, atol=1e-12
        )
