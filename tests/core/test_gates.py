"""Tests for the qudit/bosonic gate library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gates
from repro.core.exceptions import DimensionError

dim_strategy = st.integers(min_value=2, max_value=8)
angle_strategy = st.floats(
    min_value=-2 * np.pi, max_value=2 * np.pi, allow_nan=False
)


class TestWeylOperators:
    @given(dim_strategy)
    def test_x_is_unitary(self, d):
        assert gates.is_unitary(gates.weyl_x(d))

    @given(dim_strategy)
    def test_z_is_unitary(self, d):
        assert gates.is_unitary(gates.weyl_z(d))

    @given(dim_strategy)
    def test_x_order_d(self, d):
        """X^d = I."""
        np.testing.assert_allclose(
            np.linalg.matrix_power(gates.weyl_x(d), d), np.eye(d), atol=1e-12
        )

    @given(dim_strategy)
    def test_z_order_d(self, d):
        np.testing.assert_allclose(
            np.linalg.matrix_power(gates.weyl_z(d), d), np.eye(d), atol=1e-12
        )

    @given(dim_strategy)
    def test_weyl_commutation(self, d):
        """ZX = w XZ with w = exp(2 pi i / d)."""
        x, z = gates.weyl_x(d), gates.weyl_z(d)
        omega = np.exp(2j * np.pi / d)
        np.testing.assert_allclose(z @ x, omega * x @ z, atol=1e-12)

    def test_x_action_on_basis(self):
        x = gates.weyl_x(3)
        vec = np.zeros(3)
        vec[1] = 1.0
        np.testing.assert_allclose(x @ vec, [0, 0, 1])
        np.testing.assert_allclose(x @ (x @ vec), [1, 0, 0])

    def test_x_negative_power(self):
        np.testing.assert_allclose(
            gates.weyl_x(5, -1), gates.weyl_x(5, 1).conj().T, atol=1e-12
        )

    @given(dim_strategy)
    def test_weyl_basis_orthogonality(self, d):
        """Tr(W_ab† W_cd) = d * delta — tested on a few random pairs."""
        rng = np.random.default_rng(d)
        for _ in range(3):
            a, b, c, e = rng.integers(0, d, size=4)
            inner = np.trace(gates.weyl(d, a, b).conj().T @ gates.weyl(d, c, e))
            if (a, b) == (c, e):
                assert abs(inner - d) < 1e-10
            else:
                assert abs(inner) < 1e-10

    def test_rejects_dim_one(self):
        with pytest.raises(DimensionError):
            gates.weyl_x(1)


class TestFourier:
    @given(dim_strategy)
    def test_unitary(self, d):
        assert gates.is_unitary(gates.fourier(d))

    @given(dim_strategy)
    def test_diagonalises_x(self, d):
        """F† X F = Z (up to the standard convention F X F† = Z†...)."""
        f, x, z = gates.fourier(d), gates.weyl_x(d), gates.weyl_z(d)
        np.testing.assert_allclose(f.conj().T @ z @ f, x, atol=1e-10)

    def test_qubit_case_is_hadamard(self):
        h = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        np.testing.assert_allclose(gates.fourier(2), h, atol=1e-12)

    @given(dim_strategy)
    def test_fourth_power_identity(self, d):
        f = gates.fourier(d)
        np.testing.assert_allclose(
            np.linalg.matrix_power(f, 4), np.eye(d), atol=1e-10
        )


class TestLevelRotation:
    @given(dim_strategy, angle_strategy, angle_strategy)
    def test_unitary(self, d, theta, phi):
        assert gates.is_unitary(gates.level_rotation(d, 0, d - 1, theta, phi))

    def test_full_rotation_swaps_levels(self):
        """theta = pi maps |i> -> |j> (up to phase)."""
        rot = gates.level_rotation(4, 1, 3, np.pi)
        vec = np.zeros(4)
        vec[1] = 1.0
        out = rot @ vec
        assert abs(abs(out[3]) - 1.0) < 1e-12

    def test_identity_outside_subspace(self):
        rot = gates.level_rotation(5, 0, 2, 1.234, 0.5)
        for level in (1, 3, 4):
            vec = np.zeros(5)
            vec[level] = 1.0
            np.testing.assert_allclose(rot @ vec, vec, atol=1e-12)

    def test_rejects_equal_levels(self):
        with pytest.raises(DimensionError):
            gates.level_rotation(3, 1, 1, 0.3)

    def test_rejects_out_of_range(self):
        with pytest.raises(DimensionError):
            gates.level_rotation(3, 0, 3, 0.3)


class TestSnap:
    def test_phases_applied_per_level(self):
        snap = gates.snap(3, [0.1, 0.2, 0.3])
        np.testing.assert_allclose(
            np.diag(snap), np.exp(1j * np.array([0.1, 0.2, 0.3])), atol=1e-12
        )

    def test_short_phase_list_padded(self):
        snap = gates.snap(4, [np.pi])
        np.testing.assert_allclose(np.diag(snap)[1:], np.ones(3), atol=1e-12)

    def test_too_many_phases_rejected(self):
        with pytest.raises(DimensionError):
            gates.snap(2, [0.1, 0.2, 0.3])

    @given(dim_strategy)
    def test_unitary(self, d):
        rng = np.random.default_rng(d)
        assert gates.is_unitary(gates.snap(d, rng.uniform(-np.pi, np.pi, d)))

    def test_rz_level_is_one_hot_snap(self):
        np.testing.assert_allclose(
            gates.rz_level(4, 2, 0.7), gates.snap(4, [0, 0, 0.7, 0]), atol=1e-12
        )


class TestLadderOperators:
    @given(dim_strategy)
    def test_commutator_truncation(self, d):
        """[a, a†] = I except at the truncation edge."""
        a = gates.annihilation(d)
        comm = a @ a.conj().T - a.conj().T @ a
        expected = np.eye(d)
        expected[-1, -1] = -(d - 1)  # truncation artefact
        np.testing.assert_allclose(comm, expected, atol=1e-12)

    @given(dim_strategy)
    def test_number_operator(self, d):
        a = gates.annihilation(d)
        np.testing.assert_allclose(
            a.conj().T @ a, gates.number_op(d), atol=1e-12
        )

    def test_annihilation_action(self):
        a = gates.annihilation(4)
        vec = np.zeros(4)
        vec[2] = 1.0
        out = a @ vec
        assert abs(out[1] - np.sqrt(2)) < 1e-12

    @given(dim_strategy)
    def test_quadrature_commutator(self, d):
        """[x, p] = i I away from the truncation edge."""
        x = gates.position_quadrature(d)
        p = gates.momentum_quadrature(d)
        comm = x @ p - p @ x
        np.testing.assert_allclose(
            comm[: d - 1, : d - 1], 1j * np.eye(d - 1), atol=1e-12
        )


class TestDisplacement:
    def test_small_alpha_nearly_unitary(self):
        disp = gates.displacement(20, 1.0)
        assert gates.is_unitary(disp, atol=1e-6)

    def test_vacuum_to_coherent(self):
        """D(alpha)|0> has Poisson photon statistics."""
        d, alpha = 25, 1.2
        vec = gates.displacement(d, alpha)[:, 0]
        n_mean = float(np.sum(np.arange(d) * np.abs(vec) ** 2))
        assert abs(n_mean - alpha**2) < 1e-3

    def test_inverse_displacement(self):
        d, alpha = 16, 0.7 + 0.3j
        prod = gates.displacement(d, alpha) @ gates.displacement(d, -alpha)
        # Truncation errors only near the edge; check the low-photon block.
        np.testing.assert_allclose(prod[:8, :8], np.eye(16)[:8, :8], atol=1e-6)


class TestBeamsplitter:
    @given(st.integers(min_value=2, max_value=5), angle_strategy)
    @settings(max_examples=20, deadline=None)
    def test_unitary(self, d, theta):
        assert gates.is_unitary(gates.beamsplitter(d, d, theta))

    def test_preserves_total_photon_number(self):
        d = 4
        bs = gates.beamsplitter(d, d, 0.7, 0.2)
        n_total = np.kron(gates.number_op(d), np.eye(d)) + np.kron(
            np.eye(d), gates.number_op(d)
        )
        np.testing.assert_allclose(
            bs @ n_total @ bs.conj().T, n_total, atol=1e-9
        )

    def test_swap_angle_exchanges_single_photon(self):
        """theta = pi/2 maps |1, 0> -> |0, 1> up to phase."""
        d = 3
        bs = gates.beamsplitter(d, d, np.pi / 2)
        vec = np.zeros(d * d)
        vec[1 * d + 0] = 1.0  # |1, 0>
        out = bs @ vec
        assert abs(abs(out[0 * d + 1]) - 1.0) < 1e-9


class TestCsum:
    @given(st.integers(min_value=2, max_value=6))
    def test_action(self, d):
        mat = gates.csum(d)
        for a in range(d):
            for b in range(d):
                vec = np.zeros(d * d)
                vec[a * d + b] = 1.0
                out = mat @ vec
                assert abs(out[a * d + (a + b) % d] - 1.0) < 1e-12

    @given(st.integers(min_value=2, max_value=6))
    def test_unitary_and_inverse(self, d):
        mat = gates.csum(d)
        assert gates.is_unitary(mat)
        np.testing.assert_allclose(
            mat @ gates.csum_dagger(d), np.eye(d * d), atol=1e-12
        )

    def test_qubit_case_is_cnot(self):
        cnot = np.array(
            [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=float
        )
        np.testing.assert_allclose(gates.csum(2), cnot, atol=1e-12)

    def test_mixed_dimensions(self):
        mat = gates.csum(2, 3)
        vec = np.zeros(6)
        vec[1 * 3 + 2] = 1.0  # |1, 2> -> |1, 0>
        out = mat @ vec
        assert abs(out[1 * 3 + 0] - 1.0) < 1e-12

    @given(st.integers(min_value=2, max_value=5))
    def test_order_d(self, d):
        """CSUM^d = I for equal dims."""
        np.testing.assert_allclose(
            np.linalg.matrix_power(gates.csum(d), d), np.eye(d * d), atol=1e-10
        )

    @given(st.integers(min_value=2, max_value=5))
    def test_fourier_route(self, d):
        """(I ⊗ F†) CZ (I ⊗ F) = CSUM — the synthesis identity."""
        f = gates.fourier(d)
        cz = gates.controlled_phase(d, d)
        route = (
            np.kron(np.eye(d), f.conj().T) @ cz @ np.kron(np.eye(d), f)
        )
        np.testing.assert_allclose(route, gates.csum(d), atol=1e-10)


class TestControlledOps:
    def test_controlled_phase_diagonal(self):
        cz = gates.controlled_phase(3, 3)
        assert np.allclose(cz, np.diag(np.diag(cz)))
        omega = np.exp(2j * np.pi / 3)
        assert abs(cz[4, 4] - omega) < 1e-12  # |1,1> picks up w^1

    def test_controlled_unitary_identity_block(self):
        u = gates.fourier(3)
        cu = gates.controlled_unitary(3, u, control_value=2)
        np.testing.assert_allclose(cu[:6, :6], np.eye(6), atol=1e-12)
        np.testing.assert_allclose(cu[6:, 6:], u, atol=1e-12)

    def test_controlled_unitary_bad_value(self):
        with pytest.raises(DimensionError):
            gates.controlled_unitary(3, np.eye(3), control_value=3)

    def test_cross_kerr_diagonal_entangler(self):
        ck = gates.cross_kerr(3, 3, np.pi)
        assert gates.is_unitary(ck)
        assert abs(ck[4, 4] - np.exp(-1j * np.pi)) < 1e-12


class TestPermutationGate:
    def test_cyclic_permutation_is_x(self):
        perm = [(k + 1) % 4 for k in range(4)]
        np.testing.assert_allclose(
            gates.permutation_gate(perm), gates.weyl_x(4), atol=1e-12
        )

    def test_rejects_non_permutation(self):
        with pytest.raises(DimensionError):
            gates.permutation_gate([0, 0, 1])


class TestMixer:
    @given(dim_strategy, angle_strategy)
    @settings(max_examples=25, deadline=None)
    def test_unitary(self, d, beta):
        assert gates.is_unitary(gates.qudit_mixer(d, beta))

    @given(dim_strategy)
    def test_hamiltonian_hermitian(self, d):
        assert gates.is_hermitian(gates.subspace_mixer_hamiltonian(d))

    def test_zero_angle_is_identity(self):
        np.testing.assert_allclose(gates.qudit_mixer(5, 0.0), np.eye(5), atol=1e-12)

    def test_mixes_all_levels(self):
        """Some angle must populate every level starting from |0>."""
        out = gates.qudit_mixer(4, 1.0)[:, 0]
        assert (np.abs(out) > 1e-4).all()


class TestGellMann:
    @given(st.integers(min_value=2, max_value=6))
    def test_count_and_tracelessness(self, d):
        basis = gates.gell_mann_basis(d)
        assert len(basis) == d * d - 1
        for mat in basis:
            assert abs(np.trace(mat)) < 1e-12
            assert gates.is_hermitian(mat)

    @given(st.integers(min_value=2, max_value=5))
    def test_orthonormality(self, d):
        basis = gates.gell_mann_basis(d)
        for i, gi in enumerate(basis):
            for j, gj in enumerate(basis):
                inner = np.trace(gi @ gj).real
                expected = 2.0 if i == j else 0.0
                assert abs(inner - expected) < 1e-10

    def test_qubit_case_is_paulis(self):
        sx, sy, sz = gates.gell_mann_basis(2)
        np.testing.assert_allclose(sx, [[0, 1], [1, 0]], atol=1e-12)
        np.testing.assert_allclose(sy, [[0, -1j], [1j, 0]], atol=1e-12)
        np.testing.assert_allclose(sz, [[1, 0], [0, -1]], atol=1e-12)

    def test_identity_completion(self):
        basis = gates.gell_mann_basis(3, include_identity=True)
        assert len(basis) == 9
        np.testing.assert_allclose(
            basis[0], np.sqrt(2 / 3) * np.eye(3), atol=1e-12
        )


class TestParity:
    def test_alternating_signs(self):
        np.testing.assert_allclose(
            np.diag(gates.parity_op(4)).real, [1, -1, 1, -1], atol=1e-12
        )


class TestChecks:
    def test_is_unitary_rejects_rectangular(self):
        assert not gates.is_unitary(np.ones((2, 3)))

    def test_is_unitary_rejects_non_unitary(self):
        assert not gates.is_unitary(np.diag([1.0, 2.0]))

    def test_is_hermitian(self):
        assert gates.is_hermitian(np.array([[1, 1j], [-1j, 2]]))
        assert not gates.is_hermitian(np.array([[1, 1j], [1j, 2]]))
