"""Tests for mixed-radix index arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import dims as dims_mod
from repro.core.exceptions import DimensionError

dims_strategy = st.lists(st.integers(min_value=2, max_value=6), min_size=1, max_size=5)


class TestValidateDims:
    def test_accepts_valid(self):
        assert dims_mod.validate_dims([2, 3, 10]) == (2, 3, 10)

    def test_rejects_empty(self):
        with pytest.raises(DimensionError):
            dims_mod.validate_dims([])

    def test_rejects_dimension_one(self):
        with pytest.raises(DimensionError):
            dims_mod.validate_dims([3, 1])

    def test_rejects_zero_and_negative(self):
        with pytest.raises(DimensionError):
            dims_mod.validate_dims([0])
        with pytest.raises(DimensionError):
            dims_mod.validate_dims([-2])

    def test_coerces_numpy_ints(self):
        out = dims_mod.validate_dims(np.array([2, 3]))
        assert out == (2, 3)
        assert all(isinstance(d, int) for d in out)


class TestTotalDim:
    def test_homogeneous(self):
        assert dims_mod.total_dim([3, 3, 3]) == 27

    def test_mixed(self):
        assert dims_mod.total_dim([2, 3, 10]) == 60

    def test_single(self):
        assert dims_mod.total_dim([7]) == 7


class TestStrides:
    def test_big_endian_place_values(self):
        assert dims_mod.strides([2, 3, 4]) == (12, 4, 1)

    def test_single_qudit(self):
        assert dims_mod.strides([5]) == (1,)

    def test_strides_reconstruct_index(self):
        dims = (3, 4, 2)
        s = dims_mod.strides(dims)
        digits = (2, 1, 1)
        expected = sum(k * w for k, w in zip(digits, s))
        assert dims_mod.digits_to_index(digits, dims) == expected


class TestIndexDigitsConversion:
    def test_known_values(self):
        assert dims_mod.index_to_digits(0, [3, 3]) == (0, 0)
        assert dims_mod.index_to_digits(4, [3, 3]) == (1, 1)
        assert dims_mod.index_to_digits(8, [3, 3]) == (2, 2)

    def test_mixed_dims(self):
        # |1, 2> in dims (2, 5) -> 1*5 + 2 = 7
        assert dims_mod.digits_to_index((1, 2), [2, 5]) == 7
        assert dims_mod.index_to_digits(7, [2, 5]) == (1, 2)

    def test_out_of_range_index(self):
        with pytest.raises(DimensionError):
            dims_mod.index_to_digits(9, [3, 3])
        with pytest.raises(DimensionError):
            dims_mod.index_to_digits(-1, [3, 3])

    def test_out_of_range_digit(self):
        with pytest.raises(DimensionError):
            dims_mod.digits_to_index((3, 0), [3, 3])

    def test_wrong_digit_count(self):
        with pytest.raises(DimensionError):
            dims_mod.digits_to_index((0,), [3, 3])

    @given(dims_strategy, st.data())
    def test_roundtrip_property(self, dims, data):
        dim = dims_mod.total_dim(dims)
        index = data.draw(st.integers(min_value=0, max_value=dim - 1))
        digits = dims_mod.index_to_digits(index, dims)
        assert dims_mod.digits_to_index(digits, dims) == index

    @given(dims_strategy)
    def test_enumeration_order(self, dims):
        """all_digit_tuples yields exactly flat-index order."""
        tuples = list(dims_mod.all_digit_tuples(dims))
        assert len(tuples) == dims_mod.total_dim(dims)
        for i, digits in enumerate(tuples):
            assert dims_mod.digits_to_index(digits, dims) == i


class TestBasisLabels:
    def test_compact_labels(self):
        assert dims_mod.basis_labels([2, 2]) == ["|00>", "|01>", "|10>", "|11>"]

    def test_separator_for_big_dims(self):
        labels = dims_mod.basis_labels([12])
        assert labels[10] == "|10>"
        assert labels[2] == "|2>"
        # two-qudit case must be comma separated to stay unambiguous
        labels2 = dims_mod.basis_labels([12, 2])
        assert labels2[-1] == "|11,1>"


class TestDigitMatrix:
    def test_matches_iterator(self):
        dims = (2, 3, 2)
        mat = dims_mod.digit_matrix(dims)
        expected = np.array(list(dims_mod.all_digit_tuples(dims)))
        np.testing.assert_array_equal(mat, expected)

    @given(dims_strategy)
    def test_rows_in_range(self, dims):
        mat = dims_mod.digit_matrix(dims)
        assert mat.shape == (dims_mod.total_dim(dims), len(dims))
        for col, d in enumerate(dims):
            assert mat[:, col].min() >= 0
            assert mat[:, col].max() == d - 1
