"""Tests for qudit noise channels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import channels as ch
from repro.core import gates
from repro.core.exceptions import DimensionError
from repro.core.random_ops import random_density_matrix

dim_strategy = st.integers(min_value=2, max_value=6)
prob_strategy = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def _check_cptp_on_random_state(channel, seed=0):
    rng = np.random.default_rng(seed)
    rho = random_density_matrix(channel.dim, rng=rng)
    out = channel.apply(rho)
    assert abs(np.trace(out) - 1.0) < 1e-10
    # positivity: eigenvalues >= -tol
    eigs = np.linalg.eigvalsh(out)
    assert eigs.min() > -1e-10


class TestQuditChannelClass:
    def test_rejects_empty(self):
        with pytest.raises(DimensionError):
            ch.QuditChannel([])

    def test_rejects_non_trace_preserving(self):
        with pytest.raises(DimensionError):
            ch.QuditChannel([0.5 * np.eye(3)])

    def test_rejects_mixed_dims(self):
        with pytest.raises(DimensionError):
            ch.QuditChannel([np.eye(3), np.eye(4)])

    def test_identity_channel_is_noop(self):
        rho = random_density_matrix(4, rng=np.random.default_rng(1))
        np.testing.assert_allclose(
            ch.identity_channel(4).apply(rho), rho, atol=1e-12
        )

    def test_compose(self):
        d1 = ch.depolarizing(3, 0.1)
        d2 = ch.dephasing(3, 0.2)
        composed = d1.compose(d2)
        rho = random_density_matrix(3, rng=np.random.default_rng(2))
        np.testing.assert_allclose(
            composed.apply(rho), d2.apply(d1.apply(rho)), atol=1e-10
        )

    def test_compose_dim_mismatch(self):
        with pytest.raises(DimensionError):
            ch.depolarizing(3, 0.1).compose(ch.depolarizing(4, 0.1))

    def test_unitary_channel(self):
        u = gates.fourier(3)
        rho = random_density_matrix(3, rng=np.random.default_rng(3))
        np.testing.assert_allclose(
            ch.unitary_channel(u).apply(rho), u @ rho @ u.conj().T, atol=1e-12
        )


class TestDepolarizing:
    @given(dim_strategy, prob_strategy)
    @settings(max_examples=30, deadline=None)
    def test_cptp(self, d, p):
        _check_cptp_on_random_state(ch.depolarizing(d, p), seed=d)

    def test_full_strength_contracts_bloch(self):
        """At p = 1 the channel output loses all Weyl coherences."""
        d = 3
        channel = ch.depolarizing(d, 1.0)
        rho = random_density_matrix(d, rng=np.random.default_rng(4))
        out = channel.apply(rho)
        # Full Weyl twirl leaves rho invariant only in its diagonal weight
        # structure; exact depolarising limit: output = I/d when p = 1 with
        # uniform non-identity Weyls acting on any rho? Not exactly I/d, but
        # the Weyl-averaged map is unital: check unitality instead.
        np.testing.assert_allclose(
            channel.apply(np.eye(d) / d), np.eye(d) / d, atol=1e-12
        )
        assert abs(np.trace(out) - 1.0) < 1e-10

    def test_zero_strength_is_identity(self):
        rho = random_density_matrix(3, rng=np.random.default_rng(5))
        np.testing.assert_allclose(
            ch.depolarizing(3, 0.0).apply(rho), rho, atol=1e-12
        )

    def test_average_fidelity_decreases_with_p(self):
        fids = [ch.depolarizing(3, p).average_fidelity() for p in (0.0, 0.1, 0.3)]
        assert fids[0] > fids[1] > fids[2]
        assert abs(fids[0] - 1.0) < 1e-12

    def test_bad_probability(self):
        with pytest.raises(DimensionError):
            ch.depolarizing(3, 1.5)


class TestDephasing:
    @given(dim_strategy, prob_strategy)
    @settings(max_examples=30, deadline=None)
    def test_cptp(self, d, p):
        _check_cptp_on_random_state(ch.dephasing(d, p), seed=d + 10)

    def test_preserves_populations(self):
        channel = ch.dephasing(4, 0.3)
        rho = random_density_matrix(4, rng=np.random.default_rng(6))
        out = channel.apply(rho)
        np.testing.assert_allclose(np.diag(out), np.diag(rho), atol=1e-12)

    def test_damps_coherences(self):
        channel = ch.dephasing(3, 0.5)
        rho = np.full((3, 3), 1 / 3, dtype=complex)
        out = channel.apply(rho)
        assert abs(out[0, 1]) < abs(rho[0, 1])


class TestPhotonLoss:
    @given(dim_strategy, prob_strategy)
    @settings(max_examples=30, deadline=None)
    def test_cptp(self, d, gamma):
        _check_cptp_on_random_state(ch.photon_loss(d, gamma), seed=d + 20)

    def test_vacuum_fixed_point(self):
        d = 5
        rho = np.zeros((d, d), dtype=complex)
        rho[0, 0] = 1.0
        np.testing.assert_allclose(
            ch.photon_loss(d, 0.7).apply(rho), rho, atol=1e-12
        )

    def test_mean_photon_decay(self):
        """E[n] after loss = (1 - gamma) * E[n] exactly."""
        d, gamma = 6, 0.3
        rho = np.zeros((d, d), dtype=complex)
        rho[4, 4] = 1.0
        out = ch.photon_loss(d, gamma).apply(rho)
        n_out = float(np.real(np.trace(out @ gates.number_op(d))))
        assert abs(n_out - 4 * (1 - gamma)) < 1e-10

    def test_full_loss_gives_vacuum(self):
        d = 4
        rho = random_density_matrix(d, rng=np.random.default_rng(7))
        out = ch.photon_loss(d, 1.0).apply(rho)
        assert abs(out[0, 0] - 1.0) < 1e-10

    def test_attractor_toward_zero(self):
        """Repeated loss concentrates population on |0> — NDAR's engine."""
        d = 4
        channel = ch.photon_loss(d, 0.2)
        rho = np.eye(d, dtype=complex) / d
        for _ in range(30):
            rho = channel.apply(rho)
        assert rho[0, 0].real > 0.99


class TestThermalHeating:
    @given(dim_strategy, st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_cptp(self, d, eps):
        _check_cptp_on_random_state(ch.thermal_heating(d, eps), seed=d + 30)

    def test_raises_population(self):
        d = 4
        rho = np.zeros((d, d), dtype=complex)
        rho[0, 0] = 1.0
        out = ch.thermal_heating(d, 0.1).apply(rho)
        assert abs(out[1, 1] - 0.1) < 1e-10

    def test_top_level_untouched(self):
        d = 3
        rho = np.zeros((d, d), dtype=complex)
        rho[d - 1, d - 1] = 1.0
        out = ch.thermal_heating(d, 0.1).apply(rho)
        assert abs(out[d - 1, d - 1] - 1.0) < 1e-10


class TestWeylChannel:
    def test_custom_probabilities(self):
        channel = ch.weyl_channel(3, {(1, 0): 0.1, (0, 1): 0.2})
        _check_cptp_on_random_state(channel, seed=40)

    def test_rejects_oversized_probabilities(self):
        with pytest.raises(DimensionError):
            ch.weyl_channel(3, {(1, 0): 0.7, (0, 1): 0.6})

    def test_pure_x_channel(self):
        channel = ch.weyl_channel(3, {(1, 0): 1.0})
        rho = np.zeros((3, 3), dtype=complex)
        rho[0, 0] = 1.0
        out = channel.apply(rho)
        assert abs(out[1, 1] - 1.0) < 1e-10


class TestCoherenceConversions:
    def test_loss_probability_limits(self):
        assert ch.loss_probability_from_t1(0.0, 1.0) == 0.0
        assert abs(ch.loss_probability_from_t1(1.0, 1.0) - (1 - np.exp(-1))) < 1e-12

    def test_loss_probability_monotone_in_duration(self):
        p1 = ch.loss_probability_from_t1(1e-6, 1e-3)
        p2 = ch.loss_probability_from_t1(2e-6, 1e-3)
        assert p2 > p1

    def test_dephasing_probability_bounded_by_half(self):
        assert ch.dephasing_probability_from_t2(1e9, 1.0) <= 0.5

    def test_invalid_t1(self):
        with pytest.raises(DimensionError):
            ch.loss_probability_from_t1(1.0, 0.0)

    def test_invalid_duration(self):
        with pytest.raises(DimensionError):
            ch.dephasing_probability_from_t2(-1.0, 1.0)
