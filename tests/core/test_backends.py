"""Tests for the unified backend registry and cross-backend agreement.

One parametrized suite drives a *shared* noisy circuit through every
registered engine and asserts the expectations agree (exactly between the
exact engines, within Monte-Carlo error for the stochastic ones), and that
fixed seeds replay identically through the :mod:`repro.core.rng` plumbing.
"""

import numpy as np
import pytest

from repro.core import (
    DensityMatrix,
    MPSState,
    QuditCircuit,
    Statevector,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.backends import SimulationBackend, StatevectorBackend
from repro.core.channels import dephasing, photon_loss
from repro.core.exceptions import SimulationError

DIMS = (3, 2, 3)
OBSERVABLE = np.diag([0.0, 1.0, 2.0])

#: Monte-Carlo options making the stochastic engines statistically tight.
BACKEND_OPTIONS = {
    "statevector": {},
    "density": {},
    "trajectories": {"n_trajectories": 4000, "rng": 1},
    "mps": {"n_trajectories": 1500, "rng": 2},
}


def _noiseless_circuit() -> QuditCircuit:
    qc = QuditCircuit(DIMS)
    qc.fourier(0)
    qc.csum(0, 2)
    qc.x(1)
    qc.controlled_phase(0, 1, 0.4)
    return qc


def _noisy_circuit() -> QuditCircuit:
    qc = _noiseless_circuit()
    qc.channel(photon_loss(3, 0.25).kraus, 0, name="loss")
    qc.channel(dephasing(3, 0.3).kraus, 2, name="deph")
    return qc


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {
            "statevector",
            "density",
            "trajectories",
            "mps",
        }

    def test_unknown_backend_raises(self):
        with pytest.raises(SimulationError):
            get_backend("imaginary-engine")

    def test_register_rejects_duplicates_and_nonbackends(self):
        with pytest.raises(SimulationError):
            register_backend("statevector", StatevectorBackend)
        with pytest.raises(SimulationError):
            register_backend("bogus", dict)

    def test_register_custom_backend(self):
        class Custom(StatevectorBackend):
            name = "custom-sv"

        register_backend("custom-sv", Custom, overwrite=True)
        result = get_backend("custom-sv").run(_noiseless_circuit())
        reference = get_backend("statevector").run(_noiseless_circuit())
        assert result.expectation(OBSERVABLE, 0) == pytest.approx(
            reference.expectation(OBSERVABLE, 0)
        )

    def test_defaults_merge_with_call_options(self):
        backend = get_backend("mps", max_bond=2)
        result = backend.run(_noiseless_circuit())
        assert max(result.states[0].bond_dimensions()) <= 2
        result = backend.run(_noiseless_circuit(), max_bond=None)
        assert isinstance(result.states[0], MPSState)


class TestCrossBackendAgreement:
    """All engines agree on a shared circuit."""

    @pytest.mark.parametrize("name", sorted(BACKEND_OPTIONS))
    def test_noiseless_expectation_matches_statevector(self, name):
        reference = float(
            np.real(
                Statevector.zero(DIMS)
                .evolve(_noiseless_circuit())
                .expectation(OBSERVABLE, 0)
            )
        )
        result = get_backend(name).run(
            _noiseless_circuit(), **BACKEND_OPTIONS[name]
        )
        assert result.expectation(OBSERVABLE, 0) == pytest.approx(
            reference, abs=1e-10
        )

    @pytest.mark.parametrize("name", ["density", "trajectories", "mps"])
    def test_noisy_expectation_matches_exact_density(self, name):
        exact = float(
            np.real(
                DensityMatrix.zero(DIMS)
                .evolve(_noisy_circuit())
                .expectation(OBSERVABLE, 0)
            )
        )
        result = get_backend(name).run(_noisy_circuit(), **BACKEND_OPTIONS[name])
        tolerance = 1e-10 if name == "density" else 0.05
        assert result.expectation(OBSERVABLE, 0) == pytest.approx(
            exact, abs=tolerance
        )

    @pytest.mark.parametrize("name", sorted(BACKEND_OPTIONS))
    def test_probabilities_agree(self, name):
        reference = (
            get_backend("density").run(_noisy_circuit())
            if name != "statevector"
            else get_backend("statevector").run(_noiseless_circuit())
        )
        circuit = (
            _noiseless_circuit() if name == "statevector" else _noisy_circuit()
        )
        result = get_backend(name).run(circuit, **BACKEND_OPTIONS[name])
        tolerance = 1e-10 if name in ("statevector", "density") else 0.05
        np.testing.assert_allclose(
            result.probabilities(), reference.probabilities(), atol=tolerance
        )

    @pytest.mark.parametrize("name", sorted(BACKEND_OPTIONS))
    def test_probabilities_of_matches_vector(self, name):
        circuit = (
            _noiseless_circuit() if name == "statevector" else _noisy_circuit()
        )
        result = get_backend(name).run(circuit, **BACKEND_OPTIONS[name])
        digits = (1, 0, 1)
        index = int(np.ravel_multi_index(digits, DIMS))
        assert result.probabilities_of(digits) == pytest.approx(
            float(result.probabilities()[index]), abs=1e-9
        )

    @pytest.mark.parametrize("name", sorted(BACKEND_OPTIONS))
    def test_sample_counts_sum_to_shots(self, name):
        circuit = (
            _noiseless_circuit() if name == "statevector" else _noisy_circuit()
        )
        options = dict(BACKEND_OPTIONS[name])
        if "n_trajectories" in options:
            options["n_trajectories"] = 64
        counts = get_backend(name).run(circuit, **options).sample(
            200, rng=np.random.default_rng(0)
        )
        assert sum(counts.values()) == 200


class TestSeedReplay:
    """A fixed seed replays identically through the core.rng plumbing."""

    @pytest.mark.parametrize("name", ["trajectories", "mps"])
    def test_stochastic_run_replays(self, name):
        first = get_backend(name).run(
            _noisy_circuit(), n_trajectories=32, rng=11
        )
        second = get_backend(name).run(
            _noisy_circuit(), n_trajectories=32, rng=11
        )
        assert first.sample(50, rng=3) == second.sample(50, rng=3)
        assert first.expectation(OBSERVABLE, 0) == pytest.approx(
            second.expectation(OBSERVABLE, 0), abs=0.0
        )

    @pytest.mark.parametrize("name", sorted(BACKEND_OPTIONS))
    def test_sampling_replays_with_seed(self, name):
        circuit = (
            _noiseless_circuit() if name == "statevector" else _noisy_circuit()
        )
        options = dict(BACKEND_OPTIONS[name])
        if "n_trajectories" in options:
            options["n_trajectories"] = 16
        result = get_backend(name).run(circuit, **options)
        assert result.sample(80, rng=7) == result.sample(80, rng=7)


class TestStepwiseEvolution:
    """prepare() + run(initial=...) chains match one-shot evolution."""

    @pytest.mark.parametrize("name", ["statevector", "density", "mps"])
    def test_stepwise_matches_oneshot(self, name):
        circuit = _noiseless_circuit()
        backend = get_backend(name)
        state = backend.prepare(DIMS)
        for _ in range(3):
            state = backend.run(circuit, initial=state)
        oneshot = backend.run(circuit.repeated(3))
        assert state.expectation(OBSERVABLE, 0) == pytest.approx(
            oneshot.expectation(OBSERVABLE, 0), abs=1e-9
        )

    def test_prepare_digits(self):
        result = get_backend("mps").prepare(DIMS, digits=(2, 1, 0))
        assert result.probabilities_of((2, 1, 0)) == pytest.approx(1.0)

    def test_trajectory_stepwise_carries_batch(self):
        backend = get_backend("trajectories")
        state = backend.prepare(DIMS, n_trajectories=24, rng=5)
        state = backend.run(_noisy_circuit(), initial=state)
        assert state.batch.shape == (np.prod(DIMS), 24)

    def test_initial_domain_states_accepted(self):
        circuit = _noiseless_circuit()
        sv = Statevector.zero(DIMS)
        value = get_backend("statevector").run(circuit, initial=sv).expectation(
            OBSERVABLE, 0
        )
        rho = DensityMatrix.zero(DIMS)
        assert get_backend("density").run(circuit, initial=rho).expectation(
            OBSERVABLE, 0
        ) == pytest.approx(value, abs=1e-10)
        mps = MPSState.zero(DIMS)
        assert get_backend("mps").run(circuit, initial=mps).expectation(
            OBSERVABLE, 0
        ) == pytest.approx(value, abs=1e-10)


class TestBackendErrors:
    def test_statevector_rejects_noise(self):
        with pytest.raises(SimulationError):
            get_backend("statevector").run(_noisy_circuit())

    def test_trajectories_needs_positive_count(self):
        with pytest.raises(SimulationError):
            get_backend("trajectories").run(_noisy_circuit(), n_trajectories=0)

    def test_mps_truncation_error_surfaced(self):
        result = get_backend("mps", max_bond=2).run(
            _noisy_circuit(), n_trajectories=4, rng=0
        )
        assert result.truncation_error >= 0.0
        assert isinstance(result.truncation_error, float)


class TestStepwiseRngContinuation:
    """Regression: stepwise runs must not re-seed (and replay) per step."""

    @pytest.mark.parametrize("name", ["trajectories", "mps"])
    def test_steps_draw_independent_randomness(self, name):
        # A circuit that is *only* a strong channel: with per-step
        # re-seeding every step would replay identical Kraus choices and
        # the two-step outcome would equal the one-step outcome replayed.
        qc = QuditCircuit((2,))
        qc.fourier(0)
        qc.channel(photon_loss(2, 0.5).kraus, 0, name="loss")
        backend = get_backend(name)
        options = {"n_trajectories": 64, "rng": 0}
        one = backend.run(qc, **options)
        two_a = backend.run(qc, initial=backend.run(qc, **options), rng=0)
        two_b = backend.run(qc, initial=backend.run(qc, **options))
        # Ignoring the per-call seed on continuation: both must agree.
        assert two_a.sample(50, rng=1) == two_b.sample(50, rng=1)
        # And the second step consumed *fresh* draws, not a replay: the
        # underlying state arrays differ from the first step's.
        if name == "trajectories":
            assert not np.allclose(one.batch, two_a.batch)

    def test_mps_widens_ensemble_on_noisy_continuation(self):
        qc = _noisy_circuit()
        backend = get_backend("mps")
        state = backend.prepare(DIMS, rng=3)  # default width 1
        state = backend.run(qc, initial=state, n_trajectories=16)
        assert len(state.states) == 16
        # Widened copies diverge through the shared generator.
        vectors = {
            tuple(np.round(s.to_statevector().vector, 6)) for s in state.states
        }
        assert len(vectors) > 1

    def test_noiseless_continuation_keeps_single_state(self):
        backend = get_backend("mps")
        state = backend.prepare(DIMS, rng=0)
        state = backend.run(_noiseless_circuit(), initial=state, n_trajectories=8)
        assert len(state.states) == 1
