"""Tests for the unified backend registry and cross-backend agreement.

One parametrized suite drives a *shared* noisy circuit through every
registered engine and asserts the expectations agree (exactly between the
exact engines, within Monte-Carlo error for the stochastic ones), and that
fixed seeds replay identically through the :mod:`repro.core.rng` plumbing.
"""

import numpy as np
import pytest

from repro.core import (
    DensityMatrix,
    MPSState,
    QuditCircuit,
    Statevector,
    available_backends,
    get_backend,
    register_backend,
)
from repro.core.backends import StatevectorBackend
from repro.core.channels import dephasing, photon_loss
from repro.core.exceptions import SimulationError

DIMS = (3, 2, 3)
OBSERVABLE = np.diag([0.0, 1.0, 2.0])

#: Monte-Carlo options making the stochastic engines statistically tight
#: (the exact engines — density, lpdo — need none).
BACKEND_OPTIONS = {
    "statevector": {},
    "density": {},
    "trajectories": {"n_trajectories": 4000, "rng": 1},
    "mps": {"n_trajectories": 1500, "rng": 2},
    "lpdo": {},
}

#: Engines whose noisy answers are exact (tolerance 1e-10, not Monte-Carlo).
EXACT_NOISY = {"density", "lpdo"}


def _noiseless_circuit() -> QuditCircuit:
    qc = QuditCircuit(DIMS)
    qc.fourier(0)
    qc.csum(0, 2)
    qc.x(1)
    qc.controlled_phase(0, 1, 0.4)
    return qc


def _noisy_circuit() -> QuditCircuit:
    qc = _noiseless_circuit()
    qc.channel(photon_loss(3, 0.25).kraus, 0, name="loss")
    qc.channel(dephasing(3, 0.3).kraus, 2, name="deph")
    return qc


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(available_backends()) >= {
            "statevector",
            "density",
            "trajectories",
            "mps",
            "lpdo",
        }

    def test_unknown_backend_raises(self):
        with pytest.raises(SimulationError):
            get_backend("imaginary-engine")

    def test_register_rejects_duplicates_and_nonbackends(self):
        with pytest.raises(SimulationError):
            register_backend("statevector", StatevectorBackend)
        with pytest.raises(SimulationError):
            register_backend("bogus", dict)

    def test_register_custom_backend(self):
        class Custom(StatevectorBackend):
            name = "custom-sv"

        register_backend("custom-sv", Custom, overwrite=True)
        result = get_backend("custom-sv").run(_noiseless_circuit())
        reference = get_backend("statevector").run(_noiseless_circuit())
        assert result.expectation(OBSERVABLE, 0) == pytest.approx(
            reference.expectation(OBSERVABLE, 0)
        )

    def test_defaults_merge_with_call_options(self):
        backend = get_backend("mps", max_bond=2)
        result = backend.run(_noiseless_circuit())
        assert max(result.states[0].bond_dimensions()) <= 2
        result = backend.run(_noiseless_circuit(), max_bond=None)
        assert isinstance(result.states[0], MPSState)


class TestCrossBackendAgreement:
    """All engines agree on a shared circuit."""

    @pytest.mark.parametrize("name", sorted(BACKEND_OPTIONS))
    def test_noiseless_expectation_matches_statevector(self, name):
        reference = float(
            np.real(
                Statevector.zero(DIMS)
                .evolve(_noiseless_circuit())
                .expectation(OBSERVABLE, 0)
            )
        )
        result = get_backend(name).run(
            _noiseless_circuit(), **BACKEND_OPTIONS[name]
        )
        assert result.expectation(OBSERVABLE, 0) == pytest.approx(
            reference, abs=1e-10
        )

    @pytest.mark.parametrize("name", ["density", "trajectories", "mps", "lpdo"])
    def test_noisy_expectation_matches_exact_density(self, name):
        exact = float(
            np.real(
                DensityMatrix.zero(DIMS)
                .evolve(_noisy_circuit())
                .expectation(OBSERVABLE, 0)
            )
        )
        result = get_backend(name).run(_noisy_circuit(), **BACKEND_OPTIONS[name])
        tolerance = 1e-10 if name in EXACT_NOISY else 0.05
        assert result.expectation(OBSERVABLE, 0) == pytest.approx(
            exact, abs=tolerance
        )

    @pytest.mark.parametrize("name", sorted(BACKEND_OPTIONS))
    def test_probabilities_agree(self, name):
        reference = (
            get_backend("density").run(_noisy_circuit())
            if name != "statevector"
            else get_backend("statevector").run(_noiseless_circuit())
        )
        circuit = (
            _noiseless_circuit() if name == "statevector" else _noisy_circuit()
        )
        result = get_backend(name).run(circuit, **BACKEND_OPTIONS[name])
        tolerance = 1e-10 if name in EXACT_NOISY | {"statevector"} else 0.05
        np.testing.assert_allclose(
            result.probabilities(), reference.probabilities(), atol=tolerance
        )

    @pytest.mark.parametrize("name", sorted(BACKEND_OPTIONS))
    def test_probabilities_of_matches_vector(self, name):
        circuit = (
            _noiseless_circuit() if name == "statevector" else _noisy_circuit()
        )
        result = get_backend(name).run(circuit, **BACKEND_OPTIONS[name])
        digits = (1, 0, 1)
        index = int(np.ravel_multi_index(digits, DIMS))
        assert result.probabilities_of(digits) == pytest.approx(
            float(result.probabilities()[index]), abs=1e-9
        )

    @pytest.mark.parametrize("name", sorted(BACKEND_OPTIONS))
    def test_sample_counts_sum_to_shots(self, name):
        circuit = (
            _noiseless_circuit() if name == "statevector" else _noisy_circuit()
        )
        options = dict(BACKEND_OPTIONS[name])
        if "n_trajectories" in options:
            options["n_trajectories"] = 64
        counts = get_backend(name).run(circuit, **options).sample(
            200, rng=np.random.default_rng(0)
        )
        assert sum(counts.values()) == 200


class TestSeedReplay:
    """A fixed seed replays identically through the core.rng plumbing."""

    @pytest.mark.parametrize("name", ["trajectories", "mps"])
    def test_stochastic_run_replays(self, name):
        first = get_backend(name).run(
            _noisy_circuit(), n_trajectories=32, rng=11
        )
        second = get_backend(name).run(
            _noisy_circuit(), n_trajectories=32, rng=11
        )
        assert first.sample(50, rng=3) == second.sample(50, rng=3)
        assert first.expectation(OBSERVABLE, 0) == pytest.approx(
            second.expectation(OBSERVABLE, 0), abs=0.0
        )

    @pytest.mark.parametrize("name", sorted(BACKEND_OPTIONS))
    def test_sampling_replays_with_seed(self, name):
        circuit = (
            _noiseless_circuit() if name == "statevector" else _noisy_circuit()
        )
        options = dict(BACKEND_OPTIONS[name])
        if "n_trajectories" in options:
            options["n_trajectories"] = 16
        result = get_backend(name).run(circuit, **options)
        assert result.sample(80, rng=7) == result.sample(80, rng=7)


class TestStepwiseEvolution:
    """prepare() + run(initial=...) chains match one-shot evolution."""

    @pytest.mark.parametrize("name", ["statevector", "density", "mps", "lpdo"])
    def test_stepwise_matches_oneshot(self, name):
        circuit = _noiseless_circuit()
        backend = get_backend(name)
        state = backend.prepare(DIMS)
        for _ in range(3):
            state = backend.run(circuit, initial=state)
        oneshot = backend.run(circuit.repeated(3))
        assert state.expectation(OBSERVABLE, 0) == pytest.approx(
            oneshot.expectation(OBSERVABLE, 0), abs=1e-9
        )

    def test_prepare_digits(self):
        result = get_backend("mps").prepare(DIMS, digits=(2, 1, 0))
        assert result.probabilities_of((2, 1, 0)) == pytest.approx(1.0)

    def test_trajectory_stepwise_carries_batch(self):
        backend = get_backend("trajectories")
        state = backend.prepare(DIMS, n_trajectories=24, rng=5)
        state = backend.run(_noisy_circuit(), initial=state)
        assert state.batch.shape == (np.prod(DIMS), 24)

    def test_initial_domain_states_accepted(self):
        circuit = _noiseless_circuit()
        sv = Statevector.zero(DIMS)
        value = get_backend("statevector").run(circuit, initial=sv).expectation(
            OBSERVABLE, 0
        )
        rho = DensityMatrix.zero(DIMS)
        assert get_backend("density").run(circuit, initial=rho).expectation(
            OBSERVABLE, 0
        ) == pytest.approx(value, abs=1e-10)
        mps = MPSState.zero(DIMS)
        assert get_backend("mps").run(circuit, initial=mps).expectation(
            OBSERVABLE, 0
        ) == pytest.approx(value, abs=1e-10)


class TestBackendErrors:
    def test_statevector_rejects_noise(self):
        with pytest.raises(SimulationError):
            get_backend("statevector").run(_noisy_circuit())

    def test_trajectories_needs_positive_count(self):
        with pytest.raises(SimulationError):
            get_backend("trajectories").run(_noisy_circuit(), n_trajectories=0)

    def test_mps_truncation_error_surfaced(self):
        result = get_backend("mps", max_bond=2).run(
            _noisy_circuit(), n_trajectories=4, rng=0
        )
        assert result.truncation_error >= 0.0
        assert isinstance(result.truncation_error, float)


class TestLPDOBackend:
    """The locally-purified engine: exact noisy answers, tracked errors."""

    def test_noisy_run_is_deterministic(self):
        first = get_backend("lpdo").run(_noisy_circuit())
        second = get_backend("lpdo").run(_noisy_circuit())
        assert first.expectation(OBSERVABLE, 0) == second.expectation(
            OBSERVABLE, 0
        )
        np.testing.assert_array_equal(
            first.probabilities(), second.probabilities()
        )

    def test_noisy_stepwise_matches_oneshot_exactly(self):
        """Unlike mps/trajectories, noisy stepwise evolution is exact."""
        circuit = _noisy_circuit()
        backend = get_backend("lpdo")
        state = backend.prepare(DIMS)
        for _ in range(3):
            state = backend.run(circuit, initial=state)
        oneshot = backend.run(circuit.repeated(3))
        assert state.expectation(OBSERVABLE, 0) == pytest.approx(
            oneshot.expectation(OBSERVABLE, 0), abs=1e-9
        )
        exact = DensityMatrix.zero(DIMS).evolve(_noisy_circuit().repeated(3))
        assert state.expectation(OBSERVABLE, 0) == pytest.approx(
            float(np.real(exact.expectation(OBSERVABLE, 0))), abs=1e-8
        )

    def test_error_counters_surfaced(self):
        result = get_backend("lpdo", max_bond=2, max_kraus=2).run(
            _noisy_circuit().repeated(3)
        )
        assert isinstance(result.truncation_error, float)
        assert isinstance(result.purification_error, float)
        assert result.purification_error > 0.0

    def test_initial_mps_carries_caps_and_error_account(self):
        """Starting from a bounded-chi MPS must keep its caps and its
        accumulated truncation_error unless options explicitly override."""
        big = QuditCircuit((3,) * 8)
        for i in range(8):
            big.fourier(i)
        for i in range(7):
            big.controlled_phase(i, i + 1, 0.9)
        mps = MPSState.zero((3,) * 8, max_bond=2).evolve(big)
        assert mps.truncation_error > 0
        big.channel(photon_loss(3, 0.1).kraus, 0, name="loss")
        carried = get_backend("lpdo").run(big, initial=mps)
        assert carried.state.max_bond == 2
        assert carried.truncation_error >= mps.truncation_error
        overridden = get_backend("lpdo", max_bond=8).run(big, initial=mps)
        assert overridden.state.max_bond == 8

    def test_initial_domain_states_accepted(self):
        circuit = _noiseless_circuit()
        reference = get_backend("lpdo").run(circuit).expectation(OBSERVABLE, 0)
        sv = Statevector.zero(DIMS)
        assert get_backend("lpdo").run(circuit, initial=sv).expectation(
            OBSERVABLE, 0
        ) == pytest.approx(reference, abs=1e-10)
        mps = MPSState.zero(DIMS)
        assert get_backend("lpdo").run(circuit, initial=mps).expectation(
            OBSERVABLE, 0
        ) == pytest.approx(reference, abs=1e-10)
        with pytest.raises(SimulationError):
            get_backend("lpdo").run(circuit, initial=DensityMatrix.zero(DIMS))


class TestProbabilitiesOfNormalization:
    """Regression: probabilities_of must renormalise exactly like
    probabilities(), even when trajectory norms / traces drift."""

    def test_trajectory_result_consistent_under_norm_drift(self):
        from repro.core.backends import TrajectoryResult

        rng = np.random.default_rng(0)
        dims = (2, 3)
        # Trajectories with *different* norms (non-trace-preserving drift).
        batch = rng.normal(size=(6, 4)) + 1j * rng.normal(size=(6, 4))
        batch[:, 1] *= 0.7
        batch[:, 3] *= 1.4
        result = TrajectoryResult(batch, dims, rng)
        for index in range(6):
            digits = tuple(int(x) for x in np.unravel_index(index, dims))
            assert result.probabilities_of(digits) == pytest.approx(
                float(result.probabilities()[index]), abs=1e-14
            )

    def test_density_result_consistent_under_trace_drift(self):
        from repro.core.backends import DensityResult

        rng = np.random.default_rng(1)
        dims = (2, 2)
        mat = rng.normal(size=(4, 4))
        rho = mat @ mat.T  # positive, trace != 1
        result = DensityResult(DensityMatrix(rho.astype(complex), dims))
        for index in range(4):
            digits = tuple(int(x) for x in np.unravel_index(index, dims))
            assert result.probabilities_of(digits) == pytest.approx(
                float(result.probabilities()[index]), abs=1e-14
            )

    def test_density_result_consistent_with_negative_diagonal(self):
        """Both surfaces must use the *clipped* diagonal sum, not the raw
        trace, or a rounding-negative entry makes them disagree."""
        from repro.core.backends import DensityResult

        dims = (2, 2)
        rho = np.diag([0.6, 0.5, -0.1, 0.0]).astype(complex)
        result = DensityResult(DensityMatrix(rho, dims))
        for index in range(4):
            digits = tuple(int(x) for x in np.unravel_index(index, dims))
            assert result.probabilities_of(digits) == pytest.approx(
                float(result.probabilities()[index]), abs=1e-14
            )


class TestNegativeProbabilityClipping:
    """Regression: tiny float-noise negatives must not crash the samplers."""

    def test_density_sample_with_negative_diagonal_noise(self):
        dims = (2, 2)
        rho = np.diag([0.5, 0.5, -1e-17, -1e-17]).astype(complex)
        state = DensityMatrix(rho, dims)
        counts = state.sample(100, rng=np.random.default_rng(0))
        assert sum(counts.values()) == 100
        assert all(digits[0] == 0 for digits in counts)

    def test_trajectory_sample_survives_rounding(self):
        from repro.core.backends import TrajectoryResult

        rng = np.random.default_rng(2)
        batch = np.zeros((4, 2), dtype=complex)
        batch[0] = 1.0
        result = TrajectoryResult(batch, (2, 2), rng)
        counts = result.sample(50, rng=3)
        assert counts == {(0, 0): 50}

    def test_sanitize_probabilities_helper(self):
        from repro.core.rng import sanitize_probabilities

        probs = sanitize_probabilities(np.array([0.5, -1e-18, 0.25]))
        assert (probs >= 0).all()
        assert probs.sum() == pytest.approx(1.0)
        with pytest.raises(SimulationError):
            sanitize_probabilities(np.array([-1.0, 0.0]))


class TestStepwiseRngContinuation:
    """Regression: stepwise runs must not re-seed (and replay) per step."""

    @pytest.mark.parametrize("name", ["trajectories", "mps"])
    def test_steps_draw_independent_randomness(self, name):
        # A circuit that is *only* a strong channel: with per-step
        # re-seeding every step would replay identical Kraus choices and
        # the two-step outcome would equal the one-step outcome replayed.
        qc = QuditCircuit((2,))
        qc.fourier(0)
        qc.channel(photon_loss(2, 0.5).kraus, 0, name="loss")
        backend = get_backend(name)
        options = {"n_trajectories": 64, "rng": 0}
        one = backend.run(qc, **options)
        two_a = backend.run(qc, initial=backend.run(qc, **options), rng=0)
        two_b = backend.run(qc, initial=backend.run(qc, **options))
        # Ignoring the per-call seed on continuation: both must agree.
        assert two_a.sample(50, rng=1) == two_b.sample(50, rng=1)
        # And the second step consumed *fresh* draws, not a replay: the
        # underlying state arrays differ from the first step's.
        if name == "trajectories":
            assert not np.allclose(one.batch, two_a.batch)

    def test_mps_widens_ensemble_on_noisy_continuation(self):
        qc = _noisy_circuit()
        backend = get_backend("mps")
        state = backend.prepare(DIMS, rng=3)  # default width 1
        state = backend.run(qc, initial=state, n_trajectories=16)
        assert len(state.states) == 16
        # Widened copies diverge through the shared generator.
        vectors = {
            tuple(np.round(s.to_statevector().vector, 6)) for s in state.states
        }
        assert len(vectors) > 1

    def test_noiseless_continuation_keeps_single_state(self):
        backend = get_backend("mps")
        state = backend.prepare(DIMS, rng=0)
        state = backend.run(_noiseless_circuit(), initial=state, n_trajectories=8)
        assert len(state.states) == 1
