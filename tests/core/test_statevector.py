"""Tests for the statevector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QuditCircuit, Statevector, gates
from repro.core.exceptions import DimensionError, SimulationError
from repro.core.random_ops import haar_unitary, random_statevector
from repro.core.statevector import embed_unitary


class TestConstructors:
    def test_zero_state(self):
        sv = Statevector.zero([3, 4])
        assert sv.dim == 12
        assert abs(sv.vector[0] - 1.0) < 1e-12
        assert abs(sv.norm() - 1.0) < 1e-12

    def test_basis_state(self):
        sv = Statevector.basis([3, 3], (2, 1))
        assert abs(sv.vector[7] - 1.0) < 1e-12

    def test_uniform(self):
        sv = Statevector.uniform([2, 3])
        np.testing.assert_allclose(sv.probabilities(), np.full(6, 1 / 6), atol=1e-12)

    def test_wrong_size_rejected(self):
        with pytest.raises(DimensionError):
            Statevector(np.zeros(5), [3, 3])

    def test_normalize_zero_state_fails(self):
        sv = Statevector(np.zeros(9), [3, 3])
        with pytest.raises(SimulationError):
            sv.normalized()


class TestApply:
    def test_single_qudit_gate(self):
        sv = Statevector.zero([3]).apply(gates.weyl_x(3), 0)
        assert abs(sv.vector[1] - 1.0) < 1e-12

    def test_gate_on_second_wire(self):
        sv = Statevector.zero([2, 3]).apply(gates.weyl_x(3), 1)
        assert abs(sv.vector[1] - 1.0) < 1e-12  # |0,1> index = 1

    def test_two_qudit_gate_wire_order(self):
        """csum with control on wire 1, target wire 0."""
        sv = Statevector.basis([3, 3], (0, 1))
        out = sv.apply(gates.csum(3), (1, 0))  # control = wire 1 value 1
        # target wire 0 becomes 0 + 1 = 1 -> |1,1> = index 4
        assert abs(out.vector[4] - 1.0) < 1e-12

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_norm_preserved_by_random_unitaries(self, d, n):
        rng = np.random.default_rng(42)
        sv = Statevector(random_statevector(d**n, rng), [d] * n)
        for wire in range(n):
            sv = sv.apply(haar_unitary(d, rng), wire)
        assert abs(sv.norm() - 1.0) < 1e-10

    def test_apply_matches_embed_unitary(self):
        rng = np.random.default_rng(7)
        dims = (2, 3, 2)
        sv = Statevector(random_statevector(12, rng), dims)
        u = haar_unitary(6, rng)
        direct = sv.apply(u, (2, 1)).vector
        full = embed_unitary(u, dims, (2, 1))
        np.testing.assert_allclose(direct, full @ sv.vector, atol=1e-10)


class TestEvolve:
    def test_ghz_generalisation(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        probs = Statevector.zero([3, 3]).evolve(qc).probabilities()
        np.testing.assert_allclose(probs[[0, 4, 8]], np.full(3, 1 / 3), atol=1e-10)
        assert probs[[1, 2, 3, 5, 6, 7]].max() < 1e-12

    def test_dim_mismatch(self):
        qc = QuditCircuit([3, 3])
        with pytest.raises(DimensionError):
            Statevector.zero([3, 4]).evolve(qc)

    def test_channel_rejected(self):
        from repro.core.channels import depolarizing

        qc = QuditCircuit([3])
        qc.channel(depolarizing(3, 0.1).kraus, 0)
        with pytest.raises(SimulationError):
            Statevector.zero([3]).evolve(qc)

    def test_measure_marker_ignored(self):
        qc = QuditCircuit([3])
        qc.fourier(0)
        qc.measure()
        sv = Statevector.zero([3]).evolve(qc)
        assert abs(sv.norm() - 1.0) < 1e-12


class TestObservables:
    def test_expectation_number_operator(self):
        sv = Statevector.basis([4], (2,))
        val = sv.expectation(gates.number_op(4), 0)
        assert abs(val - 2.0) < 1e-12

    def test_expectation_local_on_multi_wire(self):
        sv = Statevector.basis([3, 4], (1, 3))
        assert abs(sv.expectation(gates.number_op(4), 1) - 3.0) < 1e-12

    def test_global_expectation_default_targets(self):
        sv = Statevector.uniform([2, 2])
        op = np.diag([0.0, 1.0, 2.0, 3.0]).astype(complex)
        assert abs(sv.expectation(op) - 1.5) < 1e-12

    def test_fidelity_self(self):
        rng = np.random.default_rng(3)
        sv = Statevector(random_statevector(9, rng), [3, 3])
        assert abs(sv.fidelity(sv) - 1.0) < 1e-12

    def test_fidelity_orthogonal(self):
        a = Statevector.basis([3], (0,))
        b = Statevector.basis([3], (1,))
        assert a.fidelity(b) < 1e-15

    def test_fidelity_dim_mismatch(self):
        with pytest.raises(DimensionError):
            Statevector.zero([3]).fidelity(Statevector.zero([4]))


class TestSampling:
    def test_sample_deterministic_state(self):
        counts = Statevector.basis([3, 3], (2, 0)).sample(100)
        assert counts == {(2, 0): 100}

    def test_sample_total_shots(self):
        rng = np.random.default_rng(0)
        counts = Statevector.uniform([3, 3]).sample(500, rng=rng)
        assert sum(counts.values()) == 500

    def test_sample_uniform_coverage(self):
        rng = np.random.default_rng(0)
        counts = Statevector.uniform([2, 2]).sample(4000, rng=rng)
        for outcome in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            assert abs(counts[outcome] / 4000 - 0.25) < 0.05

    def test_measure_qudit_collapses(self):
        rng = np.random.default_rng(5)
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        sv = Statevector.zero([3, 3]).evolve(qc)
        outcome, collapsed = sv.measure_qudit(0, rng=rng)
        # correlated state: wire 1 must equal wire 0's outcome
        probs = collapsed.probabilities()
        assert abs(probs[outcome * 3 + outcome] - 1.0) < 1e-10


class TestPartialTrace:
    def test_product_state_reduction(self):
        sv = Statevector.basis([3, 4], (2, 1))
        rho = sv.partial_trace([0])
        expected = np.zeros((3, 3))
        expected[2, 2] = 1.0
        np.testing.assert_allclose(rho, expected, atol=1e-12)

    def test_entangled_state_is_mixed(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        sv = Statevector.zero([3, 3]).evolve(qc)
        rho = sv.partial_trace([1])
        np.testing.assert_allclose(rho, np.eye(3) / 3, atol=1e-10)

    @given(st.integers(min_value=2, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_trace_is_one(self, d):
        rng = np.random.default_rng(d)
        sv = Statevector(random_statevector(d * d, rng), [d, d])
        assert abs(np.trace(sv.partial_trace([0])) - 1.0) < 1e-10
