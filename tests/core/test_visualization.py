"""Tests for text-mode visualisation."""

import numpy as np
import pytest

from repro.core import QuditCircuit
from repro.core.channels import depolarizing
from repro.core.exceptions import DimensionError
from repro.core.visualization import draw_circuit, wigner_function, wigner_text


class TestDrawCircuit:
    def test_one_line_per_wire(self):
        qc = QuditCircuit([3, 3, 4])
        qc.fourier(0)
        qc.csum(0, 1)
        text = draw_circuit(qc)
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("q0(d=3)")
        assert lines[2].startswith("q2(d=4)")

    def test_gate_labels_present(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        text = draw_circuit(qc)
        assert "[fourier]" in text
        assert "[csum]" in text
        assert "[*]" in text  # second wire of csum

    def test_channel_and_measure_decoration(self):
        qc = QuditCircuit([3])
        qc.channel(depolarizing(3, 0.1).kraus, 0, name="depol")
        qc.measure(0)
        text = draw_circuit(qc)
        assert "{depol}" in text
        assert "<measure>" in text

    def test_truncation(self):
        qc = QuditCircuit([2])
        for _ in range(40):
            qc.fourier(0)
        text = draw_circuit(qc, max_columns=5)
        assert "..." in text


class TestWigner:
    def test_vacuum_gaussian_positive(self):
        d = 24  # window edge |alpha| = 2, far below the cutoff
        vac = np.zeros((d, d), dtype=complex)
        vac[0, 0] = 1.0
        grid = np.linspace(-2, 2, 9)
        wigner = wigner_function(vac, grid, grid)
        assert wigner.min() > -1e-4  # vacuum is non-negative
        centre = wigner[4, 4]
        assert abs(centre - 1.0 / np.pi) < 0.01  # W(0) = 1/pi for vacuum

    def test_fock1_negative_at_origin(self):
        """|1> has W(0) = -1/pi — the textbook negativity."""
        d = 12
        rho = np.zeros((d, d), dtype=complex)
        rho[1, 1] = 1.0
        wigner = wigner_function(rho, np.array([0.0]), np.array([0.0]))
        assert abs(wigner[0, 0] + 1.0 / np.pi) < 0.01

    def test_normalisation_coarse(self):
        """Integral of W over a window covering the vacuum ~ 1.

        The window edge must stay far below the Fock cutoff: truncated
        displacements at |alpha|^2 ~ d are badly non-unitary and corrupt
        the displaced parity (physics of the truncation, not a bug).
        """
        d = 30
        vac = np.zeros((d, d), dtype=complex)
        vac[0, 0] = 1.0
        grid = np.linspace(-3, 3, 31)
        wigner = wigner_function(vac, grid, grid)
        step = grid[1] - grid[0]
        assert abs(wigner.sum() * step * step - 1.0) < 0.02

    def test_shape_validation(self):
        with pytest.raises(DimensionError):
            wigner_function(np.ones((2, 3)), np.array([0.0]), np.array([0.0]))

    def test_text_rendering(self):
        d = 10
        rho = np.zeros((d, d), dtype=complex)
        rho[1, 1] = 1.0
        art = wigner_text(rho, extent=2.5, resolution=11)
        lines = art.splitlines()
        assert len(lines) == 11
        # Fock-1 negativity at the centre renders as a negative glyph
        assert lines[5][5] in "-="
