"""Property and unit tests for the matrix-product-state backend.

The headline guarantee: at unbounded bond dimension the MPS evolution of
any supported circuit matches the dense statevector to 1e-8 on mixed-dim
registers up to 7 wires (acceptance criterion of the MPS PR).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DensityMatrix, QuditCircuit, Statevector, gates
from repro.core.channels import dephasing, depolarizing, photon_loss
from repro.core.exceptions import DimensionError, SimulationError
from repro.core.mps import MPSState, operator_schmidt_factors
from repro.core.random_ops import haar_unitary, random_statevector
from repro.core.structure import classify_gate


def _random_diagonal(dim, rng):
    return np.diag(np.exp(1j * rng.uniform(0, 2 * np.pi, dim)))


def _random_monomial(dim, rng):
    perm = rng.permutation(dim)
    mat = np.zeros((dim, dim), dtype=complex)
    mat[perm, np.arange(dim)] = np.exp(1j * rng.uniform(0, 2 * np.pi, dim))
    return mat


_MAKERS = [_random_diagonal, _random_monomial, lambda d, rng: haar_unitary(d, rng)]


@st.composite
def _circuit_case(draw):
    """Random mixed-dim register (<= 7 wires) and random gate list."""
    n = draw(st.integers(min_value=2, max_value=7))
    dims = tuple(draw(st.integers(min_value=2, max_value=4)) for _ in range(n))
    n_gates = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    gate_specs = []
    for _ in range(n_gates):
        k = draw(st.integers(min_value=1, max_value=2))
        wires = tuple(draw(st.permutations(range(n)))[:k])
        maker = draw(st.integers(min_value=0, max_value=2))
        gate_specs.append((wires, maker))
    return dims, gate_specs, seed


def _build_circuit(dims, gate_specs, seed):
    rng = np.random.default_rng(seed)
    qc = QuditCircuit(dims)
    for wires, maker in gate_specs:
        gate_dim = 1
        for w in wires:
            gate_dim *= dims[w]
        qc.unitary(_MAKERS[maker](gate_dim, rng), wires, name=f"g{maker}")
    return qc


class TestFullChiMatchesDense:
    """Acceptance criterion: unbounded-chi MPS == dense statevector @ 1e-8."""

    @given(_circuit_case())
    @settings(max_examples=60, deadline=None)
    def test_random_circuits(self, case):
        dims, gate_specs, seed = case
        qc = _build_circuit(dims, gate_specs, seed)
        dense = Statevector.zero(dims).evolve(qc)
        mps = MPSState.zero(dims).evolve(qc)
        np.testing.assert_allclose(
            mps.to_statevector().vector, dense.vector, atol=1e-8
        )
        assert mps.truncation_error < 1e-12
        assert mps.dims == tuple(dims)  # swap routing restored the layout

    def test_seven_qutrit_mixed_dim_qaoa_style(self):
        """A deep structured circuit on a 7-wire mixed-dim register."""
        dims = (3, 2, 4, 3, 2, 3, 4)
        rng = np.random.default_rng(3)
        qc = QuditCircuit(dims)
        for i in range(7):
            qc.fourier(i)
        for layer in range(2):
            for i, j in [(0, 3), (1, 2), (4, 6), (2, 5), (0, 6)]:
                qc.controlled_phase(i, j, 0.3 + 0.1 * layer)
            for i in range(7):
                qc.unitary(
                    haar_unitary(dims[i], rng), i, name="mix"
                )
        for i, j in [(3, 0), (6, 2)]:  # unsorted targets
            if dims[i] == dims[j]:
                qc.csum(i, j)
        dense = Statevector.zero(dims).evolve(qc)
        mps = MPSState.zero(dims).evolve(qc)
        np.testing.assert_allclose(
            mps.to_statevector().vector, dense.vector, atol=1e-8
        )

    def test_contiguous_three_wire_gate(self):
        """Qubit-encoding style: a dense gate spanning a contiguous run."""
        dims = (2, 2, 2, 2)
        rng = np.random.default_rng(5)
        qc = QuditCircuit(dims)
        for i in range(4):
            qc.fourier(i)
        qc.unitary(haar_unitary(8, rng), (1, 2, 3), name="block")
        dense = Statevector.zero(dims).evolve(qc)
        mps = MPSState.zero(dims).evolve(qc)
        np.testing.assert_allclose(
            mps.to_statevector().vector, dense.vector, atol=1e-8
        )


class TestStructuredFastPath:
    def test_operator_schmidt_reconstructs(self):
        rng = np.random.default_rng(0)
        for matrix in (
            gates.csum(3, 3),
            gates.controlled_phase(3, 4, 0.7),
            haar_unitary(6, rng),
        ):
            d_left = 3
            d_right = matrix.shape[0] // d_left
            left, right = operator_schmidt_factors(matrix, d_left, d_right)
            rebuilt = sum(
                np.kron(left[k], right[k]) for k in range(left.shape[0])
            )
            np.testing.assert_allclose(rebuilt, matrix, atol=1e-10)

    def test_structured_pair_gate_does_no_svd(self):
        """Adjacent diagonal gate under the cap: zero truncation error and
        the bond grows exactly by the operator Schmidt rank."""
        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.fourier(1)
        mps = MPSState.zero(dims, max_bond=16).evolve(qc)
        assert mps.bond_dimensions() == (1,)
        structure = classify_gate(gates.controlled_phase(3, 3, 0.5))
        rank = operator_schmidt_factors(structure.matrix, 3, 3)[0].shape[0]
        mps.apply_unitary(structure.matrix, (0, 1), structure=structure)
        assert mps.bond_dimensions() == (rank,)
        assert mps.truncation_error == 0.0

    def test_schmidt_factors_cached_on_structure(self):
        structure = classify_gate(gates.csum(3, 3))
        mps = MPSState.zero((3, 3))
        mps.apply_unitary(structure.matrix, (0, 1), structure=structure)
        assert ("op_schmidt", 3, 3) in structure.plans


class TestTruncation:
    def _entangling_circuit(self, dims, layers, seed=0):
        rng = np.random.default_rng(seed)
        qc = QuditCircuit(dims)
        for i in range(len(dims)):
            qc.fourier(i)
        for _ in range(layers):
            for i in range(len(dims) - 1):
                gate_dim = dims[i] * dims[i + 1]
                qc.unitary(haar_unitary(gate_dim, rng), (i, i + 1), name="hr")
        return qc

    def test_bond_cap_enforced_and_error_tracked(self):
        dims = (2,) * 8
        qc = self._entangling_circuit(dims, layers=4)
        capped = MPSState.zero(dims, max_bond=4).evolve(qc)
        assert max(capped.bond_dimensions()) <= 4
        assert capped.truncation_error > 0
        assert abs(capped.norm() - 1.0) < 1e-10

    def test_larger_chi_is_more_accurate(self):
        dims = (2,) * 8
        qc = self._entangling_circuit(dims, layers=3)
        exact = Statevector.zero(dims).evolve(qc)
        fids = []
        for chi in (2, 4, 8):
            approx = MPSState.zero(dims, max_bond=chi).evolve(qc)
            overlap = np.vdot(exact.vector, approx.to_statevector().vector)
            fids.append(abs(overlap) ** 2)
        assert fids[0] <= fids[1] + 1e-12 <= fids[2] + 2e-12
        assert fids[2] > 0.9

    def test_truncation_error_monotone_nondecreasing(self):
        dims = (2,) * 6
        qc = self._entangling_circuit(dims, layers=2)
        mps = MPSState.zero(dims, max_bond=2)
        seen = [0.0]
        for instruction in qc:
            mps.apply_instruction(instruction)
            assert mps.truncation_error >= seen[-1]
            seen.append(mps.truncation_error)
        assert seen[-1] > 0


class TestChannelsAndReset:
    def test_trajectory_average_matches_density(self):
        dims = (3, 2, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.csum(0, 2)
        qc.channel(photon_loss(3, 0.3).kraus, 0, name="loss")
        qc.channel(depolarizing(2, 0.4).kraus, 1, name="depol")
        qc.channel(dephasing(3, 0.5).kraus, 2, name="deph")
        exact = DensityMatrix.zero(dims).evolve(qc)
        op = np.diag([0.0, 1.0, 2.0])
        target = float(np.real(exact.expectation(op, 0)))
        gen = np.random.default_rng(2)
        values = [
            float(np.real(MPSState.zero(dims).evolve(qc, rng=gen).expectation(op, 0)))
            for _ in range(600)
        ]
        assert abs(np.mean(values) - target) < 0.05

    def test_two_site_depolarizing_distant_wires(self):
        """Joint channel on non-adjacent wires routes via swaps."""
        dims = (2, 3, 2)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.channel(depolarizing(4, 0.6).kraus, (0, 2), name="depol2")
        exact = DensityMatrix.zero(dims).evolve(qc)
        op = np.diag([0.0, 1.0])
        target = float(np.real(exact.expectation(op, 0)))
        gen = np.random.default_rng(4)
        values = [
            float(np.real(MPSState.zero(dims).evolve(qc, rng=gen).expectation(op, 0)))
            for _ in range(600)
        ]
        assert abs(np.mean(values) - target) < 0.05

    def test_channel_keeps_state_normalised(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        qc.channel(photon_loss(3, 0.4).kraus, 1, name="loss")
        mps = MPSState.zero([3, 3]).evolve(qc, rng=0)
        assert abs(mps.norm() - 1.0) < 1e-10

    def test_reset_sends_wire_to_zero(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        qc.reset(1)
        mps = MPSState.zero([3, 3]).evolve(qc, rng=1)
        probs = mps.probabilities().reshape(3, 3)
        assert probs[:, 1:].max() < 1e-12
        assert abs(mps.norm() - 1.0) < 1e-10

    def test_seeded_evolution_replays(self):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.channel(depolarizing(3, 0.5).kraus, 0, name="depol")
        a = MPSState.zero([3, 3]).evolve(qc, rng=9)
        b = MPSState.zero([3, 3]).evolve(qc, rng=9)
        np.testing.assert_array_equal(
            a.to_statevector().vector, b.to_statevector().vector
        )


class TestObservables:
    def _random_state(self, dims, seed=0):
        rng = np.random.default_rng(seed)
        dim = int(np.prod(dims))
        sv = Statevector(random_statevector(dim, rng), dims)
        return sv, MPSState.from_statevector(sv)

    @pytest.mark.parametrize(
        "dims, targets",
        [
            ((3, 2, 4, 2), (0,)),
            ((3, 2, 4, 2), (2,)),
            ((3, 2, 4, 2), (1, 2)),       # adjacent
            ((3, 2, 4, 2), (0, 3)),       # distant
            ((3, 2, 4, 2), (3, 1)),       # unsorted distant
            ((2, 2, 2, 2), (0, 1, 2)),    # contiguous run
        ],
    )
    def test_expectation_matches_statevector(self, dims, targets):
        sv, mps = self._random_state(dims, seed=11)
        rng = np.random.default_rng(1)
        gate_dim = 1
        for t in targets:
            gate_dim *= dims[t]
        op = rng.normal(size=(gate_dim, gate_dim))
        op = op + op.T  # hermitian
        expected = complex(sv.expectation(op, targets))
        got = mps.expectation(op, targets)
        assert abs(got - expected) < 1e-10

    def test_amplitude_and_probability(self):
        dims = (3, 2, 3)
        sv, mps = self._random_state(dims, seed=2)
        digits = (2, 1, 0)
        index = np.ravel_multi_index(digits, dims)
        assert abs(mps.amplitude(digits) - sv.vector[index]) < 1e-12
        assert abs(
            mps.probability_of(digits) - abs(sv.vector[index]) ** 2
        ) < 1e-12

    def test_sampling_statistics_and_replay(self):
        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.csum(0, 1)
        mps = MPSState.zero(dims).evolve(qc)
        counts = mps.sample(3000, rng=0)
        assert set(counts) == {(0, 0), (1, 1), (2, 2)}
        for value in counts.values():
            assert abs(value / 3000 - 1 / 3) < 0.05
        assert mps.sample(100, rng=5) == mps.sample(100, rng=5)

    def test_fidelity(self):
        dims = (2, 3, 2)
        sv, mps = self._random_state(dims, seed=7)
        assert abs(mps.fidelity(mps) - 1.0) < 1e-10
        other = MPSState.zero(dims)
        expected = abs(sv.vector[0]) ** 2
        assert abs(mps.fidelity(other) - expected) < 1e-10


class TestConstructorsAndErrors:
    def test_from_statevector_roundtrip(self):
        dims = (3, 2, 4)
        rng = np.random.default_rng(0)
        sv = Statevector(random_statevector(24, rng), dims)
        mps = MPSState.from_statevector(sv)
        np.testing.assert_allclose(
            mps.to_statevector().vector, sv.vector, atol=1e-12
        )

    def test_basis_and_zero(self):
        mps = MPSState.basis((3, 4), (2, 1))
        assert mps.probability_of((2, 1)) == pytest.approx(1.0)
        assert MPSState.zero((3, 4)).probability_of((0, 0)) == pytest.approx(1.0)
        assert mps.bond_dimensions() == (1,)

    def test_dimension_validation(self):
        with pytest.raises(DimensionError):
            MPSState.basis((3,), (0, 0))
        with pytest.raises(DimensionError):
            MPSState.basis((3,), (5,))
        qc = QuditCircuit([3, 3])
        with pytest.raises(DimensionError):
            MPSState.zero([3, 4]).evolve(qc)

    def test_three_wire_noncontiguous_gate_rejected(self):
        dims = (2, 2, 2, 2, 2)
        mps = MPSState.zero(dims)
        rng = np.random.default_rng(0)
        with pytest.raises(SimulationError):
            mps.apply_unitary(haar_unitary(8, rng), (0, 2, 4))

    def test_huge_register_refuses_densification(self):
        mps = MPSState.zero((3,) * 20)
        with pytest.raises(SimulationError):
            mps.to_statevector()

    def test_copy_is_independent(self):
        mps = MPSState.zero((3, 3))
        clone = mps.copy()
        clone.apply_unitary(gates.fourier(3), 0)
        assert mps.probability_of((0, 0)) == pytest.approx(1.0)
        assert clone.probability_of((0, 0)) == pytest.approx(1.0 / 3)


class TestScale:
    def test_twenty_qutrits_bounded_chi(self):
        """A register no dense backend can hold evolves and samples fine."""
        dims = (3,) * 20
        qc = QuditCircuit(dims)
        for i in range(20):
            qc.fourier(i)
        for i in range(19):
            qc.controlled_phase(i, i + 1, 0.4)
        qc.csum(0, 19)  # long-range routing at scale
        mps = MPSState.zero(dims, max_bond=8).evolve(qc)
        assert max(mps.bond_dimensions()) <= 8
        counts = mps.sample(5, rng=0)
        assert sum(counts.values()) == 5
        value = mps.expectation(np.diag([0.0, 1.0, 2.0]), 10)
        assert 0.0 <= float(np.real(value)) <= 2.0


class TestObservableCacheKeying:
    """Regression: a structure shared across registers must not reuse an
    axis-permuted matrix built for different wire dimensions."""

    def test_same_operator_bytes_different_register_dims(self):
        rng = np.random.default_rng(0)
        op = rng.normal(size=(6, 6))
        op = np.asarray(op + op.T, dtype=complex)
        values = []
        for dims in ((2, 3), (3, 2)):
            sv = Statevector(random_statevector(6, rng), dims)
            mps = MPSState.from_statevector(sv)
            got = mps.expectation(op, (1, 0))  # descending targets -> permute
            expected = complex(sv.expectation(op, (1, 0)))
            assert abs(got - expected) < 1e-10
            values.append(got)
        # The two registers genuinely disagree, so a stale cache would fail.
        assert abs(values[0] - values[1]) > 1e-12

    def test_repeated_expectation_uses_cached_structure(self):
        from repro.core.mps import _classify_observable

        op = np.diag([0.0, 1.0, 2.0]).astype(complex)
        assert _classify_observable(op) is _classify_observable(op.copy())
