"""Tests for the density-matrix simulator."""

import numpy as np
import pytest

from repro.core import DensityMatrix, QuditCircuit, Statevector, gates
from repro.core.channels import dephasing, depolarizing, photon_loss
from repro.core.exceptions import DimensionError
from repro.core.random_ops import random_statevector


def _bell_circuit(d=3):
    qc = QuditCircuit([d, d])
    qc.fourier(0)
    qc.csum(0, 1)
    return qc


class TestConstructors:
    def test_zero(self):
        dm = DensityMatrix.zero([3, 3])
        assert abs(dm.matrix[0, 0] - 1.0) < 1e-12
        assert abs(dm.trace() - 1.0) < 1e-12

    def test_from_statevector_purity(self):
        rng = np.random.default_rng(0)
        sv = Statevector(random_statevector(9, rng), [3, 3])
        dm = DensityMatrix.from_statevector(sv)
        assert abs(dm.purity() - 1.0) < 1e-10

    def test_maximally_mixed(self):
        dm = DensityMatrix.maximally_mixed([3, 3])
        assert abs(dm.purity() - 1.0 / 9.0) < 1e-12

    def test_shape_validation(self):
        with pytest.raises(DimensionError):
            DensityMatrix(np.eye(8), [3, 3])


class TestUnitaryEvolution:
    def test_matches_statevector(self):
        qc = _bell_circuit()
        dm = DensityMatrix.zero([3, 3]).evolve(qc)
        sv = Statevector.zero([3, 3]).evolve(qc)
        np.testing.assert_allclose(
            dm.matrix, np.outer(sv.vector, sv.vector.conj()), atol=1e-10
        )

    def test_apply_unitary_on_second_wire(self):
        dm = DensityMatrix.zero([2, 3]).apply_unitary(gates.weyl_x(3), 1)
        assert abs(dm.matrix[1, 1] - 1.0) < 1e-12

    def test_purity_preserved(self):
        dm = DensityMatrix.zero([3, 3]).evolve(_bell_circuit())
        assert abs(dm.purity() - 1.0) < 1e-10

    def test_dim_mismatch(self):
        with pytest.raises(DimensionError):
            DensityMatrix.zero([3, 4]).evolve(_bell_circuit())


class TestChannelEvolution:
    def test_depolarizing_reduces_purity(self):
        dm = DensityMatrix.zero([3, 3]).evolve(_bell_circuit())
        noisy = dm.apply_channel(depolarizing(3, 0.2), 0)
        assert noisy.purity() < dm.purity()
        assert abs(noisy.trace() - 1.0) < 1e-10

    def test_channel_instruction_in_circuit(self):
        qc = _bell_circuit()
        qc.channel(depolarizing(3, 0.2).kraus, 0, name="depol")
        dm = DensityMatrix.zero([3, 3]).evolve(qc)
        assert dm.purity() < 1.0
        assert abs(dm.trace() - 1.0) < 1e-10

    def test_photon_loss_on_one_mode(self):
        """Loss on one mode of |2,2> lowers only that mode's mean photon."""
        dm = DensityMatrix.basis([4, 4], (2, 2))
        noisy = dm.apply_channel(photon_loss(4, 0.5), 0)
        n0 = np.real(np.trace(noisy.partial_trace([0]) @ gates.number_op(4)))
        n1 = np.real(np.trace(noisy.partial_trace([1]) @ gates.number_op(4)))
        assert abs(n0 - 1.0) < 1e-10
        assert abs(n1 - 2.0) < 1e-10

    def test_dephasing_kills_bell_coherence(self):
        dm = DensityMatrix.zero([3, 3]).evolve(_bell_circuit())
        heavy = dm
        for _ in range(40):
            heavy = heavy.apply_channel(dephasing(3, 0.5), 0)
        # Off-diagonal Bell coherences vanish; populations survive.
        assert abs(heavy.matrix[0, 4]) < 1e-6
        assert abs(heavy.matrix[0, 0] - 1.0 / 3.0) < 1e-10

    def test_reset_instruction(self):
        qc = QuditCircuit([3])
        qc.x(0)
        qc.reset(0)
        dm = DensityMatrix.zero([3]).evolve(qc)
        assert abs(dm.matrix[0, 0] - 1.0) < 1e-10


class TestObservables:
    def test_expectation_global(self):
        dm = DensityMatrix.maximally_mixed([2, 2])
        op = np.diag([0.0, 1.0, 2.0, 3.0]).astype(complex)
        assert abs(dm.expectation(op) - 1.5) < 1e-12

    def test_expectation_local(self):
        dm = DensityMatrix.basis([3, 4], (1, 3))
        assert abs(dm.expectation(gates.number_op(4), 1) - 3.0) < 1e-12

    def test_expectation_global_shape_check(self):
        dm = DensityMatrix.zero([3, 3])
        with pytest.raises(DimensionError):
            dm.expectation(np.eye(3))

    def test_fidelity_with_pure(self):
        qc = _bell_circuit()
        sv = Statevector.zero([3, 3]).evolve(qc)
        dm = DensityMatrix.zero([3, 3]).evolve(qc)
        assert abs(dm.fidelity_with_pure(sv) - 1.0) < 1e-10

    def test_fidelity_degrades_with_noise(self):
        qc = _bell_circuit()
        sv = Statevector.zero([3, 3]).evolve(qc)
        dm = DensityMatrix.zero([3, 3]).evolve(qc)
        noisy = dm.apply_channel(depolarizing(3, 0.3), 0)
        assert noisy.fidelity_with_pure(sv) < 1.0

    def test_probability_of(self):
        dm = DensityMatrix.basis([3, 3], (2, 1))
        assert abs(dm.probability_of((2, 1)) - 1.0) < 1e-12
        assert dm.probability_of((0, 0)) < 1e-12


class TestPartialTrace:
    def test_bell_reduction_maximally_mixed(self):
        dm = DensityMatrix.zero([3, 3]).evolve(_bell_circuit())
        np.testing.assert_allclose(dm.partial_trace([0]), np.eye(3) / 3, atol=1e-10)

    def test_keep_order(self):
        dm = DensityMatrix.basis([2, 3], (1, 2))
        rho = dm.partial_trace([1, 0])  # dims (3, 2), state |2,1>
        assert abs(rho[2 * 2 + 1, 2 * 2 + 1] - 1.0) < 1e-10

    def test_trace_preserved(self):
        dm = DensityMatrix.maximally_mixed([2, 3, 2])
        assert abs(np.trace(dm.partial_trace([1])) - 1.0) < 1e-10


class TestSampling:
    def test_sample_bell_correlations(self):
        rng = np.random.default_rng(1)
        dm = DensityMatrix.zero([3, 3]).evolve(_bell_circuit())
        counts = dm.sample(300, rng=rng)
        assert all(a == b for (a, b) in counts)
        assert sum(counts.values()) == 300


class TestStructuredChannelFastPath:
    """The vectorised Kraus paths agree with the generic apply_kraus loop."""

    def _reference_evolve(self, dims, circuit):
        state = DensityMatrix.zero(dims)
        for instruction in circuit:
            if instruction.kind == "unitary":
                state = state.apply_unitary(instruction.matrix, instruction.qudits)
            elif instruction.kind == "channel":
                state = state.apply_kraus(instruction.kraus, instruction.qudits)
        return state

    def test_all_diagonal_channel_single_multiply(self):
        dims = (3, 4)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.csum(0, 1)
        qc.channel(dephasing(4, 0.3).kraus, 1, name="deph")
        rng = np.random.default_rng(0)
        diag_a = np.sqrt(0.6) * np.exp(1j * rng.uniform(0, 1, 12))
        diag_b = np.sqrt(0.4) * np.exp(1j * rng.uniform(0, 1, 12))
        qc.channel([np.diag(diag_a), np.diag(diag_b)], (0, 1), name="diag2")
        fast = DensityMatrix.zero(dims).evolve(qc)
        reference = self._reference_evolve(dims, qc)
        np.testing.assert_allclose(fast.matrix, reference.matrix, atol=1e-12)
        assert abs(fast.trace() - 1.0) < 1e-10

    def test_mixed_structure_channels_match(self):
        dims = (3, 2, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.csum(0, 2)
        qc.channel(depolarizing(3, 0.25).kraus, 0, name="depol")  # monomial ops
        qc.channel(photon_loss(3, 0.35).kraus, 2, name="loss")  # column-sparse
        qc.channel(dephasing(2, 0.2).kraus, 1, name="deph")  # diagonal
        fast = DensityMatrix.zero(dims).evolve(qc)
        reference = self._reference_evolve(dims, qc)
        np.testing.assert_allclose(fast.matrix, reference.matrix, atol=1e-12)

    def test_unsorted_targets_diagonal_channel(self):
        """Broadcast path handles ket/bra target axes in any wire order."""
        dims = (2, 3)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.fourier(1)
        rng = np.random.default_rng(3)
        diag_a = np.sqrt(0.7) * np.exp(1j * rng.uniform(0, 1, 6))
        diag_b = np.sqrt(0.3) * np.exp(1j * rng.uniform(0, 1, 6))
        qc.channel([np.diag(diag_a), np.diag(diag_b)], (1, 0), name="diag-rev")
        fast = DensityMatrix.zero(dims).evolve(qc)
        reference = self._reference_evolve(dims, qc)
        np.testing.assert_allclose(fast.matrix, reference.matrix, atol=1e-12)

    def test_kraus_structures_drive_dispatch(self):
        qc = QuditCircuit([3])
        qc.channel(dephasing(3, 0.4).kraus, 0, name="deph")
        structures = qc.instructions[0].kraus_structures()
        assert all(s.kind == "diagonal" for s in structures)
