"""Tests for single-wire gate-run fusion (statevector + trajectory engines)."""

import numpy as np

from repro.core import QuditCircuit, Statevector, TrajectorySimulator, gates
from repro.core.random_ops import haar_unitary, random_statevector
from repro.core.statevector import fused_instructions
from repro.core.structure import DIAGONAL, PERMUTATION


def _reference_evolve(state, circuit):
    for instruction in circuit:
        if instruction.kind == "unitary":
            state = state.apply(instruction.matrix, instruction.qudits)
    return state


class TestFusedInstructions:
    def test_runs_fused_and_breaks_on_interleaving(self):
        dims = (3, 4, 2)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.z(0)
        qc.x(0)  # run of 3 on wire 0
        qc.csum(0, 1)  # breaks the run
        qc.z(1)
        qc.mixer(1, 0.3)  # run of 2 on wire 1
        qc.fourier(2)  # lone gate stays as-is
        plan = fused_instructions(qc)
        assert [p.name for p in plan] == ["fused[3]", "csum", "fused[2]", "fourier"]
        assert plan[0].qudits == (0,)
        assert plan[0].params["fused"] == ("fourier", "z", "x")

    def test_fused_product_order_is_correct(self):
        """Fusion multiplies in application order: last gate leftmost."""
        dims = (3,)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.z(0)
        plan = fused_instructions(qc)
        expected = gates.weyl_z(3) @ gates.fourier(3)
        np.testing.assert_allclose(plan[0].matrix, expected, atol=1e-14)

    def test_structured_runs_stay_structured(self):
        """diag*diag stays diagonal; diag*perm collapses to one monomial."""
        qc = QuditCircuit([4])
        qc.z(0)
        qc.snap(0, [0.1, 0.2, 0.3])
        assert fused_instructions(qc)[0].structure().kind == DIAGONAL
        qc2 = QuditCircuit([4])
        qc2.z(0)
        qc2.x(0)
        assert fused_instructions(qc2)[0].structure().kind == PERMUTATION

    def test_plan_cached_until_circuit_grows(self):
        qc = QuditCircuit([3])
        qc.z(0)
        qc.x(0)
        plan = fused_instructions(qc)
        assert fused_instructions(qc) is plan
        qc.fourier(0)
        assert len(fused_instructions(qc)) == 1  # re-fused into one run of 3
        assert fused_instructions(qc)[0].params["fused"] == ("z", "x", "fourier")

    def test_channels_and_measure_break_runs(self):
        from repro.core.channels import dephasing

        qc = QuditCircuit([3])
        qc.z(0)
        qc.channel(dephasing(3, 0.2).kraus, 0, name="deph")
        qc.x(0)
        plan = fused_instructions(qc)
        assert [p.name for p in plan] == ["z", "deph", "x"]


class TestFusedEvolution:
    def test_statevector_evolve_matches_unfused(self):
        rng = np.random.default_rng(0)
        dims = (3, 2, 4)
        qc = QuditCircuit(dims)
        for _ in range(3):
            for wire in (0, 1, 2):
                qc.unitary(haar_unitary(dims[wire], rng), wire, name="u")
                qc.z(wire)
        qc.csum(0, 1)
        for _ in range(2):
            qc.unitary(haar_unitary(4, rng), 2, name="u")
        sv = Statevector(random_statevector(24, rng), dims)
        np.testing.assert_allclose(
            sv.evolve(qc).vector,
            _reference_evolve(sv, qc).vector,
            atol=1e-12,
        )

    def test_trajectory_engine_uses_fusion(self):
        rng = np.random.default_rng(1)
        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.unitary(haar_unitary(3, rng), 0, name="a")
        qc.unitary(haar_unitary(3, rng), 0, name="b")
        qc.csum(0, 1)
        simulator = TrajectorySimulator(qc, seed=0)
        plan = simulator._execution_plan()
        names = [
            payload.name
            for kind, payload in plan
            if kind == "instruction"
        ]
        assert "fused[2]" in names
        final = simulator.run_batch(3)
        expected = Statevector.zero(dims).evolve(qc).vector
        for b in range(3):
            np.testing.assert_allclose(final[:, b], expected, atol=1e-12)
