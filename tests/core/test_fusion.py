"""Tests for single-wire gate-run fusion (statevector + trajectory engines)."""

import numpy as np

from repro.core import QuditCircuit, Statevector, TrajectorySimulator, gates
from repro.core.random_ops import haar_unitary, random_statevector
from repro.core.statevector import fused_instructions
from repro.core.structure import DIAGONAL, PERMUTATION


def _reference_evolve(state, circuit):
    for instruction in circuit:
        if instruction.kind == "unitary":
            state = state.apply(instruction.matrix, instruction.qudits)
    return state


class TestFusedInstructions:
    def test_runs_fused_and_breaks_on_interleaving(self):
        dims = (3, 4, 2)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.z(0)
        qc.x(0)  # run of 3 on wire 0
        qc.csum(0, 1)  # breaks the run
        qc.z(1)
        qc.mixer(1, 0.3)  # run of 2 on wire 1
        qc.fourier(2)  # lone gate stays as-is
        plan = fused_instructions(qc)
        assert [p.name for p in plan] == ["fused[3]", "csum", "fused[2]", "fourier"]
        assert plan[0].qudits == (0,)
        assert plan[0].params["fused"] == ("fourier", "z", "x")

    def test_fused_product_order_is_correct(self):
        """Fusion multiplies in application order: last gate leftmost."""
        dims = (3,)
        qc = QuditCircuit(dims)
        qc.fourier(0)
        qc.z(0)
        plan = fused_instructions(qc)
        expected = gates.weyl_z(3) @ gates.fourier(3)
        np.testing.assert_allclose(plan[0].matrix, expected, atol=1e-14)

    def test_structured_runs_stay_structured(self):
        """diag*diag stays diagonal; diag*perm collapses to one monomial."""
        qc = QuditCircuit([4])
        qc.z(0)
        qc.snap(0, [0.1, 0.2, 0.3])
        assert fused_instructions(qc)[0].structure().kind == DIAGONAL
        qc2 = QuditCircuit([4])
        qc2.z(0)
        qc2.x(0)
        assert fused_instructions(qc2)[0].structure().kind == PERMUTATION

    def test_plan_cached_until_circuit_grows(self):
        qc = QuditCircuit([3])
        qc.z(0)
        qc.x(0)
        plan = fused_instructions(qc)
        assert fused_instructions(qc) is plan
        qc.fourier(0)
        assert len(fused_instructions(qc)) == 1  # re-fused into one run of 3
        assert fused_instructions(qc)[0].params["fused"] == ("z", "x", "fourier")

    def test_plan_invalidated_by_length_preserving_replacement(self):
        """Regression: a cache keyed on len(circuit) served a stale plan
        after replace_instruction — the mutation counter key must not."""
        from repro.core.circuit import Instruction

        qc = QuditCircuit([3])
        qc.z(0)
        qc.x(0)
        stale = fused_instructions(qc)
        replacement = Instruction(
            name="fourier",
            kind="unitary",
            qudits=(0,),
            matrix=gates.fourier(3),
        )
        qc.replace_instruction(1, replacement)
        fresh = fused_instructions(qc)
        assert fresh is not stale
        expected = gates.fourier(3) @ gates.weyl_z(3)
        np.testing.assert_allclose(fresh[0].matrix, expected, atol=1e-14)
        # The evolved state reflects the replacement, not the stale plan.
        sv = Statevector.zero([3]).evolve(qc)
        direct = Statevector.zero([3]).apply(gates.weyl_z(3), 0).apply(
            gates.fourier(3), 0
        )
        np.testing.assert_allclose(sv.vector, direct.vector, atol=1e-12)

    def test_replace_instruction_validates(self):
        import pytest

        from repro.core.circuit import Instruction
        from repro.core.exceptions import CircuitError

        qc = QuditCircuit([3, 2])
        qc.z(0)
        bad = Instruction(
            name="wrong-dim",
            kind="unitary",
            qudits=(1,),
            matrix=gates.fourier(3),  # dim 3 gate on a dim-2 wire
        )
        with pytest.raises(CircuitError):
            qc.replace_instruction(0, bad)
        with pytest.raises(IndexError):
            qc.replace_instruction(5, qc.instructions[0])

    def test_channels_and_measure_break_runs(self):
        from repro.core.channels import dephasing

        qc = QuditCircuit([3])
        qc.z(0)
        qc.channel(dephasing(3, 0.2).kraus, 0, name="deph")
        qc.x(0)
        plan = fused_instructions(qc)
        assert [p.name for p in plan] == ["z", "deph", "x"]


class TestFusedEvolution:
    def test_statevector_evolve_matches_unfused(self):
        rng = np.random.default_rng(0)
        dims = (3, 2, 4)
        qc = QuditCircuit(dims)
        for _ in range(3):
            for wire in (0, 1, 2):
                qc.unitary(haar_unitary(dims[wire], rng), wire, name="u")
                qc.z(wire)
        qc.csum(0, 1)
        for _ in range(2):
            qc.unitary(haar_unitary(4, rng), 2, name="u")
        sv = Statevector(random_statevector(24, rng), dims)
        np.testing.assert_allclose(
            sv.evolve(qc).vector,
            _reference_evolve(sv, qc).vector,
            atol=1e-12,
        )

    def test_trajectory_plan_invalidated_by_replacement(self):
        """Regression: the trajectory execution plan (and the id-keyed
        channel plans) must rebuild after a length-preserving mutation."""
        from repro.core.circuit import Instruction

        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.x(0)
        qc.x(1)
        simulator = TrajectorySimulator(qc, seed=0)
        stale = simulator.run_batch(2)
        qc.replace_instruction(
            1,
            Instruction(
                name="fourier", kind="unitary", qudits=(1,),
                matrix=gates.fourier(3),
            ),
        )
        fresh = simulator.run_batch(2)
        expected = Statevector.zero(dims).evolve(qc).vector
        for b in range(2):
            np.testing.assert_allclose(fresh[:, b], expected, atol=1e-12)
        assert np.abs(stale[:, 0] - fresh[:, 0]).max() > 0.1

    def test_trajectory_engine_uses_fusion(self):
        rng = np.random.default_rng(1)
        dims = (3, 3)
        qc = QuditCircuit(dims)
        qc.unitary(haar_unitary(3, rng), 0, name="a")
        qc.unitary(haar_unitary(3, rng), 0, name="b")
        qc.csum(0, 1)
        simulator = TrajectorySimulator(qc, seed=0)
        plan = simulator._execution_plan()
        names = [
            payload.name
            for kind, payload in plan
            if kind == "instruction"
        ]
        assert "fused[2]" in names
        final = simulator.run_batch(3)
        expected = Statevector.zero(dims).evolve(qc).vector
        for b in range(3):
            np.testing.assert_allclose(final[:, b], expected, atol=1e-12)
