"""Tests for the Lindblad master-equation integrator."""

import numpy as np
import pytest

from repro.core import gates
from repro.core.exceptions import DimensionError, SimulationError
from repro.core.lindblad import (
    LindbladPropagator,
    _liouvillian_loop,
    evolve_lindblad,
    liouvillian,
    unvectorize_density,
    vectorize_density,
)
from repro.core.random_ops import random_density_matrix


class TestVectorization:
    def test_roundtrip(self):
        rho = random_density_matrix(5, rng=np.random.default_rng(0))
        np.testing.assert_allclose(
            unvectorize_density(vectorize_density(rho)), rho, atol=1e-14
        )

    def test_bad_length(self):
        with pytest.raises(DimensionError):
            unvectorize_density(np.zeros(5))

    def test_column_stacking_identity(self):
        """vec(A rho B) = (B^T kron A) vec(rho)."""
        rng = np.random.default_rng(1)
        a = rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3))
        b = rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3))
        rho = random_density_matrix(3, rng=rng)
        lhs = vectorize_density(a @ rho @ b)
        rhs = np.kron(b.T, a) @ vectorize_density(rho)
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)


class TestLiouvillian:
    def test_unitary_part_matches_schrodinger(self):
        """Pure Hamiltonian evolution: compare against exact exp(-iHt)."""
        rng = np.random.default_rng(2)
        from repro.core.random_ops import random_hermitian

        ham = random_hermitian(4, rng)
        rho = random_density_matrix(4, rng=rng)
        t = 0.37
        out = evolve_lindblad(rho, ham, [], t, n_steps=1)
        from scipy.linalg import expm

        u = expm(-1j * ham * t)
        np.testing.assert_allclose(out, u @ rho @ u.conj().T, atol=1e-9)

    def test_trace_preservation(self):
        """1^T L = 0: the generator annihilates the trace functional."""
        rng = np.random.default_rng(3)
        from repro.core.random_ops import random_hermitian

        d = 4
        ham = random_hermitian(d, rng)
        jump = np.sqrt(0.5) * gates.annihilation(d)
        gen = liouvillian(ham, [jump])
        trace_vec = vectorize_density(np.eye(d))
        np.testing.assert_allclose(trace_vec @ gen, np.zeros(d * d), atol=1e-10)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionError):
            liouvillian(np.eye(3), [np.eye(4)])

    @pytest.mark.parametrize("n_ops", [0, 1, 3, 7])
    def test_batched_matches_per_operator_loop(self, n_ops):
        """The stacked dissipator build equals the seed Kronecker loop."""
        rng = np.random.default_rng(10 + n_ops)
        from repro.core.random_ops import random_hermitian

        d = 5
        ham = random_hermitian(d, rng)
        ops = [
            rng.normal(size=(d, d)) + 1j * rng.normal(size=(d, d))
            for _ in range(n_ops)
        ]
        np.testing.assert_allclose(
            liouvillian(ham, ops), _liouvillian_loop(ham, ops), atol=1e-12
        )

    def test_batched_matches_loop_on_physical_family(self):
        """Same check on a genuinely dissipative mixed family (loss + dephasing)."""
        d = 6
        ops = [
            np.sqrt(0.3) * gates.annihilation(d),
            np.sqrt(0.1) * gates.number_op(d),
        ]
        ham = gates.number_op(d).astype(complex)
        np.testing.assert_allclose(
            liouvillian(ham, ops), _liouvillian_loop(ham, ops), atol=1e-12
        )


class TestDecay:
    def test_exponential_photon_decay(self):
        """d<n>/dt = -kappa <n> for a lossy free oscillator."""
        d, kappa, t = 8, 0.4, 1.3
        rho = np.zeros((d, d), dtype=complex)
        rho[5, 5] = 1.0
        out = evolve_lindblad(
            rho, np.zeros((d, d)), [np.sqrt(kappa) * gates.annihilation(d)], t
        )
        n_final = float(np.real(np.trace(out @ gates.number_op(d))))
        assert abs(n_final - 5 * np.exp(-kappa * t)) < 1e-8

    def test_dephasing_steady_state(self):
        """Number dephasing kills coherences, keeps populations."""
        d = 4
        rho = np.full((d, d), 0.25, dtype=complex)
        out = evolve_lindblad(
            rho, np.zeros((d, d)), [np.sqrt(2.0) * gates.number_op(d)], 20.0
        )
        np.testing.assert_allclose(np.diag(out).real, np.full(d, 0.25), atol=1e-8)
        assert abs(out[0, 1]) < 1e-6


class TestPropagator:
    def test_step_preserves_trace_and_positivity(self):
        d = 6
        prop = LindbladPropagator(
            gates.number_op(d), [np.sqrt(0.1) * gates.annihilation(d)], dt=0.2
        )
        rho = random_density_matrix(d, rng=np.random.default_rng(4))
        for _ in range(5):
            rho = prop.step(rho)
        assert abs(np.trace(rho) - 1.0) < 1e-10
        assert np.linalg.eigvalsh(rho).min() > -1e-10

    def test_drive_changes_dynamics(self):
        d = 6
        drive_op = gates.position_quadrature(d)
        prop = LindbladPropagator(
            gates.number_op(d),
            [np.sqrt(0.05) * gates.annihilation(d)],
            dt=0.3,
            drive_op=drive_op,
        )
        vac = np.zeros((d, d), dtype=complex)
        vac[0, 0] = 1.0
        undriven = prop.step(vac, drive=0.0)
        driven = prop.step(vac, drive=1.5)
        n_undriven = np.real(np.trace(undriven @ gates.number_op(d)))
        n_driven = np.real(np.trace(driven @ gates.number_op(d)))
        assert n_driven > n_undriven + 1e-3

    def test_propagator_cache_hits(self):
        d = 4
        prop = LindbladPropagator(
            np.zeros((d, d)),
            [np.sqrt(0.1) * gates.annihilation(d)],
            dt=0.1,
            drive_op=gates.position_quadrature(d),
            cache_size=2,
        )
        vac = np.zeros((d, d), dtype=complex)
        vac[0, 0] = 1.0
        prop.step(vac, 0.5)
        assert 0.5 in prop._cache
        prop.step(vac, 0.6)
        prop.step(vac, 0.7)  # evicts 0.5
        assert len(prop._cache) == 2

    def test_run_returns_per_step_states(self):
        d = 4
        prop = LindbladPropagator(
            np.zeros((d, d)),
            [np.sqrt(0.1) * gates.annihilation(d)],
            dt=0.1,
            drive_op=gates.position_quadrature(d),
        )
        vac = np.zeros((d, d), dtype=complex)
        vac[0, 0] = 1.0
        states = prop.run(vac, [0.2, 0.4, 0.0])
        assert len(states) == 3
        for rho in states:
            assert abs(np.trace(rho) - 1.0) < 1e-10

    def test_invalid_dt(self):
        with pytest.raises(SimulationError):
            LindbladPropagator(np.zeros((3, 3)), [], dt=0.0)

    def test_evolve_validation(self):
        with pytest.raises(SimulationError):
            evolve_lindblad(np.eye(3) / 3, np.zeros((3, 3)), [], -1.0)
        with pytest.raises(SimulationError):
            evolve_lindblad(np.eye(3) / 3, np.zeros((3, 3)), [], 1.0, n_steps=0)
