"""Tests for the shared MPS/LPDO canonical-form and truncation kernels."""

import numpy as np
import pytest

from repro.core.exceptions import SimulationError
from repro.core.tensor_utils import qr_step_left, qr_step_right, truncated_svd


def _random_chain(rng, shapes):
    """A list of random complex tensors with the given shapes."""
    return [
        rng.normal(size=shape) + 1j * rng.normal(size=shape)
        for shape in shapes
    ]


def _contract(tensors):
    """Dense vector encoded by a chain of (l, *mid, r) tensors."""
    out = tensors[0]
    for t in tensors[1:]:
        out = np.tensordot(out, t, axes=(-1, 0))
    return out.reshape(-1)


RANK3 = [(1, 3, 4), (4, 2, 5), (5, 3, 1)]
RANK4 = [(1, 3, 2, 4), (4, 2, 1, 5), (5, 3, 2, 1)]


class TestQRSteps:
    @pytest.mark.parametrize("shapes", [RANK3, RANK4])
    def test_right_step_preserves_state_and_orthogonality(self, shapes):
        rng = np.random.default_rng(0)
        tensors = _random_chain(rng, shapes)
        reference = _contract(tensors)
        qr_step_right(tensors, 0)
        np.testing.assert_allclose(_contract(tensors), reference, atol=1e-12)
        t = tensors[0]
        mat = t.reshape(-1, t.shape[-1])
        np.testing.assert_allclose(
            mat.conj().T @ mat, np.eye(mat.shape[1]), atol=1e-12
        )
        # Middle legs (physical, and Kraus for rank 4) are untouched.
        assert t.shape[1:-1] == shapes[0][1:-1]

    @pytest.mark.parametrize("shapes", [RANK3, RANK4])
    def test_left_step_preserves_state_and_orthogonality(self, shapes):
        rng = np.random.default_rng(1)
        tensors = _random_chain(rng, shapes)
        reference = _contract(tensors)
        qr_step_left(tensors, 2)
        np.testing.assert_allclose(_contract(tensors), reference, atol=1e-12)
        t = tensors[2]
        mat = t.reshape(t.shape[0], -1)
        np.testing.assert_allclose(
            mat @ mat.conj().T, np.eye(mat.shape[0]), atol=1e-12
        )
        assert t.shape[1:-1] == shapes[2][1:-1]

    @pytest.mark.parametrize("shapes", [RANK3, RANK4])
    def test_full_sweep_round_trip(self, shapes):
        """Sweeping right then left across the chain is a no-op on the state."""
        rng = np.random.default_rng(2)
        tensors = _random_chain(rng, shapes)
        reference = _contract(tensors)
        for i in range(len(tensors) - 1):
            qr_step_right(tensors, i)
        for i in range(len(tensors) - 1, 0, -1):
            qr_step_left(tensors, i)
        np.testing.assert_allclose(_contract(tensors), reference, atol=1e-12)


class TestTruncatedSVD:
    def test_exact_split_reconstructs(self):
        rng = np.random.default_rng(3)
        mat = rng.normal(size=(6, 9)) + 1j * rng.normal(size=(6, 9))
        left, right, discarded = truncated_svd(mat, max_keep=None, rel_tol=1e-14)
        np.testing.assert_allclose(left @ right, mat, atol=1e-12)
        assert discarded < 1e-14

    def test_capped_split_reports_weight_and_preserves_norm(self):
        rng = np.random.default_rng(4)
        mat = rng.normal(size=(8, 8))
        left, right, discarded = truncated_svd(mat, max_keep=3, rel_tol=1e-14)
        assert left.shape[1] == 3 and right.shape[0] == 3
        assert 0.0 < discarded < 1.0
        # Kept spectrum is rescaled so the Frobenius norm survives.
        np.testing.assert_allclose(
            np.linalg.norm(left @ right), np.linalg.norm(mat), atol=1e-12
        )
        # Discarded fraction matches the true tail weight.
        s = np.linalg.svd(mat, compute_uv=False)
        expected = 1.0 - (s[:3] ** 2).sum() / (s**2).sum()
        assert abs(discarded - expected) < 1e-12

    def test_always_keeps_one(self):
        mat = np.diag([1.0, 1e-20])
        left, right, _ = truncated_svd(mat, max_keep=None, rel_tol=1e-10)
        assert left.shape[1] == 1

    def test_zero_matrix_raises(self):
        with pytest.raises(SimulationError):
            truncated_svd(np.zeros((3, 3)), max_keep=None, rel_tol=1e-12)


class TestSharedAcrossBackends:
    def test_mps_and_lpdo_delegate_to_shared_kernels(self):
        """An MPS is an LPDO with kappa = 1: both canonicalise identically."""
        from repro.core.lpdo import LPDOState
        from repro.core.mps import MPSState

        rng = np.random.default_rng(5)
        from repro.core.statevector import Statevector

        vec = rng.normal(size=12) + 1j * rng.normal(size=12)
        state = Statevector(vec / np.linalg.norm(vec), (3, 2, 2))
        mps = MPSState.from_statevector(state)
        lpdo = LPDOState.from_mps(mps)
        mps._canonicalize(0, 0)
        lpdo._canonicalize(0, 0)
        for t_mps, t_lpdo in zip(mps._tensors, lpdo._tensors):
            np.testing.assert_allclose(
                t_mps, t_lpdo[:, :, 0, :], atol=1e-12
            )
