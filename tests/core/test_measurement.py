"""Tests for shot-based measurement utilities."""

import numpy as np
import pytest

from repro.core import measurement as meas
from repro.core.exceptions import SimulationError


class TestSampleProbabilities:
    def test_total_shots(self):
        rng = np.random.default_rng(0)
        counts = meas.sample_probabilities(
            np.full(9, 1 / 9), 500, [3, 3], rng=rng
        )
        assert sum(counts.values()) == 500

    def test_deterministic_distribution(self):
        probs = np.zeros(9)
        probs[4] = 1.0
        counts = meas.sample_probabilities(probs, 50, [3, 3])
        assert counts == {(1, 1): 50}

    def test_negative_probabilities_clipped(self):
        probs = np.array([1.0, -1e-12, 0.0])
        counts = meas.sample_probabilities(probs, 10, [3])
        assert counts == {(0,): 10}

    def test_zero_vector_rejected(self):
        with pytest.raises(SimulationError):
            meas.sample_probabilities(np.zeros(3), 10, [3])

    def test_zero_shots_rejected(self):
        with pytest.raises(SimulationError):
            meas.sample_probabilities(np.ones(3) / 3, 0, [3])


class TestCountsHelpers:
    def test_frequencies(self):
        freqs = meas.counts_to_frequencies({(0,): 30, (1,): 70})
        assert abs(freqs[(0,)] - 0.3) < 1e-12
        assert abs(freqs[(1,)] - 0.7) < 1e-12

    def test_empty_counts(self):
        with pytest.raises(SimulationError):
            meas.counts_to_frequencies({})

    def test_expectation_from_counts(self):
        counts = {(0,): 50, (2,): 50}
        value = meas.estimate_expectation_from_counts(
            counts, lambda outcome: outcome[0]
        )
        assert abs(value - 1.0) < 1e-12


class TestShotNoiseModel:
    def test_unbiased_mean(self):
        rng = np.random.default_rng(1)
        draws = [
            meas.sampled_expectation(0.5, shots=100, scale=1.0, rng=rng)
            for _ in range(2000)
        ]
        assert abs(np.mean(draws) - 0.5) < 0.01

    def test_error_scales_inverse_sqrt(self):
        rng = np.random.default_rng(2)
        few = np.std(
            [meas.sampled_expectation(0.0, 16, rng=rng) for _ in range(3000)]
        )
        many = np.std(
            [meas.sampled_expectation(0.0, 1600, rng=rng) for _ in range(3000)]
        )
        assert abs(few / many - 10.0) < 1.5

    def test_sigma_formula(self):
        assert abs(meas.shot_noise_sigma(2.0, 400) - 0.1) < 1e-12

    def test_invalid_shots(self):
        with pytest.raises(SimulationError):
            meas.sampled_expectation(0.0, 0)
        with pytest.raises(SimulationError):
            meas.shot_noise_sigma(1.0, 0)
