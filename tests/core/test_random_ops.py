"""Tests for random operator/state generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import gates, random_ops
from repro.core.exceptions import DimensionError

dim_strategy = st.integers(min_value=2, max_value=8)


class TestHaarUnitary:
    @given(dim_strategy)
    @settings(max_examples=20, deadline=None)
    def test_unitary(self, d):
        assert gates.is_unitary(random_ops.haar_unitary(d, np.random.default_rng(d)))

    def test_seeded_reproducibility(self):
        u1 = random_ops.haar_unitary(4, np.random.default_rng(5))
        u2 = random_ops.haar_unitary(4, np.random.default_rng(5))
        np.testing.assert_allclose(u1, u2, atol=1e-15)

    def test_first_moment_vanishes(self):
        """Haar average of U is 0 — crude distribution sanity check."""
        rng = np.random.default_rng(6)
        acc = np.zeros((3, 3), dtype=complex)
        for _ in range(600):
            acc += random_ops.haar_unitary(3, rng)
        assert np.abs(acc / 600).max() < 0.1

    def test_rejects_dim_zero(self):
        with pytest.raises(DimensionError):
            random_ops.haar_unitary(0)


class TestSpecialUnitary:
    @given(dim_strategy)
    @settings(max_examples=20, deadline=None)
    def test_unit_determinant(self, d):
        u = random_ops.random_special_unitary(d, np.random.default_rng(d))
        assert abs(np.linalg.det(u) - 1.0) < 1e-9
        assert gates.is_unitary(u, atol=1e-9)


class TestRandomState:
    @given(dim_strategy)
    def test_normalized(self, d):
        vec = random_ops.random_statevector(d, np.random.default_rng(d))
        assert abs(np.linalg.norm(vec) - 1.0) < 1e-12


class TestRandomHermitian:
    @given(dim_strategy)
    def test_hermitian(self, d):
        mat = random_ops.random_hermitian(d, np.random.default_rng(d))
        assert gates.is_hermitian(mat)

    def test_scale(self):
        rng = np.random.default_rng(7)
        small = random_ops.random_hermitian(4, rng, scale=1e-3)
        assert np.abs(small).max() < 0.1


class TestRandomDensity:
    @given(dim_strategy)
    @settings(max_examples=20, deadline=None)
    def test_valid_state(self, d):
        rho = random_ops.random_density_matrix(d, rng=np.random.default_rng(d))
        assert abs(np.trace(rho) - 1.0) < 1e-10
        assert np.linalg.eigvalsh(rho).min() > -1e-12

    def test_rank_one_is_pure(self):
        rho = random_ops.random_density_matrix(
            5, rank=1, rng=np.random.default_rng(8)
        )
        assert abs(np.trace(rho @ rho) - 1.0) < 1e-10

    def test_invalid_rank(self):
        with pytest.raises(DimensionError):
            random_ops.random_density_matrix(3, rank=4)
