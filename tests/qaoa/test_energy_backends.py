"""Tests for backend-agnostic QAOA energy evaluation (repro.qaoa.energy)."""

import numpy as np
import pytest

from repro.core import get_backend
from repro.core.exceptions import SimulationError
from repro.qaoa import (
    edge_clash_projector,
    expected_clashes,
    qaoa_energy,
    qaoa_state,
    random_coloring_instance,
    state_energy,
)


@pytest.fixture
def problem():
    return random_coloring_instance(5, 3, degree=3, seed=4)


class TestEdgeClashProjector:
    def test_projects_matching_pairs(self):
        projector = edge_clash_projector(3)
        diag = np.diag(projector)
        matching = [a * 3 + a for a in range(3)]
        assert all(diag[i] == 1.0 for i in matching)
        assert diag.sum() == 3

    def test_permutations_remap_pairs(self):
        perm = ([1, 2, 0], [0, 1, 2])
        projector = edge_clash_projector(3, perm)
        diag = np.diag(projector)
        # pi_u(a) == pi_v(b): a=0 -> 1 matches b=1, etc.
        assert diag[0 * 3 + 1] == 1.0
        assert diag[0 * 3 + 0] == 0.0
        assert diag.sum() == 3


class TestQaoaEnergy:
    def test_statevector_matches_dense_expected_clashes(self, problem):
        gammas, betas = [0.5, 0.3], [0.4, 0.2]
        dense = expected_clashes(problem, qaoa_state(problem, gammas, betas))
        via_backend = qaoa_energy(problem, gammas, betas, method="statevector")
        assert via_backend == pytest.approx(dense, abs=1e-10)

    def test_mps_full_chi_matches_dense(self, problem):
        gammas, betas = [0.5], [0.4]
        dense = expected_clashes(problem, qaoa_state(problem, gammas, betas))
        via_mps = qaoa_energy(problem, gammas, betas, method="mps")
        assert via_mps == pytest.approx(dense, abs=1e-8)

    def test_permutations_match_remapped_cost(self, problem):
        from repro.qaoa.optimizer import _remap_cost_vector

        gammas, betas = [0.5], [0.4]
        rng = np.random.default_rng(0)
        perms = [list(rng.permutation(3)) for _ in range(problem.n_nodes)]
        cost = _remap_cost_vector(problem, problem.cost_vector(), perms)
        state = qaoa_state(problem, gammas, betas, perms)
        dense = float(np.dot(state.probabilities(), cost))
        via_backend = qaoa_energy(
            problem, gammas, betas, method="statevector", permutations=perms
        )
        assert via_backend == pytest.approx(dense, abs=1e-10)

    def test_state_energy_from_result(self, problem):
        from repro.qaoa import qaoa_circuit

        gammas, betas = [0.6], [0.3]
        circuit = qaoa_circuit(problem, gammas, betas)
        result = get_backend("statevector").run(circuit)
        assert state_energy(problem, result) == pytest.approx(
            qaoa_energy(problem, gammas, betas), abs=1e-10
        )

    def test_mismatched_angles_rejected(self, problem):
        with pytest.raises(SimulationError):
            qaoa_energy(problem, [0.1, 0.2], [0.1])

    def test_large_instance_through_mps(self):
        """16 nodes: 3^16 ≈ 43M amplitudes — dense cost vector is out."""
        big = random_coloring_instance(16, 3, degree=3, seed=7)
        energy = qaoa_energy(big, [0.6], [0.4], method="mps", max_bond=12)
        # The energy is a sum of edge clash probabilities in [0, 1].
        assert 0.0 <= energy <= len(big.edges)
