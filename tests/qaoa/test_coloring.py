"""Tests for coloring instances and the QAOA circuits/optimizer."""

import networkx as nx
import numpy as np
import pytest

from repro.core import Statevector
from repro.core.exceptions import CircuitError, DimensionError
from repro.qaoa import (
    ColoringProblem,
    edge_phase_matrix,
    expected_clashes,
    greedy_coloring_cost,
    linear_ramp_schedule,
    optimize_qaoa,
    qaoa_circuit,
    qaoa_state,
    random_coloring_instance,
)


@pytest.fixture()
def triangle():
    return ColoringProblem(nx.cycle_graph(3), 3)


class TestColoringProblem:
    def test_cost_counts_monochromatic_edges(self, triangle):
        assert triangle.cost([0, 1, 2]) == 0
        assert triangle.cost([0, 0, 1]) == 1
        assert triangle.cost([2, 2, 2]) == 3

    def test_cost_validation(self, triangle):
        with pytest.raises(DimensionError):
            triangle.cost([0, 1])
        with pytest.raises(DimensionError):
            triangle.cost([0, 1, 3])

    def test_cost_vector_matches_pointwise(self, triangle):
        from repro.core.dims import index_to_digits

        vector = triangle.cost_vector()
        for index in range(27):
            digits = index_to_digits(index, triangle.dims)
            assert vector[index] == triangle.cost(digits)

    def test_best_cost_triangle(self, triangle):
        assert triangle.best_cost() == 0
        # 2-coloring a triangle must clash once
        assert ColoringProblem(nx.cycle_graph(3), 2).best_cost() == 1

    def test_approximation_ratio(self, triangle):
        assert triangle.approximation_ratio(0) == 1.0
        assert triangle.approximation_ratio(3) == 0.0
        assert 0 < triangle.approximation_ratio(1) < 1

    def test_cost_vector_guard(self):
        problem = random_coloring_instance(16, 3, seed=0)
        with pytest.raises(DimensionError):
            problem.cost_vector()

    def test_random_instance_shape(self):
        problem = random_coloring_instance(9, 3, degree=4, seed=1)
        assert problem.n_nodes == 9
        assert problem.n_colors == 3

    def test_random_instance_odd_degree_adjusted(self):
        problem = random_coloring_instance(5, 3, degree=3, seed=2)
        assert problem.n_nodes == 5  # 5*3 odd -> degree dropped to 2

    def test_greedy_baseline_reasonable(self):
        problem = random_coloring_instance(10, 3, degree=4, seed=3)
        assert 0 <= greedy_coloring_cost(problem, seed=0) <= problem.n_edges

    def test_needs_two_colors(self, triangle):
        with pytest.raises(DimensionError):
            ColoringProblem(nx.path_graph(3), 1)


class TestQaoaCircuits:
    def test_edge_phase_matrix_diagonal(self):
        mat = edge_phase_matrix(3, 0.7)
        assert np.allclose(mat, np.diag(np.diag(mat)))
        # matching colors get the phase
        assert abs(mat[0, 0] - np.exp(-0.7j)) < 1e-12
        assert abs(mat[1, 1] - 1.0) < 1e-12

    def test_edge_phase_with_permutation(self):
        """Remapped separator penalises pi_u(a) == pi_v(b)."""
        perm_u = [1, 2, 0]
        perm_v = [0, 1, 2]
        mat = edge_phase_matrix(3, 0.5, (perm_u, perm_v))
        # a=0 maps to 1, so penalty sits at b with perm_v(b)=1 -> b=1
        assert abs(mat[0 * 3 + 1, 0 * 3 + 1] - np.exp(-0.5j)) < 1e-12
        assert abs(mat[0, 0] - 1.0) < 1e-12

    def test_circuit_structure(self, triangle):
        qc = qaoa_circuit(triangle, [0.3], [0.2])
        ops = qc.count_ops()
        assert ops["fourier"] == 3
        assert ops["phase_sep"] == 3
        assert ops["mixer"] == 3

    def test_layer_mismatch(self, triangle):
        with pytest.raises(CircuitError):
            qaoa_circuit(triangle, [0.1, 0.2], [0.1])

    def test_zero_angles_uniform_state(self, triangle):
        state = qaoa_state(triangle, [0.0], [0.0])
        np.testing.assert_allclose(
            state.probabilities(), np.full(27, 1 / 27), atol=1e-10
        )

    def test_expected_clashes_uniform(self, triangle):
        """Uniform state: each edge clashes with probability 1/3."""
        state = Statevector.uniform(triangle.dims)
        assert abs(expected_clashes(triangle, state) - 1.0) < 1e-10

    def test_qaoa_improves_over_uniform(self, triangle):
        result = optimize_qaoa(triangle, p=1, maxiter=80)
        assert result.expected_cost < 1.0  # uniform baseline
        assert result.approximation_ratio > 0.5


class TestOptimizer:
    def test_linear_ramp_shapes(self):
        gammas, betas = linear_ramp_schedule(3)
        assert len(gammas) == len(betas) == 3
        assert gammas[0] < gammas[-1]
        assert betas[0] > betas[-1]

    def test_invalid_depth(self):
        from repro.core.exceptions import SimulationError

        with pytest.raises(SimulationError):
            linear_ramp_schedule(0)

    def test_deeper_is_no_worse(self, triangle):
        p1 = optimize_qaoa(triangle, p=1, maxiter=100)
        p2 = optimize_qaoa(
            triangle,
            p=2,
            maxiter=150,
            initial=(
                np.array(list(p1.gammas) + [0.1]),
                np.array(list(p1.betas) + [0.05]),
            ),
        )
        assert p2.expected_cost <= p1.expected_cost + 0.05

    def test_result_bookkeeping(self, triangle):
        result = optimize_qaoa(triangle, p=1, maxiter=30)
        assert result.n_evaluations >= 1
        assert len(result.gammas) == 1

    def test_permutation_invariance_of_optimum(self, triangle):
        """A color relabelling is a gauge: optimal value is unchanged."""
        base = optimize_qaoa(triangle, p=1, maxiter=80)
        perms = [[1, 2, 0], [2, 0, 1], [0, 1, 2]]
        remapped = optimize_qaoa(triangle, p=1, maxiter=80, permutations=perms)
        assert abs(base.expected_cost - remapped.expected_cost) < 0.05
