"""Tests for NDAR, the one-hot baseline, and the QRAC relaxation."""

import networkx as nx
import numpy as np
import pytest

from repro.core.exceptions import DimensionError, SimulationError
from repro.qaoa import (
    ColoringProblem,
    OneHotEncoding,
    QracEncoding,
    compare_validity,
    random_coloring_instance,
    run_ndar,
    sample_noisy_qaoa,
    simplex_vertices,
    solve_coloring_qrac,
    validity_probability,
)
from repro.qaoa.ndar import _attractor_permutation, _decode


@pytest.fixture()
def small_problem():
    return random_coloring_instance(5, 3, degree=2, seed=7)


class TestNdarInternals:
    def test_attractor_permutation_sends_zero_to_best(self):
        best = (2, 0, 1)
        perms = _attractor_permutation(best, 3)
        decoded = _decode((0, 0, 0), perms)
        assert decoded == best

    def test_permutations_are_valid(self):
        perms = _attractor_permutation((1, 2), 3)
        for perm in perms:
            assert sorted(perm) == [0, 1, 2]

    def test_decode_identity(self):
        identity = [list(range(3))] * 2
        assert _decode((1, 2), identity) == (1, 2)


class TestSampling:
    def test_sample_counts_total(self, small_problem):
        counts = sample_noisy_qaoa(
            small_problem, [0.4], [0.3], loss_per_layer=0.1, shots=20, seed=0
        )
        assert sum(counts.values()) == 20

    def test_heavy_loss_biases_to_zero(self, small_problem):
        """Strong photon loss drives samples toward |0...0> — the attractor."""
        counts = sample_noisy_qaoa(
            small_problem, [0.4], [0.3], loss_per_layer=0.9, shots=40, seed=1
        )
        zero_fraction = counts.get((0,) * 5, 0) / 40
        clean = sample_noisy_qaoa(
            small_problem, [0.4], [0.3], loss_per_layer=0.0, shots=40, seed=1
        )
        clean_zero = clean.get((0,) * 5, 0) / 40
        assert zero_fraction > clean_zero


class TestNdarLoop:
    def test_result_structure(self, small_problem):
        result = run_ndar(small_problem, n_rounds=2, shots=15, seed=0)
        assert len(result.rounds) == 2
        assert 0 <= result.best_cost <= small_problem.n_edges
        assert len(result.best_assignment) == 5

    def test_best_cost_monotone_across_rounds(self, small_problem):
        result = run_ndar(small_problem, n_rounds=3, shots=15, seed=1)
        costs = [r.best_cost_seen for r in result.rounds]
        assert costs == sorted(costs, reverse=True)

    def test_adaptive_attractor_tracks_incumbent(self, small_problem):
        result = run_ndar(small_problem, n_rounds=3, shots=15, seed=2)
        # after round 1 the attractor must equal the incumbent's cost
        assert result.rounds[-1].attractor_cost == result.rounds[-2].best_cost_seen

    def test_vanilla_mode_keeps_identity_gauge(self, small_problem):
        result = run_ndar(
            small_problem, n_rounds=2, shots=15, adaptive=False, seed=3
        )
        # vanilla attractor is always the all-zero coloring
        zero_cost = small_problem.cost((0,) * 5)
        assert all(r.attractor_cost == zero_cost for r in result.rounds)

    def test_validation(self, small_problem):
        with pytest.raises(SimulationError):
            run_ndar(small_problem, n_rounds=0)


class TestOneHot:
    @pytest.fixture()
    def encoding(self):
        return OneHotEncoding(ColoringProblem(nx.path_graph(3), 3))

    def test_qubit_budget_guard(self):
        big = random_coloring_instance(9, 3, seed=0)
        with pytest.raises(DimensionError):
            OneHotEncoding(big)

    def test_validity_check(self, encoding):
        assert encoding.is_valid((1, 0, 0, 0, 1, 0, 0, 0, 1))
        assert not encoding.is_valid((1, 1, 0, 0, 1, 0, 0, 0, 1))
        assert not encoding.is_valid((0, 0, 0, 0, 1, 0, 0, 0, 1))

    def test_decode(self, encoding):
        assert encoding.decode((1, 0, 0, 0, 1, 0, 0, 0, 1)) == (0, 1, 2)
        assert encoding.decode((1, 1, 0, 0, 1, 0, 0, 0, 1)) is None

    def test_noiseless_validity_is_one(self, encoding):
        assert validity_probability(encoding, 0.0, shots=25, seed=0) == 1.0

    def test_noise_decays_validity(self, encoding):
        noisy = validity_probability(encoding, 0.08, shots=40, seed=1)
        assert noisy < 1.0

    def test_compare_validity_sweep(self):
        problem = ColoringProblem(nx.path_graph(3), 3)
        sweep = compare_validity(problem, [0.0, 0.1], shots=30, seed=0)
        assert sweep[0].onehot_validity == 1.0
        assert sweep[1].onehot_validity < sweep[0].onehot_validity
        assert all(c.qudit_validity == 1.0 for c in sweep)
        assert sweep[1].advantage > 1.0


class TestQrac:
    def test_simplex_vertices_geometry(self):
        for d in (2, 3, 4):
            anchors = simplex_vertices(d)
            assert anchors.shape == (d, d - 1)
            for i in range(d):
                assert abs(np.linalg.norm(anchors[i]) - 1.0) < 1e-9
                for j in range(i + 1, d):
                    inner = anchors[i] @ anchors[j]
                    assert abs(inner + 1.0 / (d - 1)) < 1e-9

    def test_packing_density(self):
        problem = random_coloring_instance(20, 3, seed=0)
        encoding = QracEncoding(problem, qudit_dim=4)
        assert encoding.nodes_per_qudit == (16 - 1) // 2
        assert encoding.n_qudits == 3

    def test_slot_assignment_disjoint(self):
        problem = random_coloring_instance(10, 3, seed=1)
        encoding = QracEncoding(problem, qudit_dim=4)
        seen = set()
        for node in range(10):
            slot = encoding.slot_of(node)
            assert slot not in seen
            seen.add(slot)

    def test_observable_blocks_orthogonal(self):
        problem = random_coloring_instance(6, 3, seed=2)
        encoding = QracEncoding(problem, qudit_dim=4)
        a = encoding.observables_of(0)
        b = encoding.observables_of(1)
        for oa in a:
            for ob in b:
                assert abs(np.trace(oa @ ob)) < 1e-10

    def test_rounding_recovers_anchor_colorings(self):
        problem = ColoringProblem(nx.path_graph(4), 3)
        encoding = QracEncoding(problem, qudit_dim=8)
        anchors = simplex_vertices(3)
        target = (0, 1, 2, 0)
        vectors = np.array([anchors[c] for c in target])
        assert encoding.round_to_coloring(vectors) == target

    def test_solver_beats_random_on_path(self):
        """A path graph is trivially 3-colorable; QRAC should get near 0."""
        problem = ColoringProblem(nx.path_graph(8), 3)
        result = solve_coloring_qrac(
            problem, qudit_dim=4, n_restarts=2, maxiter=150, seed=0, best_cost=0
        )
        assert result.clashes <= 2  # random coloring averages ~2.3

    def test_too_small_carrier_rejected(self):
        problem = random_coloring_instance(6, 6, degree=3, seed=3)
        with pytest.raises(DimensionError):
            QracEncoding(problem, qudit_dim=2)
