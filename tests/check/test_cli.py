"""CLI behaviour: exit codes, output modes, baselines, and the self-check."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.check import main

REPO_ROOT = Path(__file__).resolve().parents[2]

VIOLATION = "import numpy as np\n\nrng = np.random.default_rng()\n"


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "ok.py", "x = 1\n")
        assert main(["ok.py"]) == 0
        assert "0 finding(s) in 1 file(s)" in capsys.readouterr().out

    def test_findings_exit_one_with_rendered_lines(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "bad.py", VIOLATION)
        assert main(["bad.py"]) == 1
        out = capsys.readouterr().out
        assert "bad.py:3: [seed-discipline]" in out
        assert "1 finding(s) in 1 file(s)" in out

    def test_unknown_rule_id_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "ok.py", "x = 1\n")
        assert main(["--select", "not-a-rule", "ok.py"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["definitely-not-here"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "ok.py", "x = 1\n")
        _write(tmp_path, "baseline.json", "not json")
        assert main(["--baseline", "baseline.json", "ok.py"]) == 2
        assert "cannot read baseline" in capsys.readouterr().err


class TestSelect:
    def test_select_restricts_the_active_rules(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        _write(
            tmp_path,
            "bad.py",
            VIOLATION + "\ntry:\n    x = 1\nexcept:\n    pass\n",
        )
        assert main(["--select", "error-hygiene", "bad.py"]) == 1
        out = capsys.readouterr().out
        assert "[error-hygiene]" in out
        assert "seed-discipline" not in out


class TestJsonOutput:
    def test_json_payload_carries_findings_and_counts(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "bad.py", VIOLATION)
        assert main(["--json", "bad.py"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {
            "new": 1,
            "baselined": 0,
            "suppressed": 0,
            "files": 1,
        }
        (finding,) = payload["findings"]
        assert finding["path"] == "bad.py"
        assert finding["line"] == 3
        assert finding["rule"] == "seed-discipline"


class TestListRules:
    def test_every_builtin_rule_listed_with_rationale(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "backend-protocol",
            "error-hygiene",
            "obs-discipline",
            "pickle-safety",
            "seed-discipline",
        ):
            assert f"{rule_id}: " in out


class TestBaselineFlow:
    def test_write_then_gate_round_trip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "bad.py", VIOLATION)

        assert main(["--write-baseline", "--baseline", "b.json", "bad.py"]) == 0
        assert "wrote 1 finding(s)" in capsys.readouterr().out

        assert main(["--baseline", "b.json", "bad.py"]) == 0
        assert "(1 baselined, 0 suppressed)" in capsys.readouterr().out

    def test_no_baseline_reports_everything(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "bad.py", VIOLATION)
        main(["--write-baseline", "--baseline", "b.json", "bad.py"])
        capsys.readouterr()
        assert main(["--no-baseline", "--baseline", "b.json", "bad.py"]) == 1

    def test_default_baseline_picked_up_from_cwd(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        _write(tmp_path, "bad.py", VIOLATION)
        main(["--write-baseline", "bad.py"])
        capsys.readouterr()
        assert Path(".repro-check-baseline.json").exists()
        assert main(["bad.py"]) == 0


class TestSelfCheck:
    def test_library_tree_is_clean_under_the_committed_baseline(self):
        """`python -m repro.check src` must exit 0 at the repo root.

        The committed baseline is empty, so this asserts the real tree
        carries no violations at all (inline suppressions excepted).
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.check", "src"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout
