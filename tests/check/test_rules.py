"""Bad/good fixture pairs for every built-in rule, with exact lines."""


def lines(analysis, rule):
    """Line numbers of the findings reported under one rule id."""
    return [f.line for f in analysis.findings if f.rule == rule]


def messages(analysis, rule):
    return [f.message for f in analysis.findings if f.rule == rule]


class TestSeedDiscipline:
    def test_unseeded_default_rng_flagged(self, check):
        analysis = check(
            """
            import numpy as np

            rng = np.random.default_rng()
            """
        )
        assert lines(analysis, "seed-discipline") == [3]

    def test_none_seed_flagged(self, check):
        analysis = check(
            """
            import numpy as np

            rng = np.random.default_rng(None)
            """
        )
        assert lines(analysis, "seed-discipline") == [3]

    def test_seeded_generator_clean(self, check):
        analysis = check(
            """
            import numpy as np


            def simulate(seed):
                rng = np.random.default_rng(seed)
                return rng.uniform(0.0, 1.0)
            """
        )
        assert analysis.findings == []

    def test_legacy_global_sampler_flagged(self, check):
        analysis = check(
            """
            import numpy as np

            x = np.random.uniform(0.0, 1.0)
            """
        )
        assert lines(analysis, "seed-discipline") == [3]
        assert "hidden global" in messages(analysis, "seed-discipline")[0]

    def test_randomstate_flagged_even_seeded(self, check):
        analysis = check(
            """
            import numpy as np

            rng = np.random.RandomState(42)
            """
        )
        assert lines(analysis, "seed-discipline") == [3]

    def test_stdlib_random_module_flagged(self, check):
        analysis = check(
            """
            import random

            x = random.random()
            """
        )
        assert lines(analysis, "seed-discipline") == [3]

    def test_stdlib_direct_import_flagged(self, check):
        analysis = check(
            """
            from random import shuffle

            shuffle(values)
            """
        )
        assert lines(analysis, "seed-discipline") == [3]

    def test_generator_method_draws_clean(self, check):
        """Draws on a threaded Generator are the sanctioned pattern."""
        analysis = check(
            """
            def sample(rng):
                return rng.uniform(0.0, 1.0)
            """
        )
        assert analysis.findings == []

    def test_wall_clock_seed_argument_flagged(self, check):
        analysis = check(
            """
            import time

            import numpy as np

            rng = np.random.default_rng(int(time.time()))
            """
        )
        assert lines(analysis, "seed-discipline") == [5]
        assert "wall-clock" in messages(analysis, "seed-discipline")[0]

    def test_wall_clock_seed_keyword_flagged_on_any_call(self, check):
        analysis = check(
            """
            import time

            result = simulate(seed=time.time_ns())
            """
        )
        assert lines(analysis, "seed-discipline") == [3]

    def test_explicit_seed_keyword_clean(self, check):
        analysis = check("result = simulate(seed=1234)")
        assert analysis.findings == []


class TestPickleSafety:
    def test_lambda_campaign_task_flagged(self, check):
        analysis = check(
            """
            from repro.exec import Campaign

            c = Campaign(task=lambda x: 2 * x, sweep=sweep)
            """
        )
        assert lines(analysis, "pickle-safety") == [3]
        assert "lambda" in messages(analysis, "pickle-safety")[0]

    def test_lambda_task_ref_flagged(self, check):
        analysis = check(
            """
            from repro.exec.sweep import task_ref

            ref = task_ref(lambda x: x)
            """
        )
        assert lines(analysis, "pickle-safety") == [3]

    def test_nested_task_flagged_at_call_site(self, check):
        analysis = check(
            """
            from repro.exec import Campaign


            def build(sweep):
                def task(x):
                    return x

                return Campaign(task=task, sweep=sweep)
            """
        )
        assert lines(analysis, "pickle-safety") == [8]
        assert "nested function" in messages(analysis, "pickle-safety")[0]

    def test_global_mutating_task_flagged(self, check):
        analysis = check(
            """
            from repro.exec import Campaign

            COUNT = 0


            def task(x):
                global COUNT
                COUNT += 1
                return x


            c = Campaign(task=task, sweep=sweep)
            """
        )
        assert lines(analysis, "pickle-safety") == [12]
        assert "COUNT" in messages(analysis, "pickle-safety")[0]

    def test_module_level_task_clean(self, check):
        analysis = check(
            """
            from repro.exec import Campaign


            def task(x, seed=0):
                return 2 * x


            c = Campaign(task=task, sweep=sweep)
            """
        )
        assert analysis.findings == []

    def test_campaign_object_arguments_clean(self, check):
        """submit/run_campaign take a Campaign — only lambdas are judged."""
        analysis = check(
            """
            result = executor.submit(campaign)
            other = run_campaign(campaign, workers=2)
            """
        )
        assert analysis.findings == []

    def test_lambda_submitted_directly_flagged(self, check):
        analysis = check("handle = executor.submit(lambda x: x)")
        assert lines(analysis, "pickle-safety") == [1]


class TestBackendProtocol:
    def test_non_backend_registration_flagged(self, check):
        analysis = check(
            """
            class NotABackend:
                pass


            register_backend("bogus", NotABackend)
            """
        )
        assert lines(analysis, "backend-protocol") == [5]
        assert "does not subclass" in messages(analysis, "backend-protocol")[0]

    def test_missing_run_and_prepare_flagged(self, check):
        analysis = check(
            """
            class Empty(SimulationBackend):
                pass


            register_backend("empty", Empty)
            """
        )
        assert lines(analysis, "backend-protocol") == [5, 5]
        combined = " ".join(messages(analysis, "backend-protocol"))
        assert "_run" in combined and "_prepare" in combined

    def test_short_run_signature_flagged_at_def(self, check):
        analysis = check(
            """
            class Short(SimulationBackend):
                def _run(self, circuit, **options):
                    return None

                def _prepare(self, dims, digits, **options):
                    return None


            register_backend("short", Short)
            """
        )
        assert lines(analysis, "backend-protocol") == [2]
        assert "positional" in messages(analysis, "backend-protocol")[0]

    def test_missing_options_kwargs_flagged(self, check):
        analysis = check(
            """
            class Rigid(SimulationBackend):
                def _run(self, circuit, initial):
                    return None

                def _prepare(self, dims, digits, **options):
                    return None


            register_backend("rigid", Rigid)
            """
        )
        assert lines(analysis, "backend-protocol") == [2]
        assert "**options" in messages(analysis, "backend-protocol")[0]

    def test_conforming_backend_clean(self, check):
        analysis = check(
            """
            class Good(SimulationBackend):
                def _run(self, circuit, initial, **options):
                    return None

                def _prepare(self, dims, digits, **options):
                    return None


            register_backend("good", Good)
            """
        )
        assert analysis.findings == []

    def test_inherited_implementations_satisfy_protocol(self, check):
        analysis = check(
            """
            class Base(SimulationBackend):
                def _run(self, circuit, initial, **options):
                    return None

                def _prepare(self, dims, digits, **options):
                    return None


            class Derived(Base):
                pass


            register_backend("derived", Derived)
            """
        )
        assert analysis.findings == []

    def test_auto_registration_is_reserved_not_judged(self, check):
        analysis = check(
            """
            class NotABackend:
                pass


            register_backend("auto", NotABackend)
            """
        )
        assert analysis.findings == []

    def test_partial_result_surface_flagged(self, check):
        analysis = check(
            """
            class PartialResult(BackendResult):
                def expectation(self, operator, targets=None):
                    return 0.0
            """
        )
        assert lines(analysis, "backend-protocol") == [1]
        message = messages(analysis, "backend-protocol")[0]
        assert "sample, probabilities_of, probabilities" in message

    def test_full_result_surface_clean(self, check):
        analysis = check(
            """
            class FullResult(BackendResult):
                def expectation(self, operator, targets=None):
                    return 0.0

                def sample(self, shots, rng=None):
                    return {}

                def probabilities_of(self, digits):
                    return 0.0

                def probabilities(self):
                    return {}
            """
        )
        assert analysis.findings == []


class TestObsDiscipline:
    def test_bad_metric_name_flagged(self, check):
        analysis = check(
            """
            from repro.obs import metrics

            metrics.inc("Bad-Name")
            """
        )
        assert lines(analysis, "obs-discipline") == [3]
        assert "Prometheus" in messages(analysis, "obs-discipline")[0]

    def test_label_drift_flagged_at_second_site(self, check):
        analysis = check(
            """
            from repro.obs import metrics

            metrics.inc("hits", backend="mps")
            metrics.inc("hits")
            """
        )
        assert lines(analysis, "obs-discipline") == [4]
        assert "conflicting label sets" in messages(analysis, "obs-discipline")[0]

    def test_consistent_labels_clean(self, check):
        analysis = check(
            """
            from repro.obs import metrics

            metrics.inc("hits", backend="mps")
            metrics.inc("hits", backend="lpdo")
            metrics.observe("latency", 0.5, op="svd")
            """
        )
        assert analysis.findings == []

    def test_dynamic_labels_not_judged(self, check):
        analysis = check(
            """
            from repro.obs import metrics

            metrics.inc("hits", **labels)
            metrics.inc("hits", backend="mps")
            """
        )
        assert analysis.findings == []

    def test_registry_family_name_checked(self, check):
        analysis = check(
            """
            from repro.obs.metrics import REGISTRY

            REGISTRY.counter("Bad")
            """
        )
        assert lines(analysis, "obs-discipline") == [3]

    def test_unrelated_objects_not_judged(self, check):
        """inc/observe on arbitrary objects is not the obs API."""
        analysis = check(
            """
            tally.inc("Whatever-Name")
            scope.observe("Another Bad Name", 1.0)
            """
        )
        assert analysis.findings == []

    def test_bound_metric_label_drift_flagged(self, check):
        """``hits = REGISTRY.counter(...)`` then ``hits.inc(...)``."""
        analysis = check(
            """
            from repro.obs.metrics import REGISTRY

            hits = REGISTRY.counter("hits")
            hits.inc(backend="mps")
            hits.inc()
            """
        )
        assert lines(analysis, "obs-discipline") == [5]
        assert "'hits'" in messages(analysis, "obs-discipline")[0]

    def test_bound_metric_consistent_with_helper_site(self, check):
        """Bound-object sites and helper sites feed one family ledger."""
        analysis = check(
            """
            from repro.obs import metrics
            from repro.obs.metrics import REGISTRY

            lat = REGISTRY.histogram("latency")
            lat.observe(0.5, op="svd")
            metrics.observe("latency", 0.9, op="qr")
            """
        )
        assert analysis.findings == []

    def test_registry_alias_assignment_tracked(self, check):
        """``reg = _metrics.REGISTRY`` keeps family calls in scope."""
        analysis = check(
            """
            from repro.obs import metrics as _metrics

            reg = _metrics.REGISTRY
            reg.counter("Bad")
            """
        )
        assert lines(analysis, "obs-discipline") == [4]

    def test_chained_registration_record_call(self, check):
        """``REGISTRY.counter("n").inc(...)`` contributes a label site."""
        analysis = check(
            """
            from repro.obs import metrics
            from repro.obs.metrics import REGISTRY

            REGISTRY.counter("http_requests").inc(path="/metrics")
            metrics.inc("http_requests")
            """
        )
        assert lines(analysis, "obs-discipline") == [5]

    def test_shadowed_binding_untracked(self, check):
        """Rebinding a metric name to something else stops tracking it."""
        analysis = check(
            """
            from repro.obs.metrics import REGISTRY

            hits = REGISTRY.counter("hits")
            hits.inc(backend="mps")
            hits = object()
            hits.inc()
            """
        )
        assert analysis.findings == []


class TestErrorHygiene:
    def test_bare_except_flagged(self, check):
        analysis = check(
            """
            try:
                risky()
            except:
                recover()
            """
        )
        assert lines(analysis, "error-hygiene") == [3]
        assert "KeyboardInterrupt" in messages(analysis, "error-hygiene")[0]

    def test_silent_broad_handler_flagged(self, check):
        analysis = check(
            """
            try:
                risky()
            except Exception:
                pass
            """
        )
        assert lines(analysis, "error-hygiene") == [3]
        assert "silently swallows" in messages(analysis, "error-hygiene")[0]

    def test_silent_base_exception_with_alias_flagged(self, check):
        analysis = check(
            """
            try:
                risky()
            except BaseException as exc:
                ...
            """
        )
        assert lines(analysis, "error-hygiene") == [3]

    def test_broad_inside_tuple_flagged(self, check):
        analysis = check(
            """
            try:
                risky()
            except (ValueError, Exception):
                pass
            """
        )
        assert lines(analysis, "error-hygiene") == [3]

    def test_narrow_silent_handler_clean(self, check):
        analysis = check(
            """
            try:
                path.unlink()
            except OSError:
                pass
            """
        )
        assert analysis.findings == []

    def test_broad_handler_with_real_handling_clean(self, check):
        analysis = check(
            """
            try:
                risky()
            except Exception as exc:
                record(exc)
                raise
            """
        )
        assert analysis.findings == []
