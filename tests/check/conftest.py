"""Shared fixtures for the repro.check analyzer tests."""

import textwrap

import pytest

from repro.check import run_check


@pytest.fixture
def check(tmp_path):
    """Run the analyzer over one dedented snippet; return the Analysis.

    The snippet is written to ``sample.py`` under ``tmp_path`` and the
    analysis is rooted there, so finding paths are stable and line 1 is
    the snippet's first non-blank line.
    """

    def _check(source, *, select=None, name="sample.py"):
        path = tmp_path / name
        path.write_text(
            textwrap.dedent(source).strip() + "\n", encoding="utf-8"
        )
        return run_check([path], select=select, root=tmp_path)

    return _check
