"""Baseline files: round-trips, multiplicity, and loud failure modes."""

import json

import pytest

from repro.check import (
    Finding,
    load_baseline,
    run_check,
    subtract_baseline,
    write_baseline,
)

VIOLATION = "import numpy as np\n\nrng = np.random.default_rng()\n"


class TestRoundTrip:
    def test_write_then_load_preserves_fingerprints(self, tmp_path):
        findings = [
            Finding("a.py", 3, "seed-discipline", "boom"),
            Finding("b.py", 9, "error-hygiene", "silent"),
        ]
        path = tmp_path / "baseline.json"
        assert write_baseline(path, findings) == 2
        counts = load_baseline(path)
        assert counts[findings[0].fingerprint()] == 1
        assert counts[findings[1].fingerprint()] == 1
        assert sum(counts.values()) == 2

    def test_baselined_finding_survives_line_moves(self, tmp_path):
        """Matching is by (path, rule, message), never by line."""
        path = tmp_path / "baseline.json"
        write_baseline(path, [Finding("a.py", 3, "seed-discipline", "boom")])
        moved = Finding("a.py", 42, "seed-discipline", "boom")
        new, matched = subtract_baseline([moved], load_baseline(path))
        assert new == [] and matched == 1

    def test_multiplicity_is_respected(self, tmp_path):
        finding = Finding("a.py", 3, "seed-discipline", "boom")
        twice = [finding, Finding("a.py", 8, "seed-discipline", "boom")]
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding])
        new, matched = subtract_baseline(twice, load_baseline(path))
        assert matched == 1
        assert [f.line for f in new] == [8]


class TestMalformedBaselines:
    def test_unreadable_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("not json at all")
        with pytest.raises(ValueError, match="cannot read baseline"):
            load_baseline(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version-1"):
            load_baseline(path)

    def test_missing_findings_list_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1}))
        with pytest.raises(ValueError, match="no findings list"):
            load_baseline(path)

    def test_incomplete_entry_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": 1, "findings": [{"path": "a.py"}]})
        )
        with pytest.raises(ValueError, match="entry"):
            load_baseline(path)


class TestBaselineThroughARun:
    def test_grandfathered_run_reports_nothing_new(self, tmp_path):
        source = tmp_path / "legacy.py"
        source.write_text(VIOLATION)
        baseline_path = tmp_path / "baseline.json"

        first = run_check([source], root=tmp_path)
        write_baseline(baseline_path, first.findings)

        second = run_check([source], root=tmp_path)
        new, matched = subtract_baseline(
            second.findings, load_baseline(baseline_path)
        )
        assert new == [] and matched == 1

    def test_fresh_violation_is_still_new(self, tmp_path):
        source = tmp_path / "legacy.py"
        source.write_text(VIOLATION)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, run_check([source], root=tmp_path).findings)

        source.write_text(VIOLATION + "\nother = np.random.RandomState(1)\n")
        rerun = run_check([source], root=tmp_path)
        new, matched = subtract_baseline(
            rerun.findings, load_baseline(baseline_path)
        )
        assert matched == 1
        assert [f.rule for f in new] == ["seed-discipline"]
        assert "RandomState" in new[0].message
