"""Engine behaviour: suppression, discovery, the rule registry, parsing."""

import pytest

from repro.check import Finding, Rule, discover_files, get_rules, register_rule
from repro.check.engine import _RULES


class TestSuppression:
    def test_inline_suppression_by_rule_id(self, check):
        analysis = check(
            """
            import numpy as np

            rng = np.random.default_rng()  # repro: ignore[seed-discipline]
            """
        )
        assert analysis.findings == []
        assert analysis.suppressed_count == 1

    def test_bare_ignore_silences_every_rule(self, check):
        analysis = check(
            """
            import numpy as np

            rng = np.random.default_rng()  # repro: ignore
            """
        )
        assert analysis.findings == []
        assert analysis.suppressed_count == 1

    def test_other_rule_id_does_not_suppress(self, check):
        analysis = check(
            """
            import numpy as np

            rng = np.random.default_rng()  # repro: ignore[error-hygiene]
            """
        )
        assert [f.rule for f in analysis.findings] == ["seed-discipline"]
        assert analysis.suppressed_count == 0

    def test_marker_inside_string_literal_cannot_suppress(self, check):
        analysis = check(
            """
            import numpy as np

            rng = np.random.default_rng(); note = "# repro: ignore[seed-discipline]"
            """
        )
        assert [f.rule for f in analysis.findings] == ["seed-discipline"]


class TestDiscovery:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no such file"):
            discover_files([tmp_path / "nope"])

    def test_pycache_and_hidden_directories_skipped(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "b.py").write_text("x = 2\n")
        (tmp_path / "pkg" / ".hidden").mkdir()
        (tmp_path / "pkg" / ".hidden" / "c.py").write_text("x = 3\n")
        found = discover_files([tmp_path / "pkg"])
        assert [p.name for p in found] == ["a.py"]

    def test_overlapping_paths_deduplicate(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        found = discover_files([target, tmp_path])
        assert len(found) == 1


class TestRegistry:
    def test_all_builtin_rules_registered(self):
        ids = [rule.id for rule in get_rules()]
        assert ids == [
            "backend-protocol",
            "error-hygiene",
            "obs-discipline",
            "pickle-safety",
            "seed-discipline",
        ]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            get_rules(["not-a-rule"])

    def test_rule_without_id_rejected(self):
        class Anonymous(Rule):
            pass

        with pytest.raises(ValueError, match="has no id"):
            register_rule(Anonymous)

    def test_duplicate_rule_id_rejected(self):
        class Imposter(Rule):
            id = "seed-discipline"

        with pytest.raises(ValueError, match="already registered"):
            register_rule(Imposter)

    def test_plugin_rule_participates_in_a_run(self, check):
        @register_rule
        class NoForbiddenCalls(Rule):
            id = "test-no-forbidden"
            rationale = "fixture rule for the plugin registry test"

            def visit_Call(self, node, ctx):
                name = getattr(node.func, "id", None)
                if name == "forbidden":
                    ctx.report(self, node, "call to forbidden()")

        try:
            analysis = check(
                """
                allowed()
                forbidden()
                """,
                select=["test-no-forbidden"],
            )
            assert [(f.rule, f.line) for f in analysis.findings] == [
                ("test-no-forbidden", 2)
            ]
        finally:
            _RULES.pop("test-no-forbidden", None)


class TestParseErrors:
    def test_syntax_error_becomes_a_finding(self, check):
        analysis = check("def broken(:\n")
        assert [f.rule for f in analysis.findings] == ["parse-error"]
        assert "cannot analyse" in analysis.findings[0].message


class TestFinding:
    def test_render_is_path_line_rule_message(self):
        finding = Finding("pkg/mod.py", 7, "seed-discipline", "boom")
        assert finding.render() == "pkg/mod.py:7: [seed-discipline] boom"

    def test_fingerprint_ignores_the_line_number(self):
        a = Finding("pkg/mod.py", 7, "seed-discipline", "boom")
        b = Finding("pkg/mod.py", 99, "seed-discipline", "boom")
        assert a.fingerprint() == b.fingerprint()
        assert a != b
