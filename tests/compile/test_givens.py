"""Tests for the exact Givens decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compile.synthesis.givens import (
    decompose_unitary,
    givens_count,
)
from repro.core.exceptions import SynthesisError
from repro.core.gates import fourier, snap, weyl_x
from repro.core.random_ops import haar_unitary


class TestDecomposition:
    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_reconstruction_exact(self, d):
        u = haar_unitary(d, np.random.default_rng(d))
        dec = decompose_unitary(u)
        np.testing.assert_allclose(dec.reconstruct(), u, atol=1e-9)

    @given(st.integers(min_value=2, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_rotation_count_bound(self, d):
        u = haar_unitary(d, np.random.default_rng(d + 100))
        dec = decompose_unitary(u)
        assert dec.n_rotations <= givens_count(d)

    def test_diagonal_needs_no_rotations(self):
        u = snap(5, [0.1, 0.2, 0.3, 0.4, 0.5])
        dec = decompose_unitary(u)
        assert dec.n_rotations == 0
        np.testing.assert_allclose(dec.reconstruct(), u, atol=1e-10)

    def test_identity(self):
        dec = decompose_unitary(np.eye(4, dtype=complex))
        assert dec.n_rotations == 0
        np.testing.assert_allclose(dec.phases, np.zeros(4), atol=1e-12)

    def test_fourier_decomposes(self):
        f = fourier(4)
        dec = decompose_unitary(f)
        np.testing.assert_allclose(dec.reconstruct(), f, atol=1e-9)
        assert dec.n_rotations >= 1

    def test_permutation_decomposes(self):
        x = weyl_x(5)
        dec = decompose_unitary(x)
        np.testing.assert_allclose(dec.reconstruct(), x, atol=1e-9)

    def test_rejects_non_unitary(self):
        with pytest.raises(SynthesisError):
            decompose_unitary(np.ones((3, 3)))

    def test_step_matrices_are_unitary(self):
        from repro.core.gates import is_unitary

        u = haar_unitary(5, np.random.default_rng(9))
        dec = decompose_unitary(u)
        for step in dec.steps:
            assert is_unitary(step.matrix(5))

    def test_pruning_removes_tiny_rotations(self):
        u = np.eye(4, dtype=complex)
        dec = decompose_unitary(u, prune=True)
        assert dec.n_rotations == 0


class TestGivensCount:
    def test_values(self):
        assert givens_count(2) == 1
        assert givens_count(4) == 6
        assert givens_count(10) == 45

    def test_rejects_small(self):
        with pytest.raises(SynthesisError):
            givens_count(1)
