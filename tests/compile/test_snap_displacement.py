"""Tests for SNAP+displacement variational synthesis (kept small & fast)."""

import numpy as np
import pytest

from repro.compile.synthesis.snap_displacement import (
    SnapDisplacementSequence,
    default_layer_count,
    subspace_fidelity,
    synthesize_unitary,
)
from repro.core.exceptions import SynthesisError
from repro.core.gates import fourier, qudit_mixer


class TestSubspaceFidelity:
    def test_perfect_match(self):
        target = fourier(3)
        full = np.eye(6, dtype=complex)
        full[:3, :3] = target
        assert abs(subspace_fidelity(full, target, 3) - 1.0) < 1e-12

    def test_orthogonal_block(self):
        target = np.eye(2, dtype=complex)
        full = np.zeros((4, 4), dtype=complex)
        full[0, 1] = full[1, 0] = 1.0  # X on the subspace
        assert subspace_fidelity(full, target, 2) < 1e-12

    def test_global_phase_invariance(self):
        target = fourier(3)
        full = np.zeros((5, 5), dtype=complex)
        full[:3, :3] = np.exp(1j * 0.77) * target
        assert abs(subspace_fidelity(full, target, 3) - 1.0) < 1e-12

    def test_leakage_penalised(self):
        """A unitary that leaks out of the subspace scores < 1."""
        target = np.eye(2, dtype=complex)
        full = np.eye(4, dtype=complex)
        # rotate |1> partially into |2>
        c, s = np.cos(0.4), np.sin(0.4)
        full[1, 1], full[1, 2], full[2, 1], full[2, 2] = c, -s, s, c
        assert subspace_fidelity(full, target, 2) < 1.0


class TestSequence:
    def test_matrix_shape_and_counts(self):
        seq = SnapDisplacementSequence(
            d_sim=5,
            d_target=3,
            alphas=(0.1 + 0j, 0.2 + 0j),
            snap_phases=((0.0,) * 5,),
        )
        assert seq.matrix().shape == (5, 5)
        assert seq.gate_counts() == {"snap": 1, "disp": 2}
        assert seq.n_layers == 1

    def test_zero_sequence_is_near_identity(self):
        seq = SnapDisplacementSequence(
            d_sim=4, d_target=2, alphas=(0j, 0j), snap_phases=((0.0,) * 4,)
        )
        np.testing.assert_allclose(seq.matrix(), np.eye(4), atol=1e-12)


class TestSynthesis:
    def test_qubit_mixer_converges(self):
        res = synthesize_unitary(
            qudit_mixer(2, 0.7), seed=0, max_restarts=2, maxiter=200
        )
        assert res.infidelity < 1e-3

    def test_qutrit_fourier_converges(self):
        res = synthesize_unitary(fourier(3), seed=1, max_restarts=2, maxiter=300)
        assert res.infidelity < 1e-2

    def test_achieved_unitary_close_to_target(self):
        target = qudit_mixer(2, 0.5)
        res = synthesize_unitary(target, seed=2, max_restarts=2, maxiter=200)
        achieved = res.achieved_unitary()
        # compare up to global phase via the fidelity itself
        overlap = abs(np.trace(target.conj().T @ achieved)) / 2
        assert overlap > 0.99

    def test_result_metadata(self):
        res = synthesize_unitary(
            qudit_mixer(2, 0.3), seed=3, max_restarts=1, maxiter=50
        )
        assert res.n_restarts_used == 1
        assert res.n_iterations >= 1
        assert abs(res.fidelity + res.infidelity - 1.0) < 1e-12

    def test_layer_count_heuristic(self):
        assert default_layer_count(4) == 5
        with pytest.raises(SynthesisError):
            default_layer_count(1)

    def test_rejects_non_square(self):
        with pytest.raises(SynthesisError):
            synthesize_unitary(np.ones((2, 3)))

    def test_custom_layer_count_respected(self):
        res = synthesize_unitary(
            qudit_mixer(2, 0.3), n_layers=2, seed=4, max_restarts=1, maxiter=30
        )
        assert res.sequence.n_layers == 2
