"""Tests for CSUM compilation and two-qudit synthesis."""

import numpy as np
import pytest

from repro.compile.synthesis.csum import csum_circuit, csum_cost
from repro.compile.synthesis.twoqudit import (
    entangling_count_upper_bound,
    is_diagonal_unitary,
    synthesize_two_qudit,
)
from repro.core.exceptions import SynthesisError
from repro.core.gates import beamsplitter, controlled_phase, csum
from repro.core.random_ops import haar_unitary
from repro.hardware import DeviceNoiseModel, linear_cavity_array


class TestCsumCircuit:
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_fourier_route_exact(self, d):
        qc = csum_circuit(d)
        np.testing.assert_allclose(qc.to_unitary(), csum(d), atol=1e-10)

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_inverse_route(self, d):
        qc = csum_circuit(d, inverse=True)
        np.testing.assert_allclose(qc.to_unitary(), csum(d).conj().T, atol=1e-10)

    def test_forward_then_inverse_is_identity(self):
        qc = csum_circuit(3).compose(csum_circuit(3, inverse=True))
        np.testing.assert_allclose(qc.to_unitary(), np.eye(9), atol=1e-10)

    def test_mixed_dims_rejected(self):
        with pytest.raises(SynthesisError):
            csum_circuit(2, 3)

    def test_exactly_one_entangler(self):
        assert csum_circuit(4).num_entangling() == 1


class TestCsumCost:
    @pytest.fixture()
    def device(self):
        return linear_cavity_array(3, 2, 4, seed=0)

    def test_colocated_vs_adjacent(self, device):
        coloc = csum_cost(device, 0, 1)
        adjacent = csum_cost(device, 1, 2)
        assert coloc.edge_kind == "colocated"
        assert adjacent.edge_kind == "adjacent"
        assert adjacent.fidelity < coloc.fidelity
        assert adjacent.duration > coloc.duration

    def test_counts_scale_with_dimension(self):
        small = linear_cavity_array(1, 2, 3)
        big = linear_cavity_array(1, 2, 8)
        assert csum_cost(big, 0, 1).n_snap > csum_cost(small, 0, 1).n_snap

    def test_disconnected_rejected(self, device):
        with pytest.raises(SynthesisError):
            csum_cost(device, 0, 5)  # cavities 0 and 2 are not adjacent

    def test_explicit_noise_model_accepted(self, device):
        nm = DeviceNoiseModel(device, transmon_error_fraction=0.1)
        low = csum_cost(device, 0, 1, noise_model=nm)
        high = csum_cost(
            device, 0, 1, noise_model=DeviceNoiseModel(device, 1.0)
        )
        assert low.fidelity > high.fidelity


class TestTwoQuditSynthesis:
    def test_csum_reconstruction(self):
        syn = synthesize_two_qudit(csum(3), 3, 3)
        np.testing.assert_allclose(
            syn.decomposition.reconstruct(), csum(3), atol=1e-9
        )

    def test_csum_rotations_are_target_local(self):
        """CSUM only permutes the target digit: no cross rotations."""
        syn = synthesize_two_qudit(csum(3), 3, 3)
        assert syn.n_cross == 0
        assert syn.n_local_control == 0
        assert syn.n_local_target >= 1

    def test_diagonal_detected_and_cheap(self):
        syn = synthesize_two_qudit(controlled_phase(3, 3), 3, 3)
        assert syn.diagonal
        assert syn.entangling_cost() == 1

    def test_beamsplitter_has_cross_rotations(self):
        bs = beamsplitter(3, 3, 0.6)
        syn = synthesize_two_qudit(bs, 3, 3)
        assert syn.n_cross >= 1
        np.testing.assert_allclose(syn.decomposition.reconstruct(), bs, atol=1e-8)

    def test_random_unitary_cost_bounded(self):
        u = haar_unitary(6, np.random.default_rng(0))
        syn = synthesize_two_qudit(u, 2, 3)
        assert syn.entangling_cost() <= entangling_count_upper_bound(2, 3)
        np.testing.assert_allclose(syn.decomposition.reconstruct(), u, atol=1e-8)

    def test_shape_mismatch(self):
        with pytest.raises(SynthesisError):
            synthesize_two_qudit(np.eye(5, dtype=complex), 2, 3)

    def test_non_unitary(self):
        with pytest.raises(SynthesisError):
            synthesize_two_qudit(np.ones((6, 6)), 2, 3)

    def test_is_diagonal_unitary(self):
        assert is_diagonal_unitary(controlled_phase(2, 2))
        assert not is_diagonal_unitary(csum(2))

    def test_upper_bound_validation(self):
        with pytest.raises(SynthesisError):
            entangling_count_upper_bound(1, 3)
