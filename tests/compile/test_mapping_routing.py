"""Tests for noise-aware mapping, routing, resources, and the transpiler."""

import numpy as np
import pytest

from repro.compile import (
    estimate_resources,
    noise_aware_map,
    route_circuit,
    score_layout,
    swap_network_layers,
    transpile,
    trivial_map,
)
from repro.core import QuditCircuit, Statevector
from repro.core.exceptions import CompilationError
from repro.hardware import linear_cavity_array


def chain_circuit(n=4, d=3):
    qc = QuditCircuit([d] * n)
    for i in range(n):
        qc.fourier(i)
    for i in range(n - 1):
        qc.csum(i, i + 1)
    return qc


@pytest.fixture()
def spread_device():
    return linear_cavity_array(3, 2, 3, coherence_spread=0.5, seed=11)


class TestScoreLayout:
    def test_rejects_duplicate_modes(self, spread_device):
        qc = chain_circuit(2)
        with pytest.raises(CompilationError):
            score_layout(qc, spread_device, [0, 0])

    def test_rejects_wrong_length(self, spread_device):
        with pytest.raises(CompilationError):
            score_layout(chain_circuit(2), spread_device, [0])

    def test_rejects_dimension_infeasible(self):
        device = linear_cavity_array(1, 2, 2)
        qc = chain_circuit(2, d=3)
        with pytest.raises(CompilationError):
            score_layout(qc, device, [0, 1])

    def test_distance_penalty(self, spread_device):
        """A layout with distant interacting wires scores worse."""
        qc = QuditCircuit([3, 3])
        qc.csum(0, 1)
        near = score_layout(qc, spread_device, [0, 1])
        far = score_layout(qc, spread_device, [0, 5])
        assert near > far

    def test_log_fidelity_nonpositive(self, spread_device):
        score = score_layout(chain_circuit(3), spread_device, [0, 1, 2])
        assert score <= 0.0


class TestMapping:
    def test_noise_aware_beats_or_ties_trivial(self, spread_device):
        qc = chain_circuit(4)
        smart = noise_aware_map(qc, spread_device, seed=0)
        naive = trivial_map(qc, spread_device)
        assert smart.log_fidelity >= naive.log_fidelity - 1e-12

    def test_layout_is_permutation(self, spread_device):
        result = noise_aware_map(chain_circuit(5), spread_device, seed=1)
        assert len(set(result.layout)) == 5

    def test_too_many_wires(self):
        device = linear_cavity_array(1, 2, 3)
        with pytest.raises(CompilationError):
            noise_aware_map(chain_circuit(4), device)

    def test_fidelity_property(self, spread_device):
        result = noise_aware_map(chain_circuit(3), spread_device, seed=2)
        assert 0.0 < result.fidelity <= 1.0

    def test_prefers_long_lived_modes(self):
        """With one clearly better mode, a single-wire circuit lands on it."""
        device = linear_cavity_array(2, 1, 3, coherence_spread=1.2, seed=3)
        t1s = [m.coherence.t1 for m in device.modes]
        best_mode = int(np.argmax(t1s))
        qc = QuditCircuit([3])
        for _ in range(5):
            qc.fourier(0)
        result = noise_aware_map(qc, device, seed=4)
        assert result.layout[0] == best_mode


class TestRouting:
    def test_connected_gates_pass_through(self, spread_device):
        qc = QuditCircuit([3, 3])
        qc.csum(0, 1)
        routed = route_circuit(qc, spread_device, [0, 1])
        assert routed.n_swaps == 0
        assert len(routed.circuit) == 1

    def test_distant_gate_gets_swaps(self, spread_device):
        qc = QuditCircuit([3, 3])
        qc.csum(0, 1)
        routed = route_circuit(qc, spread_device, [0, 5])
        assert routed.n_swaps + routed.n_moves >= 1
        assert routed.final_layout != (0, 5)
        # every two-qudit gate in the routed circuit must be connected
        mode_of = list(routed.initial_layout)
        for inst in routed.circuit:
            if inst.name == "move":
                mode_of[inst.qudits[0]] = inst.params["to_mode"]
            elif inst.kind == "unitary" and inst.num_qudits == 2:
                a, b = inst.qudits
                assert spread_device.are_connected(mode_of[a], mode_of[b])
                if inst.name == "swap":
                    mode_of[a], mode_of[b] = mode_of[b], mode_of[a]

    def test_routing_preserves_semantics(self):
        """Statevector after routed circuit matches (up to wire relabelling)."""
        device = linear_cavity_array(4, 1, 3)
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        routed = route_circuit(qc, device, [0, 3])
        ideal = Statevector.zero([3, 3]).evolve(qc)
        actual = Statevector.zero([3, 3]).evolve(routed.circuit)
        # Routed circuit acts on the same logical wires; SWAPs are real
        # gates so the final state is identical.
        assert actual.fidelity(ideal) > 1 - 1e-10

    def test_layout_length_mismatch(self, spread_device):
        with pytest.raises(CompilationError):
            route_circuit(chain_circuit(3), spread_device, [0, 1])


class TestSwapNetwork:
    def test_layer_structure(self):
        layers = swap_network_layers(4)
        assert len(layers) == 4
        for layer in layers:
            wires = [w for pair in layer for w in pair]
            assert len(wires) == len(set(wires))  # disjoint pairs

    def test_full_network_reverses_order(self):
        n = 5
        order = list(range(n))
        for layer in swap_network_layers(n):
            for i, j in layer:
                order[i], order[j] = order[j], order[i]
        assert order == list(reversed(range(n)))

    def test_all_pairs_meet(self):
        n = 6
        order = list(range(n))
        met = set()
        for layer in swap_network_layers(n):
            for i, j in layer:
                met.add(tuple(sorted((order[i], order[j]))))
                order[i], order[j] = order[j], order[i]
        assert len(met) == n * (n - 1) // 2

    def test_too_small(self):
        with pytest.raises(CompilationError):
            swap_network_layers(1)


class TestResources:
    def test_estimate_fields(self, spread_device):
        qc = chain_circuit(3)
        est = estimate_resources(qc, spread_device, [0, 1, 2])
        assert est.n_entangling >= 2
        assert est.total_duration > 0
        assert 0 < est.fidelity < 1
        assert est.critical_wire_duration <= est.total_duration
        assert "entangling" in est.summary()

    def test_deeper_circuit_costs_more(self, spread_device):
        shallow = chain_circuit(3)
        deep = shallow.repeated(3)
        est_s = estimate_resources(shallow, spread_device, [0, 1, 2])
        est_d = estimate_resources(deep, spread_device, [0, 1, 2])
        assert est_d.total_duration > est_s.total_duration
        assert est_d.fidelity < est_s.fidelity

    def test_layout_validation(self, spread_device):
        with pytest.raises(CompilationError):
            estimate_resources(chain_circuit(2), spread_device, [0, 99])

    def test_coherence_fraction_scales(self, spread_device):
        qc = chain_circuit(3)
        est1 = estimate_resources(qc, spread_device, [0, 1, 2])
        est2 = estimate_resources(qc.repeated(4), spread_device, [0, 1, 2])
        assert est2.coherence_fraction > est1.coherence_fraction


class TestTranspile:
    def test_end_to_end(self, spread_device):
        result = transpile(chain_circuit(4), spread_device, seed=0)
        assert len(result.mapping.layout) == 4
        assert result.resources.fidelity > 0
        # routed circuit must execute: all two-qudit gates connected
        mode_of = list(result.routing.initial_layout)
        for inst in result.circuit:
            if inst.name == "move":
                mode_of[inst.qudits[0]] = inst.params["to_mode"]
            elif inst.kind == "unitary" and inst.num_qudits == 2:
                a, b = inst.qudits
                assert spread_device.are_connected(mode_of[a], mode_of[b])
                if inst.name == "swap":
                    mode_of[a], mode_of[b] = mode_of[b], mode_of[a]

    def test_trivial_mode(self, spread_device):
        result = transpile(chain_circuit(3), spread_device, noise_aware=False)
        assert result.mapping.method == "trivial"
