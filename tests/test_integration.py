"""Cross-module integration tests: full pipelines at toy sizes.

Each test exercises a complete workflow the way the examples and
benchmarks do — compile + simulate + score — rather than a single module.
"""

import numpy as np
import pytest

from repro import DensityMatrix, QuditCircuit, Statevector
from repro.compile import estimate_resources, transpile
from repro.compile.synthesis import csum_circuit, synthesize_two_qudit
from repro.hardware import DeviceNoiseModel, forecast_device, linear_cavity_array
from repro.qaoa import optimize_qaoa, random_coloring_instance, run_ndar
from repro.reservoir import (
    QuantumReservoir,
    CoupledOscillators,
    RidgeReadout,
    narma_task,
    train_test_split,
)
from repro.sqed import (
    RotorChain,
    RotorLadder2D,
    estimate_mass_gap,
    trotter_circuit,
)
from repro.sqed.rotor2d import ladder_mode_layout


class TestCompileAndSimulate:
    def test_transpiled_circuit_preserves_state(self):
        """Full transpile -> simulate: output state matches the logical one."""
        device = linear_cavity_array(3, 2, 3, coherence_spread=0.3, seed=2)
        qc = QuditCircuit([3, 3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        qc.csum(1, 2)
        result = transpile(qc, device, seed=0)
        ideal = Statevector.zero([3, 3, 3]).evolve(qc)
        actual = Statevector.zero([3, 3, 3]).evolve(result.circuit)
        assert actual.fidelity(ideal) > 1 - 1e-9

    def test_noise_model_on_transpiled_circuit(self):
        """Transpiled circuit + device noise run end to end on rho."""
        device = linear_cavity_array(2, 2, 3, seed=3)
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        result = transpile(qc, device, seed=1)
        noise = DeviceNoiseModel(device)
        noisy = noise.apply_to_circuit(
            result.circuit, layout=list(result.routing.initial_layout)
        )
        rho = DensityMatrix.zero([3, 3]).evolve(noisy)
        ideal = Statevector.zero([3, 3]).evolve(qc)
        fidelity = rho.fidelity_with_pure(ideal)
        estimate = result.resources.fidelity
        assert 0.5 < fidelity < 1.0
        # first-order estimate is pessimistic (it counts lowered natives)
        assert estimate <= fidelity + 0.05

    def test_synthesized_csum_runs_in_circuit(self):
        """Fourier-route CSUM spliced into a register behaves like csum()."""
        route = csum_circuit(3)
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        for inst in route:
            qc.append(inst)
        direct = QuditCircuit([3, 3])
        direct.fourier(0)
        direct.csum(0, 1)
        a = Statevector.zero([3, 3]).evolve(qc)
        b = Statevector.zero([3, 3]).evolve(direct)
        assert a.fidelity(b) > 1 - 1e-9

    def test_givens_synthesis_of_trotter_gate(self):
        """A Trotter hop unitary decomposes and classifies cleanly."""
        chain = RotorChain(2, spin=1, hopping=0.4)
        hop = [t for t in chain.terms() if t.label == "hop"][0]
        from scipy.linalg import expm

        gate = expm(-1j * 0.3 * hop.operator)
        syn = synthesize_two_qudit(gate, 3, 3)
        np.testing.assert_allclose(
            syn.decomposition.reconstruct(), gate, atol=1e-8
        )
        assert syn.entangling_cost() >= 1


class TestSqedCampaign:
    def test_mass_gap_on_forecast_device_budget(self):
        """The 1D campaign circuit fits the forecast device's coherence."""
        chain = RotorChain(3, spin=1, hopping=0.3)
        device = forecast_device()
        step = trotter_circuit(chain, t_total=0.5, n_steps=2)
        est = estimate_resources(step, device, layout=[0, 1, 2])
        assert est.coherence_fraction < 0.2

    def test_2d_ladder_maps_to_cavity_chain(self):
        lattice = RotorLadder2D(4, 2, spin=1)
        device = forecast_device()
        layout = ladder_mode_layout(lattice, modes_per_cavity=4)
        step = trotter_circuit(lattice, 0.2, 1)
        est = estimate_resources(step, device, layout)
        assert est.n_entangling > 0
        # vertical bonds land co-located
        assert device.edge_kind(layout[0], layout[1]) == "colocated"
        # horizontal neighbours land on adjacent cavities
        assert device.edge_kind(layout[0], layout[2]) == "adjacent"

    def test_gap_estimate_pipeline_small(self):
        result = estimate_mass_gap(
            RotorChain(2, spin=1, g2=1.5, hopping=0.2), n_steps=200
        )
        assert result.relative_error < 0.1


class TestQaoaCampaign:
    def test_qaoa_then_ndar_consistency(self):
        """NDAR warm-started with optimised angles beats random sampling."""
        problem = random_coloring_instance(5, 3, degree=2, seed=9)
        qaoa = optimize_qaoa(problem, p=1, maxiter=60)
        ndar = run_ndar(
            problem,
            n_rounds=2,
            shots=25,
            loss_per_layer=0.15,
            angles=(list(qaoa.gammas), list(qaoa.betas)),
            seed=4,
        )
        # random assignment expects n_edges / 3 clashes
        assert ndar.best_cost <= problem.n_edges / 3.0

    def test_every_sample_is_a_valid_coloring(self):
        """Qudit encoding: even heavy noise cannot break one-hot validity."""
        problem = random_coloring_instance(4, 3, degree=2, seed=10)
        from repro.qaoa import sample_noisy_qaoa

        counts = sample_noisy_qaoa(
            problem, [0.4], [0.3], loss_per_layer=0.6, shots=30, seed=0
        )
        for outcome in counts:
            problem.cost(outcome)  # raises if any digit out of range


class TestReservoirCampaign:
    def test_full_prediction_pipeline_small(self):
        task = narma_task(180, order=2, seed=1)
        osc = CoupledOscillators(levels=5)
        reservoir = QuantumReservoir(osc)
        features = reservoir.run(task.inputs)
        f_tr, y_tr, f_te, y_te = train_test_split(features, task.targets, washout=20)
        score = RidgeReadout(1e-7).fit(f_tr, y_tr).score_nmse(f_te, y_te)
        assert score < 0.5  # clearly better than predicting the mean

    def test_reservoir_features_feed_shot_model(self):
        from repro.reservoir import shot_noise_sweep

        task = narma_task(150, order=2, seed=2)
        features = QuantumReservoir(CoupledOscillators(levels=4)).run(task.inputs)
        sweep = shot_noise_sweep(features, task.targets, [50], washout=15, seed=0)
        assert sweep[0].nmse >= sweep[-1].nmse * 0.5


class TestDeviceScaleGuards:
    def test_forecast_device_rejects_oversized_register(self):
        """Dense simulation refuses paper-scale registers loudly."""
        from repro.core.exceptions import CircuitError

        qc = QuditCircuit([10] * 40)
        with pytest.raises(CircuitError):
            qc.to_unitary()

    def test_resource_estimator_handles_paper_scale(self):
        """Estimation (not simulation) works at full Table I size."""
        lattice = RotorLadder2D(9, 2, spin=2)
        device = forecast_device()
        layout = ladder_mode_layout(lattice, modes_per_cavity=4)
        step = trotter_circuit(lattice, 0.2, 1)
        est = estimate_resources(step, device, layout)
        assert est.total_duration > 0
        assert 0 <= est.fidelity < 1
