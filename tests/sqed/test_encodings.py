"""Tests for the qudit/qubit encodings and noise instrumentation."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.core import Statevector
from repro.core.exceptions import DimensionError
from repro.sqed import (
    QubitEncoding,
    QuditEncoding,
    RotorChain,
    insert_depolarizing_noise,
)


@pytest.fixture()
def chain():
    return RotorChain(2, spin=1, g2=1.0, hopping=0.3)


class TestQuditEncoding:
    def test_dims(self, chain):
        assert QuditEncoding(chain).dims == (3, 3)

    def test_trotter_step_accuracy(self, chain):
        """Small-dt step approximates exp(-i H dt) to O(dt^2)."""
        encoding = QuditEncoding(chain)
        dt = 0.02
        step = encoding.trotter_step(dt).to_unitary()
        exact = expm(-1j * dt * chain.to_matrix())
        assert np.abs(step - exact).max() < 5 * dt**2

    def test_entangling_counts(self, chain):
        encoding = QuditEncoding(chain)
        assert encoding.entangling_equivalents("hop") == 2
        assert encoding.entangling_equivalents("zz") == 1
        assert encoding.entangling_equivalents("electric") == 0
        assert encoding.entangling_per_step() == 2  # one bond, hop only

    def test_total_lz_conserved_by_step(self, chain):
        """The hop term conserves total Lz: step commutes with it."""
        encoding = QuditEncoding(chain)
        step = encoding.trotter_step(0.1).to_unitary()
        total = encoding.total_lz_operator()
        np.testing.assert_allclose(
            step @ total @ step.conj().T, total, atol=1e-9
        )

    def test_product_state_digits(self, chain):
        encoding = QuditEncoding(chain)
        assert encoding.initial_state_digits() == (1, 1)
        assert encoding.product_state_digits([1, -1]) == (2, 0)
        with pytest.raises(DimensionError):
            encoding.product_state_digits([2, 0])

    def test_local_operators(self, chain):
        encoding = QuditEncoding(chain)
        lz0 = encoding.local_lz_operator(0)
        state = Statevector.basis((3, 3), (2, 1))  # m = (+1, 0)
        assert abs(np.real(state.vector.conj() @ lz0 @ state.vector) - 1.0) < 1e-12
        with pytest.raises(DimensionError):
            encoding.local_lz_operator(5)

    def test_link_operator_offdiagonal(self, chain):
        encoding = QuditEncoding(chain)
        link = encoding.local_link_operator(0)
        assert np.abs(np.diag(link)).max() < 1e-12
        assert np.abs(link).max() > 0


class TestQubitEncoding:
    def test_qubit_count(self, chain):
        encoding = QubitEncoding(chain)
        assert encoding.qubits_per_site == 2
        assert encoding.n_qubits == 4
        assert encoding.dims == (2, 2, 2, 2)

    def test_site_qubits(self, chain):
        encoding = QubitEncoding(chain)
        assert encoding.site_qubits(1) == [2, 3]
        with pytest.raises(DimensionError):
            encoding.site_qubits(2)

    def test_embedding_preserves_spectrum(self, chain):
        """Embedded Lz has the site spectrum plus zeros on unused states."""
        encoding = QubitEncoding(chain)
        embedded = encoding._embed_site_operator(chain.ops.lz(), 1)
        eigs = sorted(np.linalg.eigvalsh(embedded))
        np.testing.assert_allclose(eigs, [-1, 0, 0, 1], atol=1e-12)

    def test_trotter_step_matches_qudit_physics(self, chain):
        """Both encodings evolve the encoded state identically (small dt)."""
        qudit = QuditEncoding(chain)
        qubit = QubitEncoding(chain)
        dt = 0.02
        psi = Statevector.basis(qudit.dims, qudit.product_state_digits([1, 0]))
        ref = psi.evolve(qudit.trotter_step(dt))
        psi_q = Statevector.basis(qubit.dims, qubit.product_state_digits([1, 0]))
        out_q = psi_q.evolve(qubit.trotter_step(dt))
        # Compare local Lz expectations, encoding-independent observables.
        for site in range(2):
            a = ref.expectation(chain.ops.lz(), site).real
            op = qubit.local_lz_operator(site)
            b = np.real(out_q.vector.conj() @ op @ out_q.vector)
            assert abs(a - b) < 1e-3

    def test_cnot_count_much_larger_than_qudit(self, chain):
        """The gate-count leverage behind claim C1."""
        qudit = QuditEncoding(chain)
        qubit = QubitEncoding(chain)
        ratio = qubit.cnots_per_step() / qudit.entangling_per_step()
        assert ratio > 10

    def test_step_cache(self, chain):
        encoding = QubitEncoding(chain)
        first = encoding.trotter_step(0.1)
        second = encoding.trotter_step(0.1)
        assert first is second

    def test_initial_digits(self, chain):
        encoding = QubitEncoding(chain)
        # m = 0 -> level 1 -> bits 01 per site
        assert encoding.initial_state_digits() == (0, 1, 0, 1)


class TestNoiseInsertion:
    def test_channels_inserted_for_entangling(self, chain):
        encoding = QuditEncoding(chain)
        step = encoding.trotter_step(0.1)
        noisy = insert_depolarizing_noise(step, encoding, 0.01)
        names = [inst.name for inst in noisy]
        assert "depol" in names
        assert len(noisy) > len(step)

    def test_zero_epsilon_single_fraction(self, chain):
        encoding = QuditEncoding(chain)
        step = encoding.trotter_step(0.1)
        noisy = insert_depolarizing_noise(step, encoding, 0.0)
        # epsilon = 0: no channels at all
        assert all(inst.kind == "unitary" for inst in noisy)

    def test_epsilon_validation(self, chain):
        encoding = QuditEncoding(chain)
        step = encoding.trotter_step(0.1)
        with pytest.raises(DimensionError):
            insert_depolarizing_noise(step, encoding, 1.5)

    def test_noise_reduces_fidelity(self, chain):
        from repro.core import DensityMatrix

        encoding = QuditEncoding(chain)
        step = encoding.trotter_step(0.1)
        noisy = insert_depolarizing_noise(step, encoding, 0.05)
        ideal = Statevector.zero(encoding.dims).evolve(step)
        rho = DensityMatrix.zero(encoding.dims).evolve(noisy)
        assert rho.fidelity_with_pure(ideal) < 1.0
