"""Tests for the Pauli-string machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QuditCircuit, Statevector
from repro.core.exceptions import DimensionError
from repro.core.random_ops import random_hermitian
from repro.sqed.pauli import (
    PAULIS,
    PauliTerm,
    matrix_to_pauli_terms,
    pauli_rotation_circuit,
    pauli_terms_to_matrix,
    trotter_step_circuit,
)
from scipy.linalg import expm


class TestPauliTerm:
    def test_weight(self):
        assert PauliTerm(1.0, "XIZ").weight == 2
        assert PauliTerm(1.0, "III").weight == 0

    def test_matrix_single(self):
        np.testing.assert_allclose(PauliTerm(2.0, "X").matrix(), 2 * PAULIS["X"])

    def test_matrix_kron_order(self):
        term = PauliTerm(1.0, "XZ")
        np.testing.assert_allclose(
            term.matrix(), np.kron(PAULIS["X"], PAULIS["Z"]), atol=1e-12
        )

    def test_invalid_label(self):
        with pytest.raises(DimensionError):
            PauliTerm(1.0, "XA")


class TestExpansion:
    @given(st.integers(min_value=1, max_value=3))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_random_hermitian(self, n):
        ham = random_hermitian(2**n, np.random.default_rng(n))
        terms = matrix_to_pauli_terms(ham, n)
        np.testing.assert_allclose(pauli_terms_to_matrix(terms), ham, atol=1e-9)

    def test_known_expansion(self):
        """ZZ has a single term with coefficient 1."""
        zz = np.kron(PAULIS["Z"], PAULIS["Z"])
        terms = matrix_to_pauli_terms(zz, 2)
        assert len(terms) == 1
        assert terms[0].string == "ZZ"
        assert abs(terms[0].coefficient - 1.0) < 1e-12

    def test_sparse_expansion_prunes_zeros(self):
        ham = np.kron(PAULIS["X"], PAULIS["I"]) + 0.5 * np.kron(
            PAULIS["I"], PAULIS["Y"]
        )
        terms = matrix_to_pauli_terms(ham, 2)
        assert {t.string for t in terms} == {"XI", "IY"}

    def test_rejects_non_hermitian(self):
        with pytest.raises(DimensionError):
            matrix_to_pauli_terms(np.array([[0, 1], [0, 0]], dtype=complex), 1)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DimensionError):
            matrix_to_pauli_terms(np.eye(3), 2)

    def test_sorted_by_magnitude(self):
        ham = 0.1 * np.kron(PAULIS["X"], PAULIS["I"]) + 2.0 * np.kron(
            PAULIS["Z"], PAULIS["Z"]
        )
        terms = matrix_to_pauli_terms(ham, 2)
        assert terms[0].string == "ZZ"


class TestRotationCircuit:
    @pytest.mark.parametrize("string", ["Z", "X", "Y", "ZZ", "XY", "XZY"])
    def test_matches_exact_exponential(self, string):
        n = len(string)
        term = PauliTerm(0.7, string)
        angle = 0.3
        qc = QuditCircuit([2] * n)
        pauli_rotation_circuit(qc, term, angle, list(range(n)))
        expected = expm(-1j * angle * term.matrix())
        actual = qc.to_unitary()
        # allow a global phase
        overlap = abs(np.trace(expected.conj().T @ actual)) / 2**n
        assert overlap > 1 - 1e-9

    def test_cnot_count(self):
        qc = QuditCircuit([2, 2, 2])
        n = pauli_rotation_circuit(qc, PauliTerm(1.0, "XZY"), 0.1, [0, 1, 2])
        assert n == 4  # 2 * (weight - 1)

    def test_identity_string_is_free(self):
        qc = QuditCircuit([2, 2])
        n = pauli_rotation_circuit(qc, PauliTerm(1.0, "II"), 0.5, [0, 1])
        assert n == 0
        assert len(qc) == 0

    def test_wire_selection(self):
        """String applied to non-contiguous wires acts on the right qubits."""
        qc = QuditCircuit([2, 2, 2])
        pauli_rotation_circuit(qc, PauliTerm(1.0, "ZZ"), np.pi / 2, [0, 2])
        state = Statevector.basis([2, 2, 2], (1, 0, 1)).evolve(qc)
        # exp(-i pi/2 Z0 Z2)|101> = e^{-i pi/2}|101>: probability unchanged
        assert abs(state.probabilities()[5] - 1.0) < 1e-10

    def test_length_mismatch(self):
        qc = QuditCircuit([2, 2])
        with pytest.raises(DimensionError):
            pauli_rotation_circuit(qc, PauliTerm(1.0, "ZZ"), 0.1, [0])


class TestTrotterStep:
    def test_first_order_error_scaling(self):
        """Trotter error of [X, Z] terms shrinks linearly in dt."""
        terms = [PauliTerm(1.0, "X"), PauliTerm(1.0, "Z")]
        ham = pauli_terms_to_matrix(terms)

        def error(dt):
            qc, _ = trotter_step_circuit(terms, dt, [0], 1)
            exact = expm(-1j * dt * ham)
            diff = qc.to_unitary() - exact
            # remove global phase before comparing
            return np.abs(
                qc.to_unitary() @ exact.conj().T - np.eye(2)
            ).max()

        assert error(0.01) < error(0.1) / 5

    def test_counts_accumulate(self):
        terms = [PauliTerm(0.5, "ZZ"), PauliTerm(0.3, "XX")]
        _, n = trotter_step_circuit(terms, 0.1, [0, 1], 2)
        assert n == 4
