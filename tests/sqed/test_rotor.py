"""Tests for the 1D and 2D rotor Hamiltonians."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import DimensionError
from repro.core.gates import is_hermitian
from repro.sqed import RotorChain, RotorLadder2D, RotorSiteOperators
from repro.sqed.rotor2d import ladder_mode_layout


class TestSiteOperators:
    def test_dim(self):
        assert RotorSiteOperators(1).dim == 3
        assert RotorSiteOperators(2).dim == 5

    def test_lz_spectrum(self):
        lz = RotorSiteOperators(2).lz()
        np.testing.assert_allclose(np.diag(lz).real, [-2, -1, 0, 1, 2])

    def test_raising_action(self):
        ops = RotorSiteOperators(1)
        raising = ops.raising()
        vec = np.zeros(3)
        vec[0] = 1.0  # m = -1
        np.testing.assert_allclose(raising @ vec, [0, 1, 0])
        # top state annihilated
        top = np.zeros(3)
        top[2] = 1.0
        np.testing.assert_allclose(raising @ top, np.zeros(3))

    def test_commutation_with_lz(self):
        """[Lz, U] = U (raising increases m by one), inside the truncation."""
        ops = RotorSiteOperators(2)
        lz, raising = ops.lz(), ops.raising()
        comm = lz @ raising - raising @ lz
        np.testing.assert_allclose(comm, raising, atol=1e-12)

    def test_invalid_spin(self):
        with pytest.raises(DimensionError):
            RotorSiteOperators(0)


class TestRotorChain:
    def test_dims(self):
        chain = RotorChain(4, spin=1)
        assert chain.dims == (3, 3, 3, 3)
        assert chain.site_dim == 3

    def test_needs_two_sites(self):
        with pytest.raises(DimensionError):
            RotorChain(1)

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=10, deadline=None)
    def test_hamiltonian_hermitian(self, n_sites, spin):
        chain = RotorChain(n_sites, spin=spin, g2=0.7, hopping=0.4, mu=0.1, zz=0.2)
        assert is_hermitian(chain.to_matrix())

    def test_terms_structure(self):
        chain = RotorChain(3, spin=1, hopping=0.3, zz=0.1)
        labels = [t.label for t in chain.terms()]
        assert labels.count("electric") == 3
        assert labels.count("hop") == 2
        assert labels.count("zz") == 2

    def test_zero_couplings_drop_terms(self):
        chain = RotorChain(3, spin=1, g2=0.0, hopping=0.0, mu=0.0, zz=0.0)
        assert chain.terms() == []

    def test_periodic_adds_bond(self):
        open_chain = RotorChain(4, spin=1)
        ring = RotorChain(4, spin=1, periodic=True)
        assert len(ring.bonds()) == len(open_chain.bonds()) + 1

    def test_decoupled_spectrum(self):
        """hopping = 0: spectrum is the sum of single-site electric levels."""
        chain = RotorChain(2, spin=1, g2=2.0, hopping=0.0)
        eigs = chain.spectrum()
        # single-site levels: g2/2 * m^2 = {0, 1, 1} -> pair sums sorted
        expected = sorted(a + b for a in (0.0, 1.0, 1.0) for b in (0.0, 1.0, 1.0))
        np.testing.assert_allclose(eigs, expected, atol=1e-10)

    def test_mass_gap_positive(self):
        chain = RotorChain(3, spin=1, g2=1.0, hopping=0.3)
        assert chain.mass_gap() > 0

    def test_gap_grows_with_coupling(self):
        weak = RotorChain(2, spin=1, g2=0.5, hopping=0.1).mass_gap()
        strong = RotorChain(2, spin=1, g2=2.0, hopping=0.1).mass_gap()
        assert strong > weak

    def test_ground_state_normalised(self):
        gs = RotorChain(3, spin=1, hopping=0.3).ground_state()
        assert abs(np.linalg.norm(gs) - 1.0) < 1e-10

    def test_dense_guard(self):
        with pytest.raises(DimensionError):
            RotorChain(9, spin=2).to_matrix()


class TestRotorLadder2D:
    def test_shape(self):
        lattice = RotorLadder2D(3, 2, spin=1)
        assert lattice.n_sites == 6
        assert lattice.site_dim == 3

    def test_site_index_roundtrip(self):
        lattice = RotorLadder2D(4, 2)
        assert lattice.site_index(0, 0) == 0
        assert lattice.site_index(3, 1) == 7
        with pytest.raises(DimensionError):
            lattice.site_index(4, 0)

    def test_bond_count(self):
        """Lx x Ly open grid: (Lx-1)*Ly + Lx*(Ly-1) bonds."""
        lattice = RotorLadder2D(3, 2)
        assert len(lattice.bonds()) == 2 * 2 + 3 * 1

    def test_ladder_boundary_is_everything(self):
        lattice = RotorLadder2D(3, 2)
        assert sorted(lattice.boundary_sites()) == list(range(6))

    def test_interior_site_excluded(self):
        lattice = RotorLadder2D(3, 3)
        assert lattice.site_index(1, 1) not in lattice.boundary_sites()

    def test_hamiltonian_hermitian(self):
        lattice = RotorLadder2D(2, 2, spin=1, kappa=0.4)
        assert is_hermitian(lattice.to_matrix())

    def test_gap_positive(self):
        assert RotorLadder2D(2, 2, spin=1).mass_gap() > 0

    def test_table1_shape_definable(self):
        """The 9x2, d=4+ Table I target is constructible (not simulable)."""
        lattice = RotorLadder2D(9, 2, spin=2)  # d = 5 >= 4
        assert lattice.n_sites == 18
        assert lattice.site_dim >= 4
        assert len(lattice.terms()) > 0
        with pytest.raises(DimensionError):
            lattice.to_matrix()

    def test_mode_layout(self):
        lattice = RotorLadder2D(3, 2)
        layout = ladder_mode_layout(lattice, modes_per_cavity=2)
        # rung x lives in cavity x's modes
        assert layout == [0, 1, 2, 3, 4, 5]
        with pytest.raises(DimensionError):
            ladder_mode_layout(lattice, modes_per_cavity=1)

    def test_invalid_lattice(self):
        with pytest.raises(DimensionError):
            RotorLadder2D(1, 1)
