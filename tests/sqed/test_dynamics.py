"""Tests for Trotter evolution, mass-gap extraction, and the noise study."""

import numpy as np
import pytest

from repro.core import DensityMatrix, Statevector
from repro.core.exceptions import SimulationError
from repro.sqed import (
    QubitEncoding,
    QuditEncoding,
    RotorChain,
    RotorLadder2D,
    estimate_mass_gap,
    exact_gap_trajectory,
    gap_probe_state,
    noise_threshold,
    trajectory_damage,
    trotter_circuit,
)
from repro.sqed.trotter import (
    evolve_observable_trajectory,
    exact_observable_trajectory,
)


@pytest.fixture()
def chain():
    return RotorChain(2, spin=1, g2=1.0, hopping=0.3)


class TestTrotterCircuits:
    def test_first_order_converges(self, chain):
        from scipy.linalg import expm

        exact = expm(-1j * chain.to_matrix() * 1.0)
        coarse = trotter_circuit(chain, 1.0, 4).to_unitary()
        fine = trotter_circuit(chain, 1.0, 32).to_unitary()
        assert np.abs(fine - exact).max() < np.abs(coarse - exact).max()

    def test_second_order_beats_first(self, chain):
        from scipy.linalg import expm

        exact = expm(-1j * chain.to_matrix() * 1.0)
        first = trotter_circuit(chain, 1.0, 8, order=1).to_unitary()
        second = trotter_circuit(chain, 1.0, 8, order=2).to_unitary()
        assert np.abs(second - exact).max() < np.abs(first - exact).max()

    def test_works_for_2d_model(self):
        lattice = RotorLadder2D(2, 2, spin=1)
        qc = trotter_circuit(lattice, 0.5, 2)
        assert qc.num_qudits == 4

    def test_invalid_order(self, chain):
        with pytest.raises(SimulationError):
            trotter_circuit(chain, 1.0, 2, order=3)

    def test_invalid_steps(self, chain):
        with pytest.raises(SimulationError):
            trotter_circuit(chain, 1.0, 0)


class TestTrajectories:
    def test_exact_trajectory_constant_for_eigenstate(self, chain):
        ham = chain.to_matrix()
        _, vecs = np.linalg.eigh(ham)
        obs = QuditEncoding(chain).local_link_operator(0)
        times = np.linspace(0, 5, 20)
        traj = exact_observable_trajectory(ham, obs, vecs[:, 0], times)
        assert np.ptp(traj) < 1e-10

    def test_evolve_observable_length(self, chain):
        encoding = QuditEncoding(chain)
        step = encoding.trotter_step(0.1)
        obs = encoding.local_lz_operator(0)
        initial = DensityMatrix.zero(encoding.dims)
        traj = evolve_observable_trajectory(step, 5, obs, initial)
        assert traj.shape == (6,)

    def test_trotter_matches_exact_trajectory(self, chain):
        encoding = QuditEncoding(chain)
        obs = encoding.local_link_operator(0)
        psi0 = gap_probe_state(chain)
        times = np.linspace(0, 2.0, 21)
        exact = exact_observable_trajectory(chain.to_matrix(), obs, psi0, times)
        step = encoding.trotter_step(0.1)
        initial = DensityMatrix.from_statevector(Statevector(psi0, chain.dims))
        trotter = evolve_observable_trajectory(step, 20, obs, initial)
        assert np.abs(exact - trotter).max() < 0.02


class TestMassGap:
    def test_noiseless_extraction_accurate(self):
        chain = RotorChain(3, spin=1, g2=1.0, hopping=0.3)
        result = estimate_mass_gap(chain)
        assert result.relative_error < 0.05

    def test_probe_state_overlaps_both_levels(self, chain):
        psi = gap_probe_state(chain)
        _, vecs = np.linalg.eigh(chain.to_matrix())
        assert abs(vecs[:, 0].conj() @ psi) > 0.5
        assert abs(vecs[:, 1].conj() @ psi) > 0.5

    def test_noise_degrades_estimate(self):
        chain = RotorChain(2, spin=1, g2=1.0, hopping=0.3)
        clean = estimate_mass_gap(chain, n_steps=150)
        noisy = estimate_mass_gap(chain, n_steps=150, epsilon=0.05)
        assert noisy.relative_error >= clean.relative_error

    def test_exact_gap_trajectory_oscillates_at_gap(self, chain):
        from repro.analysis.fitting import dominant_frequency

        gap = chain.mass_gap()
        times = np.linspace(0, 4 * 2 * np.pi / gap, 240)
        obs = QuditEncoding(chain).local_link_operator(0)
        traj = exact_gap_trajectory(chain, obs, times)
        omega = dominant_frequency(times, traj)
        assert abs(omega - gap) / gap < 0.03


class TestNoiseStudy:
    def test_damage_zero_at_zero_noise(self, chain):
        encoding = QuditEncoding(chain)
        assert trajectory_damage(encoding, 0.0, t_total=1.0, n_steps=3) == 0.0

    def test_damage_monotone(self, chain):
        encoding = QuditEncoding(chain)
        lo = trajectory_damage(encoding, 0.01, t_total=2.0, n_steps=4)
        hi = trajectory_damage(encoding, 0.2, t_total=2.0, n_steps=4)
        assert hi > lo > 0

    def test_qubit_encoding_more_fragile(self, chain):
        """Same epsilon hurts the binary encoding much more — claim C1."""
        eps = 0.01
        qudit_damage = trajectory_damage(
            QuditEncoding(chain), eps, t_total=2.0, n_steps=4
        )
        qubit_damage = trajectory_damage(
            QubitEncoding(chain), eps, t_total=2.0, n_steps=4
        )
        assert qubit_damage > 2 * qudit_damage

    def test_threshold_brackets(self, chain):
        encoding = QuditEncoding(chain)
        threshold = noise_threshold(
            encoding, damage_tol=0.05, t_total=2.0, n_steps=4, bisection_steps=6
        )
        assert 0 < threshold <= 0.5
        below = trajectory_damage(encoding, threshold * 0.9, t_total=2.0, n_steps=4)
        assert below < 0.05 * 1.5  # near-threshold tolerance

    def test_negative_epsilon_rejected(self, chain):
        with pytest.raises(SimulationError):
            trajectory_damage(QuditEncoding(chain), -0.1)

    def test_unknown_method_rejected(self, chain):
        with pytest.raises(SimulationError):
            trajectory_damage(QuditEncoding(chain), 0.1, method="exact")

    def test_trajectory_method_matches_density(self, chain):
        """Batched Monte-Carlo damage converges to the density-matrix score."""
        encoding = QuditEncoding(chain)
        exact = trajectory_damage(encoding, 0.05, t_total=2.0, n_steps=4)
        sampled = trajectory_damage(
            encoding,
            0.05,
            t_total=2.0,
            n_steps=4,
            method="trajectories",
            n_trajectories=512,
            rng=0,
        )
        assert sampled > 0
        assert abs(sampled - exact) < 0.1

    def test_trajectory_method_clean_is_exact(self, chain):
        """Without noise the MC path is deterministic and scores zero."""
        encoding = QuditEncoding(chain)
        assert (
            trajectory_damage(
                encoding, 0.0, t_total=1.0, n_steps=3, method="trajectories"
            )
            == 0.0
        )

    def test_mps_method_matches_density(self, chain):
        """MPS-unravelled damage converges to the density-matrix score."""
        encoding = QuditEncoding(chain)
        exact = trajectory_damage(encoding, 0.05, t_total=2.0, n_steps=4)
        sampled = trajectory_damage(
            encoding,
            0.05,
            t_total=2.0,
            n_steps=4,
            method="mps",
            n_trajectories=256,
            rng=0,
        )
        assert sampled > 0
        assert abs(sampled - exact) < 0.1

    def test_mps_method_clean_is_exact(self, chain):
        encoding = QuditEncoding(chain)
        assert (
            trajectory_damage(
                encoding, 0.0, t_total=1.0, n_steps=3, method="mps"
            )
            == 0.0
        )

    def test_lpdo_method_matches_density(self, chain):
        """LPDO damage agrees with the exact density score — deterministic,
        no Monte-Carlo budget — within the capped-leg truncation error."""
        encoding = QuditEncoding(chain)
        exact = trajectory_damage(encoding, 0.05, t_total=2.0, n_steps=4)
        lpdo = trajectory_damage(
            encoding,
            0.05,
            t_total=2.0,
            n_steps=4,
            method="lpdo",
            max_bond=32,
            max_kraus=32,
        )
        assert lpdo > 0
        assert abs(lpdo - exact) < 1e-2
        # Deterministic: a second run reproduces the score bit-for-bit.
        again = trajectory_damage(
            encoding,
            0.05,
            t_total=2.0,
            n_steps=4,
            method="lpdo",
            max_bond=32,
            max_kraus=32,
        )
        assert again == lpdo

    def test_lpdo_method_clean_is_exact(self, chain):
        encoding = QuditEncoding(chain)
        assert (
            trajectory_damage(
                encoding, 0.0, t_total=1.0, n_steps=3, method="lpdo"
            )
            == 0.0
        )

    def test_lpdo_method_scales_past_dense_reach(self):
        """A 12-site chain (rho = 3^24 entries ≈ 4.1 TiB dense) scores
        damage with *exact* channels — no unravelling, no dense objects —
        and reports both truncation accounts."""
        chain12 = RotorChain(n_sites=12, spin=1)
        encoding = QuditEncoding(chain12)
        damage = trajectory_damage(
            encoding,
            0.03,
            t_total=1.0,
            n_steps=2,
            method="lpdo",
            max_bond=16,
            max_kraus=6,
        )
        assert damage > 0

    def test_mps_method_scales_past_dense_reach(self):
        """A 12-site chain (D = 3^12 ≈ 531k, rho = 2.2 TB) scores damage."""
        chain12 = RotorChain(n_sites=12, spin=1)
        encoding = QuditEncoding(chain12)
        damage = trajectory_damage(
            encoding,
            0.05,
            t_total=1.0,
            n_steps=3,
            method="mps",
            n_trajectories=4,
            rng=1,
            max_bond=16,
        )
        assert damage > 0


class TestBackendObservableDriver:
    def test_backend_driver_matches_density_driver(self, chain):
        from repro.core import DensityMatrix, Statevector
        from repro.sqed.trotter import (
            evolve_observable_trajectory,
            evolve_observable_trajectory_backend,
        )

        encoding = QuditEncoding(chain)
        step = encoding.trotter_step(0.25)
        digits = encoding.product_state_digits([1] + [0] * (chain.n_sites - 1))
        initial = DensityMatrix.from_statevector(
            Statevector.basis(encoding.dims, digits)
        )
        reference = evolve_observable_trajectory(
            step, 5, encoding.local_lz_operator(0), initial
        )
        operator, targets = encoding.local_lz(0)
        for method in ("density", "mps", "lpdo"):
            values = evolve_observable_trajectory_backend(
                step, 5, operator, targets, digits, method=method
            )
            np.testing.assert_allclose(values, reference, atol=1e-8)

    def test_qubit_encoding_local_lz_runs_through_mps(self, chain):
        from repro.sqed.trotter import evolve_observable_trajectory_backend

        encoding = QubitEncoding(chain)
        operator, targets = encoding.local_lz(0)
        assert list(targets) == encoding.site_qubits(0)
        digits = encoding.product_state_digits([0] * chain.n_sites)
        values = evolve_observable_trajectory_backend(
            encoding.trotter_step(0.25), 3, operator, targets, digits,
            method="mps",
        )
        assert values.shape == (4,)
