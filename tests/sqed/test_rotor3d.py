"""Tests for the 3D rotor extension and swap-network embedding."""

import numpy as np
import pytest

from repro.core.exceptions import DimensionError
from repro.core.gates import is_hermitian
from repro.sqed import RotorLattice3D, swap_network_overhead


class TestRotorLattice3D:
    def test_shape(self):
        lattice = RotorLattice3D(2, 2, 2, spin=1)
        assert lattice.n_sites == 8
        assert lattice.site_dim == 3
        assert lattice.dims == (3,) * 8

    def test_site_index(self):
        lattice = RotorLattice3D(2, 2, 2)
        assert lattice.site_index(0, 0, 0) == 0
        assert lattice.site_index(1, 1, 1) == 7
        with pytest.raises(DimensionError):
            lattice.site_index(2, 0, 0)

    def test_bond_count(self):
        """Open Lx x Ly x Lz grid bond count."""
        lattice = RotorLattice3D(2, 2, 2)
        # 3 axes * (L-1) * L * L = 3 * 1*2*2 = 12
        assert len(lattice.bonds()) == 12

    def test_asymmetric_bond_count(self):
        lattice = RotorLattice3D(3, 2, 1)
        # x: 2*2*1=4, y: 3*1*1=3, z: 0
        assert len(lattice.bonds()) == 7

    def test_hamiltonian_hermitian_small(self):
        lattice = RotorLattice3D(2, 2, 1, spin=1)
        assert is_hermitian(lattice.to_matrix())

    def test_gap_positive(self):
        assert RotorLattice3D(2, 2, 1, spin=1).mass_gap() > 0

    def test_2d_limit_matches_ladder(self):
        """Lz = 1 reduces to the 2D lattice (same spectrum, no boundary field)."""
        from repro.sqed import RotorLadder2D

        flat = RotorLattice3D(3, 2, 1, spin=1, g2=1.0, kappa=0.4)
        ladder = RotorLadder2D(3, 2, spin=1, g2=1.0, kappa=0.4, boundary_field=False)
        np.testing.assert_allclose(
            np.linalg.eigvalsh(flat.to_matrix()),
            np.linalg.eigvalsh(ladder.to_matrix()),
            atol=1e-9,
        )

    def test_dense_guard(self):
        with pytest.raises(DimensionError):
            RotorLattice3D(3, 3, 3, spin=1).to_matrix()

    def test_validation(self):
        with pytest.raises(DimensionError):
            RotorLattice3D(1, 1, 1)


class TestSwapNetworkOverhead:
    def test_column_embedding_covers_all_bonds(self):
        lattice = RotorLattice3D(3, 2, 2)
        estimate = swap_network_overhead(lattice)
        assert estimate.n_columns == 3
        assert estimate.modes_per_cavity_needed == 4
        assert estimate.direct_bonds == len(lattice.bonds())
        assert estimate.networked_bonds == 0

    def test_swap_layer_count(self):
        lattice = RotorLattice3D(4, 2, 2)
        estimate = swap_network_overhead(lattice)
        assert estimate.swap_layers == 4
        assert estimate.total_swaps > 0

    def test_forecast_device_feasibility(self):
        """A 2x2x2 lattice fits one forecast cavity pair (4 modes each)."""
        from repro.hardware import forecast_device

        lattice = RotorLattice3D(2, 2, 2, spin=1)
        estimate = swap_network_overhead(lattice)
        device = forecast_device()
        modes_per_cavity = device.n_modes // device.n_cavities
        assert estimate.modes_per_cavity_needed <= modes_per_cavity
        assert estimate.n_columns <= device.n_cavities


class TestNeuronScaling:
    def test_paper_numbers(self):
        from repro.reservoir import neuron_scaling

        assert neuron_scaling(9, 2) == 81  # Table I row 3 basis
        assert neuron_scaling(9, 10) > 1_000_000  # "millions, in principle"

    def test_validation(self):
        from repro.core.exceptions import SimulationError
        from repro.reservoir import neuron_scaling

        with pytest.raises(SimulationError):
            neuron_scaling(1, 2)
        with pytest.raises(SimulationError):
            neuron_scaling(3, 0)
