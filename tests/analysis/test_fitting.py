"""Tests for signal fitting and statistics helpers."""

import numpy as np
import pytest

from repro.analysis.fitting import (
    DampedCosineFit,
    dominant_frequency,
    fit_damped_cosine,
)
from repro.core.exceptions import SimulationError


class TestDominantFrequency:
    def test_pure_cosine(self):
        times = np.linspace(0, 20, 400)
        omega = 2.3
        values = np.cos(omega * times)
        assert abs(dominant_frequency(times, values) - omega) / omega < 0.01

    def test_offset_ignored(self):
        times = np.linspace(0, 30, 300)
        values = 5.0 + 0.1 * np.cos(1.1 * times)
        assert abs(dominant_frequency(times, values) - 1.1) < 0.05

    def test_two_tone_picks_stronger(self):
        times = np.linspace(0, 40, 800)
        values = 1.0 * np.cos(0.8 * times) + 0.2 * np.cos(2.9 * times)
        assert abs(dominant_frequency(times, values) - 0.8) < 0.05

    def test_too_short(self):
        with pytest.raises(SimulationError):
            dominant_frequency(np.array([0.0, 1.0]), np.array([1.0, 2.0]))

    def test_non_uniform_rejected(self):
        times = np.array([0.0, 1.0, 2.5, 3.0, 4.0])
        with pytest.raises(SimulationError):
            dominant_frequency(times, np.ones(5))


class TestDampedCosineFit:
    def test_recovers_parameters(self):
        times = np.linspace(0, 15, 300)
        values = 1.4 * np.exp(-0.1 * times) * np.cos(2.0 * times + 0.3) + 0.5
        fit = fit_damped_cosine(times, values)
        assert abs(fit.omega - 2.0) < 0.02
        assert abs(fit.decay - 0.1) < 0.02
        assert abs(fit.offset - 0.5) < 0.02
        assert fit.residual < 1e-6

    def test_amplitude_canonical_sign(self):
        times = np.linspace(0, 10, 200)
        values = -0.8 * np.cos(1.5 * times)
        fit = fit_damped_cosine(times, values)
        assert fit.amplitude > 0

    def test_noisy_signal_still_fits(self):
        rng = np.random.default_rng(0)
        times = np.linspace(0, 20, 400)
        clean = np.exp(-0.05 * times) * np.cos(1.2 * times)
        fit = fit_damped_cosine(times, clean + 0.02 * rng.standard_normal(400))
        assert abs(fit.omega - 1.2) < 0.05

    def test_repr(self):
        fit = DampedCosineFit(1.0, 0.1, 2.0, 0.0, 0.0, 1e-8)
        assert "omega" in repr(fit)
