"""Tests for bootstrap statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import bootstrap_mean, bootstrap_ratio
from repro.core.exceptions import SimulationError


class TestBootstrapMean:
    def test_estimate_is_sample_mean(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        result = bootstrap_mean(samples, seed=0)
        assert abs(result.estimate - 2.5) < 1e-12

    def test_interval_contains_estimate(self):
        rng = np.random.default_rng(1)
        result = bootstrap_mean(rng.normal(5.0, 1.0, size=50), seed=2)
        assert result.low <= result.estimate <= result.high

    def test_interval_shrinks_with_samples(self):
        rng = np.random.default_rng(3)
        small = bootstrap_mean(rng.normal(0, 1, size=10), seed=4)
        large = bootstrap_mean(rng.normal(0, 1, size=1000), seed=4)
        assert (large.high - large.low) < (small.high - small.low)

    def test_coverage_sanity(self):
        """~95% of intervals cover the true mean."""
        rng = np.random.default_rng(5)
        hits = 0
        trials = 200
        for k in range(trials):
            result = bootstrap_mean(
                rng.normal(1.0, 1.0, size=30), n_resamples=300, seed=k
            )
            hits += result.low <= 1.0 <= result.high
        assert hits / trials > 0.85

    def test_validation(self):
        with pytest.raises(SimulationError):
            bootstrap_mean([1.0])
        with pytest.raises(SimulationError):
            bootstrap_mean([1.0, 2.0], confidence=1.5)

    @given(st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_interval_ordering_property(self, samples):
        result = bootstrap_mean(samples, n_resamples=200, seed=0)
        assert result.low <= result.high


class TestBootstrapRatio:
    def test_point_estimate(self):
        result = bootstrap_ratio([4.0, 6.0], [1.0, 3.0], seed=0)
        assert abs(result.estimate - 2.5) < 1e-12

    def test_interval_contains_truth_typically(self):
        rng = np.random.default_rng(6)
        num = rng.normal(10.0, 1.0, size=40)
        den = rng.normal(2.0, 0.3, size=40)
        result = bootstrap_ratio(num, den, seed=7)
        assert result.low < 5.0 < result.high

    def test_zero_denominator_rejected(self):
        with pytest.raises(SimulationError):
            bootstrap_ratio([1.0, 2.0], [0.0, 0.0])

    def test_too_few_samples(self):
        with pytest.raises(SimulationError):
            bootstrap_ratio([1.0], [1.0, 2.0])
