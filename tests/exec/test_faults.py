"""Chaos suite: fault injection against the supervised executor.

The invariant under test, everywhere: **faults change wall-clock, never
values**.  A campaign run under injected worker kills, transient
exceptions, and delays — with a policy generous enough to absorb them —
produces results bit-identical to a clean serial run; a point that fails
*permanently* surfaces as a structured error record (in
``CampaignResult.errors``, the event stream, and the checkpoint) instead
of hanging the handle or poisoning the executor.

Fault schedules are fully deterministic (seeded per point), so every
test here is reproducible — no flaky "sometimes the worker dies".
Worker-kill tests run everywhere but stay small; the heavier sweeps are
gated behind ``REPRO_CHAOS=1`` (the CI chaos job).
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import SimulationError
from repro.exec import (
    Campaign,
    CampaignExecutor,
    FailurePolicy,
    FaultPlan,
    InjectedFault,
    ResultCache,
    corrupt_cache,
    corrupt_cache_entry,
    run_campaign,
    zip_sweep,
)

chaos_enabled = os.environ.get("REPRO_CHAOS", "") == "1"


def seeded_task(x, scale=1.0, seed=0):
    """Seed-sensitive (module-level: importable from worker processes)."""
    rng = np.random.default_rng(seed)
    return float(x * scale + rng.normal())


def brittle_task(x, bad=(), seed=0):
    """Fails permanently for x values listed in ``bad``."""
    if x in tuple(bad):
        raise ValueError(f"point {x} is permanently broken")
    return float(x + np.random.default_rng(seed).random())


def tolerant_task(x, bad=(), seed=0):
    """Same computation as :func:`brittle_task`, without the failures."""
    return float(x + np.random.default_rng(seed).random())


def sleepy_task(x, delay_ms=0.0, seed=0):
    import time

    time.sleep(delay_ms / 1000.0)
    return int(x)


def _campaign(n=6, task=seeded_task, **kwargs):
    defaults = dict(
        task=task,
        sweep=zip_sweep(x=list(range(n))),
        seed=7,
    )
    defaults.update(kwargs)
    return Campaign(**defaults)


#: A retry policy generous enough to absorb any 2-faulty-attempt plan,
#: with backoff shrunk so tests don't sleep for real.
ABSORB = FailurePolicy(
    mode="retry",
    max_attempts=5,
    max_crashes=4,
    backoff_base=0.001,
    backoff_max=0.01,
    backoff_jitter=0.5,
)


class TestFaultPlanDeterminism:
    def test_schedule_is_stable(self):
        plan = FaultPlan(seed=3, p_exception=0.4, p_kill=0.2, p_delay=0.2)
        points = _campaign(n=10).points()
        first = [plan.schedule(p) for p in points]
        second = [plan.schedule(p) for p in points]
        assert first == second
        # With these probabilities 10 points virtually surely draw at
        # least one fault — and the mix must include non-faults too.
        kinds = {k for sched in first for k in sched}
        assert kinds & {"exception", "kill", "delay"}

    def test_faults_bounded_per_point(self):
        plan = FaultPlan(seed=0, p_exception=1.0, max_faulty_attempts=2)
        point = _campaign(n=1).points()[0]
        assert plan.fault_for(point, 1) == "exception"
        assert plan.fault_for(point, 2) == "exception"
        assert plan.fault_for(point, 3) is None  # beyond the fault budget
        assert plan.fault_for(point, 0) is None

    def test_schedule_independent_of_process(self):
        # The schedule depends only on (seed, point.key): a re-built
        # campaign (fresh point objects) sees identical faults.
        plan = FaultPlan(seed=11, p_exception=0.5, p_delay=0.3)
        a = [plan.schedule(p) for p in _campaign(n=8).points()]
        b = [plan.schedule(p) for p in _campaign(n=8).points()]
        assert a == b

    def test_apply_raises_injected_fault(self):
        plan = FaultPlan(seed=0, p_exception=1.0)
        point = _campaign(n=1).points()[0]
        with pytest.raises(InjectedFault):
            plan.apply(point, 1, in_worker=False)

    def test_kill_skipped_in_process(self):
        # A kill fault outside a worker must be a no-op (otherwise the
        # test runner itself would die here).
        plan = FaultPlan(seed=0, p_kill=1.0)
        point = _campaign(n=1).points()[0]
        plan.apply(point, 1, in_worker=False)

    def test_plan_validation(self):
        with pytest.raises(SimulationError):
            FaultPlan(p_exception=1.5)
        with pytest.raises(SimulationError):
            FaultPlan(p_exception=0.7, p_kill=0.7)
        with pytest.raises(SimulationError):
            FaultPlan(kill_mode="nuke")


class TestPolicyValidation:
    def test_mode_strings(self):
        assert FailurePolicy.coerce("continue").mode == "continue"
        assert FailurePolicy.coerce(None).mode == "fail_fast"
        policy = FailurePolicy(mode="retry", max_attempts=2)
        assert FailurePolicy.coerce(policy) is policy
        with pytest.raises(SimulationError):
            FailurePolicy(mode="ignore")
        with pytest.raises(SimulationError):
            FailurePolicy(max_attempts=0)
        with pytest.raises(SimulationError):
            FailurePolicy(timeout=0.0)
        with pytest.raises(SimulationError):
            FailurePolicy.coerce(42)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = FailurePolicy(
            mode="retry", backoff_base=0.1, backoff_factor=2.0, backoff_max=0.5
        )
        point = _campaign(n=1).points()[0]
        delays = [policy.backoff_delay(point, attempt) for attempt in (1, 2, 3, 9)]
        assert delays == [policy.backoff_delay(point, a) for a in (1, 2, 3, 9)]
        for attempt, delay in zip((1, 2, 3, 9), delays):
            base = min(0.5, 0.1 * 2.0 ** (attempt - 1))
            assert base <= delay <= base * (1.0 + policy.backoff_jitter)
        # Exponential growth until the cap dominates.
        assert delays[1] > delays[0]


class TestSerialPolicies:
    def test_fail_fast_raises(self):
        with pytest.raises(ValueError, match="permanently broken"):
            run_campaign(_campaign(task=brittle_task, base_params={"bad": (3,)}))

    def test_continue_records_error(self):
        result = run_campaign(
            _campaign(task=brittle_task, base_params={"bad": (1, 4)}),
            policy="continue",
        )
        assert not result.ok
        assert [e["index"] for e in result.errors] == [1, 4]
        assert result.values[1] is None and result.values[4] is None
        for record in result.errors:
            assert record["kind"] == "exception"
            assert record["error_type"] == "ValueError"
            assert "permanently broken" in record["message"]
            assert "traceback" in record
        # Healthy points are untouched: identical params (seeds are
        # spawned from content) with the failure branch removed.
        clean = run_campaign(_campaign(task=tolerant_task, base_params={"bad": (1, 4)}))
        for i in (0, 2, 3, 5):
            assert result.values[i] == clean.values[i]
        table = result.as_table()
        assert [row["ok"] for row in table] == [True, False, True, True, False, True]

    def test_retry_absorbs_transient_faults(self):
        clean = run_campaign(_campaign())
        plan = FaultPlan(seed=5, p_exception=0.6, max_faulty_attempts=2)
        faulted = run_campaign(_campaign(), policy=ABSORB, faults=plan)
        assert faulted.ok
        assert faulted.values == clean.values

    def test_retry_exhaustion_becomes_error_record(self):
        plan = FaultPlan(seed=0, p_exception=1.0, max_faulty_attempts=6)
        policy = FailurePolicy(
            mode="retry", max_attempts=3, backoff_base=0.0, backoff_jitter=0.0
        )
        result = run_campaign(_campaign(n=2), policy=policy, faults=plan)
        assert len(result.errors) == 2
        for record in result.errors:
            assert record["attempts"] == 3  # exactly max_attempts, no more
            assert record["error_type"] == "InjectedFault"

    def test_retry_counter_and_attempts_bounded(self):
        plan = FaultPlan(seed=2, p_exception=0.7, max_faulty_attempts=2)
        with CampaignExecutor(1) as ex:
            handle = ex.submit(_campaign(), policy=ABSORB, faults=plan)
            handle.result()
            attempts = handle.attempts
        assert attempts  # every pending point executed at least once
        assert all(1 <= n <= ABSORB.max_attempts for n in attempts.values())
        expected_retries = sum(n - 1 for n in attempts.values())
        assert ex.stats["retries"] == expected_retries


class TestSupervisedRecovery:
    """Worker processes die for real; values must not notice."""

    def test_kill_recovery_bit_identical(self):
        clean = run_campaign(_campaign())
        plan = FaultPlan(seed=9, p_kill=0.5, max_faulty_attempts=1)
        with CampaignExecutor(2) as ex:
            result = ex.run(_campaign(), policy=ABSORB, faults=plan)
            stats = ex.stats
        assert result.values == clean.values
        assert result.ok
        # The plan surely killed someone across 6 points at p=0.5; every
        # kill must have been noticed and the worker respawned.
        killed = sum(1 for p in _campaign().points() if "kill" in plan.schedule(p)[:1])
        assert killed >= 1
        assert stats["respawns"] >= killed

    def test_sigkill_mode_recovery(self):
        clean = run_campaign(_campaign(n=4))
        plan = FaultPlan(
            seed=13, p_kill=0.6, max_faulty_attempts=1, kill_mode="sigkill"
        )
        with CampaignExecutor(2) as ex:
            result = ex.run(_campaign(n=4), policy=ABSORB, faults=plan)
        assert result.values == clean.values

    def test_mixed_faults_recovery(self):
        clean = run_campaign(_campaign(n=8))
        plan = FaultPlan(
            seed=21, p_kill=0.25, p_exception=0.35, p_delay=0.2, delay_s=0.002
        )
        with CampaignExecutor(3) as ex:
            result = ex.run(_campaign(n=8), policy=ABSORB, faults=plan)
        assert result.ok
        assert result.values == clean.values

    def test_crash_budget_exhaustion_is_structured(self):
        # Every attempt kills the worker: with the crash budget exceeded
        # the point must surface as a "crash" error record — not hang.
        plan = FaultPlan(seed=0, p_kill=1.0, max_faulty_attempts=10)
        policy = FailurePolicy(mode="continue", max_crashes=2)
        with CampaignExecutor(2) as ex:
            result = ex.run(_campaign(n=2), policy=policy, faults=plan)
        assert len(result.errors) == 2
        for record in result.errors:
            assert record["kind"] == "crash"
            assert record["crashes"] == 3  # initial + 2 re-dispatches
            assert record["error_type"] == "WorkerCrashError"
        # The executor survives for the next campaign.
        with CampaignExecutor(2) as ex:
            follow_up = ex.run(_campaign(n=2))
        assert follow_up.ok

    def test_fail_fast_crash_still_redispatches(self):
        # A worker death is an infrastructure fault, not a task verdict:
        # even fail_fast re-dispatches within the crash budget.
        clean = run_campaign(_campaign(n=4))
        plan = FaultPlan(seed=9, p_kill=0.5, max_faulty_attempts=1)
        policy = FailurePolicy(mode="fail_fast", max_crashes=3)
        with CampaignExecutor(2) as ex:
            result = ex.run(_campaign(n=4), policy=policy, faults=plan)
        assert result.values == clean.values

    def test_timeout_kills_and_records(self):
        policy = FailurePolicy(mode="continue", timeout=0.3, max_crashes=0)
        campaign = Campaign(
            task="test_faults:sleepy_task",
            sweep=zip_sweep(x=[0, 1, 2], delay_ms=[0.0, 30_000.0, 0.0]),
            name="timeout-campaign",
            seed=None,
        )
        with CampaignExecutor(2) as ex:
            result = ex.run(campaign, policy=policy)
            stats = ex.stats
        assert [e["index"] for e in result.errors] == [1]
        assert result.errors[0]["kind"] == "timeout"
        assert result.values == [0, None, 2]
        assert stats["timeouts"] == 1
        assert stats["respawns"] >= 1


class TestErrorPropagationPaths:
    def test_error_reaches_stream_events_and_checkpoint(self, tmp_path):
        checkpoint = tmp_path / "battery.jsonl"
        result = run_campaign(
            _campaign(task=brittle_task, base_params={"bad": (2,)}),
            policy="continue",
            checkpoint=checkpoint,
        )
        assert [e["index"] for e in result.errors] == [2]
        lines = [
            json.loads(line)
            for line in checkpoint.read_text().splitlines()
            if line.strip()
        ]
        by_status = {}
        for record in lines:
            by_status.setdefault(record["status"], []).append(record)
        assert len(by_status["ok"]) == 5
        assert len(by_status["error"]) == 1
        assert by_status["error"][0]["index"] == 2
        assert by_status["error"][0]["error"]["error_type"] == "ValueError"

    def test_resume_retries_failures_replays_successes(self, tmp_path):
        checkpoint = tmp_path / "resume.jsonl"
        first = run_campaign(
            _campaign(task=brittle_task, base_params={"bad": (2,)}),
            policy="continue",
            checkpoint=checkpoint,
        )
        assert not first.ok
        # Resume the same campaign: successes replay verbatim as
        # checkpoint hits; the error record is NOT treated as done, so
        # the failed point is retried (and here re-fails).
        resumed = run_campaign(
            _campaign(task=brittle_task, base_params={"bad": (2,)}),
            policy="continue",
            checkpoint=checkpoint,
        )
        assert resumed.checkpoint_hits == 5
        assert resumed.computed == 1
        assert [e["index"] for e in resumed.errors] == [2]

    def test_as_completed_carries_error_events(self):
        with CampaignExecutor(1) as ex:
            handle = ex.submit(
                _campaign(task=brittle_task, base_params={"bad": (1,)}),
                policy="continue",
            )
            events = list(handle.as_completed())
        bad = [event for event in events if not event.ok]
        assert len(bad) == 1
        assert bad[0].point.index == 1
        assert bad[0].value is None
        assert bad[0].error["error_type"] == "ValueError"
        good = [event for event in events if event.ok]
        assert all(event.error is None for event in good)

    def test_failed_values_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        result = run_campaign(
            _campaign(task=brittle_task, base_params={"bad": (1,)}),
            policy="continue",
            cache=cache,
        )
        assert not result.ok
        rerun = run_campaign(
            _campaign(task=brittle_task, base_params={"bad": (1,)}),
            policy="continue",
            cache=cache,
        )
        assert rerun.cache_hits == 5  # the failure was not served back
        assert rerun.computed == 1
        with pytest.raises(SimulationError, match="failed point"):
            cache.put("ab" * 32, {"x": 1}, ok=False)


class TestCacheCorruption:
    def test_corrupt_entries_heal_and_recompute(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        campaign = _campaign(n=8)
        clean = run_campaign(campaign, cache=cache)
        damaged = corrupt_cache(cache, campaign.points(), seed=3, fraction=0.6)
        assert damaged >= 1
        healed = run_campaign(campaign, cache=cache)
        assert healed.values == clean.values
        assert healed.computed == damaged  # only damaged entries recompute
        assert healed.cache_hits == 8 - damaged

    @pytest.mark.parametrize("mode", ["truncate", "garbage", "wrong_key"])
    def test_each_corruption_mode_is_a_miss(self, tmp_path, mode):
        cache = ResultCache(tmp_path / "cache")
        campaign = _campaign(n=2)
        run_campaign(campaign, cache=cache)
        point = campaign.points()[0]
        assert corrupt_cache_entry(cache, point.key, mode)
        from repro.exec.cache import MISS

        assert cache.get(point.key) is MISS

    def test_corrupt_missing_entry_returns_false(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert not corrupt_cache_entry(cache, "ab" * 32, "garbage")


@st.composite
def chaos_scenario(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    workers = draw(st.integers(min_value=2, max_value=3))
    plan = FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        p_exception=draw(st.sampled_from([0.0, 0.3, 0.6])),
        p_kill=draw(st.sampled_from([0.0, 0.2] if chaos_enabled else [0.0])),
        p_delay=draw(st.sampled_from([0.0, 0.2])),
        delay_s=0.002,
        max_faulty_attempts=2,
        kill_mode=draw(st.sampled_from(["exit", "sigkill"])),
    )
    return n, workers, plan


class TestChaosProperty:
    """The headline invariant, over random shapes and fault schedules."""

    @settings(max_examples=10 if chaos_enabled else 6, deadline=None)
    @given(scenario=chaos_scenario())
    def test_recovered_parallel_equals_serial(self, scenario):
        n, workers, plan = scenario
        clean = run_campaign(_campaign(n=n))
        with CampaignExecutor(workers) as ex:
            handle = ex.submit(_campaign(n=n), policy=ABSORB, faults=plan)
            result = handle.result()
            attempts = handle.attempts
        assert result.ok
        assert result.values == clean.values
        # Executions never exceed the retry budget plus the crash budget
        # (crashed attempts don't consume retry attempts).
        ceiling = ABSORB.max_attempts + ABSORB.max_crashes
        assert all(1 <= tries <= ceiling for tries in attempts.values())
        if plan.p_kill == 0.0:
            assert all(tries <= ABSORB.max_attempts for tries in attempts.values())

    @settings(max_examples=6, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_serial_chaos_equals_clean(self, n, seed):
        """The serial path honours the same invariant (no kills there)."""
        plan = FaultPlan(seed=seed, p_exception=0.5, p_delay=0.2, delay_s=0.001)
        clean = run_campaign(_campaign(n=n))
        faulted = run_campaign(_campaign(n=n), policy=ABSORB, faults=plan)
        assert faulted.values == clean.values


@pytest.mark.skipif(not chaos_enabled, reason="REPRO_CHAOS=1 only")
class TestHeavyChaos:
    """The CI chaos job's heavier sweep (kills enabled, larger shapes)."""

    def test_sustained_kill_storm(self):
        clean = run_campaign(_campaign(n=16))
        plan = FaultPlan(seed=99, p_kill=0.4, p_exception=0.2, p_delay=0.1)
        policy = FailurePolicy(
            mode="retry",
            max_attempts=6,
            max_crashes=6,
            backoff_base=0.001,
            backoff_max=0.01,
        )
        with CampaignExecutor(4) as ex:
            result = ex.run(_campaign(n=16), policy=policy, faults=plan)
            stats = ex.stats
        assert result.ok
        assert result.values == clean.values
        assert stats["respawns"] >= 1

    def test_checkpointed_chaos_resume(self, tmp_path):
        checkpoint = tmp_path / "storm.jsonl"
        clean = run_campaign(_campaign(n=12))
        plan = FaultPlan(seed=17, p_kill=0.3, p_exception=0.3)
        with CampaignExecutor(3) as ex:
            handle = ex.submit(
                _campaign(n=12), policy=ABSORB, faults=plan, checkpoint=checkpoint
            )
            # Abandon halfway through a kill storm...
            for i, _ in enumerate(handle.as_completed()):
                if i >= 5:
                    break
        # ...and resume: replayed successes + recovered remainder must
        # still be bit-identical to the clean serial run.
        resumed = run_campaign(
            _campaign(n=12), policy=ABSORB, faults=plan, checkpoint=checkpoint
        )
        assert resumed.values == clean.values
        assert resumed.checkpoint_hits >= 6
