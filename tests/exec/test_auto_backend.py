"""Tests for cost-model backend auto-selection (``get_backend("auto")``)."""

import numpy as np
import pytest

from repro.core import QuditCircuit, get_backend, register_backend
from repro.core.backends import SimulationBackend, available_backends
from repro.core.channels import photon_loss
from repro.core.exceptions import SimulationError
from repro.exec import select_backend
from repro.exec.costmodel import (
    DEFAULT_CALIBRATION,
    load_calibration,
    select_backend_for_circuit,
)


def _noisy_circuit(n, loss=0.1):
    qc = QuditCircuit([3] * n)
    for i in range(n):
        qc.fourier(i)
    for i in range(n - 1):
        qc.csum(i, i + 1)
        qc.channel(photon_loss(3, loss).kraus, i + 1, name="loss")
    return qc


def _clean_circuit(n):
    qc = QuditCircuit([3] * n)
    for i in range(n):
        qc.fourier(i)
    for i in range(n - 1):
        qc.csum(i, i + 1)
    return qc


class TestSelectionRules:
    def test_small_noiseless_picks_statevector(self):
        choice = select_backend([3] * 4, noisy=False)
        assert choice.name == "statevector"
        assert choice.estimates["statevector"]["feasible"]

    def test_large_noiseless_picks_mps(self):
        # 40 qutrits: 3^40 amplitudes can never be dense.
        choice = select_backend([3] * 40, noisy=False)
        assert choice.name == "mps"
        assert not choice.estimates["statevector"]["feasible"]

    def test_small_noisy_picks_density(self):
        choice = select_backend([3] * 3, noisy=True, calibration=DEFAULT_CALIBRATION)
        assert choice.name == "density"

    def test_12_qutrit_noisy_picks_tensor_network(self):
        """The acceptance anchor: 12 qutrits noisy -> MPS or LPDO, not dense."""
        choice = select_backend([3] * 12, noisy=True)
        assert choice.name in ("mps", "lpdo")
        assert not choice.estimates["density"]["feasible"]
        assert "max_bond" in choice.options

    def test_memory_budget_moves_the_frontier(self):
        # Fixed constants: this test pins the *model logic* (the budget
        # flips the choice), not the host-measured calibration.
        generous = select_backend(
            [3] * 5,
            noisy=True,
            memory_budget=2**30,
            max_bond=32,
            max_kraus=8,
            calibration=DEFAULT_CALIBRATION,
        )
        tight = select_backend(
            [3] * 5,
            noisy=True,
            memory_budget=2**19,
            max_bond=8,
            max_kraus=4,
            calibration=DEFAULT_CALIBRATION,
        )
        assert generous.name == "density"
        assert tight.name == "lpdo"
        assert not tight.estimates["density"]["feasible"]

    def test_sampling_opt_in(self):
        """Monte-Carlo engines only compete when explicitly allowed."""
        exact = select_backend([3] * 8, noisy=True)
        assert exact.name == "lpdo"
        sampled = select_backend(
            [3] * 8, noisy=True, allow_sampling=True, n_trajectories=8
        )
        assert sampled.name in ("trajectories", "mps", "lpdo")

    def test_noisy_mps_estimate_scales_with_trajectories(self):
        """Stochastic MPS unravelling pays (and weighs) per trajectory."""
        narrow = select_backend(
            [3] * 12, noisy=True, allow_sampling=True, n_trajectories=1
        )
        wide = select_backend(
            [3] * 12, noisy=True, allow_sampling=True, n_trajectories=128
        )
        assert wide.estimates["mps"]["est_seconds"] == pytest.approx(
            128 * narrow.estimates["mps"]["est_seconds"]
        )
        assert wide.estimates["mps"]["memory_bytes"] == pytest.approx(
            128 * narrow.estimates["mps"]["memory_bytes"]
        )
        # Noiseless evolution is deterministic: no width factor.
        clean = select_backend([3] * 12, noisy=False, n_trajectories=128)
        assert clean.estimates["mps"]["est_seconds"] == pytest.approx(
            narrow.estimates["mps"]["est_seconds"]
        )

    def test_dense_observables_cap(self):
        with pytest.raises(SimulationError):
            select_backend([3] * 20, noisy=False, observables="dense")
        with pytest.raises(SimulationError):
            select_backend([3] * 4, noisy=False, observables="bogus")

    def test_infeasible_raises(self):
        with pytest.raises(SimulationError):
            select_backend([3] * 30, noisy=True, memory_budget=64.0)

    def test_estimates_table_complete(self):
        choice = select_backend([3] * 6, noisy=True)
        assert set(choice.estimates) == {
            "statevector",
            "density",
            "trajectories",
            "mps",
            "lpdo",
        }
        for record in choice.estimates.values():
            assert record["est_seconds"] > 0 and record["memory_bytes"] > 0
        assert choice.reason


class TestCalibration:
    def test_defaults_complete_without_record(self, tmp_path):
        calib = load_calibration(tmp_path / "missing.json")
        assert calib == DEFAULT_CALIBRATION

    def test_partial_record_merges_over_defaults(self, tmp_path):
        record = tmp_path / "BENCH_exec.json"
        record.write_text('{"calibration": {"statevector_amp_op_s": 1e-7}}')
        calib = load_calibration(record)
        assert calib["statevector_amp_op_s"] == 1e-7
        assert calib["mps_site_chi3_op_s"] == DEFAULT_CALIBRATION["mps_site_chi3_op_s"]

    def test_committed_record_loads(self):
        calib = load_calibration()
        assert set(DEFAULT_CALIBRATION) <= set(calib)


class TestAutoBackend:
    def test_registered_and_reserved(self):
        assert "auto" in available_backends()
        with pytest.raises(SimulationError):
            register_backend("auto", SimulationBackend)

    def test_noisy_run_matches_density(self):
        circuit = _noisy_circuit(3)
        auto = get_backend("auto")
        result = auto.run(circuit)
        # Host calibration decides between the two exact noisy engines;
        # either way the result must match the dense reference exactly.
        assert auto.last_choice.name in ("density", "lpdo")
        reference = get_backend("density").run(circuit)
        op = np.diag([0.0, 1.0, 2.0])
        for wire in range(3):
            assert result.expectation(op, wire) == pytest.approx(
                reference.expectation(op, wire), abs=1e-10
            )

    def test_clean_run_matches_statevector(self):
        circuit = _clean_circuit(4)
        auto = get_backend("auto")
        result = auto.run(circuit)
        assert auto.last_choice.name == "statevector"
        reference = get_backend("statevector").run(circuit)
        np.testing.assert_allclose(
            result.probabilities(), reference.probabilities(), atol=1e-12
        )

    def test_tight_budget_delegates_to_lpdo(self):
        circuit = _noisy_circuit(5)
        auto = get_backend("auto", memory_budget=2**19, max_bond=16, max_kraus=4)
        result = auto.run(circuit)
        assert auto.last_choice.name == "lpdo"
        # caps were forwarded to the delegate state
        assert result.state.max_bond == 16 and result.state.max_kraus == 4

    def test_selection_memoised_across_steps(self):
        circuit = _noisy_circuit(3)
        auto = get_backend("auto")
        auto.run(circuit)
        first = auto.last_choice
        auto.run(circuit)
        assert auto.last_choice is first  # same decision object, no re-scoring

    def test_prepare_is_symbolic_and_stepwise_works(self):
        """prepare() commits to no engine; the first run materialises it."""
        circuit = _noisy_circuit(3)
        auto = get_backend("auto")
        prepared = auto.prepare(circuit.dims, digits=[1, 0, 2])
        op = np.diag([0.0, 1.0, 2.0])
        # Exact basis-state observables before any circuit runs:
        assert prepared.expectation(op, 0) == 1.0
        assert prepared.expectation(op, 2) == 2.0
        assert prepared.probabilities_of([1, 0, 2]) == 1.0
        assert prepared.sample(5) == {(1, 0, 2): 5}
        stepped = auto.run(circuit, initial=prepared)
        reference = get_backend("density").run(
            circuit, initial=get_backend("density").prepare(circuit.dims, [1, 0, 2])
        )
        assert stepped.expectation(op, 1) == pytest.approx(
            reference.expectation(op, 1), abs=1e-10
        )

    def test_prepare_options_reach_the_delegate(self):
        """rng / n_trajectories given at prepare() seed the chosen engine.

        Sized so the cost model lands on a *stochastic* delegate — the
        reproducibility assertion is vacuous on the exact engines.
        """
        circuit = _noisy_circuit(8)
        runs = []
        for _ in range(2):
            # Backend defaults reach both the cost model (n_trajectories
            # weights the sampling engines) and the delegate's prepare.
            auto = get_backend("auto", allow_sampling=True, n_trajectories=16, rng=123)
            prepared = auto.prepare(circuit.dims, digits=[0] * 8)
            result = auto.run(circuit, initial=prepared)
            assert auto.last_choice.name in ("trajectories", "mps")
            runs.append(result.sample(50, rng=7))
        assert runs[0] == runs[1]  # identical seeds -> identical outcomes

    def test_prepare_scales_past_dense_reach(self):
        """Symbolic prepare never densifies: fine at 30 qutrits."""
        auto = get_backend("auto")
        prepared = auto.prepare([3] * 30, digits=[0] * 30)
        op = np.diag([0.0, 1.0, 2.0])
        assert prepared.expectation(op, 7) == 0.0

    def test_trajectory_damage_supports_auto(self):
        """The sqed noise study scores identically through method='auto'."""
        from repro.sqed.encodings import QuditEncoding
        from repro.sqed.noise_study import trajectory_damage
        from repro.sqed.rotor import RotorChain

        encoding = QuditEncoding(RotorChain(2, 1))
        auto_score = trajectory_damage(
            encoding, 0.05, t_total=1.0, n_steps=2, method="auto"
        )
        density_score = trajectory_damage(
            encoding, 0.05, t_total=1.0, n_steps=2, method="density"
        )
        assert auto_score == pytest.approx(density_score, abs=1e-10)

    def test_circuit_profile_selection(self):
        choice = select_backend_for_circuit(_noisy_circuit(12))
        assert choice.name in ("mps", "lpdo")
        choice = select_backend_for_circuit(_clean_circuit(4))
        assert choice.name == "statevector"
