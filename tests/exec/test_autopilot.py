"""Tests for the error-budget autopilot (``target_error`` contract).

The load-bearing properties:

* **contract** — a plan produced for ``target_error`` predicts an error
  within budget, and an auto-backend run under the contract delivers an
  answer matching the dense reference within that budget;
* **monotone cost** — tightening the budget never makes the plan
  cheaper;
* **escalation determinism** — mid-run cap escalation produces
  bit-identical values and timelines across serial, pool, and resumed
  execution;
* **recalibration** — ledger samples move the cost/accuracy constants
  in the right direction, clamped, without mutating the input.
"""

import importlib
import json

import numpy as np
import pytest

from repro.core import QuditCircuit, get_backend, budget
from repro.core.channels import photon_loss
from repro.core.exceptions import SimulationError
from repro.exec import (
    BackendPlan,
    Campaign,
    CampaignExecutor,
    FailurePolicy,
    RunLedger,
    recalibrate,
    run_campaign,
    select_backend,
    zip_sweep,
)
from repro.exec.costmodel import DEFAULT_CALIBRATION


def _noisy_circuit(n, loss=0.1):
    qc = QuditCircuit([3] * n)
    for i in range(n):
        qc.fourier(i)
    for i in range(n - 1):
        qc.csum(i, i + 1)
        qc.channel(photon_loss(3, loss).kraus, i + 1, name="loss")
    return qc


def leaky_task(x=0.0, max_bond=2, seed=0):
    """Module-level (pool-importable) task with a tunable error leak.

    Records a truncation of ``0.5 / max_bond`` against the active error
    account, so doubling the cap halves the delivered error — the
    executor's escalation ladder converges in a known number of steps.
    """
    budget.record_truncation(0.5 / max_bond, chi=max_bond)
    return {"x": x, "max_bond": max_bond}


class TestPlanContract:
    def test_plan_meets_target(self):
        plan = select_backend(
            [3] * 4,
            noisy=True,
            target_error=1e-6,
            calibration=DEFAULT_CALIBRATION,
        )
        assert isinstance(plan, BackendPlan)
        assert plan.target_error == pytest.approx(1e-6)
        assert plan.meets_target()
        assert plan.predicted_error <= 1e-6

    def test_tighter_target_never_cheaper(self):
        loose = select_backend(
            [3] * 10,
            noisy=True,
            allow_sampling=True,
            target_error=1e-2,
            calibration=DEFAULT_CALIBRATION,
        )
        tight = select_backend(
            [3] * 10,
            noisy=True,
            allow_sampling=True,
            target_error=1e-6,
            calibration=DEFAULT_CALIBRATION,
        )
        assert tight.predicted_cost_s >= loose.predicted_cost_s

    def test_explain_is_human_readable(self):
        plan = select_backend(
            [3] * 4,
            noisy=True,
            target_error=1e-6,
            calibration=DEFAULT_CALIBRATION,
        )
        text = plan.explain()
        assert plan.name in text
        assert "target" in text
        assert "predicted" in text

    def test_unknown_kwarg_rejected_loudly(self):
        with pytest.raises(SimulationError) as err:
            select_backend([3] * 4, noisy=True, target_eror=1e-6)
        # The message names the typo and lists the valid keywords.
        assert "target_eror" in str(err.value)
        assert "target_error" in str(err.value)

    def test_legacy_call_still_returns_choice(self):
        """No target: the legacy selection surface is unchanged."""
        choice = select_backend(
            [3] * 3, noisy=True, calibration=DEFAULT_CALIBRATION
        )
        assert choice.name == "density"

    def test_caps_derived_from_register_not_baked_in(self):
        """Regression: tiny registers used to get the baked-in chi=32.

        Five qutrits can never need more than bond dimension 3**2 = 9;
        the plan's cap must come from the register, not a constant.
        """
        choice = select_backend(
            [3] * 5,
            noisy=True,
            memory_budget=200_000,
            calibration=DEFAULT_CALIBRATION,
        )
        assert choice.name == "lpdo"
        assert choice.options["max_bond"] == 9


class TestDeliveredError:
    @pytest.mark.parametrize("n", [3, 4])
    def test_auto_run_matches_dense_reference_within_target(self, n):
        target = 1e-6
        circuit = _noisy_circuit(n)
        auto = get_backend("auto", target_error=target)
        result = auto.run(circuit)
        reference = get_backend("density").run(circuit)
        op = np.diag([0.0, 1.0, 2.0])
        for wire in range(n):
            delivered = abs(
                result.expectation(op, wire) - reference.expectation(op, wire)
            )
            assert delivered <= target


class TestEscalation:
    def _campaign(self, n=3, target_error=0.1, **kwargs):
        defaults = dict(
            task=leaky_task,
            sweep=zip_sweep(x=[float(i) for i in range(n)]),
            base_params={"max_bond": 2},
            seed=42,
            target_error=target_error,
        )
        defaults.update(kwargs)
        return Campaign(**defaults)

    def test_serial_escalates_until_budget_met(self):
        result = run_campaign(self._campaign(), workers=1, cache=None)
        # 0.5/2 = 0.25 -> 0.125 -> 0.0625 <= 0.1: two escalations.
        assert [v["max_bond"] for v in result.values] == [8, 8, 8]
        for entry in result.timeline:
            assert entry["escalations"] == 2
            assert entry["attempts"] == 3
            assert entry["truncation_error"] == pytest.approx(0.0625)
            assert entry["max_chi"] == 8

    def test_pool_matches_serial_bit_for_bit(self):
        serial = run_campaign(self._campaign(), workers=1, cache=None)
        pooled = run_campaign(self._campaign(), workers=3, cache=None)
        assert pooled.values == serial.values
        for s, p in zip(serial.timeline, pooled.timeline):
            for key in (
                "escalations",
                "truncation_error",
                "max_chi",
                "bond_truncations",
            ):
                assert p[key] == s[key]

    def test_resumed_run_matches_clean(self, tmp_path):
        checkpoint = tmp_path / "progress.jsonl"
        with CampaignExecutor(1) as executor:
            handle = executor.submit(
                self._campaign(n=4), checkpoint=checkpoint, cache=None
            )
            stream = handle.stream_results()
            next(stream)  # leave the campaign partially complete
        assert len(checkpoint.read_text().splitlines()) == 1
        for line in checkpoint.read_text().splitlines():
            json.loads(line)
        resumed = run_campaign(
            self._campaign(n=4), workers=1, cache=None, checkpoint=checkpoint
        )
        clean = run_campaign(self._campaign(n=4), workers=1, cache=None)
        assert resumed.values == clean.values
        assert resumed.checkpoint_hits >= 1

    def test_no_target_no_escalation(self):
        result = run_campaign(
            self._campaign(target_error=None), workers=1, cache=None
        )
        assert [v["max_bond"] for v in result.values] == [2, 2, 2]
        for entry in result.timeline:
            assert entry["escalations"] == 0
            # The delivered account is still reported.
            assert entry["truncation_error"] == pytest.approx(0.25)

    def test_escalations_bounded_by_policy(self):
        policy = FailurePolicy(mode="continue", max_escalations=1)
        result = run_campaign(
            self._campaign(target_error=1e-6),
            workers=1,
            cache=None,
            policy=policy,
        )
        # One escalation allowed: 2 -> 4, then the best result stands.
        assert [v["max_bond"] for v in result.values] == [4, 4, 4]
        for entry in result.timeline:
            assert entry["escalations"] == 1

    def test_submit_target_overrides_campaign(self):
        with CampaignExecutor(1) as executor:
            handle = executor.submit(
                self._campaign(target_error=1e-6),
                cache=None,
                target_error=0.3,
            )
            result = handle.result()
        # 0.25 <= 0.3 already: the looser per-submission target wins.
        assert [v["max_bond"] for v in result.values] == [2, 2, 2]

    def test_run_record_carries_contract(self, tmp_path):
        with CampaignExecutor(1) as executor:
            handle = executor.submit(self._campaign(), cache=None)
            handle.result()
            record = handle.run_record()
        assert record["target_error"] == pytest.approx(0.1)
        assert record["policy"]["max_escalations"] == 3


class TestRecalibration:
    def _ledger(self, tmp_path, timeline):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append({"task": "t", "timeline": timeline})
        return ledger

    def test_error_account_samples_projects_timeline(self, tmp_path):
        ledger = self._ledger(
            tmp_path,
            [
                {
                    "exec_s": 0.1,
                    "truncation_error": 1e-4,
                    "max_chi": 8,
                    "bond_truncations": 3,
                },
                {"exec_s": 0.2},  # no truncation events: skipped
            ],
        )
        samples = ledger.error_account_samples(task="t")
        assert samples == [
            {"truncation_error": 1e-4, "max_chi": 8.0, "bond_truncations": 3.0}
        ]

    def test_cost_constant_scaled_and_clamped(self, tmp_path):
        ledger = self._ledger(tmp_path, [{"exec_s": 0.3}, {"exec_s": 0.3}])
        out = recalibrate(
            ledger, DEFAULT_CALIBRATION, engine="mps", predicted_point_s=0.15
        )
        assert out["mps_site_chi3_op_s"] == pytest.approx(
            2.0 * DEFAULT_CALIBRATION["mps_site_chi3_op_s"]
        )
        # A wildly wrong prediction is clamped to a factor of 32.
        clamped = recalibrate(
            ledger, DEFAULT_CALIBRATION, engine="mps", predicted_point_s=1e-9
        )
        assert clamped["mps_site_chi3_op_s"] == pytest.approx(
            32.0 * DEFAULT_CALIBRATION["mps_site_chi3_op_s"]
        )

    def test_accuracy_rates_refit_from_accounts(self, tmp_path):
        ledger = self._ledger(
            tmp_path,
            [
                {
                    "truncation_error": 1e-4,
                    "max_chi": 8,
                    "bond_truncations": 3,
                }
            ],
        )
        out = recalibrate(ledger, DEFAULT_CALIBRATION)
        assert out["trunc_err_per_gate"] != DEFAULT_CALIBRATION["trunc_err_per_gate"]
        assert 1e-12 <= out["trunc_err_per_gate"] <= 1.0

    def test_input_never_mutated_and_empty_ledger_is_identity(self, tmp_path):
        before = dict(DEFAULT_CALIBRATION)
        ledger = RunLedger(tmp_path / "empty.jsonl")
        out = recalibrate(
            ledger, DEFAULT_CALIBRATION, engine="mps", predicted_point_s=0.1
        )
        assert DEFAULT_CALIBRATION == before
        assert out == before


class TestFacade:
    def test_top_level_facade(self):
        import repro

        for name in (
            "Campaign",
            "CampaignExecutor",
            "FailurePolicy",
            "select_backend",
            "BackendPlan",
            "RunLedger",
        ):
            assert hasattr(repro, name)
            assert name in repro.__all__

    def test_runner_shim_warns(self):
        from repro.exec import runner

        with pytest.warns(DeprecationWarning, match="repro.exec.runner"):
            importlib.reload(runner)
        # The historical surface still resolves after the warning.
        assert runner.run_campaign is not None
