"""Tests for the persistent executor: pool reuse, streaming, early stop.

The load-bearing properties:

* **bit-equality** — barrier, streamed, and as-completed consumption of
  the same campaign observe identical values at any worker count;
* **pool reuse** — one executor serves many campaigns (with different
  task functions) on a single pool, and survives a failing task;
* **deterministic early stop** — decisions made while streaming depend
  on point order, never on scheduling.
"""

import os
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exceptions import SimulationError
from repro.exec import (
    Campaign,
    CampaignExecutor,
    ResultCache,
    run_campaign,
    zip_sweep,
)


def stochastic_task(x, scale=1.0, seed=0):
    """A deliberately seed-sensitive task (module-level: pool-importable)."""
    rng = np.random.default_rng(seed)
    return float(x * scale + rng.normal())


def record_task(x, seed=0):
    return {"x": x, "draw": float(np.random.default_rng(seed).random())}


def failing_task(x, seed=0):
    if x == 2:
        raise ValueError("boom")
    return x


def slow_task(x, delay_ms=10.0, seed=0):
    time.sleep(delay_ms / 1000.0)
    return int(x)


def cpu_task(x, n_terms=300_000, seed=0):
    """A purely CPU-bound task for the multicore speedup guard."""
    total = 0.0
    for i in range(int(n_terms)):
        total += (i % 7) * 0.25
    return float(total + x)


def _campaign(n=8, task=stochastic_task, **kwargs):
    defaults = dict(
        task=task,
        sweep=zip_sweep(x=list(range(n))),
        base_params={"scale": 2.0} if task is stochastic_task else {},
        seed=42,
    )
    defaults.update(kwargs)
    return Campaign(**defaults)


class TestStreamedBitEquality:
    @settings(max_examples=8, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=7),
        workers=st.integers(min_value=1, max_value=3),
        chunk=st.integers(min_value=1, max_value=3),
    )
    def test_stream_and_barrier_agree(self, n, workers, chunk):
        """Streamed == as-completed == barrier, over shapes and pools."""
        barrier = run_campaign(_campaign(n=n), workers=workers)
        with CampaignExecutor(workers) as executor:
            streamed = list(
                executor.submit(_campaign(n=n), chunk_size=chunk).stream_results()
            )
            events = list(executor.submit(_campaign(n=n)).as_completed())
        assert streamed == barrier.values
        reassembled = {e.point.index: e.value for e in events}
        assert [reassembled[i] for i in range(n)] == barrier.values

    def test_stream_yields_in_point_order(self):
        with CampaignExecutor(3) as executor:
            handle = executor.submit(_campaign(n=9))
            for point, value in zip(handle.points, handle.stream_results()):
                assert value == handle._values[point.index]

    def test_result_after_partial_stream_consumption(self):
        """Mixing consumption styles drains the one shared event stream."""
        with CampaignExecutor(2) as executor:
            handle = executor.submit(_campaign(n=6))
            stream = handle.stream_results()
            first = next(stream)
            result = handle.result()
        assert result.values[0] == first
        assert result.values == run_campaign(_campaign(n=6)).values


class TestExecutorReuse:
    def test_many_campaigns_one_pool(self):
        with CampaignExecutor(3) as executor:
            for n in (4, 5, 6):
                result = executor.run(_campaign(n=n))
                assert result.values == run_campaign(_campaign(n=n)).values
            stats = executor.stats
        assert stats["pools_created"] == 1
        assert stats["campaigns"] == 3
        assert stats["points_computed"] == 15

    def test_reuse_across_different_task_functions(self):
        with CampaignExecutor(2) as executor:
            a = executor.run(_campaign(n=4, task=stochastic_task))
            b = executor.run(_campaign(n=4, task=record_task))
            c = executor.run(_campaign(n=4, task=slow_task))
            assert executor.stats["pools_created"] == 1
        assert a.values == run_campaign(_campaign(n=4, task=stochastic_task)).values
        assert b.values == run_campaign(_campaign(n=4, task=record_task)).values
        assert c.values == [0, 1, 2, 3]

    def test_executor_survives_failing_task(self):
        with CampaignExecutor(2) as executor:
            with pytest.raises(ValueError, match="boom"):
                executor.run(_campaign(n=4, task=failing_task))
            # The pool is still healthy for the next campaign.
            result = executor.run(_campaign(n=4))
            assert result.values == run_campaign(_campaign(n=4)).values

    def test_serial_executor_never_creates_pool(self):
        with CampaignExecutor() as executor:
            executor.run(_campaign(n=3))
            executor.warm()
            assert executor.stats["pools_created"] == 0
            assert executor.stats["pool_alive"] is False

    def test_warm_creates_pool_eagerly(self):
        with CampaignExecutor(2) as executor:
            executor.warm()
            assert executor.stats["pool_alive"] is True
            assert executor.stats["pools_created"] == 1
            executor.run(_campaign(n=4))
            assert executor.stats["pools_created"] == 1

    def test_closed_executor_rejects_submissions(self):
        executor = CampaignExecutor(2)
        executor.close()
        with pytest.raises(SimulationError, match="closed"):
            executor.submit(_campaign(n=2))
        executor.close()  # idempotent

    def test_invalid_workers(self):
        with pytest.raises(SimulationError):
            CampaignExecutor(-2)


class TestCacheShortCircuit:
    def test_hits_resolve_before_dispatch(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign(_campaign(), cache=cache)
        with CampaignExecutor(4, cache=cache) as executor:
            handle = executor.submit(_campaign())
            events = list(handle.as_completed())
            # Fully cached: nothing was dispatched, no pool was created.
            assert executor.stats["pool_alive"] is False
        assert all(event.source == "cache" for event in events)
        assert handle.cache_hits == len(events)
        assert handle.computed == 0

    def test_per_submit_cache_override(self, tmp_path):
        with CampaignExecutor(cache=ResultCache(tmp_path)) as executor:
            executor.run(_campaign(n=3))
            # cache=None disables the executor default for this call.
            handle = executor.submit(_campaign(n=3), cache=None)
            assert handle.cache_hits == 0
            # The default cache is still in place afterwards.
            assert executor.submit(_campaign(n=3)).result().cache_hits == 3

    def test_checkpoint_written_incrementally(self, tmp_path):
        checkpoint = tmp_path / "progress.jsonl"
        with CampaignExecutor() as executor:
            handle = executor.submit(_campaign(n=5), checkpoint=checkpoint)
            stream = handle.stream_results()
            next(stream)
            # Serial streaming computes lazily: after one consumed point,
            # exactly one record is durable.
            assert len(checkpoint.read_text().splitlines()) == 1
            list(stream)
        assert len(checkpoint.read_text().splitlines()) == 5


class TestPartialResult:
    def test_partial_result_never_blocks(self):
        with CampaignExecutor() as executor:
            handle = executor.submit(_campaign(n=6))
            stream = handle.stream_results()
            next(stream)
            partial = handle.partial_result()
        assert len(partial) == 1
        assert partial.points[0].index == 0

    def test_partial_equals_full_when_drained(self):
        with CampaignExecutor(2) as executor:
            handle = executor.submit(_campaign(n=6))
            full = handle.result()
            assert handle.partial_result().values == full.values


class TestNdarEarlyStopDeterminism:
    def _battery(self, workers, target_cost):
        from repro.qaoa import ndar_restart_battery

        return ndar_restart_battery(
            n_restarts=6,
            n_nodes=4,
            degree=2,
            n_rounds=2,
            shots=10,
            seed=5,
            workers=workers,
            target_cost=target_cost,
        )

    def test_early_stop_independent_of_worker_count(self):
        full = self._battery(workers=None, target_cost=None)
        assert full["stopped_early"] is False
        assert full["n_evaluated"] == 6
        # Pick a target the battery reaches mid-way, then require the
        # stop decision (made on the deterministic point-order stream)
        # to be identical serially and under a pool.
        target = full["best_cost"]
        stopped = [self._battery(w, target) for w in (None, 3)]
        assert stopped[0]["stopped_early"] and stopped[1]["stopped_early"]
        for key in ("best_cost", "best_restart", "n_evaluated", "mean_best_cost"):
            assert stopped[0][key] == stopped[1][key], key
        assert stopped[0]["n_evaluated"] <= 6


class TestThresholdStreamedBisection:
    def test_executor_reuse_matches_one_shot(self, tmp_path):
        from repro.sqed.noise_study import noise_threshold_campaign

        kwargs = dict(
            damage_tol=0.1,
            bisection_steps=3,
            n_sites=2,
            spin=1,
            t_total=1.0,
            n_steps=2,
            method="auto",
        )
        one_shot = noise_threshold_campaign(cache=tmp_path / "a", **kwargs)
        with CampaignExecutor(2, cache=tmp_path / "b") as executor:
            threshold = noise_threshold_campaign(executor=executor, **kwargs)
        assert threshold == pytest.approx(one_shot, rel=1e-12)


class TestReservoirStreaming:
    def test_on_result_callback_sees_every_point(self, tmp_path):
        from repro.reservoir import reservoir_grid_campaign

        seen = []
        out = reservoir_grid_campaign(
            input_gains=[0.8, 1.2],
            drive_biases=[1.0],
            alphas=[1e-4],
            shot_budgets=[0],
            length=30,
            levels=3,
            washout=5,
            cache=tmp_path,
            on_result=lambda point, value: seen.append(point.index),
        )
        assert sorted(seen) == [0, 1]
        assert out["best"]["nmse"] >= 0.0


@pytest.mark.skipif(
    os.environ.get("REPRO_EXEC_MULTICORE") != "1",
    reason="CPU-bound speedup guard: set REPRO_EXEC_MULTICORE=1 on a "
    "multi-core host (the exec-multicore CI job does)",
)
class TestMulticoreSpeedupGuard:
    def test_cpu_bound_parallel_speedup(self):
        """Real cores must buy real wall-clock on a CPU-bound campaign.

        The committed BENCH_exec.json was recorded on a 1-core host where
        this is honestly ~1x; this guard runs where cpu_count > 1.
        """
        assert (os.cpu_count() or 1) > 1, "guard requires a multi-core host"
        campaign = _campaign(n=24, task=cpu_task)
        serial = run_campaign(campaign)
        parallel = run_campaign(campaign, workers=4)
        assert parallel.values == serial.values
        speedup = serial.duration_s / parallel.duration_s
        assert speedup >= 1.5, f"parallel speedup {speedup:.2f}x < 1.5x"


class TestHandleLifetimeErrors:
    def test_consuming_after_close_raises_instead_of_hanging(self):
        with CampaignExecutor(2) as executor:
            handle = executor.submit(_campaign(n=8, task=slow_task))
            next(handle.stream_results())
        # The pool is gone with points still undelivered: next() on its
        # iterator would block forever — the handle must fail fast.
        with pytest.raises(SimulationError, match="closed"):
            handle.result()

    def test_fully_drained_handle_survives_close(self):
        with CampaignExecutor(2) as executor:
            handle = executor.submit(_campaign(n=4))
            values = handle.result().values
        assert handle.result().values == values  # replays, no pool needed

    def test_failed_handle_reraises_not_keyerror(self):
        with CampaignExecutor() as executor:
            handle = executor.submit(_campaign(n=4, task=failing_task))
            with pytest.raises(ValueError, match="boom"):
                handle.result()
            with pytest.raises(SimulationError, match="failed"):
                handle.result()
            # as_completed replays the pre-failure prefix, then re-raises
            # (never silently ends as if the campaign had finished).
            events = []
            with pytest.raises(SimulationError, match="failed"):
                for event in handle.as_completed():
                    events.append(event.point.params["x"])
            assert events == [0, 1]


class TestGracefulClose:
    """close() drains workers when nothing is in flight (satellite:
    no more unconditional pool.terminate())."""

    def test_drained_executor_closes_gracefully(self):
        executor = CampaignExecutor(2)
        executor.run(_campaign(n=4))
        pool = executor._pool
        assert pool is not None
        processes = pool.worker_processes()
        assert all(p.is_alive() for p in processes)
        assert executor.close() is True  # graceful drain, not terminate
        assert all(not p.is_alive() for p in processes)
        # Stop-sentinel exits are clean (exit code 0), never signalled.
        assert all(p.exitcode == 0 for p in processes)

    def test_abandoned_stream_falls_back_to_terminate(self):
        executor = CampaignExecutor(2)
        handle = executor.submit(_campaign(n=8, task=slow_task))
        next(handle.stream_results())  # abandon with points in flight
        pool = executor._pool
        processes = pool.worker_processes()
        assert executor.close() is False  # undelivered work: hard stop
        assert all(not p.is_alive() for p in processes)

    def test_close_twice_is_safe(self):
        executor = CampaignExecutor(2)
        executor.run(_campaign(n=4))
        assert executor.close() is True
        assert executor.close() is True  # no pool left: trivially graceful

    def test_serial_close_is_trivially_graceful(self):
        executor = CampaignExecutor(1)
        executor.run(_campaign(n=3))
        assert executor.close() is True


class TestInterruptSafety:
    """KeyboardInterrupt leaves the checkpoint consistent and the pool
    torn down (satellite: no torn final record)."""

    def test_sigint_mid_write_never_tears_the_record(self, tmp_path):
        """A SIGINT landing *during* a checkpoint append is deferred
        until the record is fully written and flushed."""
        import json
        import signal as _signal

        from repro.exec.executor import _append_checkpoint

        path = tmp_path / "ckpt.jsonl"
        point = _campaign(n=1).points()[0]

        class InterruptMidWrite:
            def __init__(self, handle):
                self.handle = handle

            def write(self, line):
                self.handle.write(line[: len(line) // 2])
                # Mid-record interrupt: without the shield this raises
                # here and leaves a torn line behind.
                os.kill(os.getpid(), _signal.SIGINT)
                self.handle.write(line[len(line) // 2 :])

            def flush(self):
                self.handle.flush()

        with path.open("a") as raw:
            with pytest.raises(KeyboardInterrupt):
                _append_checkpoint(InterruptMidWrite(raw), point, {"v": 1})
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])  # parses: not torn
        assert record == {
            "key": point.key,
            "index": 0,
            "status": "ok",
            "value": {"v": 1},
        }

    def test_interrupted_stream_leaves_consistent_checkpoint(self, tmp_path):
        """Abort a pool-backed stream mid-campaign: every checkpoint
        line parses, the pool tears down, and a resume replays cleanly."""
        import json

        checkpoint = tmp_path / "interrupted.jsonl"
        executor = CampaignExecutor(2)
        try:
            handle = executor.submit(
                _campaign(n=8, task=slow_task), checkpoint=checkpoint
            )
            with pytest.raises(KeyboardInterrupt):
                for i, _ in enumerate(handle.as_completed()):
                    if i >= 2:  # the user hits Ctrl-C mid-consumption
                        raise KeyboardInterrupt
        finally:
            pool = executor._pool
            processes = pool.worker_processes() if pool is not None else []
            executor.close()
        assert all(not p.is_alive() for p in processes)
        lines = checkpoint.read_text().splitlines()
        assert len(lines) >= 3
        for line in lines:
            record = json.loads(line)  # every line is complete JSON
            assert record["status"] == "ok"
        resumed = run_campaign(_campaign(n=8, task=slow_task), checkpoint=checkpoint)
        clean = run_campaign(_campaign(n=8, task=slow_task))
        assert resumed.values == clean.values
        assert resumed.checkpoint_hits >= 3

    def test_interrupt_in_serial_task_propagates(self, tmp_path):
        """KeyboardInterrupt raised by the task itself is never swallowed
        by retry machinery."""
        from repro.exec import FailurePolicy

        checkpoint = tmp_path / "serial.jsonl"
        policy = FailurePolicy(mode="retry", max_attempts=5, backoff_base=0.0)
        with CampaignExecutor(1) as executor:
            handle = executor.submit(
                _campaign(n=4, task=interrupting_task),
                checkpoint=checkpoint,
                policy=policy,
            )
            with pytest.raises(KeyboardInterrupt):
                handle.result()
        import json

        for line in checkpoint.read_text().splitlines():
            json.loads(line)  # whatever was written is whole


def interrupting_task(x, seed=0):
    if x == 2:
        raise KeyboardInterrupt
    return int(x)


class TestResilienceCounters:
    def test_counters_present_and_zero_on_clean_runs(self):
        with CampaignExecutor(2) as executor:
            executor.run(_campaign(n=4))
            stats = executor.stats
        assert stats["respawns"] == 0
        assert stats["retries"] == 0
        assert stats["timeouts"] == 0
