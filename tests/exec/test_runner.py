"""Tests for the campaign runner: pools, checkpoints, determinism.

The load-bearing property: a campaign's values are **bit-identical**
however its points are scheduled — serial, parallel, resumed, or served
from cache — because every point's randomness comes from its own
content-spawned seed, never from a shared stream.
"""

import json

import numpy as np
import pytest

from repro.core.exceptions import SimulationError
from repro.core.rng import spawn_seeds
from repro.exec import (
    Campaign,
    ResultCache,
    run_campaign,
    zip_sweep,
)
from repro.exec.runner import to_jsonable


def stochastic_task(x, scale=1.0, seed=0):
    """A deliberately seed-sensitive task (module-level: pool-importable)."""
    rng = np.random.default_rng(seed)
    return float(x * scale + rng.normal())


def record_task(x, seed=0):
    return {"x": x, "draw": float(np.random.default_rng(seed).random())}


def failing_task(x, seed=0):
    if x == 2:
        raise ValueError("boom")
    return x


def _campaign(n=8, **kwargs):
    defaults = dict(
        task=stochastic_task,
        sweep=zip_sweep(x=list(range(n))),
        base_params={"scale": 2.0},
        seed=42,
    )
    defaults.update(kwargs)
    return Campaign(**defaults)


class TestSpawnSeeds:
    def test_deterministic_and_distinct(self):
        a = spawn_seeds(7, 10)
        assert a == spawn_seeds(7, 10)
        assert len(set(a)) == 10
        assert a != spawn_seeds(8, 10)

    def test_prefix_stability(self):
        """Child i depends only on (root, i), not on how many are spawned."""
        assert spawn_seeds(3, 4) == spawn_seeds(3, 9)[:4]

    def test_validation(self):
        assert spawn_seeds(0, 0) == []
        with pytest.raises(SimulationError):
            spawn_seeds(0, -1)


class TestSerialExecution:
    def test_values_in_point_order(self):
        result = run_campaign(_campaign())
        assert len(result) == 8
        assert result.computed == 8 and result.cache_hits == 0
        expected = [
            stochastic_task(p.params["x"], p.params["scale"], p.seed)
            for p in result.points
        ]
        assert result.values == expected

    def test_repeat_run_is_bit_identical(self):
        assert run_campaign(_campaign()).values == run_campaign(_campaign()).values

    def test_as_table(self):
        table = run_campaign(_campaign(n=2)).as_table()
        assert table[0]["x"] == 0 and "value" in table[0] and "seed" in table[0]

    def test_task_error_propagates(self):
        campaign = Campaign(task=failing_task, sweep=zip_sweep(x=[1, 2, 3]))
        with pytest.raises(ValueError, match="boom"):
            run_campaign(campaign)


class TestParallelExecution:
    def test_parallel_bit_identical_to_serial(self):
        serial = run_campaign(_campaign(n=12))
        parallel = run_campaign(_campaign(n=12), workers=4)
        assert parallel.values == serial.values
        assert parallel.workers == 4

    def test_parallel_with_dict_values(self):
        campaign = Campaign(task=record_task, sweep=zip_sweep(x=list(range(6))))
        serial = run_campaign(campaign)
        parallel = run_campaign(campaign, workers=3, chunk_size=1)
        assert parallel.values == serial.values

    def test_invalid_workers(self):
        with pytest.raises(SimulationError):
            run_campaign(_campaign(), workers=-2)


class TestCacheIntegration:
    def test_second_run_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_campaign(_campaign(), cache=cache)
        second = run_campaign(_campaign(), cache=cache)
        assert second.values == first.values
        assert second.cache_hits == len(second) and second.computed == 0
        assert second.hit_fraction == 1.0

    def test_cache_accepts_path(self, tmp_path):
        run_campaign(_campaign(n=3), cache=tmp_path / "c")
        result = run_campaign(_campaign(n=3), cache=tmp_path / "c")
        assert result.cache_hits == 3

    def test_overlapping_campaigns_share_points(self, tmp_path):
        """A differently-shaped campaign reuses shared (params, seed) points."""
        cache = ResultCache(tmp_path)
        run_campaign(_campaign(n=8), cache=cache)
        subset = _campaign(n=3)  # x in {0, 1, 2}: a strict subset
        result = run_campaign(subset, cache=cache)
        assert result.cache_hits == 3 and result.computed == 0

    def test_changed_seed_or_params_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign(_campaign(), cache=cache)
        assert run_campaign(_campaign(seed=43), cache=cache).cache_hits == 0
        other = _campaign(base_params={"scale": 3.0})
        assert run_campaign(other, cache=cache).cache_hits == 0
        bumped = _campaign(version="2")
        assert run_campaign(bumped, cache=cache).cache_hits == 0


class TestCheckpointRecovery:
    def test_resume_skips_completed_points(self, tmp_path):
        checkpoint = tmp_path / "progress.jsonl"
        full = run_campaign(_campaign(), checkpoint=checkpoint)
        lines = checkpoint.read_text().splitlines()
        assert len(lines) == 8
        # Simulate a crash after 5 points: truncate the log.
        checkpoint.write_text("\n".join(lines[:5]) + "\n")
        resumed = run_campaign(_campaign(), checkpoint=checkpoint)
        assert resumed.checkpoint_hits == 5 and resumed.computed == 3
        assert resumed.values == full.values

    def test_corrupted_and_partial_lines_recovered(self, tmp_path):
        checkpoint = tmp_path / "progress.jsonl"
        full = run_campaign(_campaign(), checkpoint=checkpoint)
        lines = checkpoint.read_text().splitlines()
        # A crash mid-append leaves a truncated trailing record; sprinkle
        # in garbage and a wrong-shape record for good measure.
        damaged = lines[:4] + [
            "not json at all",
            '{"missing": "key-field"}',
            lines[4][: len(lines[4]) // 2],
        ]
        checkpoint.write_text("\n".join(damaged) + "\n")
        resumed = run_campaign(_campaign(), checkpoint=checkpoint)
        assert resumed.checkpoint_hits == 4 and resumed.computed == 4
        assert resumed.values == full.values

    def test_checkpoint_feeds_cache(self, tmp_path):
        checkpoint = tmp_path / "progress.jsonl"
        run_campaign(_campaign(), checkpoint=checkpoint)
        cache = ResultCache(tmp_path / "cache")
        resumed = run_campaign(_campaign(), checkpoint=checkpoint, cache=cache)
        assert resumed.checkpoint_hits == len(resumed)
        # The replayed values were promoted into the durable cache.
        assert run_campaign(_campaign(), cache=cache).cache_hits == 8

    def test_parallel_resume(self, tmp_path):
        checkpoint = tmp_path / "progress.jsonl"
        full = run_campaign(_campaign(n=10), workers=3, checkpoint=checkpoint)
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text("\n".join(lines[:4]) + "\n")
        resumed = run_campaign(_campaign(n=10), workers=3, checkpoint=checkpoint)
        assert resumed.checkpoint_hits == 4 and resumed.computed == 6
        assert resumed.values == full.values


class TestJsonNormalisation:
    def test_numpy_types_normalised(self):
        value = to_jsonable(
            {
                "a": np.float64(0.5),
                "b": np.int32(3),
                "c": np.array([[1, 2], [3, 4]]),
                "d": (np.bool_(True), None),
                5: "int-key",
            }
        )
        assert value == {
            "a": 0.5,
            "b": 3,
            "c": [[1, 2], [3, 4]],
            "d": [True, None],
            "5": "int-key",
        }
        json.dumps(value)  # round-trips through JSON

    def test_unserialisable_rejected(self):
        with pytest.raises(SimulationError):
            to_jsonable(object())


class TestWorkloadCampaigns:
    """The wired-up workload layers behave as campaigns end to end."""

    def test_ndar_battery_deterministic_and_cached(self, tmp_path):
        from repro.qaoa import ndar_restart_battery

        kwargs = dict(n_nodes=4, degree=2, n_rounds=2, shots=10, seed=5)
        first = ndar_restart_battery(n_restarts=3, cache=tmp_path, **kwargs)
        again = ndar_restart_battery(n_restarts=3, cache=tmp_path, workers=2, **kwargs)
        assert again["campaign"].cache_hits == 3
        assert again["best_cost"] == first["best_cost"]
        assert again["mean_best_cost"] == first["mean_best_cost"]

    def test_drivers_share_the_on_result_hook(self, tmp_path):
        """Every campaign driver exposes the same progress callback."""
        from repro.qaoa import ndar_restart_battery
        from repro.sqed.noise_study import damage_campaign

        seen = []

        def hook(point, value):
            seen.append(point.index)

        out = ndar_restart_battery(
            n_restarts=3,
            n_nodes=4,
            degree=2,
            n_rounds=2,
            shots=10,
            seed=5,
            cache=tmp_path,
            on_result=hook,
        )
        assert sorted(seen) == [0, 1, 2]
        assert out["n_evaluated"] == 3

        seen.clear()
        result = damage_campaign(
            epsilons=[0.01, 0.1],
            n_sites=2,
            spin=1,
            t_total=1.0,
            n_steps=2,
            method="auto",
            cache=tmp_path,
            on_result=hook,
        )
        assert sorted(seen) == [0, 1]
        assert len(result.values) == 2

    def test_sqed_threshold_campaign_matches_serial(self, tmp_path):
        from repro.sqed.encodings import QuditEncoding
        from repro.sqed.noise_study import (
            noise_threshold,
            noise_threshold_campaign,
        )
        from repro.sqed.rotor import RotorChain

        kwargs = dict(n_sites=2, spin=1, t_total=1.0, n_steps=2, method="auto")
        campaign_threshold = noise_threshold_campaign(
            damage_tol=0.1, bisection_steps=3, cache=tmp_path, **kwargs
        )
        serial_threshold = noise_threshold(
            QuditEncoding(RotorChain(2, 1)),
            damage_tol=0.1,
            t_total=1.0,
            n_steps=2,
            bisection_steps=3,
            method="auto",
        )
        assert campaign_threshold == pytest.approx(serial_threshold, rel=1e-12)

    def test_reservoir_grid_campaign(self, tmp_path):
        from repro.reservoir import reservoir_grid_campaign

        out = reservoir_grid_campaign(
            input_gains=[0.8, 1.2],
            drive_biases=[1.0],
            alphas=[1e-4],
            shot_budgets=[0],
            length=30,
            levels=3,
            washout=5,
            cache=tmp_path,
        )
        assert out["best"]["nmse"] >= 0.0
        assert len(out["campaign"]) == 2
        again = reservoir_grid_campaign(
            input_gains=[0.8, 1.2],
            drive_biases=[1.0],
            alphas=[1e-4],
            shot_budgets=[0],
            length=30,
            levels=3,
            washout=5,
            cache=tmp_path,
        )
        assert again["campaign"].cache_hits == 2
        assert again["best"] == out["best"]
