"""Tests for declarative sweeps and campaign point resolution."""

import pytest

from repro.core.exceptions import SimulationError
from repro.exec import Campaign, grid_sweep, random_sweep, zip_sweep
from repro.exec.sweep import resolve_task, task_ref


def module_task(x, factor=2, seed=0):
    """Module-level task used to exercise reference resolution."""
    return x * factor


class TestGridSweep:
    def test_cartesian_product_row_major(self):
        sweep = grid_sweep(a=[1, 2], b=["x", "y", "z"])
        assert len(sweep) == 6
        assert sweep[0] == {"a": 1, "b": "x"}
        assert sweep[1] == {"a": 1, "b": "y"}
        assert sweep[-1] == {"a": 2, "b": "z"}

    def test_empty_axis_rejected(self):
        with pytest.raises(SimulationError):
            grid_sweep(a=[])
        with pytest.raises(SimulationError):
            grid_sweep()

    def test_concatenation(self):
        sweep = grid_sweep(a=[1]) + grid_sweep(a=[2])
        assert [p["a"] for p in sweep] == [1, 2]


class TestZipSweep:
    def test_lock_step(self):
        sweep = zip_sweep(a=[1, 2], b=[10, 20])
        assert sweep.points == ({"a": 1, "b": 10}, {"a": 2, "b": 20})

    def test_length_mismatch(self):
        with pytest.raises(SimulationError):
            zip_sweep(a=[1, 2], b=[1])


class TestRandomSweep:
    def test_deterministic_in_seed(self):
        kwargs = dict(eps=(1e-4, 1e-1, "log"), n=(2, 9, "int"), mode=["a", "b"])
        assert (
            random_sweep(5, seed=3, **kwargs).points
            == random_sweep(5, seed=3, **kwargs).points
        )
        assert (
            random_sweep(5, seed=3, **kwargs).points
            != random_sweep(5, seed=4, **kwargs).points
        )

    def test_ranges_respected(self):
        sweep = random_sweep(
            50, seed=0, u=(0.5, 1.5), lg=(1e-6, 1e-2, "log"), k=(3, 7, "int")
        )
        for point in sweep:
            assert 0.5 <= point["u"] < 1.5
            assert 1e-6 <= point["lg"] < 1e-2
            assert 3 <= point["k"] < 7 and isinstance(point["k"], int)

    def test_bad_specs(self):
        with pytest.raises(SimulationError):
            random_sweep(3, x=(1, 2, "bogus"))
        with pytest.raises(SimulationError):
            random_sweep(0, x=(0, 1))
        with pytest.raises(SimulationError):
            random_sweep(3, x=(-1.0, 1.0, "log"))


class TestTaskReferences:
    def test_callable_round_trips(self):
        ref = task_ref(module_task)
        assert ref.endswith(":module_task")
        assert resolve_task(ref) is module_task

    def test_bad_references(self):
        with pytest.raises(SimulationError):
            resolve_task("no-colon-here")
        with pytest.raises(SimulationError):
            resolve_task("repro.core:does_not_exist")
        with pytest.raises(SimulationError):
            resolve_task("definitely_not_a_module_xyz:f")
        with pytest.raises(SimulationError):
            task_ref(lambda x: x)  # repro: ignore[pickle-safety] — asserts the raise


class TestCampaignPoints:
    def test_points_merge_base_params(self):
        campaign = Campaign(
            task=module_task,
            sweep=zip_sweep(x=[1, 2]),
            base_params={"factor": 5},
        )
        points = campaign.points()
        assert points[0].params == {"factor": 5, "x": 1}
        assert points[1].index == 1

    def test_sweep_value_overrides_base(self):
        campaign = Campaign(
            task=module_task,
            sweep=zip_sweep(factor=[9]),
            base_params={"factor": 5},
        )
        assert campaign.points()[0].params == {"factor": 9}

    def test_seeds_depend_on_content_not_position(self):
        """The same params get the same seed in differently-shaped sweeps."""
        wide = Campaign(task=module_task, sweep=zip_sweep(x=[1, 2, 3]), seed=11)
        narrow = Campaign(task=module_task, sweep=zip_sweep(x=[3]), seed=11)
        by_x = {p.params["x"]: p for p in wide.points()}
        single = narrow.points()[0]
        assert single.seed == by_x[3].seed
        assert single.key == by_x[3].key

    def test_seeds_differ_between_points_and_roots(self):
        campaign = Campaign(task=module_task, sweep=zip_sweep(x=[1, 2]), seed=0)
        p0, p1 = campaign.points()
        assert p0.seed != p1.seed
        other_root = Campaign(
            task=module_task, sweep=zip_sweep(x=[1, 2]), seed=1
        ).points()
        assert p0.seed != other_root[0].seed

    def test_unseeded_campaign(self):
        campaign = Campaign(task=module_task, sweep=zip_sweep(x=[1]), seed=None)
        point = campaign.points()[0]
        assert point.seed is None

    def test_pinned_seed_param_wins_and_keys_dedupe(self):
        """An explicit 'seed' param suppresses spawning — and the cache
        key then depends only on the params, so campaigns with different
        root seeds share the (identical) computation."""
        a = Campaign(
            task=module_task,
            sweep=zip_sweep(x=[1]),
            base_params={"seed": 7},
            seed=0,
        ).points()[0]
        b = Campaign(
            task=module_task,
            sweep=zip_sweep(x=[1]),
            base_params={"seed": 7},
            seed=99,
        ).points()[0]
        assert a.seed is None and b.seed is None
        assert a.key == b.key
