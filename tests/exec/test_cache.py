"""Cache-correctness tests: stable hashing and the on-disk result store.

The campaign point hash must be (a) invariant under parameter-dict
ordering and process boundaries, and (b) sensitive to every semantic
input — circuit content, backend caps, parameter values, seeds.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QuditCircuit
from repro.core.exceptions import SimulationError
from repro.exec import ResultCache, point_key, stable_hash
from repro.exec.cache import MISS

SRC = str(Path(__file__).resolve().parents[2] / "src")


# -- strategies --------------------------------------------------------
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=False, width=64),
    st.text(max_size=12),
)
values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=6), inner, max_size=4),
    ),
    max_leaves=12,
)
param_dicts = st.dictionaries(st.text(min_size=1, max_size=8), values, max_size=6)


class TestStableHash:
    @settings(max_examples=80, deadline=None)
    @given(params=param_dicts, seed=st.integers(min_value=0, max_value=2**31))
    def test_invariant_under_dict_ordering(self, params, seed):
        reordered = dict(reversed(list(params.items())))
        assert point_key("m:f", "1", params, seed) == point_key(
            "m:f", "1", reordered, seed
        )

    @settings(max_examples=80, deadline=None)
    @given(params=param_dicts, seed=st.integers(min_value=0, max_value=2**31))
    def test_sensitive_to_seed_and_version(self, params, seed):
        base = point_key("m:f", "1", params, seed)
        assert base != point_key("m:f", "1", params, seed + 1)
        assert base != point_key("m:f", "2", params, seed)
        assert base != point_key("m:g", "1", params, seed)

    @settings(max_examples=60, deadline=None)
    @given(params=param_dicts)
    def test_sensitive_to_any_param_change(self, params):
        base = stable_hash(params)
        mutated = dict(params)
        mutated["__probe__"] = 1
        assert stable_hash(mutated) != base

    def test_type_distinctions(self):
        assert stable_hash(1) != stable_hash(1.0)
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash([1, 2]) != stable_hash([[1], [2]])
        assert stable_hash({"a": 1}) != stable_hash([("a", 1)])

    def test_numpy_values(self):
        assert stable_hash(np.float64(0.5)) == stable_hash(0.5)
        assert stable_hash(np.int32(3)) == stable_hash(3)
        arr = np.arange(6, dtype=float).reshape(2, 3)
        assert stable_hash(arr) == stable_hash(arr.copy())
        assert stable_hash(arr) != stable_hash(arr.T)
        assert stable_hash(arr) != stable_hash(arr.astype(np.float32))

    def test_unhashable_type_rejected(self):
        with pytest.raises(SimulationError):
            stable_hash(object())

    def test_object_dtype_array_rejected(self):
        # tobytes() on object arrays would hash raw pointers — different
        # every process — so they must be refused, not mis-hashed.
        with pytest.raises(SimulationError):
            stable_hash(np.array([1, "x"], dtype=object))
        with pytest.raises(SimulationError):
            stable_hash({"p": np.array([[1, 2], [3, "x"]], dtype=object)})

    def test_invariant_across_process_boundary(self):
        """A fresh interpreter (fresh hash salt) produces the same key."""
        payload = {
            "b": [1, 2.5, "x", None, True],
            "a": {"nested": {"deep": [3, 4]}},
            "arr": None,
        }
        local = point_key("mod:fn", "7", payload, 123)
        code = (
            "from repro.exec import point_key;"
            f"payload = {payload!r};"
            "print(point_key('mod:fn', '7', payload, 123))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": SRC, "PYTHONHASHSEED": "random"},
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == local


class TestCircuitFingerprint:
    def _circuit(self, strength=1.0):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.controlled_phase(0, 1, strength)
        return qc

    def test_identical_circuits_share_keys(self):
        a, b = self._circuit(), self._circuit()
        assert a.fingerprint() == b.fingerprint()
        assert stable_hash({"circuit": a}) == stable_hash({"circuit": b})

    def test_gate_content_changes_key(self):
        base = stable_hash({"circuit": self._circuit(1.0)})
        assert stable_hash({"circuit": self._circuit(1.1)}) != base

    def test_channel_content_and_mutation_change_key(self):
        from repro.core.channels import photon_loss

        a = self._circuit()
        a.channel(photon_loss(3, 0.1).kraus, 0, name="loss")
        b = self._circuit()
        b.channel(photon_loss(3, 0.2).kraus, 0, name="loss")
        assert a.fingerprint() != b.fingerprint()
        before = a.fingerprint()
        a.x(1)
        assert a.fingerprint() != before

    def test_backend_caps_change_point_key(self):
        qc = self._circuit()
        base = point_key("m:f", "1", {"circuit": qc, "max_bond": 16, "max_kraus": 4}, 0)
        assert base != point_key(
            "m:f", "1", {"circuit": qc, "max_bond": 32, "max_kraus": 4}, 0
        )
        assert base != point_key(
            "m:f", "1", {"circuit": qc, "max_bond": 16, "max_kraus": 8}, 0
        )


class TestResultCache:
    def test_round_trip_and_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = stable_hash({"x": 1})
        assert cache.get(key) is MISS
        cache.put(key, {"value": [1, 2, 3], "nested": {"ok": True}})
        assert cache.get(key) == {"value": [1, 2, 3], "nested": {"ok": True}}
        assert key in cache and len(cache) == 1

    def test_len_ignores_orphaned_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("entry")
        cache.put(key, 1)
        # Simulate a worker killed between mkstemp and os.replace.
        (cache._path(key).parent / ".tmp-orphan.json").write_text("{}")
        assert len(cache) == 1

    def test_cached_none_distinct_from_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("a" * 64, None)
        assert cache.get("a" * 64) is None
        assert ("a" * 64) in cache

    def test_corrupted_entry_is_evicted_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("probe")
        cache.put(key, 42)
        path = cache._path(key)
        path.write_text('{"key": "' + key + '", "value": 4')  # truncated
        assert cache.get(key) is MISS
        assert not path.exists()  # healed by eviction
        cache.put(key, 43)
        assert cache.get(key) == 43

    def test_transient_read_failure_is_miss_without_eviction(self, tmp_path):
        """An OSError on read must not destroy a valid entry."""
        cache = ResultCache(tmp_path)
        key = stable_hash("survivor")
        cache.put(key, 99)
        path = cache._path(key)
        original = Path.read_text

        def flaky(self, *args, **kwargs):
            if self == path:
                raise OSError("transient")
            return original(self, *args, **kwargs)

        import unittest.mock

        with unittest.mock.patch.object(Path, "read_text", flaky):
            assert cache.get(key) is MISS
        assert path.exists()  # entry survived the transient failure
        assert cache.get(key) == 99

    def test_key_mismatch_treated_as_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("x")
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"key": "wrong", "value": 1}))
        assert cache.get(key) is MISS


class TestCacheEviction:
    """LRU size caps: touch-on-hit access stamps, evict(), stats()."""

    def _stamp(self, cache, key, ns):
        import os

        os.utime(cache._path(key), ns=(ns, ns))

    def test_least_recently_accessed_evicted_first(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2, evict_interval=1)
        keys = [stable_hash(i) for i in range(3)]
        base = 1_700_000_000_000_000_000
        cache.put(keys[0], 0)
        self._stamp(cache, keys[0], base + 1)
        cache.put(keys[1], 1)
        self._stamp(cache, keys[1], base + 2)
        # A hit refreshes key 0's access stamp, making key 1 the LRU.
        assert cache.get(keys[0]) == 0
        self._stamp(cache, keys[0], base + 3)
        cache.put(keys[2], 2)  # breaches the cap; evict runs on this put
        assert cache.get(keys[1]) is MISS
        assert cache.get(keys[0]) == 0
        assert cache.get(keys[2]) == 2
        assert len(cache) == 2

    def test_max_bytes_cap_enforced(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=400, evict_interval=1)
        for i in range(8):
            cache.put(stable_hash(f"entry-{i}"), "x" * 40)
        stats = cache.stats()
        assert stats["total_bytes"] <= 400
        assert 0 < stats["entries"] < 8

    def test_explicit_evict_reports_what_was_removed(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1, evict_interval=10_000)
        base = 1_700_000_000_000_000_000
        for i in range(4):
            cache.put(stable_hash(i), i)
            self._stamp(cache, stable_hash(i), base + i)
        report = cache.evict()
        assert report["evicted_entries"] == 3
        assert report["entries"] == 1
        assert report["evicted_bytes"] > 0
        # The newest access stamp survives.
        assert cache.get(stable_hash(3)) == 3

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(100):
            cache.put(stable_hash(i), i)
        assert len(cache) == 100
        assert cache.evict()["evicted_entries"] == 0

    def test_evict_interval_batches_scans(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1, evict_interval=5)
        for i in range(4):
            cache.put(stable_hash(i), i)
        assert len(cache) == 4  # under the interval: no scan yet
        cache.put(stable_hash(4), 4)  # fifth put triggers the scan
        assert len(cache) == 1

    def test_cap_validation(self, tmp_path):
        with pytest.raises(SimulationError):
            ResultCache(tmp_path, max_bytes=-1)
        with pytest.raises(SimulationError):
            ResultCache(tmp_path, max_entries=-1)
        with pytest.raises(SimulationError):
            ResultCache(tmp_path, evict_interval=0)


class TestEvictionRaceDiscipline:
    """Removals use the same atomic replace-or-unlink discipline as put.

    The regression scenario: a reader observes a corrupted entry (a torn
    copy), and between its read and its eviction a concurrent writer
    re-puts a *valid* entry at the same shard file.  The old unlink-based
    evict path would destroy the fresh entry; the rename-aside path
    re-validates and restores it.
    """

    def test_get_recovers_entry_written_during_corrupt_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("raced")
        cache.put(key, 11)
        path = cache._path(key)
        path.write_text("torn copy, not json")
        original = cache._discard

        def racing_discard(p, *, expect_key=None):
            # The concurrent writer lands after the corrupt read, before
            # the removal — exactly the window of the old unlink race.
            ResultCache(tmp_path).put(key, 11)
            return original(p, expect_key=expect_key)

        cache._discard = racing_discard
        assert cache.get(key) == 11  # recovered, not reported as a miss
        cache._discard = original
        assert path.exists()  # ...and the fresh entry survived on disk
        assert cache.get(key) == 11

    def test_conditional_discard_restores_valid_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("valid")
        cache.put(key, 7)
        path = cache._path(key)
        removed, recovered = cache._discard(path, expect_key=key)
        assert removed is False
        assert recovered == 7
        assert path.exists()

    def test_unconditional_discard_removes_valid_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("gone")
        cache.put(key, 7)
        removed, recovered = cache._discard(cache._path(key))
        assert removed is True
        assert recovered is MISS
        assert cache.get(key) is MISS

    def test_discard_of_missing_file_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        removed, recovered = cache._discard(tmp_path / "ab" / "nope.json")
        assert removed is False
        assert recovered is MISS

    def test_no_tombstones_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=1, evict_interval=1)
        for i in range(6):
            cache.put(stable_hash(i), i)
        leftovers = [p for p in Path(tmp_path).rglob(".evict-*") if p.is_file()]
        assert leftovers == []

    def test_evict_sweeps_stale_orphan_dotfiles(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path, max_entries=10)
        key = stable_hash("live")
        cache.put(key, 1)
        shard = cache._path(key).parent
        stale_tomb = shard / ".evict-9999-0.json"
        stale_tmp = shard / ".tmp-orphan.json"
        fresh_tomb = shard / ".evict-9999-1.json"
        for orphan in (stale_tomb, stale_tmp, fresh_tomb):
            orphan.write_text("{}")
        old = time.time() - 7200
        os.utime(stale_tomb, (old, old))
        os.utime(stale_tmp, (old, old))
        cache.evict()
        assert not stale_tomb.exists() and not stale_tmp.exists()
        assert fresh_tomb.exists()  # in-flight files are never touched
        assert cache.get(key) == 1
