"""Tier-1 smoke invocations of the core-engine benchmark harness.

These run the real benchmark code paths at tiny sizes so a regression in
the structured fast paths or the batched trajectory engine fails tier-1,
while the full-size benchmark (``python benchmarks/bench_core_engine.py``,
which regenerates the committed ``BENCH_core.json``) stays opt-in.
"""

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_DIR = REPO_ROOT / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))


@pytest.mark.bench_smoke
def test_core_engine_bench_smoke(tmp_path):
    from bench_core_engine import run_benchmarks

    out = tmp_path / "BENCH_core.json"
    report = run_benchmarks(
        n_qutrits=4,
        gate_repeats=3,
        n_traj_nodes=4,
        n_trajectories=8,
        out_path=out,
    )
    # Fast paths must agree with the dense reference on the benchmark state.
    assert report["correctness"]["max_fastpath_vs_dense_error"] < 1e-12
    trajectories = report["trajectories"]["ndar_style"]
    assert trajectories["n_trajectories"] == 8
    assert trajectories["batched_s"] > 0 and trajectories["seed_loop_s"] > 0
    for key in ("diagonal_geomean_speedup", "permutation_geomean_speedup"):
        assert report["gate_apply"][key] > 0
    # The emitter round-trips through JSON.
    assert json.loads(out.read_text())["meta"]["benchmark"] == "bench_core_engine"


@pytest.mark.bench_smoke
def test_committed_bench_core_json_meets_targets():
    """The committed BENCH_core.json must document the required speedups."""
    report = json.loads((REPO_ROOT / "BENCH_core.json").read_text())
    gate = report["gate_apply"]
    assert gate["diagonal_geomean_speedup"] >= 3.0
    assert gate["permutation_geomean_speedup"] >= 3.0
    assert report["trajectories"]["ndar_style"]["speedup"] >= 5.0
    assert report["correctness"]["max_fastpath_vs_dense_error"] < 1e-12
