"""Tier-1 smoke invocations of the core-engine benchmark harness.

These run the real benchmark code paths at tiny sizes so a regression in
the structured fast paths or the batched trajectory engine fails tier-1,
while the full-size benchmark (``python benchmarks/bench_core_engine.py``,
which regenerates the committed ``BENCH_core.json``) stays opt-in.
"""

import json
import os
import shutil
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_DIR = REPO_ROOT / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))


def _publish_artifact(path: Path) -> None:
    """Copy a regenerated benchmark JSON where CI can pick it up.

    The bench-smoke CI job sets ``BENCH_ARTIFACT_DIR`` and uploads
    whatever lands there, so drift against the committed ``BENCH_*.json``
    records can be inspected per run.  A no-op everywhere else.
    """
    target = os.environ.get("BENCH_ARTIFACT_DIR")
    if target:
        Path(target).mkdir(parents=True, exist_ok=True)
        shutil.copy2(path, Path(target) / path.name)


@pytest.mark.bench_smoke
def test_core_engine_bench_smoke(tmp_path):
    from bench_core_engine import run_benchmarks

    out = tmp_path / "BENCH_core.json"
    report = run_benchmarks(
        n_qutrits=4,
        gate_repeats=3,
        n_traj_nodes=4,
        n_trajectories=8,
        out_path=out,
    )
    # Fast paths must agree with the dense reference on the benchmark state.
    assert report["correctness"]["max_fastpath_vs_dense_error"] < 1e-12
    trajectories = report["trajectories"]["ndar_style"]
    assert trajectories["n_trajectories"] == 8
    assert trajectories["batched_s"] > 0 and trajectories["seed_loop_s"] > 0
    for key in ("diagonal_geomean_speedup", "permutation_geomean_speedup"):
        assert report["gate_apply"][key] > 0
    # The emitter round-trips through JSON.
    assert json.loads(out.read_text())["meta"]["benchmark"] == "bench_core_engine"
    _publish_artifact(out)


@pytest.mark.bench_smoke
def test_mps_bench_smoke(tmp_path):
    from bench_mps import run_benchmarks

    out = tmp_path / "BENCH_mps.json"
    report = run_benchmarks(
        n_small=4,
        n_large=10,
        bond_caps=(4, 8),
        n_trajectories=32,
        shots=10,
        out_path=out,
    )
    # Unbounded-chi MPS must match the dense statevector on the anchor.
    assert report["correctness"]["noiseless_max_amplitude_error"] < 1e-10
    assert report["correctness"]["full_chi_truncation_error"] < 1e-12
    scale = report["scale"]
    assert scale["n_qutrits"] == 10
    sweep = scale["chi_sweep"]
    assert [point["max_bond"] for point in sweep] == [4, 8]
    for point in sweep:
        assert point["evolve_s"] > 0
        assert point["peak_bond"] <= point["max_bond"]
        assert point["truncation_error"] >= 0.0
        assert 0.0 <= point["qaoa_energy"] <= scale["n_edges"]
    assert json.loads(out.read_text())["meta"]["benchmark"] == "bench_mps"
    _publish_artifact(out)


@pytest.mark.bench_smoke
def test_committed_bench_mps_json_meets_targets():
    """The committed BENCH_mps.json must document the scale claim:

    a >= 15-qutrit circuit — beyond any dense backend here — evolved at
    bounded chi with the truncation error on record.
    """
    report = json.loads((REPO_ROOT / "BENCH_mps.json").read_text())
    assert report["correctness"]["noiseless_max_amplitude_error"] < 1e-10
    scale = report["scale"]
    assert scale["n_qutrits"] >= 15
    # Dense representation is genuinely out of reach (> 1 GiB of amplitudes).
    assert scale["dense_statevector_gib"] > 1.0
    for point in scale["chi_sweep"]:
        assert point["truncation_error"] >= 0.0
        assert point["peak_bond"] <= point["max_bond"]


@pytest.mark.bench_smoke
def test_lpdo_bench_smoke(tmp_path):
    from bench_lpdo import run_benchmarks

    out = tmp_path / "BENCH_lpdo.json"
    report = run_benchmarks(
        n_small=3,
        n_large=6,
        max_bond=8,
        max_kraus=4,
        n_trajectories=16,
        shots=10,
        sqed_sites=4,
        sqed_steps=1,
        out_path=out,
    )
    # Exact channels: the unbounded LPDO matches the dense density matrix.
    assert report["correctness"]["max_density_matrix_error"] < 1e-10
    assert report["correctness"]["observable_lpdo_abs_error"] < 1e-10
    scale = report["scale"]
    assert scale["n_qutrits"] == 6
    assert scale["evolve_s"] > 0
    assert scale["peak_bond"] <= 8
    assert scale["peak_kraus"] <= 4
    assert scale["truncation_error"] >= 0.0
    assert scale["purification_error"] >= 0.0
    assert abs(scale["trace"] - 1.0) < 1e-6
    sqed = report["sqed_noise_study"]
    assert sqed["damage"] > 0
    assert sqed["stochastic_unravelling"] is False
    assert json.loads(out.read_text())["meta"]["benchmark"] == "bench_lpdo"
    _publish_artifact(out)


@pytest.mark.bench_smoke
def test_committed_bench_lpdo_json_meets_targets():
    """The committed BENCH_lpdo.json must document the acceptance claims:

    unbounded-cap agreement with the dense density matrix at 1e-8, and a
    12+-qutrit noisy register — whose density matrix (3^24 entries) could
    never be allocated — evolved with exact channels, no stochastic
    unravelling, and both truncation accounts on record.
    """
    report = json.loads((REPO_ROOT / "BENCH_lpdo.json").read_text())
    assert report["correctness"]["max_density_matrix_error"] < 1e-8
    assert report["correctness"]["observable_lpdo_abs_error"] < 1e-8
    # The stochastic MPS score carries visible Monte-Carlo noise; the LPDO
    # score must beat it by orders of magnitude.
    assert (
        report["correctness"]["observable_lpdo_abs_error"]
        < report["correctness"]["observable_mps_mc_abs_error"] * 1e-3
    )
    scale = report["scale"]
    assert scale["n_qutrits"] >= 12
    assert scale["dense_rho_tib"] > 1.0  # genuinely beyond dense reach
    assert scale["truncation_error"] >= 0.0
    assert scale["purification_error"] >= 0.0
    assert abs(scale["trace"] - 1.0) < 1e-6
    sqed = report["sqed_noise_study"]
    assert sqed["n_sites"] >= 12
    assert sqed["damage"] > 0
    assert sqed["stochastic_unravelling"] is False


@pytest.mark.bench_smoke
def test_exec_bench_smoke(tmp_path):
    from bench_exec import run_benchmarks

    out = tmp_path / "BENCH_exec.json"
    report = run_benchmarks(
        sqed_points=8,
        sqed_sites=2,
        sqed_steps=1,
        latency_points=16,
        latency_delay_ms=25.0,
        battery_campaigns=8,
        battery_points=4,
        battery_delay_ms=1.0,
        battery_workers=4,
        streaming_points=24,
        streaming_delay_ms=25.0,
        overhead_points=16,
        overhead_delay_ms=25.0,
        obs_qudits=5,
        obs_gate_loops=2,
        obs_repeats=3,
        autopilot_points=6,
        autopilot_target=1e-6,
        workers=8,
        calibration_scale=1,
        cache_dir=tmp_path / "cache",
        out_path=out,
    )
    # Scheduler concurrency: latency-bound points overlap under the worker
    # pool on any host, single-core included.
    assert report["latency_campaign"]["speedup"] >= 2.0
    # Pool reuse: a battery of short campaigns on one warm executor pool
    # beats forking a fresh pool per campaign (fork cost dominates here).
    assert report["pool_reuse"]["speedup"] >= 1.5
    # Streaming: the first value lands well before the campaign barrier.
    streaming = report["streaming"]
    assert streaming["time_to_first_s"] < streaming["barrier_total_s"]
    assert streaming["first_vs_barrier_ratio"] <= 0.6
    # Supervised dispatch (liveness monitoring, respawn, deadlines) must
    # not meaningfully tax a latency-bound battery.  The committed-record
    # bound is 1.10x; the tiny smoke sizes are noisier, so allow slack
    # while still catching a pathological regression.
    overhead = report["supervised_overhead"]
    assert overhead["raw_pool_s"] > 0 and overhead["supervised_s"] > 0
    assert overhead["overhead_ratio"] <= 1.5
    # Observability must be near-free when disabled.  The committed-record
    # bound is 1.05x; the smoke workload is tiny and timing-noisy, so
    # allow slack while still catching an always-on instrumentation bug.
    obs_overhead = report["obs_overhead"]
    assert obs_overhead["gate_applies_observed"] > 0
    assert obs_overhead["spans_recorded"] > 0
    assert obs_overhead["disabled_ratio"] <= 1.5
    # The live /metrics endpoint answered while the registry was hot.
    serve_scrape = obs_overhead["serve_scrape"]
    assert serve_scrape["status"] == 200
    assert serve_scrape["families"] > 0
    assert serve_scrape["min_scrape_s"] > 0
    # Cached replay serves (almost) everything without recomputation.
    sqed = report["sqed_campaign"]
    assert sqed["replay_hit_fraction"] >= 0.95
    assert sqed["replay_speedup"] >= 10.0
    assert sqed["monotone_damage"]
    # The autopilot contract delivers within budget with zero hand-set
    # caps.  The committed-record wall-time bound is 1.2x the best
    # hand-tuned config; the smoke campaigns finish in milliseconds, so
    # only the accuracy contract is guarded here.
    autopilot = report["autopilot"]
    assert autopilot["meets_target"]
    assert autopilot["autopilot_max_abs_error"] <= autopilot["target_error"]
    assert autopilot["vs_best_hand_ratio"] > 0
    assert len(autopilot["hand_tuned"]) >= 3
    # The cost model lands on the anchor decisions with freshly measured
    # constants, not just the committed ones.
    selection = report["auto_selection"]
    assert selection["4_qutrit_noiseless"]["backend"] == "statevector"
    assert selection["12_qutrit_noisy"]["backend"] in ("mps", "lpdo")
    for value in report["calibration"].values():
        assert value > 0
    assert json.loads(out.read_text())["meta"]["benchmark"] == "bench_exec"
    _publish_artifact(out)


@pytest.mark.bench_smoke
def test_obs_demo_campaign_trace_artifact(tmp_path):
    """A demo campaign traced end to end, published next to BENCH_*.json.

    Runs a small pooled campaign with observability on, checks the
    telemetry is genuinely multi-process and perturbation-free, and
    publishes the JSON-lines span log (plus its Chrome-trace rendering)
    as CI artifacts so a run's per-point timeline can be inspected in
    Perfetto without rerunning anything.
    """
    from bench_exec import _latency_campaign

    from repro import obs
    from repro.exec import CampaignExecutor, run_campaign
    from repro.obs import tracing

    obs.disable()
    obs.reset()
    try:
        baseline = run_campaign(_latency_campaign(16, 5.0), workers=1).values
        obs.enable()
        with CampaignExecutor(workers=2) as executor:
            result = executor.submit(_latency_campaign(16, 5.0)).result()
        assert result.values == baseline  # telemetry never perturbs values

        spans = [ev for ev in tracing.events() if ev["name"] == "point"]
        assert len(spans) == 16
        assert len({ev["pid"] for ev in spans}) >= 2  # true multi-process

        trace_jsonl = tmp_path / "TRACE_exec_demo.jsonl"
        trace_chrome = tmp_path / "TRACE_exec_demo.chrome.json"
        assert tracing.write_jsonl(trace_jsonl) >= 16
        tracing.write_chrome(trace_chrome)
        assert tracing.read_jsonl(trace_jsonl) == tracing.events()
        doc = json.loads(trace_chrome.read_text())
        assert any(ev["ph"] == "X" for ev in doc["traceEvents"])
        _publish_artifact(trace_jsonl)
        _publish_artifact(trace_chrome)
    finally:
        obs.disable()
        obs.reset()


@pytest.mark.bench_smoke
def test_obs_flight_report_artifact(tmp_path, monkeypatch):
    """A campaign scraped live over HTTP, then rendered as a flight report.

    Opts into the telemetry endpoint via ``REPRO_OBS_HTTP`` (the same
    knob CI would use), curls ``/metrics`` mid-run asserting a valid
    exposition body, and publishes the markdown + HTML flight reports
    rendered from the run's ledger record as CI artifacts.
    """
    import urllib.request

    from bench_exec import _latency_campaign

    from repro import obs
    from repro.exec import CampaignExecutor, ResultCache
    from repro.obs import report

    obs.disable()
    obs.reset()
    monkeypatch.setenv("REPRO_OBS_HTTP", "0")  # ephemeral port
    try:
        cache = ResultCache(tmp_path / "cache")
        with CampaignExecutor(workers=2, cache=cache) as executor:
            handle = executor.submit(_latency_campaign(8, 5.0))
            scrapes = []
            for _ in handle.as_completed():
                with urllib.request.urlopen(
                    executor.http_url + "/metrics", timeout=10
                ) as response:
                    assert response.status == 200
                    scrapes.append(response.read().decode("utf-8"))
        # the mid-run scrapes saw live, typed exposition text
        assert any("# TYPE exec_point_s histogram" in body for body in scrapes)

        ledger = cache.ledger()
        assert len(ledger) == 1
        report_md = tmp_path / "FLIGHT_exec_demo.md"
        report_html = tmp_path / "FLIGHT_exec_demo.html"
        assert report.main([str(ledger.path), "--out", str(report_md)]) == 0
        assert (
            report.main(
                [str(ledger.path), "--format", "html", "--out", str(report_html)]
            )
            == 0
        )
        assert report_md.read_text().startswith("# Flight report")
        assert report_html.read_text().startswith("<!DOCTYPE html>")
        _publish_artifact(report_md)
        _publish_artifact(report_html)
    finally:
        obs.disable()
        obs.reset()


@pytest.mark.bench_smoke
def test_committed_bench_exec_json_meets_targets():
    """The committed BENCH_exec.json must document the campaign claims:

    >= 2x scheduler concurrency at 8 workers on the latency-bound smoke
    campaign, >= 2x from pool reuse on the short-campaign battery, a
    streamed time-to-first-result <= 0.5x the barrier runner's total
    wall time, supervised (fault-tolerant) dispatch within 10% of a raw
    unsupervised pool on the latency-bound battery, a >= 10x cached
    replay serving >= 95% of the 64-point
    sQED campaign, the error-budget autopilot meeting its
    ``target_error`` contract within 1.2x the wall time of the best
    hand-tuned cap configuration, and the auto-selector's anchor
    decisions (statevector for a small noiseless register, a tensor
    network for 12 noisy qutrits).  The CPU-bound parallel speedup is recorded together with
    the host's core count; the >= 2x guard applies where cores exist to
    use.  Observability instrumentation must be near-free when disabled
    (disabled ratio <= 1.05), with a successful live ``/metrics`` scrape
    of the hot registry on record (``serve_scrape``).
    """
    report = json.loads((REPO_ROOT / "BENCH_exec.json").read_text())
    latency = report["latency_campaign"]
    assert latency["workers"] >= 8
    assert latency["speedup"] >= 2.0
    pool_reuse = report["pool_reuse"]
    assert pool_reuse["n_campaigns"] >= 8
    assert pool_reuse["speedup"] >= 2.0
    streaming = report["streaming"]
    assert streaming["n_points"] >= 16
    assert streaming["first_vs_barrier_ratio"] <= 0.5
    assert streaming["time_to_first_s"] <= 0.5 * streaming["barrier_total_s"]
    overhead = report["supervised_overhead"]
    assert overhead["n_points"] >= 16
    assert overhead["workers"] >= 8
    assert overhead["overhead_ratio"] <= 1.10
    obs_overhead = report["obs_overhead"]
    assert obs_overhead["gate_applies_observed"] > 0
    assert obs_overhead["spans_recorded"] > 0
    assert obs_overhead["disabled_ratio"] <= 1.05
    serve_scrape = obs_overhead["serve_scrape"]
    assert serve_scrape["status"] == 200
    assert serve_scrape["families"] > 0
    assert serve_scrape["min_scrape_s"] > 0
    sqed = report["sqed_campaign"]
    assert sqed["n_points"] >= 64
    assert sqed["workers"] >= 8
    assert sqed["replay_hit_fraction"] >= 0.95
    assert sqed["replay_speedup"] >= 10.0
    if report["meta"]["cpu_count"] >= 8:
        assert sqed["parallel_speedup"] >= 2.0
    autopilot = report["autopilot"]
    assert autopilot["meets_target"]
    assert autopilot["autopilot_max_abs_error"] <= autopilot["target_error"]
    assert autopilot["vs_best_hand_ratio"] <= 1.2
    selection = report["auto_selection"]
    assert selection["4_qutrit_noiseless"]["backend"] == "statevector"
    assert selection["12_qutrit_noisy"]["backend"] in ("mps", "lpdo")
    for value in report["calibration"].values():
        assert value > 0


@pytest.mark.bench_smoke
def test_committed_bench_core_json_meets_targets():
    """The committed BENCH_core.json must document the required speedups."""
    report = json.loads((REPO_ROOT / "BENCH_core.json").read_text())
    gate = report["gate_apply"]
    assert gate["diagonal_geomean_speedup"] >= 3.0
    assert gate["permutation_geomean_speedup"] >= 3.0
    assert report["trajectories"]["ndar_style"]["speedup"] >= 5.0
    assert report["correctness"]["max_fastpath_vs_dense_error"] < 1e-12
