"""Tests for the ISA lowering table, noise model, and roadmap accounting."""

import numpy as np
import pytest

from repro.core import DensityMatrix, QuditCircuit
from repro.core.exceptions import DeviceError
from repro.hardware import (
    DeviceNoiseModel,
    forecast_device,
    is_native,
    linear_cavity_array,
    lowering_cost,
    roadmap_summary,
)
from repro.hardware.isa import LOWERING_RULES, NATIVE_GATES


class TestISA:
    def test_native_recognition(self):
        assert is_native("snap")
        assert is_native("bs")
        assert not is_native("csum")
        assert not is_native("fourier")

    def test_native_cost_is_unit(self):
        assert lowering_cost("snap", 5) == {"snap": 1}

    def test_csum_lowering_scales_with_d(self):
        small = lowering_cost("csum", 3)
        big = lowering_cost("csum", 8)
        assert big["snap"] > small["snap"]
        assert small["cphase"] == big["cphase"] == 1

    def test_unknown_gate(self):
        with pytest.raises(DeviceError):
            lowering_cost("mystery", 3)

    def test_rule_expansion_validation(self):
        with pytest.raises(DeviceError):
            LOWERING_RULES["csum"].expand(1)

    def test_all_lowered_gates_map_to_native(self):
        for rule in LOWERING_RULES.values():
            for native_name in rule.native_counts:
                assert native_name in NATIVE_GATES, native_name

    def test_transmon_usage_flags(self):
        assert not NATIVE_GATES["disp"].uses_transmon
        assert NATIVE_GATES["snap"].uses_transmon


class TestDeviceNoiseModel:
    @pytest.fixture()
    def device(self):
        return linear_cavity_array(2, 2, 3, seed=0)

    def test_gate_noise_positive(self, device):
        params = DeviceNoiseModel(device).gate_noise("csum", 0)
        assert params.loss > 0
        assert params.dephase > 0
        assert params.transmon_depol > 0
        assert 0 < params.total_error() < 1

    def test_displacement_skips_transmon(self, device):
        params = DeviceNoiseModel(device).gate_noise("disp", 0)
        assert params.transmon_depol == 0.0

    def test_slower_gate_noisier(self, device):
        nm = DeviceNoiseModel(device)
        fast = nm.gate_noise("disp", 0).total_error()
        slow = nm.gate_noise("csum", 0).total_error()
        assert slow > fast

    def test_gate_fidelity_multiplicative(self, device):
        nm = DeviceNoiseModel(device)
        single = nm.gate_fidelity("snap", (0,))
        double = nm.gate_fidelity("snap", (0, 1))
        assert double == pytest.approx(single * nm.gate_fidelity("snap", (1,)))

    def test_mode_out_of_range(self, device):
        with pytest.raises(DeviceError):
            DeviceNoiseModel(device).gate_noise("snap", 99)

    def test_fraction_validation(self, device):
        with pytest.raises(DeviceError):
            DeviceNoiseModel(device, transmon_error_fraction=1.5)

    def test_apply_to_circuit_inserts_channels(self, device):
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        noisy = DeviceNoiseModel(device).apply_to_circuit(qc)
        kinds = [inst.kind for inst in noisy]
        assert "channel" in kinds
        dm = DensityMatrix.zero([3, 3]).evolve(noisy)
        assert dm.purity() < 1.0
        assert abs(dm.trace() - 1.0) < 1e-9

    def test_apply_to_circuit_layout_dimension_check(self, device):
        qc = QuditCircuit([4])
        with pytest.raises(DeviceError):
            DeviceNoiseModel(device).apply_to_circuit(qc, layout=[0])

    def test_apply_layout_length_check(self, device):
        qc = QuditCircuit([3, 3])
        with pytest.raises(DeviceError):
            DeviceNoiseModel(device).apply_to_circuit(qc, layout=[0])

    def test_circuit_fidelity_estimate_monotone(self, device):
        nm = DeviceNoiseModel(device)
        qc = QuditCircuit([3, 3])
        qc.csum(0, 1)
        one = nm.circuit_fidelity_estimate(qc)
        two = nm.circuit_fidelity_estimate(qc.repeated(2))
        assert two == pytest.approx(one**2, rel=1e-9)

    def test_estimate_vs_simulation_agreement(self, device):
        """First-order estimate tracks the simulated fidelity loosely."""
        from repro.core import Statevector

        nm = DeviceNoiseModel(device)
        qc = QuditCircuit([3, 3])
        qc.fourier(0)
        qc.csum(0, 1)
        ideal = Statevector.zero([3, 3]).evolve(qc)
        noisy = DensityMatrix.zero([3, 3]).evolve(nm.apply_to_circuit(qc))
        simulated = noisy.fidelity_with_pure(ideal)
        estimated = nm.circuit_fidelity_estimate(qc)
        assert abs(simulated - estimated) < 0.05


class TestRoadmap:
    def test_forecast_device_shape(self):
        device = forecast_device()
        assert device.n_cavities == 10
        assert device.n_modes == 40
        assert set(device.mode_dims()) == {10}

    def test_capacity_claim_c7(self):
        """The paper's '>100 qubits' forecast: 40 modes x d=10."""
        summary = roadmap_summary()
        assert summary.exceeds_100_qubits
        assert abs(summary.qubit_equivalent - 40 * np.log2(10)) < 1e-9
        assert abs(summary.hilbert_dimension_log10 - 40.0) < 1e-12

    def test_small_device_fails_claim(self):
        summary = roadmap_summary(linear_cavity_array(2, 2, 3))
        assert not summary.exceeds_100_qubits

    def test_mixed_dim_sentinel(self):
        from repro.hardware import Cavity, CavityQPU, CoherenceParams, Mode

        coh = CoherenceParams(1e-3, 1e-3)
        tr = CoherenceParams(1e-4, 1e-4)
        device = CavityQPU(
            [Cavity(0, 2, tr)],
            [Mode(0, 0, 3, coh), Mode(0, 1, 4, coh)],
        )
        assert roadmap_summary(device).dim_per_mode == -1
