"""Tests for the cavity-QPU hardware model."""

import pytest

from repro.core.exceptions import DeviceError
from repro.hardware import (
    CavityQPU,
    Cavity,
    CoherenceParams,
    GateTimings,
    Mode,
    linear_cavity_array,
)


class TestCoherenceParams:
    def test_valid(self):
        params = CoherenceParams(t1=1e-3, t2=1.5e-3)
        assert params.t1 == 1e-3

    def test_t2_bound(self):
        with pytest.raises(DeviceError):
            CoherenceParams(t1=1e-3, t2=3e-3)

    def test_positive_lifetimes(self):
        with pytest.raises(DeviceError):
            CoherenceParams(t1=0.0, t2=1.0)

    def test_negative_thermal(self):
        with pytest.raises(DeviceError):
            CoherenceParams(t1=1.0, t2=1.0, n_thermal=-0.1)

    def test_scaled(self):
        params = CoherenceParams(t1=1e-3, t2=1e-3).scaled(2.0)
        assert params.t1 == 2e-3
        with pytest.raises(DeviceError):
            params.scaled(0.0)


class TestGateTimings:
    def test_known_gates(self):
        timings = GateTimings()
        assert timings.duration_of("snap") == timings.snap
        assert timings.duration_of("csum") == timings.csum
        assert timings.duration_of("move") == timings.beamsplitter

    def test_unknown_gate(self):
        with pytest.raises(DeviceError):
            GateTimings().duration_of("frobnicate")

    def test_displacement_much_faster_than_snap(self):
        timings = GateTimings()
        assert timings.displacement < timings.snap / 5


class TestDeviceConstruction:
    def test_mode_count_validation(self):
        cavities = [Cavity(0, 2, CoherenceParams(1e-4, 1e-4))]
        modes = [Mode(0, 0, 3, CoherenceParams(1e-3, 1e-3))]
        with pytest.raises(DeviceError):
            CavityQPU(cavities, modes)

    def test_unknown_cavity_reference(self):
        cavities = [Cavity(0, 1, CoherenceParams(1e-4, 1e-4))]
        modes = [Mode(5, 0, 3, CoherenceParams(1e-3, 1e-3))]
        with pytest.raises(DeviceError):
            CavityQPU(cavities, modes)

    def test_mode_dim_validation(self):
        with pytest.raises(DeviceError):
            Mode(0, 0, 1, CoherenceParams(1e-3, 1e-3))

    def test_empty_device(self):
        with pytest.raises(DeviceError):
            CavityQPU([], [])


class TestLinearArray:
    def test_shape(self):
        device = linear_cavity_array(3, 2, 4)
        assert device.n_cavities == 3
        assert device.n_modes == 6
        assert device.mode_dims() == (4,) * 6

    def test_connectivity_kinds(self):
        device = linear_cavity_array(3, 2, 3)
        assert device.edge_kind(0, 1) == "colocated"
        assert device.edge_kind(1, 2) == "adjacent"
        assert not device.are_connected(0, 4)  # cavity 0 to cavity 2

    def test_distance(self):
        device = linear_cavity_array(4, 1, 3)
        assert device.distance(0, 3) == 3
        assert device.distance(0, 0) == 0

    def test_two_mode_duration_penalty(self):
        device = linear_cavity_array(2, 2, 3)
        coloc = device.two_mode_duration(0, 1, 1e-6)
        adj = device.two_mode_duration(1, 2, 1e-6)
        assert adj == 2 * coloc

    def test_edge_kind_unconnected(self):
        device = linear_cavity_array(3, 1, 3)
        with pytest.raises(DeviceError):
            device.edge_kind(0, 2)

    def test_modes_in_cavity(self):
        device = linear_cavity_array(2, 3, 3)
        assert device.modes_in_cavity(1) == [3, 4, 5]
        with pytest.raises(DeviceError):
            device.modes_in_cavity(5)

    def test_coherence_spread_produces_variation(self):
        device = linear_cavity_array(2, 2, 3, coherence_spread=0.5, seed=0)
        t1s = {mode.coherence.t1 for mode in device.modes}
        assert len(t1s) > 1

    def test_zero_spread_uniform(self):
        device = linear_cavity_array(2, 2, 3, coherence_spread=0.0)
        t1s = {mode.coherence.t1 for mode in device.modes}
        assert len(t1s) == 1

    def test_spread_reproducible(self):
        d1 = linear_cavity_array(2, 2, 3, coherence_spread=0.5, seed=3)
        d2 = linear_cavity_array(2, 2, 3, coherence_spread=0.5, seed=3)
        assert [m.coherence.t1 for m in d1.modes] == [
            m.coherence.t1 for m in d2.modes
        ]

    def test_invalid_shape(self):
        with pytest.raises(DeviceError):
            linear_cavity_array(0, 2, 3)


class TestCapacity:
    def test_hilbert_dimension(self):
        device = linear_cavity_array(2, 2, 3)
        assert device.hilbert_dimension() == 81

    def test_qubit_equivalent(self):
        device = linear_cavity_array(1, 2, 4)
        assert abs(device.qubit_equivalent() - 4.0) < 1e-12
