"""Tests for the reservoir pipeline: features, readout, tasks, ESN, shots."""

import numpy as np
import pytest

from repro.core.exceptions import SimulationError
from repro.reservoir import (
    CoupledOscillators,
    EchoStateNetwork,
    QuantumReservoir,
    RidgeReadout,
    mackey_glass_task,
    narma_task,
    nmse,
    sample_population_features,
    shot_noise_sweep,
    sine_square_task,
    train_test_split,
)


@pytest.fixture(scope="module")
def tiny_reservoir():
    osc = CoupledOscillators(levels=4, omega_2=2.5, coupling=1.2, kappa_1=0.2, kappa_2=0.2)
    return QuantumReservoir(osc, dt=1.0, input_gain=1.0, drive_bias=1.0)


class TestQuantumReservoir:
    def test_feature_shape(self, tiny_reservoir):
        feats = tiny_reservoir.run(np.linspace(0, 0.5, 10))
        assert feats.shape == (10, 16)
        assert tiny_reservoir.effective_neurons() == 16

    def test_features_are_probabilities(self, tiny_reservoir):
        feats = tiny_reservoir.run(np.linspace(0, 0.5, 8))
        assert (feats >= 0).all()
        np.testing.assert_allclose(feats.sum(axis=1), np.ones(8), atol=1e-8)

    def test_fading_memory(self, tiny_reservoir):
        """Two inputs differing only in the distant past converge."""
        base = np.full(40, 0.25)
        other = base.copy()
        other[0] = 0.5
        fa = tiny_reservoir.run(base)
        fb = tiny_reservoir.run(other)
        early = np.abs(fa[2] - fb[2]).max()
        late = np.abs(fa[-1] - fb[-1]).max()
        assert late < early / 5

    def test_input_sensitivity(self, tiny_reservoir):
        """Different present inputs give different features."""
        fa = tiny_reservoir.run([0.0, 0.0, 0.0])
        fb = tiny_reservoir.run([0.0, 0.0, 0.5])
        assert np.abs(fa[-1] - fb[-1]).max() > 1e-4

    def test_moment_features(self):
        osc = CoupledOscillators(levels=3)
        res = QuantumReservoir(osc, feature_set="moments")
        feats = res.run([0.1, 0.2])
        assert feats.shape == (2, 8)

    def test_invalid_feature_set(self):
        with pytest.raises(SimulationError):
            QuantumReservoir(feature_set="banana")

    def test_empty_input(self, tiny_reservoir):
        with pytest.raises(SimulationError):
            tiny_reservoir.run([])


class TestReadout:
    def test_ridge_recovers_linear_map(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(200, 5))
        weights = rng.normal(size=5)
        targets = features @ weights + 0.7
        readout = RidgeReadout(alpha=1e-10).fit(features, targets)
        np.testing.assert_allclose(readout.weights, weights, atol=1e-6)
        assert abs(readout.bias - 0.7) < 1e-6

    def test_nmse_perfect_and_mean(self):
        targets = np.array([1.0, 2.0, 3.0, 4.0])
        assert nmse(targets, targets) == 0.0
        assert abs(nmse(np.full(4, targets.mean()), targets) - 1.0) < 1e-12

    def test_nmse_validation(self):
        with pytest.raises(SimulationError):
            nmse(np.ones(3), np.ones(3))  # zero variance

    def test_predict_before_fit(self):
        with pytest.raises(SimulationError):
            RidgeReadout().predict(np.ones((2, 2)))

    def test_train_test_split_chronological(self):
        features = np.arange(100).reshape(-1, 1).astype(float)
        targets = np.arange(100).astype(float)
        f_tr, y_tr, f_te, y_te = train_test_split(features, targets, 0.5, washout=10)
        assert y_tr[0] == 10
        assert y_te[0] > y_tr[-1]

    def test_split_validation(self):
        with pytest.raises(SimulationError):
            train_test_split(np.ones((10, 2)), np.ones(10), 0.99, washout=0)


class TestTasks:
    def test_narma2_deterministic(self):
        a = narma_task(50, order=2, seed=5)
        b = narma_task(50, order=2, seed=5)
        np.testing.assert_allclose(a.inputs, b.inputs)
        np.testing.assert_allclose(a.targets, b.targets)

    def test_narma10_runs(self):
        task = narma_task(100, order=10, seed=0)
        assert task.length == 100
        assert np.isfinite(task.targets).all()

    def test_narma_bad_order(self):
        with pytest.raises(SimulationError):
            narma_task(50, order=5)

    def test_mackey_glass_bounded_and_aperiodic(self):
        task = mackey_glass_task(200, horizon=3, seed=1)
        assert task.inputs.min() >= 0.0
        assert task.inputs.max() <= 0.5
        assert np.std(task.inputs) > 0.01

    def test_mackey_glass_target_is_shifted_input(self):
        task = mackey_glass_task(100, horizon=4, seed=2)
        np.testing.assert_allclose(task.inputs[4:], task.targets[:-4], atol=1e-12)

    def test_sine_square_labels(self):
        task = sine_square_task(n_segments=6, segment_length=8, seed=3)
        assert task.length == 48
        assert set(np.unique(task.targets)) <= {0.0, 1.0}


class TestEchoStateNetwork:
    def test_state_shape(self):
        esn = EchoStateNetwork(20, seed=0)
        states = esn.run(np.linspace(0, 0.5, 15))
        assert states.shape == (15, 20)

    def test_echo_state_property(self):
        """States from different initial conditions converge."""
        esn = EchoStateNetwork(30, spectral_radius=0.8, seed=1)
        inputs = np.full(60, 0.3)
        sa = esn.run(inputs, initial=np.zeros(30))
        sb = esn.run(inputs, initial=np.ones(30))
        assert np.abs(sa[-1] - sb[-1]).max() < 1e-3

    def test_learns_narma2(self):
        task = narma_task(300, order=2, seed=0)
        esn = EchoStateNetwork(50, seed=2)
        states = esn.run(task.inputs)
        f_tr, y_tr, f_te, y_te = train_test_split(states, task.targets, washout=20)
        score = RidgeReadout(1e-7).fit(f_tr, y_tr).score_nmse(f_te, y_te)
        assert score < 0.1

    def test_validation(self):
        with pytest.raises(SimulationError):
            EchoStateNetwork(0)
        with pytest.raises(SimulationError):
            EchoStateNetwork(5, leak=0.0)


class TestShotNoise:
    def test_sampled_features_are_frequencies(self):
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(8), size=20)
        sampled = sample_population_features(probs, 100, rng)
        np.testing.assert_allclose(sampled.sum(axis=1), np.ones(20), atol=1e-12)
        counts = sampled * 100
        np.testing.assert_allclose(counts, np.round(counts), atol=1e-9)

    def test_more_shots_closer_to_exact(self):
        rng = np.random.default_rng(1)
        probs = rng.dirichlet(np.ones(8), size=50)
        few = sample_population_features(probs, 10, np.random.default_rng(2))
        many = sample_population_features(probs, 10000, np.random.default_rng(2))
        assert np.abs(many - probs).mean() < np.abs(few - probs).mean()

    def test_sweep_monotone_shape(self, tiny_reservoir):
        """NMSE improves (statistically) with the shot budget — claim C6."""
        task = narma_task(220, order=2, seed=0)
        feats = tiny_reservoir.run(task.inputs)
        sweep = shot_noise_sweep(
            feats, task.targets, [20, 20000], washout=20, seed=0
        )
        few, many, exact = sweep[0], sweep[1], sweep[2]
        assert exact.shots == 0
        assert few.nmse > many.nmse
        assert many.nmse > exact.nmse * 0.5  # sampled never hugely better

    def test_invalid_shots(self):
        with pytest.raises(SimulationError):
            sample_population_features(np.ones((2, 2)) / 2, 0)


class TestBackendEvolution:
    """The reservoir clock loop through the unified backend registry."""

    def _osc(self):
        return CoupledOscillators(
            levels=4, omega_2=2.5, coupling=1.2, kappa_1=0.2, kappa_2=0.2
        )

    def test_density_backend_matches_splitstep(self):
        inputs = np.sin(np.linspace(0, 4, 8))
        reference = QuantumReservoir(self._osc()).run(inputs)
        via_backend = QuantumReservoir(self._osc(), method="density").run(inputs)
        np.testing.assert_allclose(via_backend, reference, atol=1e-10)

    def test_density_backend_matches_splitstep_moments(self):
        inputs = np.sin(np.linspace(0, 4, 6))
        reference = QuantumReservoir(self._osc(), feature_set="moments").run(inputs)
        via_backend = QuantumReservoir(
            self._osc(), feature_set="moments", method="density"
        ).run(inputs)
        np.testing.assert_allclose(via_backend, reference, atol=1e-10)

    def test_lpdo_backend_tracks_splitstep(self):
        """Exact-channel LPDO feature trajectories follow the dense
        split-step reference closely at modest caps — deterministically,
        with no trajectory sampling noise."""
        inputs = np.sin(np.linspace(0, 4, 6))
        reference = QuantumReservoir(self._osc()).run(inputs)
        options = {"max_bond": 64, "max_kraus": 64}
        via_lpdo = QuantumReservoir(
            self._osc(), method="lpdo", backend_options=options
        ).run(inputs)
        np.testing.assert_allclose(via_lpdo, reference, atol=1e-3)
        again = QuantumReservoir(
            self._osc(), method="lpdo", backend_options=options
        ).run(inputs)
        np.testing.assert_allclose(via_lpdo, again, atol=0.0)

    def test_mps_backend_runs_and_is_seeded(self):
        inputs = np.linspace(0, 0.5, 5)
        options = {"n_trajectories": 8, "rng": 0, "max_bond": 8}
        first = QuantumReservoir(
            self._osc(), method="mps", backend_options=options
        ).run(inputs)
        second = QuantumReservoir(
            self._osc(), method="mps", backend_options=options
        ).run(inputs)
        assert first.shape == (5, 16)
        np.testing.assert_allclose(first, second, atol=0.0)

    def test_backend_method_rejects_initial_state(self):
        reservoir = QuantumReservoir(self._osc(), method="density")
        with pytest.raises(SimulationError):
            reservoir.run(np.ones(3), initial=reservoir.osc.vacuum())

    def test_step_circuit_cached(self):
        reservoir = QuantumReservoir(self._osc(), method="density")
        circuit = reservoir._step_circuit(1.0)
        assert reservoir._step_circuit(1.0) is circuit
        assert circuit.count_ops().get("loss", 0) == 2
