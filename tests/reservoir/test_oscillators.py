"""Tests for the coupled-oscillator reservoir physics."""

import numpy as np
import pytest

from repro.core.exceptions import DimensionError, SimulationError
from repro.core.gates import is_hermitian
from repro.core.lindblad import LindbladPropagator
from repro.reservoir import CoupledOscillators, SplitStepEvolver


@pytest.fixture()
def small_osc():
    return CoupledOscillators(levels=4, omega_2=1.5, coupling=0.8, kappa_1=0.2, kappa_2=0.2)


class TestCoupledOscillators:
    def test_dims(self, small_osc):
        assert small_osc.dim == 16
        assert small_osc.dims == (4, 4)

    def test_hamiltonian_hermitian(self, small_osc):
        assert is_hermitian(small_osc.hamiltonian())

    def test_mode_operators_commute(self, small_osc):
        a1, a2 = small_osc.a1(), small_osc.a2()
        np.testing.assert_allclose(a1 @ a2, a2 @ a1, atol=1e-12)

    def test_coupling_exchanges_photons(self, small_osc):
        """[H, n1 - n2] != 0 but [H, n1 + n2] = 0 (beam-splitter coupling)."""
        ham = small_osc.hamiltonian()
        n_tot = small_osc.n1() + small_osc.n2()
        np.testing.assert_allclose(ham @ n_tot, n_tot @ ham, atol=1e-10)
        n_diff = small_osc.n1() - small_osc.n2()
        assert np.abs(ham @ n_diff - n_diff @ ham).max() > 1e-6

    def test_collapse_ops_count(self, small_osc):
        assert len(small_osc.collapse_ops()) == 2
        lossless = CoupledOscillators(levels=3, kappa_1=0.0, kappa_2=0.0)
        assert lossless.collapse_ops() == []

    def test_vacuum(self, small_osc):
        vac = small_osc.vacuum()
        assert abs(vac[0, 0] - 1.0) < 1e-12
        assert abs(np.trace(vac) - 1.0) < 1e-12

    def test_validation(self):
        with pytest.raises(DimensionError):
            CoupledOscillators(levels=1)
        with pytest.raises(DimensionError):
            CoupledOscillators(kappa_1=-0.1)


class TestSplitStepEvolver:
    def test_trace_preserved(self, small_osc):
        evolver = SplitStepEvolver(small_osc, dt=0.5)
        rho = small_osc.vacuum()
        for u in (0.0, 0.5, 1.0):
            rho = evolver.step(rho, u)
            assert abs(np.trace(rho) - 1.0) < 1e-10
            assert np.linalg.eigvalsh(rho).min() > -1e-10

    def test_drive_populates_modes(self, small_osc):
        evolver = SplitStepEvolver(small_osc, dt=0.5)
        rho = evolver.step(small_osc.vacuum(), 1.5)
        n1 = float(np.real(np.trace(rho @ small_osc.n1())))
        assert n1 > 0.01

    def test_undriven_vacuum_is_fixed_point(self, small_osc):
        evolver = SplitStepEvolver(small_osc, dt=0.5)
        rho = evolver.step(small_osc.vacuum(), 0.0)
        assert abs(rho[0, 0] - 1.0) < 1e-10

    def test_matches_exact_lindblad(self):
        """Split-step converges to the exact master equation as dt -> 0."""
        osc = CoupledOscillators(
            levels=3, omega_2=1.0, coupling=0.5, kappa_1=0.3, kappa_2=0.3
        )
        drive = 0.8
        total_time = 1.0
        ham = osc.hamiltonian() + drive * osc.drive_operator()
        exact_prop = LindbladPropagator(ham, osc.collapse_ops(), dt=total_time)
        exact = exact_prop.step(osc.vacuum())

        def split(n_steps):
            evolver = SplitStepEvolver(osc, dt=total_time / n_steps)
            rho = osc.vacuum()
            for _ in range(n_steps):
                rho = evolver.step(rho, drive)
            return rho

        err_coarse = np.abs(split(4) - exact).max()
        err_fine = np.abs(split(32) - exact).max()
        assert err_fine < err_coarse / 4
        assert err_fine < 0.01

    def test_unitary_cache(self, small_osc):
        evolver = SplitStepEvolver(small_osc, dt=0.5, cache_size=2)
        rho = small_osc.vacuum()
        evolver.step(rho, 0.1)
        evolver.step(rho, 0.1)
        assert len(evolver._cache) == 1
        evolver.step(rho, 0.2)
        evolver.step(rho, 0.3)
        assert len(evolver._cache) == 2

    def test_invalid_dt(self, small_osc):
        with pytest.raises(SimulationError):
            SplitStepEvolver(small_osc, dt=0.0)
