"""Tests for reservoir-processing state tomography."""

import numpy as np
import pytest

from repro.core.exceptions import SimulationError
from repro.core.random_ops import random_density_matrix
from repro.reservoir import (
    ReservoirTomograph,
    displaced_parity_features,
    project_to_physical,
    state_fidelity,
)


class TestFeatures:
    def test_vacuum_parity_is_one_at_origin(self):
        d = 6
        vac = np.zeros((d, d), dtype=complex)
        vac[0, 0] = 1.0
        feats = displaced_parity_features(vac, np.array([0.0 + 0j]))
        assert abs(feats[0] - 1.0) < 1e-10

    def test_fock1_parity_is_minus_one(self):
        d = 6
        rho = np.zeros((d, d), dtype=complex)
        rho[1, 1] = 1.0
        feats = displaced_parity_features(rho, np.array([0.0 + 0j]))
        assert abs(feats[0] + 1.0) < 1e-10

    def test_features_bounded(self):
        rho = random_density_matrix(5, rng=np.random.default_rng(0))
        alphas = np.array([0.3, 0.5j, -0.2 + 0.4j])
        feats = displaced_parity_features(rho, alphas)
        assert (np.abs(feats) <= 1.0 + 1e-12).all()

    def test_shot_sampling_unbiased(self):
        rho = random_density_matrix(4, rng=np.random.default_rng(1))
        alphas = np.array([0.4 + 0j])
        exact = displaced_parity_features(rho, alphas)[0]
        rng = np.random.default_rng(2)
        draws = [
            displaced_parity_features(rho, alphas, shots=200, rng=rng)[0]
            for _ in range(300)
        ]
        assert abs(np.mean(draws) - exact) < 0.02

    def test_invalid_shots(self):
        rho = random_density_matrix(3, rng=np.random.default_rng(3))
        with pytest.raises(SimulationError):
            displaced_parity_features(rho, np.array([0.1 + 0j]), shots=0)


class TestPhysicalProjection:
    def test_valid_state_unchanged(self):
        rho = random_density_matrix(4, rng=np.random.default_rng(4))
        np.testing.assert_allclose(project_to_physical(rho), rho, atol=1e-10)

    def test_negative_eigenvalues_clipped(self):
        bad = np.diag([0.9, 0.4, -0.3]).astype(complex)
        fixed = project_to_physical(bad)
        eigs = np.linalg.eigvalsh(fixed)
        assert eigs.min() >= -1e-12
        assert abs(np.trace(fixed) - 1.0) < 1e-12

    def test_degenerate_input_falls_back(self):
        fixed = project_to_physical(np.zeros((3, 3)))
        np.testing.assert_allclose(fixed, np.eye(3) / 3, atol=1e-12)

    def test_hermitises(self):
        rng = np.random.default_rng(5)
        raw = rng.normal(size=(3, 3)) + 1j * rng.normal(size=(3, 3))
        fixed = project_to_physical(raw)
        np.testing.assert_allclose(fixed, fixed.conj().T, atol=1e-12)


class TestStateFidelity:
    def test_identical_states(self):
        rho = random_density_matrix(4, rng=np.random.default_rng(6))
        assert abs(state_fidelity(rho, rho) - 1.0) < 1e-8

    def test_orthogonal_pure_states(self):
        a = np.diag([1.0, 0.0]).astype(complex)
        b = np.diag([0.0, 1.0]).astype(complex)
        assert state_fidelity(a, b) < 1e-10

    def test_pure_state_overlap(self):
        psi = np.array([1.0, 1.0]) / np.sqrt(2)
        rho = np.outer(psi, psi.conj())
        sigma = np.diag([1.0, 0.0]).astype(complex)
        assert abs(state_fidelity(rho, sigma) - 0.5) < 1e-10


class TestTomograph:
    def test_training_and_reconstruction(self):
        tomograph = ReservoirTomograph(dim=3, seed=0).train(n_training_states=80)
        fidelity = tomograph.evaluate(n_test_states=10)
        assert fidelity > 0.95

    def test_more_training_data_helps(self):
        small = ReservoirTomograph(dim=3, seed=1).train(n_training_states=12)
        large = ReservoirTomograph(dim=3, seed=1).train(n_training_states=120)
        assert large.evaluate(12) >= small.evaluate(12) - 0.02

    def test_reconstruction_is_physical(self):
        tomograph = ReservoirTomograph(dim=3, seed=2).train(n_training_states=50)
        rho = random_density_matrix(3, rng=np.random.default_rng(7))
        estimate = tomograph.reconstruct(rho)
        assert abs(np.trace(estimate) - 1.0) < 1e-10
        assert np.linalg.eigvalsh(estimate).min() >= -1e-12

    def test_shot_noise_degrades(self):
        tomograph = ReservoirTomograph(dim=3, seed=3).train(n_training_states=60)
        exact = tomograph.evaluate(8)
        noisy = tomograph.evaluate(8, shots=20)
        assert noisy <= exact + 0.02

    def test_untrained_rejects(self):
        tomograph = ReservoirTomograph(dim=3, seed=4)
        with pytest.raises(SimulationError):
            tomograph.reconstruct(np.eye(3) / 3)

    def test_probe_completeness_guard(self):
        with pytest.raises(SimulationError):
            ReservoirTomograph(dim=4, n_probes=3, seed=5)

    def test_roundtrip_parameterisation(self):
        tomograph = ReservoirTomograph(dim=4, seed=6)
        rho = random_density_matrix(4, rng=np.random.default_rng(8))
        params = tomograph._rho_to_real(rho)
        np.testing.assert_allclose(tomograph._real_to_rho(params), rho, atol=1e-12)
