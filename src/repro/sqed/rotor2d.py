"""2+1D pure-gauge U(1) rotor Hamiltonian on a ladder lattice.

The paper's "Identified Opportunity" for simulation (§II.A): generalise
the 1D rotor chain to a 2D lattice by "embedding this problem onto a 1D
ladder of resonators each supporting two or possibly more bosonic modes",
using the dual-variable rotor Hamiltonian of Unmuth-Yockey (ref [12]).

In the dual formulation the plaquette variables of 2+1D U(1) gauge theory
become integer-valued rotors on the dual sites, with the same
diagonal-plus-ladder structure as the 1D chain::

    H = (g2/2) sum_p Lz_p^2  -  (1/(2 g2 a^2)) sum_<pq> (U_p U_q† + h.c.)
        -  (1/(2 g2 a^2)) sum_boundary (U_p + U_p†)

on the dual lattice of an ``Lx x Ly`` ladder.  Table I row 1 targets
``Ns = 9 x 2`` with ``d = 4+``: nine rungs of two plaquettes each.

Scale note: 18 sites at d=4 is a 6.9e10-dimensional Hilbert space — the
paper itself only *estimates* this campaign, which is exactly what
:func:`campaign_resources` does via the transpiler; small instances
(2x2, 3x2) are exactly simulable for physics checks.
"""

from __future__ import annotations


import numpy as np

from ..core.exceptions import DimensionError
from .rotor import HamiltonianTerm, RotorSiteOperators

__all__ = ["RotorLadder2D", "ladder_mode_layout"]


class RotorLadder2D:
    """Dual-rotor Hamiltonian of 2+1D U(1) gauge theory on an Lx x Ly grid.

    Sites are dual-lattice plaquettes indexed ``(x, y)`` with
    ``0 <= x < lx``, ``0 <= y < ly``, flattened row-major.

    Args:
        lx: plaquettes along the ladder (9 for the Table I campaign).
        ly: plaquettes across (2 for the ladder).
        spin: rotor truncation; site dimension is ``2*spin + 1``.
        g2: gauge coupling.
        kappa: hopping strength ``1 / (2 g2 a^2)`` (kept independent so the
            continuum-limit sweep can vary it directly).
        boundary_field: include the single-site ``U + U†`` boundary terms.
    """

    def __init__(
        self,
        lx: int,
        ly: int,
        spin: int = 1,
        g2: float = 1.0,
        kappa: float = 0.4,
        boundary_field: bool = True,
    ) -> None:
        if lx < 1 or ly < 1 or lx * ly < 2:
            raise DimensionError("lattice needs at least 2 plaquettes")
        self.lx = int(lx)
        self.ly = int(ly)
        self.ops = RotorSiteOperators(spin)
        self.g2 = float(g2)
        self.kappa = float(kappa)
        self.boundary_field = bool(boundary_field)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def n_sites(self) -> int:
        """Number of dual sites (plaquettes)."""
        return self.lx * self.ly

    @property
    def site_dim(self) -> int:
        """Per-site qudit dimension."""
        return self.ops.dim

    @property
    def dims(self) -> tuple[int, ...]:
        """Register dimensions."""
        return (self.site_dim,) * self.n_sites

    def site_index(self, x: int, y: int) -> int:
        """Row-major flat index of plaquette (x, y)."""
        if not (0 <= x < self.lx and 0 <= y < self.ly):
            raise DimensionError(f"site ({x}, {y}) outside {self.lx}x{self.ly}")
        return x * self.ly + y

    def bonds(self) -> list[tuple[int, int]]:
        """Nearest-neighbour dual-site pairs (open boundaries)."""
        out = []
        for x in range(self.lx):
            for y in range(self.ly):
                if x + 1 < self.lx:
                    out.append((self.site_index(x, y), self.site_index(x + 1, y)))
                if y + 1 < self.ly:
                    out.append((self.site_index(x, y), self.site_index(x, y + 1)))
        return out

    def boundary_sites(self) -> list[int]:
        """Dual sites adjacent to the lattice boundary (all edge plaquettes)."""
        out = []
        for x in range(self.lx):
            for y in range(self.ly):
                if x in (0, self.lx - 1) or y in (0, self.ly - 1):
                    out.append(self.site_index(x, y))
        return out

    # ------------------------------------------------------------------
    # Hamiltonian
    # ------------------------------------------------------------------
    def terms(self) -> list[HamiltonianTerm]:
        """Local terms: electric, plaquette hopping, boundary field."""
        lz = self.ops.lz()
        raising = self.ops.raising()
        out: list[HamiltonianTerm] = []
        for site in range(self.n_sites):
            out.append(
                HamiltonianTerm((site,), 0.5 * self.g2 * (lz @ lz), "electric")
            )
        hop = -self.kappa * (
            np.kron(raising, raising.conj().T)
            + np.kron(raising.conj().T, raising)
        )
        for i, j in self.bonds():
            out.append(HamiltonianTerm((i, j), hop, "hop"))
        if self.boundary_field:
            boundary = -self.kappa * (raising + raising.conj().T)
            for site in self.boundary_sites():
                out.append(HamiltonianTerm((site,), boundary, "boundary"))
        return out

    def to_matrix(self) -> np.ndarray:
        """Dense Hamiltonian (small lattices only)."""
        from ..core.statevector import embed_unitary

        dim = self.site_dim**self.n_sites
        if dim > 8192:
            raise DimensionError(f"total dimension {dim} too large for dense H")
        ham = np.zeros((dim, dim), dtype=complex)
        for term in self.terms():
            ham += embed_unitary(term.operator, self.dims, term.sites)
        return ham

    def mass_gap(self) -> float:
        """Spectral gap by exact diagonalisation (small lattices)."""
        eigs = np.linalg.eigvalsh(self.to_matrix())
        return float(eigs[1] - eigs[0])

    def __repr__(self) -> str:
        return (
            f"RotorLadder2D({self.lx}x{self.ly}, d={self.site_dim}, "
            f"g2={self.g2}, kappa={self.kappa})"
        )


def ladder_mode_layout(lattice: RotorLadder2D, modes_per_cavity: int = 2) -> list[int]:
    """Natural embedding of the ladder onto a linear multi-mode cavity chain.

    Rung ``x`` of the ladder (its ``ly`` plaquettes) maps to cavity ``x``'s
    co-located modes, so *vertical* bonds are co-located CSUMs and
    *horizontal* bonds are adjacent-cavity CSUMs — the two cases Table I
    distinguishes.

    Args:
        lattice: the 2D rotor problem.
        modes_per_cavity: modes available in each cavity (must be >= ly).

    Returns:
        ``layout[site] = physical mode index`` for a device built with the
        same ``modes_per_cavity``.

    Raises:
        DimensionError: if the cavity cannot host a full rung.
    """
    if modes_per_cavity < lattice.ly:
        raise DimensionError(
            f"need >= {lattice.ly} modes per cavity, got {modes_per_cavity}"
        )
    layout = []
    for x in range(lattice.lx):
        for y in range(lattice.ly):
            layout.append(x * modes_per_cavity + y)
    return layout
