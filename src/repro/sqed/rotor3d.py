"""Beyond 2D: small 3D rotor lattices via swap networks (paper §II.A).

"Going beyond 2D could also be possible for a small number of sites in
the near term by expanding the number of addressable modes per cavity and
use a swap network to allow 3D interactions."

This module builds the dual-rotor Hamiltonian on a small ``Lx x Ly x Lz``
lattice and estimates the swap-network overhead of embedding it on the
linear cavity chain: each cavity hosts one ``(y, z)`` column of modes, so
in-column bonds are co-located, along-chain bonds are adjacent, and the
remaining couplings ride the odd-even transposition network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..compile.routing import swap_network_layers
from ..core.exceptions import DimensionError
from .rotor import HamiltonianTerm, RotorSiteOperators

__all__ = ["RotorLattice3D", "SwapNetworkEstimate", "swap_network_overhead"]


class RotorLattice3D:
    """Dual-rotor model on a small 3D grid (open boundaries).

    Args:
        lx: extent along the cavity chain.
        ly: first transverse extent.
        lz: second transverse extent.
        spin: rotor truncation (site dimension ``2*spin + 1``).
        g2: gauge coupling.
        kappa: hopping strength.
    """

    def __init__(
        self,
        lx: int,
        ly: int,
        lz: int,
        spin: int = 1,
        g2: float = 1.0,
        kappa: float = 0.4,
    ) -> None:
        if min(lx, ly, lz) < 1 or lx * ly * lz < 2:
            raise DimensionError("lattice needs at least 2 sites")
        self.lx, self.ly, self.lz = int(lx), int(ly), int(lz)
        self.ops = RotorSiteOperators(spin)
        self.g2 = float(g2)
        self.kappa = float(kappa)

    @property
    def n_sites(self) -> int:
        """Total site count."""
        return self.lx * self.ly * self.lz

    @property
    def site_dim(self) -> int:
        """Per-site qudit dimension."""
        return self.ops.dim

    @property
    def dims(self) -> tuple[int, ...]:
        """Register dimensions."""
        return (self.site_dim,) * self.n_sites

    def site_index(self, x: int, y: int, z: int) -> int:
        """Row-major flat index."""
        if not (0 <= x < self.lx and 0 <= y < self.ly and 0 <= z < self.lz):
            raise DimensionError(f"site ({x},{y},{z}) outside the lattice")
        return (x * self.ly + y) * self.lz + z

    def bonds(self) -> list[tuple[int, int]]:
        """Nearest-neighbour pairs along all three axes."""
        out = []
        for x in range(self.lx):
            for y in range(self.ly):
                for z in range(self.lz):
                    here = self.site_index(x, y, z)
                    if x + 1 < self.lx:
                        out.append((here, self.site_index(x + 1, y, z)))
                    if y + 1 < self.ly:
                        out.append((here, self.site_index(x, y + 1, z)))
                    if z + 1 < self.lz:
                        out.append((here, self.site_index(x, y, z + 1)))
        return out

    def terms(self) -> list[HamiltonianTerm]:
        """Electric + hopping terms (open boundaries, no boundary field)."""
        lz_op = self.ops.lz()
        raising = self.ops.raising()
        out = [
            HamiltonianTerm((s,), 0.5 * self.g2 * (lz_op @ lz_op), "electric")
            for s in range(self.n_sites)
        ]
        hop = -self.kappa * (
            np.kron(raising, raising.conj().T)
            + np.kron(raising.conj().T, raising)
        )
        for i, j in self.bonds():
            out.append(HamiltonianTerm((i, j), hop, "hop"))
        return out

    def to_matrix(self) -> np.ndarray:
        """Dense Hamiltonian (2x2x2 at d=3 = 6561 is the practical cap)."""
        from ..core.statevector import embed_unitary

        dim = self.site_dim**self.n_sites
        if dim > 8192:
            raise DimensionError(f"total dimension {dim} too large for dense H")
        ham = np.zeros((dim, dim), dtype=complex)
        for term in self.terms():
            ham += embed_unitary(term.operator, self.dims, term.sites)
        return ham

    def mass_gap(self) -> float:
        """Spectral gap by exact diagonalisation (small lattices)."""
        eigs = np.linalg.eigvalsh(self.to_matrix())
        return float(eigs[1] - eigs[0])


@dataclass(frozen=True)
class SwapNetworkEstimate:
    """Swap-network embedding overhead of a 3D lattice on a linear chain.

    Attributes:
        n_columns: cavities used (one (y, z) column per cavity).
        modes_per_cavity_needed: ly * lz.
        direct_bonds: bonds executable without any swapping.
        networked_bonds: bonds served by the swap network.
        swap_layers: odd-even layers needed (= number of columns).
        total_swaps: SWAP gates across the full network.
    """

    n_columns: int
    modes_per_cavity_needed: int
    direct_bonds: int
    networked_bonds: int
    swap_layers: int
    total_swaps: int


def swap_network_overhead(lattice: RotorLattice3D) -> SwapNetworkEstimate:
    """Cost of bringing every 3D bond adjacent on the linear cavity chain.

    Column embedding: cavity ``x`` hosts all ``ly * lz`` sites with that
    ``x``.  In-column bonds (y- and z-axis) are co-located; x-axis bonds
    between consecutive columns are adjacent; there are no longer-range
    bonds on an open lattice, but a *full* odd-even network over columns is
    still reported since interleaved Trotter layers use it to parallelise
    the x-axis sweeps (and it is what enables periodic wrap-around).
    """
    column_size = lattice.ly * lattice.lz
    direct = 0
    networked = 0
    for i, j in lattice.bonds():
        col_i = i // column_size
        col_j = j // column_size
        if abs(col_i - col_j) <= 1:
            direct += 1
        else:  # pragma: no cover - open lattices have none; periodic would
            networked += 1
    layers = swap_network_layers(max(2, lattice.lx))
    total_swaps = sum(len(layer) for layer in layers)
    return SwapNetworkEstimate(
        n_columns=lattice.lx,
        modes_per_cavity_needed=column_size,
        direct_bonds=direct,
        networked_bonds=networked,
        swap_layers=len(layers),
        total_swaps=total_swaps,
    )
