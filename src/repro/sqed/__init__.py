"""sQED / U(1) lattice-gauge simulation application (paper §II.A)."""

from .encodings import QubitEncoding, QuditEncoding, insert_depolarizing_noise
from .noise_study import (
    EncodingComparison,
    compare_encodings,
    noise_threshold,
    trajectory_damage,
)
from .observables import (
    MassGapResult,
    estimate_mass_gap,
    exact_gap_trajectory,
    gap_probe_state,
    trotter_gap_trajectory,
)
from .pauli import PauliTerm, matrix_to_pauli_terms, pauli_terms_to_matrix
from .rotor import HamiltonianTerm, RotorChain, RotorSiteOperators
from .rotor2d import RotorLadder2D, ladder_mode_layout
from .rotor3d import RotorLattice3D, SwapNetworkEstimate, swap_network_overhead
from .trotter import (
    evolve_observable_trajectory,
    evolve_observable_trajectory_backend,
    exact_observable_trajectory,
    second_order_step_from_terms,
    trotter_circuit,
    trotter_step_from_terms,
)

__all__ = [
    "QubitEncoding",
    "QuditEncoding",
    "insert_depolarizing_noise",
    "EncodingComparison",
    "compare_encodings",
    "noise_threshold",
    "trajectory_damage",
    "MassGapResult",
    "estimate_mass_gap",
    "exact_gap_trajectory",
    "gap_probe_state",
    "trotter_gap_trajectory",
    "PauliTerm",
    "matrix_to_pauli_terms",
    "pauli_terms_to_matrix",
    "HamiltonianTerm",
    "RotorChain",
    "RotorSiteOperators",
    "RotorLadder2D",
    "ladder_mode_layout",
    "RotorLattice3D",
    "SwapNetworkEstimate",
    "swap_network_overhead",
    "evolve_observable_trajectory",
    "evolve_observable_trajectory_backend",
    "exact_observable_trajectory",
    "second_order_step_from_terms",
    "trotter_circuit",
    "trotter_step_from_terms",
]
