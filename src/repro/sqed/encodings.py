"""Native-qudit vs binary-qubit encodings of the rotor Hamiltonian.

The heart of claim C1 (paper §II.A via ref [11]): the same physics can be
compiled either

* **natively** — one ``d``-level qudit per rotor site, one entangling
  block per bond term (2 CSUM-equivalents for the hopping, 1 dispersive
  phase for ZZ), or
* **binary** — ``ceil(log2 d)`` qubits per site, every term Pauli-expanded
  and Trotterised with CNOT ladders.

The qubit route needs an order of magnitude more entangling gates per
Trotter step, so at fixed circuit quality it tolerates proportionally less
error per gate.  Both encodings expose the same interface: a Trotter-step
circuit, per-instruction entangling-equivalent weights (for uniform noise
injection), and the embedded total-``Lz`` observable.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.linalg import expm

from ..core.circuit import QuditCircuit
from ..core.exceptions import DimensionError
from ..core.statevector import embed_unitary
from .pauli import PauliTerm, matrix_to_pauli_terms, pauli_rotation_circuit
from .rotor import RotorChain

__all__ = ["QuditEncoding", "QubitEncoding", "insert_depolarizing_noise"]


class QuditEncoding:
    """One native qudit per rotor site.

    Single-site terms compile to one SNAP-class pulse; the hopping term
    ``U_i U_j† + h.c.`` exponentiates to a two-qudit unitary charged at two
    CSUM-equivalents (CSUM-conjugation synthesis); the ZZ term is diagonal
    and costs one dispersive phase.
    """

    #: entangling-equivalents by instruction label.
    ENTANGLING_WEIGHTS = {"hop": 2, "zz": 1}

    def __init__(self, chain: RotorChain) -> None:
        self.chain = chain

    @property
    def dims(self) -> tuple[int, ...]:
        """Register dimensions: one wire of dimension d per site."""
        return self.chain.dims

    def trotter_step(self, dt: float) -> QuditCircuit:
        """First-order Trotter step circuit."""
        qc = QuditCircuit(self.dims, name="rotor-qudit-step")
        for term in self.chain.terms():
            gate = expm(-1j * dt * term.operator)
            qc.unitary(gate, term.sites, name=term.label, dt=dt)
        return qc

    def entangling_equivalents(self, instruction_name: str) -> int:
        """CSUM-equivalents charged to one instruction."""
        return self.ENTANGLING_WEIGHTS.get(instruction_name, 0)

    def entangling_per_step(self) -> int:
        """Total CSUM-equivalents in one Trotter step."""
        return sum(
            self.entangling_equivalents(term.label) for term in self.chain.terms()
        )

    def total_lz_operator(self) -> np.ndarray:
        """Dense ``sum_i Lz_i`` over the full register."""
        total = self.local_lz_operator(0)
        for site in range(1, self.chain.n_sites):
            total = total + self.local_lz_operator(site)
        return total

    def local_lz_operator(self, site: int) -> np.ndarray:
        """Dense ``Lz`` on one site, embedded in the full register."""
        if not 0 <= site < self.chain.n_sites:
            raise DimensionError(f"site {site} out of range")
        return embed_unitary(self.chain.ops.lz(), self.dims, (site,))

    def local_lz(self, site: int) -> tuple[np.ndarray, tuple[int, ...]]:
        """``Lz`` on one site as an *unembedded* ``(operator, wires)`` pair.

        The local form is what scalable backends (MPS) consume — the
        embedded full-register matrix of :meth:`local_lz_operator` cannot
        even be allocated past ~9 qutrits.
        """
        if not 0 <= site < self.chain.n_sites:
            raise DimensionError(f"site {site} out of range")
        return self.chain.ops.lz(), (site,)

    def local_link_operator(self, site: int) -> np.ndarray:
        """Dense ``U + U†`` on one site — the gauge-field 'cosine' probe.

        Unlike the diagonal electric operators this connects different
        total-``Lz`` charge sectors, so it has a non-zero matrix element
        between the ground state and the charged first-excited states and
        oscillates at the mass gap.
        """
        if not 0 <= site < self.chain.n_sites:
            raise DimensionError(f"site {site} out of range")
        raising = self.chain.ops.raising()
        return embed_unitary(raising + raising.conj().T, self.dims, (site,))

    def initial_state_digits(self) -> tuple[int, ...]:
        """Digits of the ``m = 0`` everywhere product state (``|s>`` per wire)."""
        return self.product_state_digits([0] * self.chain.n_sites)

    def product_state_digits(self, m_values: list[int]) -> tuple[int, ...]:
        """Digits of the product state with given ``m`` per site."""
        spin = self.chain.ops.spin
        digits = []
        for m in m_values:
            if not -spin <= m <= spin:
                raise DimensionError(f"m={m} outside truncation +-{spin}")
            digits.append(m + spin)
        return tuple(digits)


class QubitEncoding:
    """Binary embedding: each site's d levels in ``ceil(log2 d)`` qubits.

    Site level ``m + s`` (shifted to 0-based) maps to the computational
    basis state of its qubit group; unused bitstrings are annihilated by
    every embedded operator (they are never populated by exact dynamics).
    """

    def __init__(self, chain: RotorChain) -> None:
        self.chain = chain
        self.qubits_per_site = max(1, math.ceil(math.log2(chain.site_dim)))
        self.n_qubits = self.qubits_per_site * chain.n_sites
        self._step_cache: dict[float, tuple[QuditCircuit, int]] = {}

    @property
    def dims(self) -> tuple[int, ...]:
        """Register dimensions: all-qubit wires."""
        return (2,) * self.n_qubits

    # ------------------------------------------------------------------
    # embedding
    # ------------------------------------------------------------------
    def _embed_site_operator(self, operator: np.ndarray, n_sites: int) -> np.ndarray:
        """Zero-pad a (d^k x d^k) site operator into (2^(k*nq))^2."""
        d = self.chain.site_dim
        nq = self.qubits_per_site
        dim_site = 2**nq
        # Isometry from one site's d levels into its 2^nq qubit space.
        iso = np.zeros((dim_site, d), dtype=complex)
        iso[:d, :] = np.eye(d)
        full_iso = iso
        for _ in range(n_sites - 1):
            full_iso = np.kron(full_iso, iso)
        return full_iso @ operator @ full_iso.conj().T

    def pauli_terms_for(self, term_operator: np.ndarray, n_sites: int) -> list[PauliTerm]:
        """Pauli expansion of one embedded Hamiltonian term."""
        embedded = self._embed_site_operator(term_operator, n_sites)
        return matrix_to_pauli_terms(embedded, n_sites * self.qubits_per_site)

    def site_qubits(self, site: int) -> list[int]:
        """Wire indices of one site's qubit group."""
        if not 0 <= site < self.chain.n_sites:
            raise DimensionError(f"site {site} out of range")
        start = site * self.qubits_per_site
        return list(range(start, start + self.qubits_per_site))

    # ------------------------------------------------------------------
    # circuits
    # ------------------------------------------------------------------
    def trotter_step(self, dt: float) -> QuditCircuit:
        """First-order Trotter step over the qubit register."""
        return self._build_step(dt)[0]

    def cnots_per_step(self, dt: float = 0.1) -> int:
        """CNOT count of one Trotter step (independent of dt)."""
        return self._build_step(dt)[1]

    def _build_step(self, dt: float) -> tuple[QuditCircuit, int]:
        cached = self._step_cache.get(dt)
        if cached is not None:
            return cached
        qc = QuditCircuit(self.dims, name="rotor-qubit-step")
        n_cnots = 0
        for term in self.chain.terms():
            qubits: list[int] = []
            for site in term.sites:
                qubits.extend(self.site_qubits(site))
            for pauli in self.pauli_terms_for(term.operator, term.n_sites):
                n_cnots += pauli_rotation_circuit(qc, pauli, dt, qubits)
        self._step_cache[dt] = (qc, n_cnots)
        return qc, n_cnots

    def entangling_equivalents(self, instruction_name: str) -> int:
        """Every CNOT counts as one entangling-equivalent."""
        return 1 if instruction_name == "cnot" else 0

    def total_lz_operator(self) -> np.ndarray:
        """Dense embedded ``sum_i Lz_i`` over the qubit register."""
        total = self.local_lz_operator(0)
        for site in range(1, self.chain.n_sites):
            total = total + self.local_lz_operator(site)
        return total

    def local_lz_operator(self, site: int) -> np.ndarray:
        """Dense embedded ``Lz`` on one site over the qubit register."""
        embedded = self._embed_site_operator(self.chain.ops.lz(), 1)
        return embed_unitary(embedded, self.dims, tuple(self.site_qubits(site)))

    def local_lz(self, site: int) -> tuple[np.ndarray, tuple[int, ...]]:
        """``Lz`` on one site as an ``(operator, wires)`` pair over its qubit group."""
        embedded = self._embed_site_operator(self.chain.ops.lz(), 1)
        return embedded, tuple(self.site_qubits(site))

    def local_link_operator(self, site: int) -> np.ndarray:
        """Dense embedded ``U + U†`` on one site over the qubit register."""
        raising = self.chain.ops.raising()
        embedded = self._embed_site_operator(raising + raising.conj().T, 1)
        return embed_unitary(embedded, self.dims, tuple(self.site_qubits(site)))

    def initial_state_digits(self) -> tuple[int, ...]:
        """Qubit digits encoding the ``m = 0`` everywhere product state."""
        return self.product_state_digits([0] * self.chain.n_sites)

    def product_state_digits(self, m_values: list[int]) -> tuple[int, ...]:
        """Qubit digits of the product state with given ``m`` per site."""
        spin = self.chain.ops.spin
        bits: list[int] = []
        for m in m_values:
            if not -spin <= m <= spin:
                raise DimensionError(f"m={m} outside truncation +-{spin}")
            level = m + spin
            bits.extend(
                int(b) for b in format(level, f"0{self.qubits_per_site}b")
            )
        return tuple(bits)


def insert_depolarizing_noise(
    circuit: QuditCircuit,
    encoding,
    epsilon: float,
    single_gate_fraction: float = 0.1,
) -> QuditCircuit:
    """Instrument a Trotter circuit with uniform depolarising noise.

    After every entangling-equivalent the touched wires receive a joint
    depolarising channel of strength ``epsilon`` (an instruction worth
    ``k`` equivalents gets ``p = 1 - (1 - epsilon)^k``); single-qudit
    instructions get ``single_gate_fraction * epsilon``.  This is the error
    model of the encoding-comparison study (ref [11] uses the same
    uniform-depolarising abstraction).

    Args:
        circuit: noiseless Trotter circuit.
        encoding: object with ``entangling_equivalents(name) -> int``.
        epsilon: per-entangling-gate depolarising probability.
        single_gate_fraction: relative strength on single-qudit gates.

    Returns:
        A new circuit with channel instructions inserted.
    """
    from ..core.channels import depolarizing

    if not 0.0 <= epsilon <= 1.0:
        raise DimensionError(f"epsilon={epsilon} outside [0, 1]")
    noisy = QuditCircuit(circuit.dims, name=circuit.name + "+depol")
    for instruction in circuit:
        noisy.append(instruction)
        if instruction.kind != "unitary":
            continue
        equivalents = encoding.entangling_equivalents(instruction.name)
        dim = 1
        for wire in instruction.qudits:
            dim *= circuit.dims[wire]
        if equivalents > 0:
            prob = 1.0 - (1.0 - epsilon) ** equivalents
            if prob > 0:
                noisy.channel(
                    depolarizing(dim, prob).kraus,
                    instruction.qudits,
                    name="depol",
                )
        elif epsilon > 0 and single_gate_fraction > 0:
            prob = single_gate_fraction * epsilon
            noisy.channel(
                depolarizing(dim, prob).kraus, instruction.qudits, name="depol"
            )
    return noisy
