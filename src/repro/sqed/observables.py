"""Mass-gap extraction from real-time rotor dynamics.

Ref [11]'s programme, reproduced here: prepare a state overlapping the
ground and first-excited sectors, evolve in real time, and read the gap
off the dominant oscillation frequency of a local observable.  The exact-
diagonalisation gap provides the ground truth the noisy estimates are
scored against.
"""

from __future__ import annotations

import numpy as np

from ..analysis.fitting import dominant_frequency
from ..core.density import DensityMatrix
from ..core.exceptions import SimulationError
from ..core.statevector import Statevector
from .encodings import QuditEncoding, insert_depolarizing_noise
from .rotor import RotorChain
from .trotter import evolve_observable_trajectory, exact_observable_trajectory

__all__ = [
    "gap_probe_state",
    "exact_gap_trajectory",
    "trotter_gap_trajectory",
    "estimate_mass_gap",
    "MassGapResult",
]


def gap_probe_state(chain: RotorChain) -> np.ndarray:
    """A probe state overlapping the two lowest eigenstates.

    Uses ``(|g> + |e>) / sqrt(2)`` built from exact eigenvectors — the
    idealised version of the adiabatic/variational preparation a hardware
    run would use.  Guarantees the gap frequency dominates the signal.
    """
    eigvals, eigvecs = np.linalg.eigh(chain.to_matrix())
    psi = (eigvecs[:, 0] + eigvecs[:, 1]) / np.sqrt(2.0)
    return psi


def exact_gap_trajectory(
    chain: RotorChain, observable: np.ndarray, times: np.ndarray
) -> np.ndarray:
    """Reference ``<O(t)>`` under exact evolution from the probe state."""
    return exact_observable_trajectory(
        chain.to_matrix(), observable, gap_probe_state(chain), times
    )


def trotter_gap_trajectory(
    chain: RotorChain,
    observable: np.ndarray,
    t_total: float,
    n_steps: int,
    epsilon: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """``<O(t)>`` under (optionally noisy) Trotter evolution.

    Args:
        chain: rotor model.
        observable: dense operator over the register.
        t_total: total time.
        n_steps: Trotter steps (also the sampling grid).
        epsilon: per-entangling-gate depolarising strength (0 = noiseless).

    Returns:
        ``(times, values)`` arrays of length ``n_steps + 1``.
    """
    encoding = QuditEncoding(chain)
    step = encoding.trotter_step(t_total / n_steps)
    if epsilon > 0:
        step = insert_depolarizing_noise(step, encoding, epsilon)
    psi0 = gap_probe_state(chain)
    initial = DensityMatrix.from_statevector(Statevector(psi0, chain.dims))
    values = evolve_observable_trajectory(step, n_steps, observable, initial)
    times = np.linspace(0.0, t_total, n_steps + 1)
    return times, values


class MassGapResult:
    """Outcome of a mass-gap measurement campaign."""

    def __init__(self, gap_exact, gap_estimated, relative_error, times, values):
        self.gap_exact = float(gap_exact)
        self.gap_estimated = float(gap_estimated)
        self.relative_error = float(relative_error)
        self.times = times
        self.values = values

    def __repr__(self) -> str:
        return (
            f"MassGapResult(exact={self.gap_exact:.4f}, "
            f"estimated={self.gap_estimated:.4f}, "
            f"rel_err={self.relative_error:.3%})"
        )


def estimate_mass_gap(
    chain: RotorChain,
    t_total: float | None = None,
    n_steps: int | None = None,
    epsilon: float = 0.0,
    observable: np.ndarray | None = None,
    max_dt: float = 0.2,
) -> MassGapResult:
    """Full pipeline: evolve, extract the dominant frequency, compare to ED.

    Args:
        chain: rotor model (small enough for dense linear algebra).
        t_total: evolution window; defaults to ~4 gap periods.
        n_steps: Trotter steps; defaults to ``ceil(t_total / max_dt)`` so
            the Trotter error stays well below the gap frequency.
        epsilon: depolarising noise strength per entangling gate.
        observable: probe observable; defaults to the link operator
            ``U + U†`` on site 0 (the diagonal electric operators cannot
            connect the charge sectors and give a flat signal).
        max_dt: Trotter step-size cap used when ``n_steps`` is derived.

    Returns:
        A :class:`MassGapResult`.

    Raises:
        SimulationError: if the chain gap vanishes (no frequency to find).
    """
    gap = chain.mass_gap()
    if gap < 1e-9:
        raise SimulationError("chain is gapless; nothing to extract")
    if t_total is None:
        t_total = 4.0 * 2.0 * np.pi / gap
    if n_steps is None:
        n_steps = max(32, int(np.ceil(t_total / max_dt)))
    encoding = QuditEncoding(chain)
    if observable is None:
        observable = encoding.local_link_operator(0)
    times, values = trotter_gap_trajectory(
        chain, observable, t_total, n_steps, epsilon
    )
    omega = dominant_frequency(times, values)
    rel_err = abs(omega - gap) / gap
    return MassGapResult(gap, omega, rel_err, times, values)
