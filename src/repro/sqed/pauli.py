"""Pauli-string machinery for the qubit-encoding baseline.

The encoding-comparison study (claim C1) needs an *honest* qubit
compilation of the rotor Hamiltonian: embed each d-level site into
``ceil(log2 d)`` qubits, expand every Hamiltonian term in the Pauli basis,
and Trotterise each string with the textbook basis-change + CNOT-ladder +
Rz construction.  The CNOT count that falls out of this pipeline — not a
hand-waved constant — is what drives the qubit encoding's noise
sensitivity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.circuit import QuditCircuit
from ..core.exceptions import DimensionError
from ..core.gates import csum

__all__ = [
    "PAULIS",
    "PauliTerm",
    "matrix_to_pauli_terms",
    "pauli_terms_to_matrix",
    "pauli_rotation_circuit",
    "trotter_step_circuit",
]

#: Single-qubit Pauli matrices, indexed by label.
PAULIS: dict[str, np.ndarray] = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}

_HADAMARD = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
#: Basis change sending Y -> Z:  (HS†) Y (HS†)† = Z.
_Y_BASIS = _HADAMARD @ np.diag([1.0, -1j])


@dataclass(frozen=True)
class PauliTerm:
    """A real coefficient times a Pauli string, e.g. ``0.5 * XZY``.

    Attributes:
        coefficient: real weight (Hermitian operators only).
        string: label like ``"XZI"``; length = number of qubits.
    """

    coefficient: float
    string: str

    def __post_init__(self) -> None:
        for ch in self.string:
            if ch not in PAULIS:
                raise DimensionError(f"invalid Pauli label {ch!r}")

    @property
    def n_qubits(self) -> int:
        """Number of qubits the string is written over."""
        return len(self.string)

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return sum(1 for ch in self.string if ch != "I")

    def matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix of the full term."""
        out = np.array([[self.coefficient]], dtype=complex)
        for ch in self.string:
            out = np.kron(out, PAULIS[ch])
        return out


def matrix_to_pauli_terms(
    matrix: np.ndarray, n_qubits: int, tol: float = 1e-12
) -> list[PauliTerm]:
    """Expand a Hermitian matrix in the n-qubit Pauli basis.

    Args:
        matrix: Hermitian ``2^n x 2^n`` matrix.
        n_qubits: number of qubits.
        tol: coefficients below this are dropped.

    Returns:
        Pauli terms with real coefficients, sorted by descending |coeff|.

    Raises:
        DimensionError: on shape mismatch or non-Hermitian input.
    """
    dim = 2**n_qubits
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (dim, dim):
        raise DimensionError(f"matrix shape {matrix.shape} != ({dim}, {dim})")
    if not np.allclose(matrix, matrix.conj().T, atol=1e-9):
        raise DimensionError("Pauli expansion requires a Hermitian matrix")
    labels = ["I", "X", "Y", "Z"]
    terms: list[PauliTerm] = []

    def recurse(prefix: str, partial: np.ndarray) -> None:
        if len(prefix) == n_qubits:
            coeff = partial[0, 0]
            if abs(coeff) > tol:
                terms.append(PauliTerm(float(coeff.real), prefix))
            return
        # Partial trace against each Pauli on the next qubit.
        size = partial.shape[0]
        half = size // 2
        blocks = {
            (0, 0): partial[:half, :half],
            (0, 1): partial[:half, half:],
            (1, 0): partial[half:, :half],
            (1, 1): partial[half:, half:],
        }
        for label in labels:
            p = PAULIS[label]
            reduced = sum(
                p.conj()[i, j] * blocks[(i, j)] for i in range(2) for j in range(2)
            ) / 2.0
            if np.abs(reduced).max() > tol:
                recurse(prefix + label, reduced)

    recurse("", matrix)
    return sorted(terms, key=lambda t: -abs(t.coefficient))


def pauli_terms_to_matrix(terms: list[PauliTerm]) -> np.ndarray:
    """Sum the dense matrices of a term list."""
    if not terms:
        raise DimensionError("empty term list")
    out = terms[0].matrix()
    for term in terms[1:]:
        out = out + term.matrix()
    return out


def pauli_rotation_circuit(
    circuit: QuditCircuit,
    term: PauliTerm,
    angle: float,
    qubits: list[int],
) -> int:
    """Append ``exp(-i angle P)`` to ``circuit`` via the CNOT-ladder construction.

    Basis-change each non-identity factor to Z, entangle down the ladder
    with CNOTs, apply Rz(2 * angle * coefficient) on the last active qubit,
    then uncompute.

    Args:
        circuit: target circuit (the listed wires must be qubits).
        term: Pauli string (its ``coefficient`` multiplies the angle).
        angle: Trotter angle.
        qubits: wire indices for each character of the string.

    Returns:
        Number of CNOTs appended (2 * (weight - 1), or 0 for weight-0).
    """
    if len(qubits) != term.n_qubits:
        raise DimensionError("qubit list length != Pauli string length")
    active = [
        (qubits[pos], ch) for pos, ch in enumerate(term.string) if ch != "I"
    ]
    theta = angle * term.coefficient
    if not active:
        return 0  # global phase
    # Basis changes into the Z basis: with B Y B† = Z the decomposition is
    # exp(-i t P) = B† exp(-i t Z...Z) B, so B is applied first.
    for wire, ch in active:
        if ch == "X":
            circuit.unitary(_HADAMARD, wire, name="h")
        elif ch == "Y":
            circuit.unitary(_Y_BASIS, wire, name="ybasis")
    wires = [wire for wire, _ in active]
    n_cnots = 0
    for a, b in zip(wires, wires[1:]):
        circuit.unitary(csum(2), (a, b), name="cnot")
        n_cnots += 1
    # Rz(2 theta) = diag(e^{-i theta}, e^{i theta}) up to global phase.
    circuit.unitary(
        np.diag([np.exp(-1j * theta), np.exp(1j * theta)]),
        wires[-1],
        name="rz",
        theta=theta,
    )
    for a, b in reversed(list(zip(wires, wires[1:]))):
        circuit.unitary(csum(2), (a, b), name="cnot")
        n_cnots += 1
    for wire, ch in reversed(active):
        if ch == "X":
            circuit.unitary(_HADAMARD, wire, name="h")
        elif ch == "Y":
            circuit.unitary(_Y_BASIS.conj().T, wire, name="ybasis_dg")
    return n_cnots


def trotter_step_circuit(
    terms: list[PauliTerm], dt: float, qubits: list[int], dims_total: int
) -> tuple[QuditCircuit, int]:
    """First-order Trotter step ``prod_P exp(-i dt c_P P)`` over qubit wires.

    Args:
        terms: Pauli expansion of the Hamiltonian block.
        dt: time step.
        qubits: wires the strings act on.
        dims_total: total number of qubit wires in the circuit.

    Returns:
        ``(circuit, n_cnots)``.
    """
    qc = QuditCircuit([2] * dims_total, name="pauli-trotter")
    n_cnots = 0
    for term in terms:
        n_cnots += pauli_rotation_circuit(qc, term, dt, qubits)
    return qc, n_cnots
