"""Encoding noise-threshold study — reproduction of claim C1.

Ref [11] found that native qutrit encodings of the rotor dynamics
"tolerated gate errors 10-100 times higher than qubit encodings".  The
mechanism is gate-count leverage: the qudit Trotter step spends a handful
of entangling equivalents per bond, while the binary-encoded step expands
each bond term into dozens of Pauli strings, each with its own CNOT
ladder.  At fixed per-gate error the qubit circuit therefore accumulates
proportionally more damage.

This module measures it directly: for each encoding, sweep the
per-entangling-gate depolarising strength, score the damage to a local
observable trajectory, find the threshold where damage crosses a fixed
tolerance, and report the qudit/qubit threshold ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.density import DensityMatrix
from ..core.exceptions import SimulationError
from ..core.statevector import Statevector
from .encodings import QubitEncoding, QuditEncoding, insert_depolarizing_noise
from .rotor import RotorChain
from .trotter import (
    evolve_observable_trajectory,
    evolve_observable_trajectory_backend,
    evolve_observable_trajectory_mc,
)

__all__ = [
    "trajectory_damage",
    "noise_threshold",
    "EncodingComparison",
    "compare_encodings",
    "damage_task",
    "damage_campaign",
    "noise_threshold_campaign",
]


def _initial_density(encoding, m_values: list[int]) -> DensityMatrix:
    digits = encoding.product_state_digits(m_values)
    return DensityMatrix.from_statevector(Statevector.basis(encoding.dims, digits))


def _excitation_profile(n_sites: int) -> list[int]:
    """One unit of electric flux on site 0 — a non-stationary probe state."""
    profile = [0] * n_sites
    profile[0] = 1
    return profile


def trajectory_damage(
    encoding,
    epsilon: float,
    t_total: float = 4.0,
    n_steps: int = 12,
    site: int = 0,
    method: str = "density",
    n_trajectories: int = 128,
    rng: np.random.Generator | int | None = 0,
    max_bond: int | None = 0,
    max_kraus: int | None = 0,
    target_error: float | None = None,
) -> float:
    """RMS deviation of the noisy <Lz_site(t)> trajectory from noiseless.

    Both trajectories use the *same* Trotter circuit, isolating the effect
    of noise from Trotter error (ref [11] scores the same way).

    Args:
        encoding: :class:`QuditEncoding` or :class:`QubitEncoding`.
        epsilon: per-entangling-gate depolarising probability.
        t_total: evolution window.
        n_steps: Trotter steps.
        site: probed lattice site.
        method: ``"density"`` for the exact density-matrix evolution (the
            seed behaviour), ``"trajectories"`` for the batched Monte-Carlo
            unravelling once ``D^2`` no longer fits, ``"mps"`` for the
            bond-truncated matrix-product-state engine (memory independent
            of ``D``, but channels are unravelled stochastically), or
            ``"lpdo"`` for the locally-purified density-MPO engine —
            *exact* channel application at MPS-like cost, so damage scores
            at 9-16 qutrits carry no Monte-Carlo noise at all.
        n_trajectories: stochastic batch width (``"trajectories"``/``"mps"``).
        rng: generator / seed for the stochastic methods (defaults to a
            fixed seed so threshold bisection sees a deterministic score).
        max_bond: bond-dimension cap (``"mps"``/``"lpdo"``).  The ``0``
            default resolves to the historical cap of 64 — or, under a
            ``target_error`` contract with ``method="auto"``, to "let the
            autopilot plan choose".  ``None`` disables the cap.
        max_kraus: Kraus-leg cap (``"lpdo"`` only), same ``0``-default
            convention with a historical cap of 16; ``None`` keeps the
            legs at their exact rank.
        target_error: accuracy contract forwarded to the ``"auto"``
            backend — :func:`repro.exec.select_backend` then picks the
            engine *and* its caps so the predicted truncation +
            purification + sampling error stays within budget, instead
            of using the hand-set defaults above.

    Returns:
        RMS trajectory deviation (0 for epsilon = 0).
    """
    if epsilon < 0:
        raise SimulationError("epsilon must be >= 0")
    if method not in ("density", "trajectories", "mps", "lpdo", "auto"):
        raise SimulationError(f"unknown damage method {method!r}")
    contract = target_error is not None and method == "auto"
    if max_bond == 0:
        max_bond = None if contract else 64
    if max_kraus == 0:
        max_kraus = None if contract else 16
    auto_options = {"target_error": target_error} if contract else {}
    chain = encoding.chain
    m_values = _excitation_profile(chain.n_sites)
    dt = t_total / n_steps
    clean_step = encoding.trotter_step(dt)
    if method == "density":
        observable = encoding.local_lz_operator(site)
        initial = _initial_density(encoding, m_values)
        clean = evolve_observable_trajectory(
            clean_step, n_steps, observable, initial
        )
    elif method == "mps":
        local_op, op_targets = encoding.local_lz(site)
        digits = encoding.product_state_digits(m_values)
        # Noiseless step: deterministic, one trajectory is exact (up to chi).
        clean = evolve_observable_trajectory_backend(
            clean_step, n_steps, local_op, op_targets, digits,
            method="mps", n_trajectories=1, rng=rng, max_bond=max_bond,
        )
    elif method in ("lpdo", "auto"):
        local_op, op_targets = encoding.local_lz(site)
        digits = encoding.product_state_digits(m_values)
        # Exact (deterministic) noisy evolution: no trajectories, no rng.
        # "auto" keeps sampling engines out (allow_sampling defaults off),
        # so the cost model picks the density matrix while D^2 fits and the
        # LPDO beyond — deterministic damage scores either way.
        clean = evolve_observable_trajectory_backend(
            clean_step, n_steps, local_op, op_targets, digits,
            method=method, max_bond=max_bond, max_kraus=max_kraus,
            **auto_options,
        )
    else:
        observable = encoding.local_lz_operator(site)
        digits = encoding.product_state_digits(m_values)
        initial_sv = Statevector.basis(encoding.dims, digits)
        # Noiseless step: a single trajectory is exact (no stochastic jumps).
        clean = evolve_observable_trajectory_mc(
            clean_step, n_steps, observable, initial_sv, 1, rng=rng
        )
    if epsilon == 0:
        return 0.0
    noisy_step = insert_depolarizing_noise(clean_step, encoding, epsilon)
    if method == "density":
        noisy = evolve_observable_trajectory(
            noisy_step, n_steps, observable, initial
        )
    elif method == "mps":
        noisy = evolve_observable_trajectory_backend(
            noisy_step, n_steps, local_op, op_targets, digits,
            method="mps", n_trajectories=n_trajectories, rng=rng,
            max_bond=max_bond,
        )
    elif method in ("lpdo", "auto"):
        noisy = evolve_observable_trajectory_backend(
            noisy_step, n_steps, local_op, op_targets, digits,
            method=method, max_bond=max_bond, max_kraus=max_kraus,
            **auto_options,
        )
    else:
        noisy = evolve_observable_trajectory_mc(
            noisy_step, n_steps, observable, initial_sv, n_trajectories, rng=rng
        )
    return float(np.sqrt(np.mean((noisy - clean) ** 2)))


def noise_threshold(
    encoding,
    damage_tol: float = 0.1,
    t_total: float = 4.0,
    n_steps: int = 12,
    eps_hi: float = 0.5,
    bisection_steps: int = 12,
    method: str = "density",
    n_trajectories: int = 128,
    rng: np.random.Generator | int | None = 0,
    max_bond: int | None = 0,
    max_kraus: int | None = 0,
    target_error: float | None = None,
) -> float:
    """Largest epsilon whose trajectory damage stays below ``damage_tol``.

    Damage grows monotonically with epsilon, and thresholds span orders of
    magnitude between encodings, so the bisection runs in log space: the
    lower bracket is walked down by decades until it is tolerable, then
    log-midpoint bisection refines it.

    Args:
        method, n_trajectories, rng, max_bond, max_kraus, target_error:
            forwarded to
            :func:`trajectory_damage` — ``method="trajectories"`` scores
            damage with the batched Monte-Carlo engine for registers too
            large for a density matrix, ``method="mps"`` with the
            bond-truncated MPS engine for chains too long for any dense
            backend, and ``method="lpdo"`` with the locally-purified
            density-MPO engine, whose damage scores are *exact* (no
            Monte-Carlo jitter in the bisection) at the same scale.

    Returns:
        Threshold epsilon (clamped to ``eps_hi`` if never exceeded, and to
        ``1e-8`` from below if even that is intolerable).
    """

    def _damage(eps: float) -> float:
        return trajectory_damage(
            encoding,
            eps,
            t_total,
            n_steps,
            method=method,
            n_trajectories=n_trajectories,
            rng=rng,
            max_bond=max_bond,
            max_kraus=max_kraus,
            target_error=target_error,
        )

    if _damage(eps_hi) < damage_tol:
        return eps_hi
    lo = eps_hi
    for _ in range(10):
        lo /= 10.0
        if lo < 1e-8:
            return 1e-8
        if _damage(lo) < damage_tol:
            break
    hi = lo * 10.0
    for _ in range(bisection_steps):
        mid = float(np.sqrt(lo * hi))
        if _damage(mid) < damage_tol:
            lo = mid
        else:
            hi = mid
    return lo


@dataclass(frozen=True)
class EncodingComparison:
    """Result of the qudit-vs-qubit threshold comparison.

    Attributes:
        qudit_threshold: tolerable per-gate error, native encoding.
        qubit_threshold: tolerable per-gate error, binary encoding.
        threshold_ratio: qudit / qubit — the paper's 10-100x claim.
        qudit_entangling_per_step: CSUM-equivalents per Trotter step.
        qubit_cnots_per_step: CNOTs per Trotter step.
        gate_count_ratio: qubit CNOTs / qudit equivalents.
    """

    qudit_threshold: float
    qubit_threshold: float
    threshold_ratio: float
    qudit_entangling_per_step: int
    qubit_cnots_per_step: int
    gate_count_ratio: float


def compare_encodings(
    chain: RotorChain,
    damage_tol: float = 0.1,
    t_total: float = 4.0,
    n_steps: int = 12,
    bisection_steps: int = 10,
) -> EncodingComparison:
    """Run the full C1 experiment on one rotor chain.

    Returns:
        An :class:`EncodingComparison`; the headline number is
        ``threshold_ratio``, expected to land in the 10-100x band for the
        qutrit chain of ref [11].
    """
    qudit = QuditEncoding(chain)
    qubit = QubitEncoding(chain)
    qudit_threshold = noise_threshold(
        qudit, damage_tol, t_total, n_steps, bisection_steps=bisection_steps
    )
    qubit_threshold = noise_threshold(
        qubit, damage_tol, t_total, n_steps, bisection_steps=bisection_steps
    )
    if qubit_threshold <= 0:
        raise SimulationError("qubit threshold collapsed to zero")
    qudit_count = qudit.entangling_per_step()
    qubit_count = qubit.cnots_per_step()
    return EncodingComparison(
        qudit_threshold=qudit_threshold,
        qubit_threshold=qubit_threshold,
        threshold_ratio=qudit_threshold / qubit_threshold,
        qudit_entangling_per_step=qudit_count,
        qubit_cnots_per_step=qubit_count,
        gate_count_ratio=qubit_count / max(qudit_count, 1),
    )


# ----------------------------------------------------------------------
# campaign layer (repro.exec)
# ----------------------------------------------------------------------
def _build_encoding(encoding: str, n_sites: int, spin: int, hopping: float,
                    g2: float, mu: float, zz: float, periodic: bool):
    chain = RotorChain(
        n_sites=n_sites, spin=spin, g2=g2, hopping=hopping, mu=mu, zz=zz,
        periodic=periodic,
    )
    if encoding == "qudit":
        return QuditEncoding(chain)
    if encoding == "qubit":
        return QubitEncoding(chain)
    raise SimulationError(f"unknown encoding {encoding!r}")


def damage_task(
    epsilon: float,
    n_sites: int = 3,
    spin: int = 1,
    encoding: str = "qudit",
    t_total: float = 4.0,
    n_steps: int = 12,
    site: int = 0,
    method: str = "auto",
    n_trajectories: int = 128,
    max_bond: int | None = 0,
    max_kraus: int | None = 0,
    target_error: float | None = None,
    g2: float = 1.0,
    hopping: float = 0.3,
    mu: float = 0.0,
    zz: float = 0.0,
    periodic: bool = False,
    seed: int = 0,
) -> float:
    """Campaign task: one encoding-damage score from plain parameters.

    This is :func:`trajectory_damage` re-packaged for the campaign runner
    (:mod:`repro.exec`): every input is a JSON-like value, the rotor chain
    and encoding are rebuilt inside the worker process, the campaign's
    spawned per-point seed arrives as ``seed``, and the return value is a
    plain float — so points are hashable for the result cache and
    picklable across the worker pool.

    Args:
        epsilon: per-entangling-gate depolarising probability (the usual
            sweep axis).
        n_sites, spin, g2, hopping, mu, zz, periodic: rotor-chain spec.
        encoding: ``"qudit"`` or ``"qubit"``.
        t_total, n_steps, site, method, n_trajectories, max_bond,
        max_kraus: forwarded to :func:`trajectory_damage` (``method="auto"``
        lets the cost model pick density/LPDO per register size).
        target_error: accuracy contract for ``method="auto"`` — the
            autopilot plans engine and caps to meet it, and the campaign
            executor escalates ``max_bond``/``max_kraus`` mid-run when a
            point's tracked error overruns the budget.
        seed: stochastic-method seed (ignored by exact methods).

    Returns:
        The RMS trajectory damage.
    """
    enc = _build_encoding(encoding, n_sites, spin, hopping, g2, mu, zz, periodic)
    return float(
        trajectory_damage(
            enc,
            float(epsilon),
            t_total=t_total,
            n_steps=n_steps,
            site=site,
            method=method,
            n_trajectories=n_trajectories,
            rng=seed,
            max_bond=max_bond,
            max_kraus=max_kraus,
            target_error=target_error,
        )
    )


def _damage_campaign_spec(epsilons, name, seed, task_params, target_error=None):
    from ..exec import Campaign, zip_sweep

    return Campaign(
        task="repro.sqed.noise_study:damage_task",
        sweep=zip_sweep(epsilon=[float(e) for e in epsilons]),
        name=name,
        base_params=task_params,
        seed=seed,
        target_error=target_error,
    )


def damage_campaign(
    epsilons,
    *,
    workers: int | None = None,
    cache=None,
    checkpoint=None,
    seed: int = 0,
    name: str = "sqed-damage",
    method: str = "auto",
    target_error: float | None = None,
    executor=None,
    policy=None,
    ledger=None,
    on_result=None,
    **task_params,
):
    """Score a whole epsilon sweep as one parallel, cached campaign.

    Args:
        epsilons: depolarising strengths to score (one campaign point each).
        workers: worker-process count (``None`` = serial; ignored when an
            ``executor`` is passed).
        cache: a :class:`repro.exec.ResultCache` or directory path —
            completed points are skipped on reruns and shared with any
            overlapping campaign (the bisection below).
        checkpoint: resumable JSON-lines progress file.
        seed: campaign root seed (per-point seeds are spawned from it).
        name: campaign label.
        method: simulation engine for :func:`damage_task` (``"auto"``
            lets the cost model pick per register).
        target_error: accuracy contract — planned caps per point via the
            autopilot (``method="auto"``), plus mid-run executor
            escalation when a point's tracked error overruns the budget.
        executor: an existing :class:`repro.exec.CampaignExecutor` to run
            on — its warm pool is reused instead of forking a fresh one.
        policy: a :class:`repro.exec.FailurePolicy` (or mode string)
            governing point failures for this campaign; defaults to the
            executor's policy.
        ledger: run-ledger override (a
            :class:`repro.obs.ledger.RunLedger`, a path, or ``False``
            to disable); by default the run record lands in the ledger
            co-located with the effective result cache.
        on_result: optional ``callback(point, value)`` fired as each
            epsilon resolves (completion order — cache hits first), via
            :meth:`repro.exec.CampaignHandle.on_result`.
        **task_params: fixed :func:`damage_task` parameters (``n_sites``,
            ``encoding``, ...).

    Returns:
        A :class:`repro.exec.CampaignResult` whose ``values`` align with
        ``epsilons``.
    """
    from ..exec import executor_scope

    task_params = dict(task_params, method=method)
    if target_error is not None:
        task_params["target_error"] = target_error
    campaign = _damage_campaign_spec(epsilons, name, seed, task_params, target_error)
    scope = executor_scope(
        executor, workers=workers, cache=cache, policy=policy, ledger=ledger
    )
    with scope as (ex, kwargs):
        handle = ex.submit(campaign, checkpoint=checkpoint, **kwargs)
        return handle.on_result(on_result).result()


def noise_threshold_campaign(
    damage_tol: float = 0.1,
    eps_hi: float = 0.5,
    bisection_steps: int = 12,
    *,
    workers: int | None = None,
    cache=None,
    seed: int = 0,
    method: str = "auto",
    target_error: float | None = None,
    executor=None,
    policy=None,
    ledger=None,
    on_result=None,
    **task_params,
) -> float:
    """Campaign-backed noise-threshold bisection, streamed.

    Mirrors :func:`noise_threshold`'s log-space search, but every damage
    probe is evaluated *as a campaign point* on one persistent
    :class:`~repro.exec.CampaignExecutor`: the decade ladder that
    brackets the threshold fans out over the warm pool and is consumed
    **as a stream** — the bracket resolves (and the first bisection
    midpoint is issued) as soon as the first sub-tolerance rung arrives,
    without waiting for the deeper rungs — and every bisection midpoint
    reuses the same pool, so the serial midpoint walk never pays fork
    cost.  All probes route through the shared result cache: re-running
    the bisection, or running it after a broad :func:`damage_campaign`
    over the same parameters, skips every previously-scored probe.  With
    the default exact scoring (``method="auto"`` selecting density/LPDO)
    the returned threshold is identical to the serial
    :func:`noise_threshold` — streaming changes wall-clock only, since
    rungs are consumed in deterministic point order.

    Args:
        damage_tol: tolerable RMS damage.
        eps_hi: upper bracket.
        bisection_steps: log-midpoint refinement steps.
        workers: worker processes for the ladder campaign (ignored when
            an ``executor`` is passed).
        cache: shared result cache (directory path or ResultCache).
        seed: campaign root seed.
        method: simulation engine for the damage probes (same semantics
            as :func:`damage_campaign`).
        target_error: accuracy contract for the probes (same semantics
            as :func:`damage_campaign`).
        executor: an existing :class:`repro.exec.CampaignExecutor`; by
            default one is created (and closed) for this bisection.
        policy: a :class:`repro.exec.FailurePolicy` (or mode string) for
            the probe campaigns; defaults to the executor's policy.
        ledger: run-ledger override for the probe campaigns (same
            semantics as :func:`damage_campaign`).
        on_result: optional ``callback(point, value)`` fired for every
            probe the bisection evaluates (single probes, ladder rungs,
            and midpoints alike), via
            :meth:`repro.exec.CampaignHandle.on_result`.
        **task_params: fixed :func:`damage_task` parameters.

    Returns:
        Threshold epsilon (same clamping rules as :func:`noise_threshold`).
    """
    from ..exec import executor_scope

    task_params = dict(task_params, method=method)
    if target_error is not None:
        task_params["target_error"] = target_error

    def spec(epsilons):
        return _damage_campaign_spec(
            epsilons, "sqed-threshold-probe", seed, task_params, target_error
        )

    scope = executor_scope(
        executor, workers=workers, cache=cache, policy=policy, ledger=ledger
    )
    with scope as (ex, kwargs):

        def probe_one(epsilon) -> float:
            handle = ex.submit(spec([epsilon]), **kwargs)
            return handle.on_result(on_result).result().values[0]

        if probe_one(eps_hi) < damage_tol:
            return eps_hi
        # Decade ladder: one parallel campaign, streamed in rung order.
        # The bracket is decided at the first sub-tolerance rung; deeper
        # rungs keep computing in the pool but are not waited for.
        ladder = []
        lo = eps_hi
        for _ in range(10):
            lo /= 10.0
            if lo < 1e-8:
                break
            ladder.append(lo)
        handle = ex.submit(spec(ladder), **kwargs).on_result(on_result)
        lo = None
        for eps, damage in zip(ladder, handle.stream_results()):
            if damage < damage_tol:
                lo = eps
                break
        if lo is None:
            return 1e-8
        hi = lo * 10.0
        for _ in range(bisection_steps):
            mid = float(np.sqrt(lo * hi))
            if probe_one(mid) < damage_tol:
                lo = mid
            else:
                hi = mid
        return lo
