"""Truncated U(1) rotor-chain Hamiltonian — the sQED workhorse.

Following the paper's description of Gustafson's model (ref [11]): after
integrating out the scalar matter, the (1+1)D sQED Hamiltonian on ``Ns``
linear sites reduces to "linear and quadratic terms (involving only single
or adjacent sites) composed by ladder and diagonal operators
``Lz|m> = m|m>``".  Concretely we implement::

    H =  sum_i [ (g2/2) Lz_i^2  +  mu Lz_i ]
       + sum_<ij> [ J (U_i U_j† + h.c.)  +  c Lz_i Lz_j ]

with ``U|m> = |m+1>`` the (truncated) raising ladder.  The infinite rotor
tower is truncated to ``m in {-s, ..., +s}`` giving a ``d = 2s+1``-level
qudit per site — ``s=1`` is the qutrit encoding of ref [11]; higher ``s``
is the "qudits beyond qutrits (max m = d)" generalisation the paper
proposes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import DimensionError

__all__ = ["RotorSiteOperators", "HamiltonianTerm", "RotorChain"]


@dataclass(frozen=True)
class RotorSiteOperators:
    """Single-site operators of the truncated rotor.

    Attributes:
        spin: truncation ``s``; the site dimension is ``d = 2s + 1``.
    """

    spin: int

    def __post_init__(self) -> None:
        if self.spin < 1:
            raise DimensionError(f"truncation spin {self.spin} must be >= 1")

    @property
    def dim(self) -> int:
        """Site dimension ``2s + 1``."""
        return 2 * self.spin + 1

    def lz(self) -> np.ndarray:
        """Electric-field operator ``Lz = diag(-s, ..., +s)``."""
        return np.diag(np.arange(-self.spin, self.spin + 1, dtype=float)).astype(
            complex
        )

    def raising(self) -> np.ndarray:
        """Link raising operator ``U|m> = |m+1>`` (zero at the top)."""
        d = self.dim
        mat = np.zeros((d, d), dtype=complex)
        for k in range(d - 1):
            mat[k + 1, k] = 1.0
        return mat

    def lowering(self) -> np.ndarray:
        """``U† = raising().conj().T``."""
        return self.raising().conj().T


@dataclass(frozen=True)
class HamiltonianTerm:
    """One local term ``coefficient * O_1 (x) O_2 (x) ...`` on given sites.

    Attributes:
        sites: site indices, ascending, length 1 or 2.
        operator: dense Hermitian matrix over the listed sites (big-endian).
        label: human-readable tag (``'electric'``, ``'hop'``, ``'zz'``...).
    """

    sites: tuple[int, ...]
    operator: np.ndarray
    label: str

    @property
    def n_sites(self) -> int:
        """Locality of the term."""
        return len(self.sites)


class RotorChain:
    """The truncated U(1) rotor chain on ``n_sites`` linear sites.

    Args:
        n_sites: number of lattice sites (>= 2).
        spin: rotor truncation; site dimension is ``2*spin + 1``.
        g2: gauge coupling (coefficient of ``Lz^2 / 2``).
        hopping: coefficient ``J`` of the ladder hopping term.
        mu: linear (background-field) coefficient.
        zz: nearest-neighbour ``Lz Lz`` coefficient.
        periodic: wrap the chain into a ring.
    """

    def __init__(
        self,
        n_sites: int,
        spin: int = 1,
        g2: float = 1.0,
        hopping: float = 0.3,
        mu: float = 0.0,
        zz: float = 0.0,
        periodic: bool = False,
    ) -> None:
        if n_sites < 2:
            raise DimensionError("rotor chain needs at least 2 sites")
        self.n_sites = int(n_sites)
        self.ops = RotorSiteOperators(spin)
        self.g2 = float(g2)
        self.hopping = float(hopping)
        self.mu = float(mu)
        self.zz = float(zz)
        self.periodic = bool(periodic)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def site_dim(self) -> int:
        """Per-site qudit dimension."""
        return self.ops.dim

    @property
    def dims(self) -> tuple[int, ...]:
        """Register dimensions ``(d, d, ..., d)``."""
        return (self.site_dim,) * self.n_sites

    def bonds(self) -> list[tuple[int, int]]:
        """Nearest-neighbour site pairs."""
        pairs = [(i, i + 1) for i in range(self.n_sites - 1)]
        if self.periodic and self.n_sites > 2:
            pairs.append((0, self.n_sites - 1))
        return pairs

    # ------------------------------------------------------------------
    # Hamiltonian assembly
    # ------------------------------------------------------------------
    def terms(self) -> list[HamiltonianTerm]:
        """All local Hamiltonian terms (single-site + bond terms)."""
        lz = self.ops.lz()
        raising = self.ops.raising()
        out: list[HamiltonianTerm] = []
        for site in range(self.n_sites):
            local = 0.5 * self.g2 * (lz @ lz) + self.mu * lz
            if np.abs(local).max() > 0:
                out.append(HamiltonianTerm((site,), local, "electric"))
        for i, j in self.bonds():
            if self.hopping != 0.0:
                hop = self.hopping * (
                    np.kron(raising, raising.conj().T)
                    + np.kron(raising.conj().T, raising)
                )
                out.append(HamiltonianTerm((i, j), hop, "hop"))
            if self.zz != 0.0:
                out.append(
                    HamiltonianTerm((i, j), self.zz * np.kron(lz, lz), "zz")
                )
        return out

    def to_matrix(self) -> np.ndarray:
        """Dense Hamiltonian over the full register (small chains only).

        Raises:
            DimensionError: above total dimension 8192.
        """
        from ..core.statevector import embed_unitary

        dim = self.site_dim**self.n_sites
        if dim > 8192:
            raise DimensionError(f"total dimension {dim} too large for dense H")
        ham = np.zeros((dim, dim), dtype=complex)
        for term in self.terms():
            ham += embed_unitary(term.operator, self.dims, term.sites)
        return ham

    # ------------------------------------------------------------------
    # spectra
    # ------------------------------------------------------------------
    def spectrum(self, k: int | None = None) -> np.ndarray:
        """Lowest ``k`` eigenvalues (all if omitted) by exact diagonalisation."""
        eigs = np.linalg.eigvalsh(self.to_matrix())
        return eigs if k is None else eigs[:k]

    def mass_gap(self) -> float:
        """Spectral gap ``E_1 - E_0`` — the observable ref [11] extracts."""
        eigs = self.spectrum(2)
        return float(eigs[1] - eigs[0])

    def ground_state(self) -> np.ndarray:
        """Ground-state amplitudes by exact diagonalisation."""
        _, vecs = np.linalg.eigh(self.to_matrix())
        return vecs[:, 0]

    def __repr__(self) -> str:
        return (
            f"RotorChain(n_sites={self.n_sites}, d={self.site_dim}, "
            f"g2={self.g2}, J={self.hopping}, mu={self.mu}, zz={self.zz})"
        )
