"""Trotterised real-time evolution of the rotor models.

Builds first- and second-order product-formula circuits from any object
exposing ``terms()`` (both :class:`~repro.sqed.rotor.RotorChain` and
:class:`~repro.sqed.rotor2d.RotorLadder2D`), and provides the density-
matrix evolution driver used by the encoding noise study.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy.linalg import expm

from ..core.circuit import QuditCircuit
from ..core.density import DensityMatrix
from ..core.exceptions import SimulationError
from ..core.statevector import Statevector
from ..core.trajectories import TrajectorySimulator

__all__ = [
    "trotter_step_from_terms",
    "second_order_step_from_terms",
    "trotter_circuit",
    "evolve_observable_trajectory",
    "evolve_observable_trajectory_mc",
    "evolve_observable_trajectory_backend",
    "exact_observable_trajectory",
]


def trotter_step_from_terms(model, dt: float) -> QuditCircuit:
    """First-order step ``prod_k exp(-i dt H_k)`` from a model's terms."""
    qc = QuditCircuit(model.dims, name="trotter-step")
    for term in model.terms():
        qc.unitary(expm(-1j * dt * term.operator), term.sites, name=term.label, dt=dt)
    return qc


def second_order_step_from_terms(model, dt: float) -> QuditCircuit:
    """Symmetric (Strang) step: half-steps forward then backward order."""
    qc = QuditCircuit(model.dims, name="trotter2-step")
    terms = model.terms()
    for term in terms:
        qc.unitary(
            expm(-0.5j * dt * term.operator), term.sites, name=term.label, dt=dt / 2
        )
    for term in reversed(terms):
        qc.unitary(
            expm(-0.5j * dt * term.operator), term.sites, name=term.label, dt=dt / 2
        )
    return qc


def trotter_circuit(model, t_total: float, n_steps: int, order: int = 1) -> QuditCircuit:
    """Full evolution circuit for time ``t_total`` in ``n_steps`` steps.

    Args:
        model: object with ``dims`` and ``terms()``.
        t_total: total evolution time.
        n_steps: Trotter steps.
        order: 1 (first order) or 2 (Strang splitting).

    Raises:
        SimulationError: for invalid step counts or orders.
    """
    if n_steps < 1:
        raise SimulationError("need at least one Trotter step")
    dt = t_total / n_steps
    if order == 1:
        step = trotter_step_from_terms(model, dt)
    elif order == 2:
        step = second_order_step_from_terms(model, dt)
    else:
        raise SimulationError(f"unsupported Trotter order {order}")
    return step.repeated(n_steps)


def evolve_observable_trajectory(
    step_circuit: QuditCircuit,
    n_steps: int,
    observable: np.ndarray,
    initial: DensityMatrix,
) -> np.ndarray:
    """Apply a step circuit repeatedly, recording ``Tr(rho O)`` after each step.

    Args:
        step_circuit: one (possibly noise-instrumented) Trotter step.
        n_steps: repetitions.
        observable: dense operator over the full register.
        initial: starting state.

    Returns:
        Array of ``n_steps + 1`` real expectation values (index 0 is t=0).
    """
    if n_steps < 1:
        raise SimulationError("need at least one step")
    values = np.empty(n_steps + 1)
    state = initial
    values[0] = float(np.real(state.expectation(observable)))
    for step in range(n_steps):
        state = state.evolve(step_circuit)
        values[step + 1] = float(np.real(state.expectation(observable)))
    return values


def evolve_observable_trajectory_mc(
    step_circuit: QuditCircuit,
    n_steps: int,
    observable: np.ndarray,
    initial: Statevector,
    n_trajectories: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Monte-Carlo analogue of :func:`evolve_observable_trajectory`.

    Evolves ``n_trajectories`` stochastic pure-state trajectories *as one
    batch* through the (noise-instrumented) step circuit, recording the
    trajectory-averaged ``<psi|O|psi>`` after every step.  This is the
    scalable path for registers whose density matrix no longer fits —
    memory is ``O(D * n_trajectories)`` instead of ``O(D^2)``.

    Args:
        step_circuit: one (possibly noisy) Trotter step.
        n_steps: repetitions.
        observable: dense operator over the full register.
        initial: starting pure state.
        n_trajectories: batch width of the stochastic average.
        rng: generator / seed threaded into every jump and measurement.

    Returns:
        Array of ``n_steps + 1`` real expectation values (index 0 is t=0).
    """
    if n_steps < 1:
        raise SimulationError("need at least one step")
    if n_trajectories < 1:
        raise SimulationError("need at least one trajectory")
    simulator = TrajectorySimulator(step_circuit, seed=rng)
    observable = np.asarray(observable, dtype=complex)
    dim = initial.dim
    batch = np.ascontiguousarray(
        np.broadcast_to(
            initial.tensor[..., None], initial.tensor.shape + (n_trajectories,)
        )
    )
    values = np.empty(n_steps + 1)

    def _mean_expectation(states: np.ndarray) -> float:
        flat = states.reshape(dim, n_trajectories)
        vals = np.real(np.einsum("ib,ij,jb->b", flat.conj(), observable, flat))
        return float(vals.mean())

    values[0] = _mean_expectation(batch)
    for step in range(n_steps):
        batch = simulator.evolve_states(batch)
        values[step + 1] = _mean_expectation(batch)
    return values


def evolve_observable_trajectory_backend(
    step_circuit: QuditCircuit,
    n_steps: int,
    operator: np.ndarray,
    targets: int | Sequence[int],
    initial_digits: Sequence[int],
    method: str = "mps",
    n_trajectories: int = 1,
    rng: np.random.Generator | int | None = None,
    **backend_options,
) -> np.ndarray:
    """Backend-agnostic analogue of :func:`evolve_observable_trajectory`.

    Evolves through the unified registry (:mod:`repro.core.backends`), so
    the same driver records ``<O(t)>`` on any engine — in particular the
    MPS backend, whose *local* ``(operator, targets)`` observable form is
    the only one that scales past ~9 qutrits (a dense embedded operator
    can no longer be built there).

    Args:
        step_circuit: one (possibly noise-instrumented) Trotter step.
        n_steps: repetitions.
        operator: local operator over the ``targets`` wires only.
        targets: wire(s) the operator acts on.
        initial_digits: computational-basis digits of the starting state.
        method: registered backend name (``"mps"``, ``"density"``, ...).
        n_trajectories: stochastic width for unravelling backends.
        rng: generator / seed threaded through all stochastic draws.
        **backend_options: engine knobs (``max_bond``, ``svd_tol``, ...).

    Returns:
        Array of ``n_steps + 1`` real expectation values (index 0 is t=0).
    """
    from ..core.backends import get_backend

    if n_steps < 1:
        raise SimulationError("need at least one step")
    backend = get_backend(method, **backend_options)
    state = backend.prepare(
        step_circuit.dims,
        digits=initial_digits,
        n_trajectories=n_trajectories,
        rng=rng,
    )
    values = np.empty(n_steps + 1)
    values[0] = state.expectation(operator, targets)
    for step in range(n_steps):
        state = backend.run(step_circuit, initial=state)
        values[step + 1] = state.expectation(operator, targets)
    return values


def exact_observable_trajectory(
    hamiltonian: np.ndarray,
    observable: np.ndarray,
    initial_vector: np.ndarray,
    times: Sequence[float],
) -> np.ndarray:
    """Reference trajectory ``<psi(t)|O|psi(t)>`` by dense exponentiation.

    Diagonalises once and reuses the eigenbasis for every time point.
    """
    eigvals, eigvecs = np.linalg.eigh(hamiltonian)
    psi0 = eigvecs.conj().T @ np.asarray(initial_vector, dtype=complex)
    obs = eigvecs.conj().T @ observable @ eigvecs
    out = np.empty(len(times))
    for idx, t in enumerate(times):
        phase = np.exp(-1j * eigvals * t)
        psi_t = phase * psi0
        out[idx] = float(np.real(psi_t.conj() @ obs @ psi_t))
    return out
