"""repro — bosonic qudit processor application-engineering toolkit.

Reproduction of "Near-term Application Engineering Challenges in Emerging
Superconducting Qudit Processors" (Venturelli et al., DSN 2025).

The package is organised as:

* :mod:`repro.core` — qudit circuit IR, gate library, simulators.
* :mod:`repro.exec` — campaign orchestration: declarative sweeps, a
  process-parallel runner, a content-addressed result cache, and
  cost-model backend auto-selection (``get_backend("auto")``).
* :mod:`repro.hardware` — parametric model of the multi-cavity QPU.
* :mod:`repro.compile` — noise-aware mapping, routing, gate synthesis.
* :mod:`repro.sqed` — U(1) lattice gauge simulation application.
* :mod:`repro.qaoa` — qudit graph-coloring optimisation application.
* :mod:`repro.reservoir` — quantum reservoir computing application.
* :mod:`repro.analysis` — fitting and statistics helpers.
"""

from . import core
from .core import (
    DensityMatrix,
    QuditChannel,
    QuditCircuit,
    Statevector,
    TrajectorySimulator,
)
from .exec import (
    BackendPlan,
    Campaign,
    CampaignExecutor,
    FailurePolicy,
    RunLedger,
    select_backend,
)

__version__ = "0.1.0"

__all__ = [
    "core",
    "BackendPlan",
    "Campaign",
    "CampaignExecutor",
    "DensityMatrix",
    "FailurePolicy",
    "QuditChannel",
    "QuditCircuit",
    "RunLedger",
    "Statevector",
    "TrajectorySimulator",
    "select_backend",
    "__version__",
]
