"""Fitting and statistics helpers shared by the applications/benchmarks."""

from .fitting import DampedCosineFit, dominant_frequency, fit_damped_cosine
from .stats import BootstrapResult, bootstrap_mean, bootstrap_ratio

__all__ = [
    "DampedCosineFit",
    "dominant_frequency",
    "fit_damped_cosine",
    "BootstrapResult",
    "bootstrap_mean",
    "bootstrap_ratio",
]
