"""Signal fitting: dominant frequencies and damped oscillations.

Used by the sQED mass-gap extraction (the gap appears as the dominant
oscillation frequency of a local observable) and by reservoir diagnostics.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import curve_fit

from ..core.exceptions import SimulationError

__all__ = ["dominant_frequency", "fit_damped_cosine", "DampedCosineFit"]


def dominant_frequency(times: np.ndarray, values: np.ndarray) -> float:
    """Dominant non-zero angular frequency of a uniformly sampled signal.

    FFT with mean subtraction, 8x zero padding, and quadratic interpolation
    around the magnitude peak for sub-bin resolution.

    Args:
        times: uniformly spaced sample times (>= 4 samples).
        values: real signal samples.

    Returns:
        Angular frequency ``omega > 0`` of the largest spectral peak.

    Raises:
        SimulationError: on too-short or non-uniform input.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size < 4 or times.size != values.size:
        raise SimulationError("need >= 4 uniformly sampled points")
    dts = np.diff(times)
    if np.abs(dts - dts[0]).max() > 1e-9 * max(abs(dts[0]), 1e-30):
        raise SimulationError("samples must be uniformly spaced")
    dt = float(dts[0])
    signal = values - values.mean()
    n_fft = 8 * times.size
    spectrum = np.abs(np.fft.rfft(signal, n=n_fft))
    freqs = np.fft.rfftfreq(n_fft, d=dt)
    if spectrum.size < 3:
        raise SimulationError("spectrum too short")
    peak = int(np.argmax(spectrum[1:])) + 1  # skip DC
    if 1 <= peak < spectrum.size - 1:
        # Quadratic (parabolic) interpolation around the peak bin.
        alpha, beta, gamma = spectrum[peak - 1], spectrum[peak], spectrum[peak + 1]
        denom = alpha - 2 * beta + gamma
        shift = 0.5 * (alpha - gamma) / denom if abs(denom) > 1e-30 else 0.0
        shift = float(np.clip(shift, -0.5, 0.5))
    else:
        shift = 0.0
    bin_width = freqs[1] - freqs[0]
    return float(2.0 * np.pi * (freqs[peak] + shift * bin_width))


class DampedCosineFit:
    """Result of fitting ``a * exp(-gamma t) * cos(omega t + phi) + c``."""

    def __init__(self, amplitude, decay, omega, phase, offset, residual):
        self.amplitude = float(amplitude)
        self.decay = float(decay)
        self.omega = float(omega)
        self.phase = float(phase)
        self.offset = float(offset)
        self.residual = float(residual)

    def __repr__(self) -> str:
        return (
            f"DampedCosineFit(omega={self.omega:.4g}, gamma={self.decay:.4g}, "
            f"residual={self.residual:.3g})"
        )


def fit_damped_cosine(
    times: np.ndarray, values: np.ndarray, omega_guess: float | None = None
) -> DampedCosineFit:
    """Least-squares fit of a damped cosine to a real signal.

    Args:
        times: sample times.
        values: signal samples.
        omega_guess: initial angular frequency (FFT-derived if omitted).

    Returns:
        A :class:`DampedCosineFit`; ``residual`` is the RMS misfit.

    Raises:
        SimulationError: if the optimiser fails to converge.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if omega_guess is None:
        omega_guess = dominant_frequency(times, values)

    def model(t, a, gamma, omega, phi, c):
        return a * np.exp(-gamma * t) * np.cos(omega * t + phi) + c

    amp0 = (values.max() - values.min()) / 2.0 or 1.0
    p0 = [amp0, 0.0, omega_guess, 0.0, values.mean()]
    try:
        popt, _ = curve_fit(model, times, values, p0=p0, maxfev=20000)
    except RuntimeError as exc:  # pragma: no cover - optimiser pathologies
        raise SimulationError(f"damped-cosine fit failed: {exc}") from exc
    residual = float(np.sqrt(np.mean((model(times, *popt) - values) ** 2)))
    amplitude, decay, omega, phase, offset = popt
    if amplitude < 0:  # canonicalise sign
        amplitude, phase = -amplitude, phase + np.pi
    return DampedCosineFit(amplitude, decay, abs(omega), phase, offset, residual)
