"""Bootstrap statistics for benchmark reporting.

Benchmarks that aggregate stochastic runs (NDAR sweeps, trajectory
averages) report bootstrap confidence intervals rather than bare means.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import SimulationError

__all__ = ["BootstrapResult", "bootstrap_mean", "bootstrap_ratio"]


@dataclass(frozen=True)
class BootstrapResult:
    """Point estimate with a percentile confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __repr__(self) -> str:
        return (
            f"{self.estimate:.4g} "
            f"[{self.low:.4g}, {self.high:.4g}] @ {self.confidence:.0%}"
        )


def bootstrap_mean(
    samples,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int | None = None,
) -> BootstrapResult:
    """Percentile bootstrap CI of the sample mean."""
    samples = np.asarray(samples, dtype=float).ravel()
    if samples.size < 2:
        raise SimulationError("need at least 2 samples to bootstrap")
    if not 0.0 < confidence < 1.0:
        raise SimulationError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, samples.size, size=(n_resamples, samples.size))
    means = samples[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(samples.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def bootstrap_ratio(
    numerator,
    denominator,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int | None = None,
) -> BootstrapResult:
    """Bootstrap CI of ``mean(numerator) / mean(denominator)``.

    Used for threshold-ratio style headline numbers where both sides are
    noisy estimates.
    """
    num = np.asarray(numerator, dtype=float).ravel()
    den = np.asarray(denominator, dtype=float).ravel()
    if num.size < 2 or den.size < 2:
        raise SimulationError("need at least 2 samples on both sides")
    if abs(den.mean()) < 1e-300:
        raise SimulationError("denominator mean is zero")
    rng = np.random.default_rng(seed)
    ratios = np.empty(n_resamples)
    for k in range(n_resamples):
        ns = num[rng.integers(0, num.size, size=num.size)].mean()
        ds = den[rng.integers(0, den.size, size=den.size)].mean()
        ratios[k] = ns / ds if abs(ds) > 1e-300 else np.nan
    ratios = ratios[np.isfinite(ratios)]
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(num.mean() / den.mean()),
        low=float(np.quantile(ratios, alpha)),
        high=float(np.quantile(ratios, 1.0 - alpha)),
        confidence=confidence,
    )
