"""Baseline files: grandfather existing findings, gate new ones.

A baseline is a committed JSON file listing known findings by their
line-independent fingerprint (``path :: rule :: message``).  The CLI
subtracts the baseline from the current findings, so introducing a *new*
violation fails while a grandfathered one merely persists until fixed.
Multiplicity is respected: a baseline entry recorded twice tolerates two
matching findings — a third is new.

The committed repository baseline (``.repro-check-baseline.json``) is
**empty for src/repro**: every violation the analyzer found there was
fixed (or, where the pattern is the sanctioned implementation — e.g. the
one process-global generator in ``core/rng.py`` — suppressed inline with
a stated reason), so the gate runs at full strength on the real code.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from .engine import Finding

__all__ = [
    "DEFAULT_BASELINE",
    "load_baseline",
    "write_baseline",
    "subtract_baseline",
]

#: Conventional baseline filename, looked up in the working directory.
DEFAULT_BASELINE = ".repro-check-baseline.json"

_VERSION = 1


def load_baseline(path: str | Path) -> Counter:
    """Fingerprint multiset from a baseline file.

    Raises:
        ValueError: on a malformed or wrong-version baseline — a damaged
            gate must fail loudly, not silently admit everything.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _VERSION:
        raise ValueError(
            f"baseline {path} is not a version-{_VERSION} repro.check baseline"
        )
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path} has no findings list")
    counts: Counter = Counter()
    for entry in entries:
        try:
            finding = Finding(
                path=entry["path"],
                line=int(entry.get("line", 1)),
                rule=entry["rule"],
                message=entry["message"],
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"baseline {path} entry {entry!r}: {exc}") from exc
        counts[finding.fingerprint()] += 1
    return counts


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> int:
    """Write the given findings as the new baseline; return the count.

    Entries keep their line numbers for human readability, but matching
    ignores them (see :meth:`Finding.fingerprint`).
    """
    payload = {
        "version": _VERSION,
        "findings": [f.as_json() for f in sorted(findings)],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(findings)


def subtract_baseline(
    findings: Iterable[Finding], baseline: Counter
) -> tuple[list[Finding], int]:
    """Split findings into (new, baselined-count) against a baseline.

    Findings are consumed against the baseline multiset in sorted order,
    so the decision is deterministic when several findings share a
    fingerprint.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    matched = 0
    for finding in sorted(findings):
        print_key = finding.fingerprint()
        if remaining[print_key] > 0:
            remaining[print_key] -= 1
            matched += 1
        else:
            new.append(finding)
    return new, matched
