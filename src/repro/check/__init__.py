"""Domain-aware static analysis for the repro codebase.

The correctness story of the campaign stack rests on invariants no unit
test can see at every call site: seeds must be threaded, not conjured;
task callables must survive a process boundary; registered backends must
honour the run/prepare protocol; metric names must stay one consistent
family per name; exception handlers in the supervision paths must never
swallow silently.  This package enforces those invariants *before any
process is forked*, from the command line and in CI::

    python -m repro.check src tests examples benchmarks

Architecture: :mod:`repro.check.engine` parses each file once and walks
its AST a single time, dispatching nodes to every registered rule
(:mod:`repro.check.rules`).  Findings carry ``path:line``, a stable rule
id, and a message; an inline ``# repro: ignore[rule-id]`` comment
suppresses a finding at its line, and a committed baseline
(:mod:`repro.check.baseline`) grandfathers historical findings without
letting new ones in.  ``python -m repro.check --list-rules`` shows each
rule's one-line rationale.
"""

from . import rules  # noqa: F401  (import registers the built-in rules)
from .baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    subtract_baseline,
    write_baseline,
)
from .cli import main
from .engine import (
    Analysis,
    FileContext,
    Finding,
    Rule,
    discover_files,
    get_rules,
    register_rule,
    rule_ids,
    run_check,
)

__all__ = [
    "Analysis",
    "FileContext",
    "Finding",
    "Rule",
    "register_rule",
    "rule_ids",
    "get_rules",
    "run_check",
    "discover_files",
    "DEFAULT_BASELINE",
    "load_baseline",
    "write_baseline",
    "subtract_baseline",
    "main",
]
