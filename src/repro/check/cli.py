"""``python -m repro.check`` — the analyzer's command-line front end.

Typical invocations::

    python -m repro.check src                       # gate the library
    python -m repro.check src tests examples        # gate everything
    python -m repro.check --json src                # machine-readable
    python -m repro.check --list-rules              # what runs, and why
    python -m repro.check --write-baseline src      # grandfather findings

Exit status: ``0`` when no new findings remain after baseline
subtraction, ``1`` when new findings exist, ``2`` on usage errors
(unknown rule id, unreadable path or baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Sequence

from . import rules  # noqa: F401  (importing registers every built-in rule)
from .baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    subtract_baseline,
    write_baseline,
)
from .engine import get_rules, rule_ids, run_check

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Domain-aware static analysis for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON on stdout instead of human lines",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rule ids with their rationale and exit",
    )
    return parser


def _resolve_baseline(args: argparse.Namespace) -> Path | None:
    if args.no_baseline:
        return None
    if args.baseline:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE)
    return default if default.exists() else None


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in get_rules():
            print(f"{rule.id}: {rule.rationale}")
        return 0

    select = None
    if args.select:
        select = [part.strip() for part in args.select.split(",") if part.strip()]
    try:
        analysis = run_check(args.paths, select=select)
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    baseline_path = _resolve_baseline(args)
    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        count = write_baseline(target, analysis.findings)
        print(f"wrote {count} finding(s) to {target}")
        return 0

    baseline: Counter = Counter()
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    new, baselined = subtract_baseline(analysis.findings, baseline)

    if args.json:
        print(
            json.dumps(
                {
                    "findings": [f.as_json() for f in new],
                    "counts": {
                        "new": len(new),
                        "baselined": baselined,
                        "suppressed": analysis.suppressed_count,
                        "files": len(analysis.files),
                    },
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        for finding in new:
            print(finding.render())
        summary = (
            f"{len(new)} finding(s) in {len(analysis.files)} file(s)"
            f" ({baselined} baselined, {analysis.suppressed_count} suppressed)"
        )
        print(summary)
    return 1 if new else 0
