"""Shared AST helpers for the built-in rules."""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "terminal_name", "is_none_constant", "body_is_silent"]


def dotted_name(node: ast.AST) -> tuple[str, ...] | None:
    """A pure ``a.b.c`` attribute chain as a name tuple, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The final name of a ``Name`` or ``Attribute`` node, else ``None``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_none_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def body_is_silent(body: list[ast.stmt]) -> bool:
    """True if a suite does nothing: only ``pass``, ``...``, or docstrings."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # a bare string/Ellipsis expression has no effect
        return False
    return True
