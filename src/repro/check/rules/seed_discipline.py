"""seed-discipline: no unseeded or global-state randomness.

The whole reproducibility story — bit-identical serial/parallel/resumed
campaigns, crash recovery that cannot change values — rests on every
random draw flowing from an explicit seed or a generator threaded through
:mod:`repro.core.rng`.  One unseeded ``np.random.default_rng()`` in a
task, one legacy ``np.random.uniform(...)`` global-state call, one
``random.random()``, one wall-clock-derived seed, and a campaign's
results silently stop being a function of its inputs.

Flagged:

* ``np.random.default_rng()`` with no seed (or an explicit ``None``);
* legacy global-state samplers: ``np.random.rand`` / ``uniform`` /
  ``choice`` / ``seed`` / ... (the module-level NumPy RandomState API);
* ``np.random.RandomState`` (legacy generator, even seeded);
* the stdlib :mod:`random` module's sampler functions (process-global
  state, not spawnable, not process-safe);
* wall-clock seeds: ``time.time()`` / ``time.time_ns()`` fed to
  ``default_rng`` / ``SeedSequence`` / ``RandomState`` or to a ``seed=``
  / ``rng=`` keyword of any call.

The one sanctioned unseeded generator is ``core/rng.py``'s process-wide
fallback, which carries an inline suppression with its justification.
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, register_rule
from ._util import dotted_name, is_none_constant

__all__ = ["SeedDisciplineRule"]

#: Module-level functions of the legacy ``numpy.random`` RandomState API
#: that mutate hidden global state.
_LEGACY_SAMPLERS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "bytes",
        "shuffle",
        "permutation",
        "seed",
        "get_state",
        "set_state",
        "uniform",
        "normal",
        "standard_normal",
        "binomial",
        "poisson",
        "multinomial",
        "exponential",
        "beta",
        "gamma",
        "dirichlet",
        "laplace",
        "lognormal",
        "geometric",
    }
)

#: stdlib ``random`` module functions that draw from the process-global
#: (non-spawnable, fork-unsafe) Mersenne Twister.
_STDLIB_SAMPLERS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "seed",
        "getrandbits",
        "randbytes",
        "triangular",
    }
)

#: Wall-clock sources that must never feed a seed.
_CLOCK_FUNCTIONS = frozenset({"time", "time_ns"})


@register_rule
class SeedDisciplineRule(Rule):
    id = "seed-discipline"
    rationale = (
        "unseeded/global-state randomness breaks bit-identical campaign "
        "replay — thread repro.core.rng generators or explicit seeds"
    )

    def begin_file(self, ctx: FileContext) -> None:
        #: names bound to the numpy package ("numpy", "np", ...)
        self._numpy: set[str] = set()
        #: names bound to the numpy.random module
        self._nprandom: set[str] = set()
        #: direct imports from numpy.random: local name -> canonical name
        self._np_direct: dict[str, str] = {}
        #: names bound to the stdlib random module
        self._random_mod: set[str] = set()
        #: direct imports from stdlib random: local name -> function name
        self._random_direct: dict[str, str] = {}
        #: names bound to the time module
        self._time_mod: set[str] = set()
        #: direct imports of time.time / time.time_ns
        self._time_direct: set[str] = set()

    # -- import tracking ----------------------------------------------
    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.partition(".")[0]
            if alias.name == "numpy" or alias.name.startswith("numpy."):
                if alias.name == "numpy.random" and alias.asname:
                    self._nprandom.add(alias.asname)
                else:
                    self._numpy.add(bound)
            elif alias.name == "random":
                self._random_mod.add(alias.asname or "random")
            elif alias.name == "time":
                self._time_mod.add(alias.asname or "time")

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        if node.level:
            return  # relative import — never numpy/random/time
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._nprandom.add(alias.asname or "random")
        elif node.module == "numpy.random":
            for alias in node.names:
                self._np_direct[alias.asname or alias.name] = alias.name
        elif node.module == "random":
            for alias in node.names:
                if alias.name in _STDLIB_SAMPLERS:
                    self._random_direct[alias.asname or alias.name] = alias.name
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _CLOCK_FUNCTIONS:
                    self._time_direct.add(alias.asname or alias.name)

    # -- canonicalisation ---------------------------------------------
    def _canonical(self, func: ast.AST) -> str | None:
        """Resolve a call target to a canonical dotted name, if known."""
        if isinstance(func, ast.Name):
            if func.id in self._np_direct:
                return f"numpy.random.{self._np_direct[func.id]}"
            if func.id in self._random_direct:
                return f"random.{self._random_direct[func.id]}"
            if func.id in self._time_direct:
                return "time.time"
            return None
        parts = dotted_name(func)
        if parts is None or len(parts) < 2:
            return None
        head, rest = parts[0], parts[1:]
        if head in self._numpy and rest[0] == "random" and len(rest) == 2:
            return f"numpy.random.{rest[1]}"
        if head in self._nprandom and len(rest) == 1:
            return f"numpy.random.{rest[0]}"
        if head in self._random_mod and len(rest) == 1:
            return f"random.{rest[0]}"
        if head in self._time_mod and len(rest) == 1 and rest[0] in _CLOCK_FUNCTIONS:
            return "time.time"
        return None

    def _contains_clock_call(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and self._canonical(sub.func) == "time.time":
                return True
        return False

    # -- the checks ----------------------------------------------------
    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        name = self._canonical(node.func)
        if name == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                ctx.report(
                    self,
                    node,
                    "unseeded np.random.default_rng() — pass an explicit "
                    "seed or thread a generator from repro.core.rng",
                )
            elif len(node.args) == 1 and is_none_constant(node.args[0]):
                ctx.report(
                    self,
                    node,
                    "np.random.default_rng(None) draws OS entropy — pass "
                    "an explicit seed or thread a generator",
                )
        elif name == "numpy.random.RandomState":
            ctx.report(
                self,
                node,
                "legacy np.random.RandomState — use np.random.default_rng"
                "(seed) so streams can be spawned per point",
            )
        elif name is not None and name.startswith("numpy.random."):
            sampler = name.rpartition(".")[2]
            if sampler in _LEGACY_SAMPLERS:
                ctx.report(
                    self,
                    node,
                    f"np.random.{sampler}() samples NumPy's hidden global "
                    f"state — use a seeded Generator from repro.core.rng",
                )
        elif name is not None and name.startswith("random."):
            sampler = name.rpartition(".")[2]
            ctx.report(
                self,
                node,
                f"stdlib random.{sampler}() uses process-global state — "
                f"use a seeded numpy Generator instead",
            )

        # Wall-clock-derived seeds, wherever a seed can be supplied.
        seed_args: list[ast.AST] = []
        if name in (
            "numpy.random.default_rng",
            "numpy.random.RandomState",
            "numpy.random.SeedSequence",
            "numpy.random.seed",
        ):
            seed_args.extend(node.args)
        for keyword in node.keywords:
            if keyword.arg in ("seed", "rng"):
                seed_args.append(keyword.value)
        for arg in seed_args:
            if self._contains_clock_call(arg):
                ctx.report(
                    self,
                    arg,
                    "wall-clock-derived seed (time.time()) — seeds must be "
                    "explicit so runs can be replayed",
                )
