"""error-hygiene: no bare or silently-swallowing exception handlers.

The supervisor/executor/cache paths exist to *surface* failure as
structured error records; a ``except:`` (which also eats
``KeyboardInterrupt`` and ``SystemExit``, wedging shutdown) or a
``except Exception: pass`` (which turns a real fault into silence)
defeats the whole fault-tolerance design.  Narrow handlers with a stated
reason — ``except OSError: pass`` around a best-effort unlink — are
deliberate and pass untouched.

Flagged everywhere the analyzer looks (the rule is most critical in
``repro.exec`` but a silent swallow is never good):

* bare ``except:`` clauses;
* ``except Exception`` / ``except BaseException`` handlers whose body is
  only ``pass`` / ``...`` (with or without ``as exc``).
"""

from __future__ import annotations

import ast

from ..engine import FileContext, Rule, register_rule
from ._util import body_is_silent, terminal_name

__all__ = ["ErrorHygieneRule"]

_BROAD = frozenset({"Exception", "BaseException"})


def _names(type_node: ast.AST | None) -> list[str]:
    if type_node is None:
        return []
    if isinstance(type_node, ast.Tuple):
        out = []
        for element in type_node.elts:
            name = terminal_name(element)
            if name:
                out.append(name)
        return out
    name = terminal_name(type_node)
    return [name] if name else []


@register_rule
class ErrorHygieneRule(Rule):
    id = "error-hygiene"
    rationale = (
        "bare/silent broad handlers hide faults the supervision layer "
        "exists to surface (and eat KeyboardInterrupt on shutdown)"
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if node.type is None:
            ctx.report(
                self,
                node,
                "bare 'except:' also catches KeyboardInterrupt/SystemExit "
                "— name the exceptions (or 'except Exception' with real "
                "handling)",
            )
            return
        caught = _names(node.type)
        if any(name in _BROAD for name in caught) and body_is_silent(node.body):
            broad = next(name for name in caught if name in _BROAD)
            ctx.report(
                self,
                node,
                f"'except {broad}: pass' silently swallows every failure "
                f"— narrow the exception type or handle/record the error",
            )
