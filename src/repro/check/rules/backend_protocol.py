"""backend-protocol: registered backends must honour the dispatch protocol.

:func:`repro.core.backends.get_backend` dispatches every workload through
``run(circuit, initial, **options)`` / ``prepare(dims, digits, **options)``
and hands back results exposing ``expectation`` / ``sample`` /
``probabilities_of`` / ``probabilities``.  The base class enforces none
of this until the first call — a backend registered with a missing or
mis-shaped ``_run`` fails deep inside a campaign, possibly in a worker
process.  This rule checks the structure at analysis time:

* every class passed to ``register_backend`` must (transitively)
  subclass ``SimulationBackend`` and provide concrete ``_run`` /
  ``_prepare`` overrides;
* ``_run`` must accept ``(self, circuit, initial)`` plus arbitrary
  option keywords, and ``_prepare`` must accept ``(self, dims, digits)``
  likewise — the base class calls them exactly that way;
* every concrete ``BackendResult`` subclass must provide the full
  observable surface (``expectation``, ``sample``, ``probabilities_of``,
  ``probabilities``).

Resolution is structural and cross-file within the scanned set; classes
the scan cannot see are skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..engine import Analysis, FileContext, Rule, register_rule
from ._util import terminal_name

__all__ = ["BackendProtocolRule"]

_RESULT_METHODS = ("expectation", "sample", "probabilities_of", "probabilities")

#: ``(method, minimum positional params after self, param names hint)``
_BACKEND_METHODS = (
    ("_run", 2, "(self, circuit, initial, **options)"),
    ("_prepare", 2, "(self, dims, digits, **options)"),
)


@dataclass
class _MethodInfo:
    lineno: int
    n_positional: int  # positional params excluding self
    n_required: int  # positional params excluding self without defaults
    has_varargs: bool
    has_varkw: bool
    required_kwonly: tuple[str, ...]
    is_abstract: bool


@dataclass
class _ClassInfo:
    relpath: str
    lineno: int
    bases: tuple[str, ...]
    methods: dict[str, _MethodInfo] = field(default_factory=dict)

    @property
    def is_abstract(self) -> bool:
        return any(m.is_abstract for m in self.methods.values())


def _method_info(node: ast.FunctionDef | ast.AsyncFunctionDef) -> _MethodInfo:
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    n_positional = max(0, len(positional) - 1)  # drop self
    n_defaults = len(args.defaults)
    n_required = max(0, len(positional) - n_defaults - 1)
    required_kwonly = tuple(
        arg.arg
        for arg, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is None
    )
    is_abstract = any(
        terminal_name(dec) in ("abstractmethod", "abstractproperty")
        for dec in node.decorator_list
    )
    return _MethodInfo(
        lineno=node.lineno,
        n_positional=n_positional,
        n_required=n_required,
        has_varargs=args.vararg is not None,
        has_varkw=args.kwarg is not None,
        required_kwonly=required_kwonly,
        is_abstract=is_abstract,
    )


@register_rule
class BackendProtocolRule(Rule):
    id = "backend-protocol"
    rationale = (
        "a backend registered without the run/prepare/result surface "
        "fails deep inside a campaign instead of at registration"
    )

    def __init__(self) -> None:
        #: class name -> info, across every scanned file (last def wins).
        self._classes: dict[str, _ClassInfo] = {}
        #: (relpath, lineno, backend name, class name) registrations.
        self._registrations: list[tuple[str, int, str, str]] = []
        self._relpath = ""

    def begin_file(self, ctx: FileContext) -> None:
        self._relpath = ctx.relpath

    def visit_ClassDef(self, node: ast.ClassDef, ctx: FileContext) -> None:
        bases = tuple(
            name for name in (terminal_name(base) for base in node.bases) if name
        )
        info = _ClassInfo(relpath=ctx.relpath, lineno=node.lineno, bases=bases)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = _method_info(stmt)
        self._classes[node.name] = info

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if terminal_name(node.func) != "register_backend":
            return
        if not node.args or not isinstance(node.args[0], ast.Constant):
            return
        backend_name = node.args[0].value
        if not isinstance(backend_name, str) or backend_name == "auto":
            return  # "auto" is reserved; registering it raises at runtime
        cls_node = node.args[1] if len(node.args) > 1 else None
        for keyword in node.keywords:
            if keyword.arg == "backend_cls":
                cls_node = keyword.value
        cls_name = terminal_name(cls_node) if cls_node is not None else None
        if cls_name is None:
            return
        self._registrations.append(
            (ctx.relpath, node.lineno, backend_name, cls_name)
        )

    # -- resolution -----------------------------------------------------
    def _reaches(self, cls_name: str, root: str) -> bool:
        seen: set[str] = set()
        frontier = [cls_name]
        while frontier:
            name = frontier.pop()
            if name == root:
                return True
            if name in seen:
                continue
            seen.add(name)
            info = self._classes.get(name)
            if info is not None:
                frontier.extend(info.bases)
        return False

    def _resolve_method(self, cls_name: str, method: str) -> _MethodInfo | None:
        """First concrete definition of ``method`` along the base chain."""
        seen: set[str] = set()
        frontier = [cls_name]
        while frontier:
            name = frontier.pop(0)
            if name in seen:
                continue
            seen.add(name)
            info = self._classes.get(name)
            if info is None:
                continue
            found = info.methods.get(method)
            if found is not None and not found.is_abstract:
                return found
            frontier.extend(info.bases)
        return None

    def finish_run(self, analysis: Analysis) -> None:
        self._check_registrations(analysis)
        self._check_results(analysis)

    def _check_registrations(self, analysis: Analysis) -> None:
        for relpath, lineno, backend_name, cls_name in self._registrations:
            info = self._classes.get(cls_name)
            if info is None:
                continue  # defined outside the scanned set: cannot judge
            if not self._reaches(cls_name, "SimulationBackend"):
                analysis.report(
                    relpath,
                    lineno,
                    self.id,
                    f"backend {backend_name!r} registers {cls_name}, which "
                    f"does not subclass SimulationBackend",
                )
                continue
            for method, min_positional, shape in _BACKEND_METHODS:
                resolved = self._resolve_method(cls_name, method)
                if resolved is None:
                    analysis.report(
                        relpath,
                        lineno,
                        self.id,
                        f"backend {backend_name!r} registers {cls_name} "
                        f"without a concrete {method}{shape} implementation",
                    )
                    continue
                problem = self._signature_problem(resolved, min_positional)
                if problem is not None:
                    analysis.report(
                        info.relpath,
                        resolved.lineno,
                        self.id,
                        f"{cls_name}.{method} {problem} — the dispatch "
                        f"layer calls it as {method}{shape}",
                    )

    @staticmethod
    def _signature_problem(info: _MethodInfo, min_positional: int) -> str | None:
        if info.n_positional < min_positional and not info.has_varargs:
            return (
                f"accepts {info.n_positional} positional argument(s) "
                f"after self, needs {min_positional}"
            )
        if info.n_required > min_positional:
            return (
                f"requires {info.n_required} positional arguments — extras "
                f"beyond {min_positional} must carry defaults"
            )
        if info.required_kwonly and not info.has_varkw:
            names = ", ".join(info.required_kwonly)
            return f"has required keyword-only parameter(s) {names}"
        if not info.has_varkw:
            return "must accept arbitrary **options keywords"
        return None

    def _check_results(self, analysis: Analysis) -> None:
        for cls_name, info in sorted(self._classes.items()):
            if cls_name == "BackendResult":
                continue
            if not self._reaches(cls_name, "BackendResult"):
                continue
            if info.is_abstract:
                continue  # intermediate abstract result helpers
            missing = [
                method
                for method in _RESULT_METHODS
                if self._resolve_method(cls_name, method) is None
            ]
            if missing:
                analysis.report(
                    info.relpath,
                    info.lineno,
                    self.id,
                    f"result class {cls_name} is missing the backend-result "
                    f"surface: {', '.join(missing)}",
                )
