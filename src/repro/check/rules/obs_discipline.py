"""obs-discipline: metric names and label sets must stay coherent.

The observability layer merges metrics across processes by *name*: a
counter family named two different ways never aggregates, a name that is
not Prometheus-safe breaks exposition, and one metric name used with two
different label sets produces samples that cannot be compared or summed
(``exec_points{source=...}`` at one call site and bare ``exec_points`` at
another silently splits the family).

Checked at every ``inc`` / ``observe`` / ``set_gauge`` call site reached
through :mod:`repro.obs` (module helpers or registry methods):

* literal metric names must match ``^[a-z][a-z0-9_]*$``;
* across the whole scanned set, each metric name must use one consistent
  label-keyword set (sites with ``**dynamic`` labels are skipped — they
  cannot be judged statically).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from ..engine import Analysis, FileContext, Rule, register_rule
from ._util import dotted_name

__all__ = ["ObsDisciplineRule"]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Sample-recording helpers: first positional argument is the metric
#: name; the observed value is positional or the ``value`` keyword.
_SAMPLE_HELPERS = frozenset({"inc", "observe", "set_gauge"})

#: Registry family constructors (name hygiene only — registration calls
#: carry no labels).
_FAMILY_HELPERS = frozenset({"counter", "gauge", "histogram"})


@dataclass(frozen=True)
class _Site:
    relpath: str
    lineno: int
    labels: tuple[str, ...]


@register_rule
class ObsDisciplineRule(Rule):
    id = "obs-discipline"
    rationale = (
        "metric families merge across processes by name — bad names or "
        "per-site label drift silently split a family"
    )

    def __init__(self) -> None:
        #: metric name -> observed call sites, across the whole run.
        self._sites: dict[str, list[_Site]] = {}

    def begin_file(self, ctx: FileContext) -> None:
        #: local names bound to the repro.obs / repro.obs.metrics modules.
        self._module_aliases: set[str] = set()
        #: local names bound directly to inc/observe/set_gauge helpers.
        self._helper_aliases: dict[str, str] = {}
        #: local names bound to a metrics registry (REGISTRY / imports).
        self._registry_aliases: set[str] = {"REGISTRY"}

    # -- import tracking ----------------------------------------------
    @staticmethod
    def _is_obs_module(module: str | None) -> bool:
        if module is None:
            return False
        return module == "obs" or module.endswith(".obs") or module == "repro.obs"

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        for alias in node.names:
            if alias.name in ("repro.obs", "repro.obs.metrics"):
                if alias.asname:
                    self._module_aliases.add(alias.asname)

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        module = node.module
        from_obs = self._is_obs_module(module)
        from_metrics = module is not None and (
            module == "metrics" or module.endswith(".metrics")
        )
        if not (from_obs or from_metrics or node.level or module == "repro"):
            return
        for alias in node.names:
            bound = alias.asname or alias.name
            if alias.name in ("metrics", "obs") and (
                from_obs or node.level or module == "repro"
            ):
                self._module_aliases.add(bound)
            elif alias.name in _SAMPLE_HELPERS and (from_obs or from_metrics):
                self._helper_aliases[bound] = alias.name
            elif alias.name == "REGISTRY" and (from_obs or from_metrics):
                self._registry_aliases.add(bound)

    # -- call classification -------------------------------------------
    def _classify(self, func: ast.AST) -> str | None:
        """``"inc"``/``"observe"``/``"set_gauge"``/``"family"`` or None."""
        if isinstance(func, ast.Name):
            return self._helper_aliases.get(func.id)
        parts = dotted_name(func)
        if parts is None or len(parts) < 2:
            return None
        head, tail = parts[0], parts[-1]
        if tail in _SAMPLE_HELPERS and head in self._module_aliases:
            return tail
        if tail in _FAMILY_HELPERS and (
            head in self._registry_aliases
            or (head in self._module_aliases and parts[-2] == "REGISTRY")
        ):
            return "family"
        return None

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        kind = self._classify(node.func)
        if kind is None:
            return
        if not node.args:
            name_node = next(
                (kw.value for kw in node.keywords if kw.arg == "name"), None
            )
        else:
            name_node = node.args[0]
        if not isinstance(name_node, ast.Constant) or not isinstance(
            name_node.value, str
        ):
            return  # dynamic names cannot be judged statically
        name = name_node.value
        if not _NAME_RE.match(name):
            ctx.report(
                self,
                node,
                f"metric name {name!r} must match ^[a-z][a-z0-9_]*$ "
                f"(Prometheus-safe, one style across the codebase)",
            )
            return
        if kind == "family":
            return  # registrations carry no label sets
        if any(kw.arg is None for kw in node.keywords):
            return  # **dynamic labels: skip consistency tracking
        labels = tuple(
            sorted(
                kw.arg
                for kw in node.keywords
                if kw.arg is not None and kw.arg not in ("value", "name")
            )
        )
        self._sites.setdefault(name, []).append(
            _Site(ctx.relpath, node.lineno, labels)
        )

    # -- cross-file consistency ----------------------------------------
    def finish_run(self, analysis: Analysis) -> None:
        for name in sorted(self._sites):
            sites = sorted(
                self._sites[name], key=lambda s: (s.relpath, s.lineno)
            )
            label_sets = sorted({site.labels for site in sites})
            if len(label_sets) <= 1:
                continue
            rendered = " vs ".join(
                "{" + ", ".join(labels) + "}" if labels else "{}"
                for labels in label_sets
            )
            first = sites[0]
            anchor = next(
                site for site in sites if site.labels != first.labels
            )
            analysis.report(
                anchor.relpath,
                anchor.lineno,
                self.id,
                f"metric {name!r} is recorded with conflicting label sets "
                f"({rendered}) — one name must keep one label set",
            )
