"""obs-discipline: metric names and label sets must stay coherent.

The observability layer merges metrics across processes by *name*: a
counter family named two different ways never aggregates, a name that is
not Prometheus-safe breaks exposition, and one metric name used with two
different label sets produces samples that cannot be compared or summed
(``exec_points{source=...}`` at one call site and bare ``exec_points`` at
another silently splits the family).

Checked at every ``inc`` / ``observe`` / ``set_gauge`` call site reached
through :mod:`repro.obs` — module helpers, registry methods, *bound*
metric objects (``hits = REGISTRY.counter("cache_hits")`` followed by
``hits.inc(...)``), registry aliases (``reg = _metrics.REGISTRY``), and
chained registration-then-record calls
(``REGISTRY.counter("n").inc(...)``):

* literal metric names must match ``^[a-z][a-z0-9_]*$``;
* across the whole scanned set, each metric name must use one consistent
  label-keyword set (sites with ``**dynamic`` labels are skipped — they
  cannot be judged statically).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from ..engine import Analysis, FileContext, Rule, register_rule
from ._util import dotted_name

__all__ = ["ObsDisciplineRule"]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Sample-recording helpers: first positional argument is the metric
#: name; the observed value is positional or the ``value`` keyword.
_SAMPLE_HELPERS = frozenset({"inc", "observe", "set_gauge"})

#: Registry family constructors (name hygiene only — registration calls
#: carry no labels).
_FAMILY_HELPERS = frozenset({"counter", "gauge", "histogram"})

#: Sample-recording methods on bound metric objects (Counter.inc,
#: Gauge.set, Histogram.observe) — the value is the first positional.
_BOUND_METHODS = frozenset({"inc", "observe", "set"})


@dataclass(frozen=True)
class _Site:
    relpath: str
    lineno: int
    labels: tuple[str, ...]


@register_rule
class ObsDisciplineRule(Rule):
    id = "obs-discipline"
    rationale = (
        "metric families merge across processes by name — bad names or "
        "per-site label drift silently split a family"
    )

    def __init__(self) -> None:
        #: metric name -> observed call sites, across the whole run.
        self._sites: dict[str, list[_Site]] = {}

    def begin_file(self, ctx: FileContext) -> None:
        #: local names bound to the repro.obs / repro.obs.metrics modules.
        self._module_aliases: set[str] = set()
        #: local names bound directly to inc/observe/set_gauge helpers.
        self._helper_aliases: dict[str, str] = {}
        #: local names bound to a metrics registry (REGISTRY / imports /
        #: ``reg = _metrics.REGISTRY`` assignments).
        self._registry_aliases: set[str] = {"REGISTRY"}
        #: local names bound to a metric object -> its family name
        #: (``hits = REGISTRY.counter("cache_hits")``).
        self._bound_metrics: dict[str, str] = {}

    # -- import tracking ----------------------------------------------
    @staticmethod
    def _is_obs_module(module: str | None) -> bool:
        if module is None:
            return False
        return module == "obs" or module.endswith(".obs") or module == "repro.obs"

    def visit_Import(self, node: ast.Import, ctx: FileContext) -> None:
        for alias in node.names:
            if alias.name in ("repro.obs", "repro.obs.metrics"):
                if alias.asname:
                    self._module_aliases.add(alias.asname)

    def visit_ImportFrom(self, node: ast.ImportFrom, ctx: FileContext) -> None:
        module = node.module
        from_obs = self._is_obs_module(module)
        from_metrics = module is not None and (
            module == "metrics" or module.endswith(".metrics")
        )
        if not (from_obs or from_metrics or node.level or module == "repro"):
            return
        for alias in node.names:
            bound = alias.asname or alias.name
            if alias.name in ("metrics", "obs") and (
                from_obs or node.level or module == "repro"
            ):
                self._module_aliases.add(bound)
            elif alias.name in _SAMPLE_HELPERS and (from_obs or from_metrics):
                self._helper_aliases[bound] = alias.name
            elif alias.name == "REGISTRY" and (from_obs or from_metrics):
                self._registry_aliases.add(bound)

    # -- assignment tracking -------------------------------------------
    def _family_literal(self, value: ast.AST) -> str | None:
        """The literal metric name when ``value`` is a registration call."""
        if not isinstance(value, ast.Call):
            return None
        if self._classify(value.func) != "family":
            return None
        if value.args:
            name_node: ast.AST | None = value.args[0]
        else:
            name_node = next(
                (kw.value for kw in value.keywords if kw.arg == "name"), None
            )
        if isinstance(name_node, ast.Constant) and isinstance(name_node.value, str):
            return name_node.value
        return None

    def _is_registry_expr(self, value: ast.AST) -> bool:
        if isinstance(value, ast.Name):
            return value.id in self._registry_aliases
        parts = dotted_name(value)
        return (
            parts is not None
            and len(parts) == 2
            and parts[1] == "REGISTRY"
            and parts[0] in self._module_aliases
        )

    def visit_Assign(self, node: ast.Assign, ctx: FileContext) -> None:
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if not targets:
            return
        family = self._family_literal(node.value)
        if family is not None:
            for target in targets:
                self._bound_metrics[target] = family
                if target != "REGISTRY":
                    self._registry_aliases.discard(target)
            return
        if self._is_registry_expr(node.value):
            for target in targets:
                self._registry_aliases.add(target)
                self._bound_metrics.pop(target, None)
            return
        # Any other assignment shadows a previously tracked binding.
        for target in targets:
            self._bound_metrics.pop(target, None)
            if target != "REGISTRY":
                self._registry_aliases.discard(target)

    # -- call classification -------------------------------------------
    def _classify(self, func: ast.AST) -> str | None:
        """``"inc"``/``"observe"``/``"set_gauge"``/``"family"`` or None."""
        if isinstance(func, ast.Name):
            return self._helper_aliases.get(func.id)
        parts = dotted_name(func)
        if parts is None or len(parts) < 2:
            return None
        head, tail = parts[0], parts[-1]
        if tail in _SAMPLE_HELPERS and head in self._module_aliases:
            return tail
        if tail in _FAMILY_HELPERS and (
            head in self._registry_aliases
            or (head in self._module_aliases and parts[-2] == "REGISTRY")
        ):
            return "family"
        return None

    def _track_labels(self, name: str, node: ast.Call, ctx: FileContext) -> None:
        """Record one sample site's label-keyword set for ``name``."""
        if any(kw.arg is None for kw in node.keywords):
            return  # **dynamic labels: skip consistency tracking
        labels = tuple(
            sorted(
                kw.arg
                for kw in node.keywords
                if kw.arg is not None and kw.arg not in ("value", "name")
            )
        )
        self._sites.setdefault(name, []).append(
            _Site(ctx.relpath, node.lineno, labels)
        )

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _BOUND_METHODS:
            # hits.inc(...) on a bound metric, or the chained
            # REGISTRY.counter("n").inc(...) — the family name lives at
            # the binding/registration, not in this call's arguments.
            family: str | None = None
            if isinstance(func.value, ast.Name):
                family = self._bound_metrics.get(func.value.id)
            elif isinstance(func.value, ast.Call):
                family = self._family_literal(func.value)
            if family is not None:
                # Name hygiene was checked where the family was
                # registered; this site only contributes its label set.
                self._track_labels(family, node, ctx)
                return
        kind = self._classify(func)
        if kind is None:
            return
        if not node.args:
            name_node = next(
                (kw.value for kw in node.keywords if kw.arg == "name"), None
            )
        else:
            name_node = node.args[0]
        if not isinstance(name_node, ast.Constant) or not isinstance(
            name_node.value, str
        ):
            return  # dynamic names cannot be judged statically
        name = name_node.value
        if not _NAME_RE.match(name):
            ctx.report(
                self,
                node,
                f"metric name {name!r} must match ^[a-z][a-z0-9_]*$ "
                f"(Prometheus-safe, one style across the codebase)",
            )
            return
        if kind == "family":
            return  # registrations carry no label sets
        self._track_labels(name, node, ctx)

    # -- cross-file consistency ----------------------------------------
    def finish_run(self, analysis: Analysis) -> None:
        for name in sorted(self._sites):
            sites = sorted(
                self._sites[name], key=lambda s: (s.relpath, s.lineno)
            )
            label_sets = sorted({site.labels for site in sites})
            if len(label_sets) <= 1:
                continue
            rendered = " vs ".join(
                "{" + ", ".join(labels) + "}" if labels else "{}"
                for labels in label_sets
            )
            first = sites[0]
            anchor = next(
                site for site in sites if site.labels != first.labels
            )
            analysis.report(
                anchor.relpath,
                anchor.lineno,
                self.id,
                f"metric {name!r} is recorded with conflicting label sets "
                f"({rendered}) — one name must keep one label set",
            )
