"""Built-in rules — importing this package registers them all.

Rule ids (stable; the suppression and baseline currency):

* ``seed-discipline`` — no unseeded / global-state / wall-clock-derived
  randomness; thread :mod:`repro.core.rng` generators or explicit seeds.
* ``pickle-safety`` — campaign tasks must be importable module-level
  functions that do not mutate module globals.
* ``backend-protocol`` — classes registered with ``register_backend``
  must structurally implement the run/prepare/result protocol.
* ``obs-discipline`` — metric names are Prometheus-safe and each name
  keeps one label set across every call site.
* ``error-hygiene`` — no bare ``except:`` and no silently-swallowing
  broad handlers.

Third-party rules register the same way: subclass
:class:`repro.check.Rule`, decorate with :func:`repro.check.register_rule`,
and import the module before invoking the engine.
"""

from .backend_protocol import BackendProtocolRule
from .error_hygiene import ErrorHygieneRule
from .obs_discipline import ObsDisciplineRule
from .pickle_safety import PickleSafetyRule
from .seed_discipline import SeedDisciplineRule

__all__ = [
    "BackendProtocolRule",
    "ErrorHygieneRule",
    "ObsDisciplineRule",
    "PickleSafetyRule",
    "SeedDisciplineRule",
]
