"""pickle-safety: campaign tasks must survive the process boundary.

Worker processes import a task by its ``"module:function"`` reference
(:func:`repro.exec.sweep.resolve_task`), so a task callable handed to
``Campaign`` / ``task_ref`` / ``submit`` / ``run_campaign`` must be a
module-level function: a lambda has no importable name, and a function
defined inside another function exists only in the defining frame.  Both
fail at dispatch time today — this rule moves the failure to the editor.

The rule also flags tasks that declare ``global`` and rebind module
state: a worker's module globals live in the worker, so the mutation
silently never reaches the parent (and, under retries, not even the next
attempt on a different worker).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..engine import FileContext, Rule, register_rule
from ._util import terminal_name

__all__ = ["PickleSafetyRule"]

#: Call targets whose task argument must be a module-level callable.
#: ``Campaign(task=...)`` and ``task_ref(fn)`` carry the callable itself;
#: ``submit`` / ``run_campaign`` take a Campaign but are checked too so a
#: lambda passed directly (the historical runner signature) is caught.
_TASK_CALLS = frozenset({"Campaign", "task_ref", "submit", "run_campaign"})


@dataclass
class _FunctionInfo:
    node: ast.AST
    depth: int
    declares_global: bool = False
    global_names: list[str] = field(default_factory=list)


@register_rule
class PickleSafetyRule(Rule):
    id = "pickle-safety"
    rationale = (
        "campaign tasks cross a process boundary by import reference — "
        "lambdas, closures, and global-mutating tasks break workers"
    )

    def begin_file(self, ctx: FileContext) -> None:
        #: function name -> info, module- and nested-level defs alike.
        self._functions: dict[str, _FunctionInfo] = {}
        #: lexical function-nesting stack (class bodies do not count:
        #: ``Class.method`` resolves through getattr in resolve_task).
        self._stack: list[_FunctionInfo] = []
        #: (call node, task expression) pairs, judged in finish_file.
        self._sites: list[tuple[ast.Call, ast.AST]] = []

    # -- scope tracking ------------------------------------------------
    def _enter_function(self, node: ast.AST) -> None:
        info = _FunctionInfo(node=node, depth=len(self._stack))
        name = getattr(node, "name", None)
        if name is not None:
            # Later defs shadow earlier ones, matching runtime rebinding.
            self._functions[name] = info
        self._stack.append(info)

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._enter_function(node)

    def leave_FunctionDef(self, node: ast.FunctionDef, ctx: FileContext) -> None:
        self._stack.pop()

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        self._enter_function(node)

    def leave_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, ctx: FileContext
    ) -> None:
        self._stack.pop()

    def visit_Global(self, node: ast.Global, ctx: FileContext) -> None:
        if self._stack:
            self._stack[0].declares_global = True
            self._stack[0].global_names.extend(node.names)

    # -- task call sites -----------------------------------------------
    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        callee = terminal_name(node.func)
        if callee not in _TASK_CALLS:
            return
        task: ast.AST | None = None
        for keyword in node.keywords:
            if keyword.arg == "task":
                task = keyword.value
                break
        if task is None and node.args:
            task = node.args[0]
        if task is None:
            return
        if callee in ("submit", "run_campaign") and not isinstance(task, ast.Lambda):
            return  # their argument is a Campaign object, not the task
        self._sites.append((node, task))

    def finish_file(self, ctx: FileContext) -> None:
        for call, task in self._sites:
            if isinstance(task, ast.Lambda):
                ctx.report(
                    self,
                    task,
                    "campaign task is a lambda — workers import tasks by "
                    "'module:function' reference, so tasks must be "
                    "module-level functions",
                )
                continue
            if not isinstance(task, ast.Name):
                continue  # attribute/call expressions: not judgeable here
            info = self._functions.get(task.id)
            if info is None:
                continue  # imported or defined elsewhere: assumed module-level
            if info.depth > 0:
                ctx.report(
                    self,
                    call,
                    f"campaign task {task.id!r} is a nested function — it "
                    f"only exists in the defining frame and cannot be "
                    f"imported by worker processes",
                )
            elif info.declares_global:
                names = ", ".join(sorted(set(info.global_names)))
                ctx.report(
                    self,
                    call,
                    f"campaign task {task.id!r} mutates module global(s) "
                    f"{names} — worker-side mutation never propagates to "
                    f"the parent process",
                )
