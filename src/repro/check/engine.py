"""The analysis engine: one parse per file, all rules in one walk.

Every scanned file is read and parsed exactly once.  A single recursive
walk over the AST dispatches each node to every active rule that declares
a ``visit_<NodeType>`` method (plus ``leave_<NodeType>`` on the way back
up, which is how rules track lexical scope without their own traversal).
Rules report :class:`Finding` objects carrying ``path:line``, a rule id,
and a message; the engine drops findings suppressed by an inline
``# repro: ignore[rule-id]`` comment on the offending line.

Cross-file rules (protocol conformance, metric-label consistency) hold
state on the rule instance across files and emit their findings from
``finish_run`` — suppression still applies, because the engine keeps each
file's suppression map for the whole run.

The rule registry is a plugin point: subclass :class:`Rule`, decorate
with :func:`register_rule`, and the CLI picks it up by id.  Rule ids are
kebab-case and stable — they are the suppression and baseline currency.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

__all__ = [
    "Finding",
    "Rule",
    "FileContext",
    "Analysis",
    "register_rule",
    "rule_ids",
    "get_rules",
    "run_check",
    "discover_files",
]

#: ``# repro: ignore`` (all rules) or ``# repro: ignore[id, id]``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_\-, ]*)\])?")

#: Finding identity used by the baseline: deliberately excludes the line
#: number, so grandfathered findings survive unrelated edits above them.
_FINGERPRINT_SEP = "::"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def fingerprint(self) -> str:
        """Line-independent identity for baseline matching."""
        return _FINGERPRINT_SEP.join((self.path, self.rule, self.message))

    def render(self) -> str:
        """Human one-liner: ``path:line: [rule-id] message``."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


class Rule:
    """Base class for analysis rules.

    Subclasses set :attr:`id` (kebab-case, stable — the suppression and
    baseline currency) and :attr:`rationale` (one line, shown by
    ``--list-rules`` and the README table), implement any
    ``visit_<NodeType>(node, ctx)`` / ``leave_<NodeType>(node, ctx)``
    methods they need, and report through ``ctx.report``.  Rules holding
    cross-file state emit from :meth:`finish_run`.
    """

    id: str = ""
    rationale: str = ""

    def begin_file(self, ctx: "FileContext") -> None:
        """Reset per-file state (called before the walk)."""

    def finish_file(self, ctx: "FileContext") -> None:
        """Emit findings that need the whole file (called after the walk)."""

    def finish_run(self, analysis: "Analysis") -> None:
        """Emit cross-file findings (called once, after every file)."""


_RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _RULES:
        raise ValueError(f"rule id {cls.id!r} is already registered")
    _RULES[cls.id] = cls
    return cls


def rule_ids() -> tuple[str, ...]:
    """Sorted ids of every registered rule."""
    return tuple(sorted(_RULES))


def get_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Instantiate the selected rules (default: all), in id order.

    Args:
        select: rule ids to activate; unknown ids raise ``ValueError``.
    """
    if select is None:
        wanted = list(rule_ids())
    else:
        wanted = list(select)
        unknown = [rid for rid in wanted if rid not in _RULES]
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {', '.join(sorted(unknown))!s}; "
                f"known: {', '.join(rule_ids())}"
            )
    return [_RULES[rid]() for rid in sorted(set(wanted))]


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """Map line number -> suppressed rule ids (``None`` = all rules).

    Comments are found with :mod:`tokenize`, never with a regex over raw
    lines, so a ``# repro: ignore`` *inside a string literal* (fixture
    snippets, docs) can never suppress anything.
    """
    out: dict[int, set[str] | None] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            line = tok.start[0]
            ids = match.group(1)
            if ids is None:
                out[line] = None
            elif out.get(line, set()) is not None:
                current = out.setdefault(line, set())
                assert current is not None
                current.update(
                    part.strip() for part in ids.split(",") if part.strip()
                )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return out
    return out


class FileContext:
    """Everything the rules may need about one parsed file."""

    def __init__(self, path: Path, relpath: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.suppressions = _suppressions(source)
        self._analysis: "Analysis | None" = None

    def suppressed(self, rule_id: str, line: int) -> bool:
        """True if an inline comment silences ``rule_id`` on ``line``."""
        if line not in self.suppressions:
            return False
        ids = self.suppressions[line]
        return ids is None or rule_id in ids

    def report(self, rule: Rule | str, node: ast.AST | int, message: str) -> None:
        """File a finding (dropped silently if suppressed inline)."""
        assert self._analysis is not None
        rule_id = rule if isinstance(rule, str) else rule.id
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        self._analysis.report(self.relpath, line, rule_id, message)


class Analysis:
    """One run of the engine over a set of files."""

    def __init__(self, rules: Sequence[Rule], root: Path | None = None) -> None:
        self.rules = list(rules)
        self.root = Path(root) if root is not None else Path.cwd()
        self.findings: list[Finding] = []
        self.suppressed_count = 0
        self.files: dict[str, FileContext] = {}
        #: visit/leave method cache: (rule index, node type) -> methods.
        self._dispatch: dict[str, list[tuple[Callable, Callable]]] = {}

    # -- reporting -----------------------------------------------------
    def report(self, relpath: str, line: int, rule_id: str, message: str) -> None:
        """File a finding unless the target line suppresses the rule."""
        ctx = self.files.get(relpath)
        if ctx is not None and ctx.suppressed(rule_id, line):
            self.suppressed_count += 1
            return
        self.findings.append(Finding(relpath, line, rule_id, message))

    # -- walking -------------------------------------------------------
    def _handlers(self, type_name: str) -> list[tuple[Callable, Callable]]:
        cached = self._dispatch.get(type_name)
        if cached is None:
            cached = []
            for rule in self.rules:
                visit = getattr(rule, f"visit_{type_name}", None)
                leave = getattr(rule, f"leave_{type_name}", None)
                if visit is not None or leave is not None:
                    cached.append((visit, leave))
            self._dispatch[type_name] = cached
        return cached

    def _walk(self, node: ast.AST, ctx: FileContext) -> None:
        handlers = self._handlers(type(node).__name__)
        for visit, _ in handlers:
            if visit is not None:
                visit(node, ctx)
        for child in ast.iter_child_nodes(node):
            self._walk(child, ctx)
        for _, leave in handlers:
            if leave is not None:
                leave(node, ctx)

    def check_file(self, path: Path) -> None:
        """Parse one file (once) and run every rule over it."""
        relpath = self._relpath(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            line = getattr(exc, "lineno", None) or 1
            self.findings.append(
                Finding(relpath, int(line), "parse-error", f"cannot analyse: {exc}")
            )
            return
        ctx = FileContext(path, relpath, source, tree)
        ctx._analysis = self
        self.files[relpath] = ctx
        for rule in self.rules:
            rule.begin_file(ctx)
        self._walk(tree, ctx)
        for rule in self.rules:
            rule.finish_file(ctx)

    def finish(self) -> list[Finding]:
        """Run the cross-file passes and return sorted findings."""
        for rule in self.rules:
            rule.finish_run(self)
        self.findings.sort()
        return self.findings

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list.

    ``__pycache__`` and hidden directories are skipped.  A named path
    that does not exist raises ``FileNotFoundError`` — a typo'd CLI path
    must not silently scan nothing.
    """
    seen: set[Path] = set()
    out: list[Path] = []

    def _add(path: Path) -> None:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            out.append(path)

    for raw in paths:
        path = Path(raw)
        if path.is_file():
            _add(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = sub.relative_to(path).parts
                if any(p == "__pycache__" or p.startswith(".") for p in parts):
                    continue
                _add(sub)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    out.sort(key=lambda p: p.as_posix())
    return out


def run_check(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    root: Path | None = None,
) -> Analysis:
    """Run the selected rules over the given paths.

    Args:
        paths: files and/or directories to scan.
        select: rule ids to run (default: every registered rule).
        root: base for the relative paths in findings (default: cwd).

    Returns:
        The finished :class:`Analysis` (``.findings`` is sorted).
    """
    analysis = Analysis(get_rules(select), root=root)
    for path in discover_files(paths):
        analysis.check_file(path)
    analysis.finish()
    return analysis
