"""CSUM gate compilation — the paper's headline engineering challenge.

Table I lists "synthesis of CSUM between co-located and adjacent qumodes"
as the main challenge for both the sQED and the optimisation campaigns.
This module provides the constructive route::

    CSUM = (I ⊗ F†) . CPHASE . (I ⊗ F)

where ``CPHASE = sum_{a,b} w^{ab} |a,b><a,b|`` is the diagonal cross-Kerr
entangler (native, one dispersive-interaction pulse) and each Fourier gate
lowers to SNAP+displacement layers on the target mode.  It also exposes a
cost/fidelity model distinguishing co-located from adjacent mode pairs.
"""

from __future__ import annotations

from dataclasses import dataclass


from ...core.circuit import QuditCircuit
from ...core.exceptions import SynthesisError
from ...core.gates import fourier
from ...hardware.device import CavityQPU
from ...hardware.noise_model import DeviceNoiseModel

__all__ = ["csum_circuit", "CsumCostModel", "csum_cost"]


def csum_circuit(
    d_control: int, d_target: int | None = None, inverse: bool = False
) -> QuditCircuit:
    """Two-wire circuit implementing CSUM via the Fourier route.

    Wire 0 is the control, wire 1 the target.  ``inverse=True`` builds
    CSUM† (subtraction), used by the Trotter circuits to uncompute.

    Raises:
        SynthesisError: for mixed dimensions — the Fourier route requires
            ``d_control == d_target`` (the general case goes through
            :mod:`repro.compile.synthesis.twoqudit`).
    """
    d_target = d_control if d_target is None else d_target
    if d_control != d_target:
        raise SynthesisError(
            "Fourier-route CSUM needs equal dims; use twoqudit synthesis"
        )
    d = d_control
    qc = QuditCircuit([d, d], name="csum" + ("_dg" if inverse else ""))
    qc.fourier(1)
    qc.controlled_phase(0, 1, strength=-1.0 if inverse else 1.0)
    # F† on the target: apply the dagger of the Fourier matrix.
    qc.unitary(fourier(d).conj().T, 1, name="fourier_dg")
    return qc


@dataclass(frozen=True)
class CsumCostModel:
    """Resource/fidelity accounting for one CSUM on a device.

    Attributes:
        d: qudit dimension.
        edge_kind: ``'colocated'`` or ``'adjacent'``.
        n_snap: SNAP layers consumed (Fourier conjugation).
        n_disp: displacement pulses consumed.
        n_cphase: entangling dispersive pulses (always 1 on this route).
        duration: wall-clock duration in seconds.
        fidelity: first-order fidelity estimate from the noise model.
    """

    d: int
    edge_kind: str
    n_snap: int
    n_disp: int
    n_cphase: int
    duration: float
    fidelity: float


def csum_cost(
    device: CavityQPU,
    mode_a: int,
    mode_b: int,
    noise_model: DeviceNoiseModel | None = None,
) -> CsumCostModel:
    """Cost of a CSUM between two connected physical modes.

    Adjacent-cavity pairs pay a 2x slower entangling pulse (weaker
    inter-cavity coupling), which is exactly the co-located vs adjacent
    distinction Table I highlights.

    Raises:
        SynthesisError: if the modes are not directly connected (route
            through the transpiler first).
    """
    if not device.are_connected(mode_a, mode_b):
        raise SynthesisError(
            f"modes {mode_a}, {mode_b} are not connected; routing required"
        )
    d_a = device.modes[mode_a].dim
    d_b = device.modes[mode_b].dim
    if d_a != d_b:
        raise SynthesisError("csum_cost assumes equal mode dimensions")
    d = d_a
    kind = device.edge_kind(mode_a, mode_b)
    # Fourier + inverse Fourier on the target: 2 * (d + 1) SNAP layers and
    # as many displacements (see LOWERING_RULES); one cphase pulse.
    n_snap = 2 * (d + 1)
    n_disp = 2 * (d + 1)
    n_cphase = 1
    timings = device.timings
    cphase_duration = device.two_mode_duration(mode_a, mode_b, timings.cross_kerr)
    duration = (
        n_snap * timings.snap + n_disp * timings.displacement + cphase_duration
    )
    noise_model = noise_model or DeviceNoiseModel(device)
    fid = 1.0
    for _ in range(n_snap):
        fid *= noise_model.gate_fidelity("snap", (mode_b,))
    for _ in range(n_disp):
        fid *= noise_model.gate_fidelity("disp", (mode_b,))
    fid *= noise_model.gate_fidelity("cphase", (mode_a, mode_b))
    if kind == "adjacent":
        # The 2x longer entangling pulse doubles its decoherence exposure.
        fid *= noise_model.gate_fidelity("cphase", (mode_a, mode_b))
    return CsumCostModel(
        d=d,
        edge_kind=kind,
        n_snap=n_snap,
        n_disp=n_disp,
        n_cphase=n_cphase,
        duration=duration,
        fidelity=fid,
    )
