"""Variational SNAP + displacement synthesis of single-mode unitaries.

Reproduces the numerical gate-synthesis pipeline of Ozguler & Venturelli
(ref [20]) and the direct-compilation idea of Job (ref [24]): a target
``d``-level unitary is approximated by the alternating sequence::

    V = D(alpha_L) . S(theta_L) . D(alpha_{L-1}) ... S(theta_1) . D(alpha_0)

acting on a Fock space truncated above the target dimension (guard levels
absorb transient population).  Parameters are optimised with BFGS from a
handful of random starts; the figure of merit is the projective gate
fidelity on the computational subspace.

The paper's claim C2 — >99% fidelity for single-qudit rotations up to
d = 8 — is reproduced by ``benchmarks/bench_synthesis.py`` using this
module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from ...core.exceptions import SynthesisError
from ...core.gates import displacement, snap

__all__ = [
    "SnapDisplacementSequence",
    "SynthesisResult",
    "synthesize_unitary",
    "subspace_fidelity",
    "default_layer_count",
]


def subspace_fidelity(
    achieved: np.ndarray, target: np.ndarray, d_target: int
) -> float:
    """Projective gate fidelity on the first ``d_target`` levels.

    ``F = |Tr(P U_t† V P)|^2 / d^2`` where ``P`` projects onto the
    computational subspace.  Equals 1 iff ``V`` acts as ``U_t`` (up to a
    global phase) on that subspace with no leakage.
    """
    block = achieved[:d_target, :d_target]
    overlap = np.trace(np.asarray(target, dtype=complex).conj().T @ block)
    return float(abs(overlap) ** 2 / d_target**2)


@dataclass(frozen=True)
class SnapDisplacementSequence:
    """A concrete D-S-D-...-S-D pulse-layer sequence.

    Attributes:
        d_sim: simulation (truncated Fock) dimension, >= d_target.
        d_target: computational subspace dimension.
        alphas: complex displacement amplitudes, length ``n_layers + 1``.
        snap_phases: per-layer SNAP phase vectors, shape ``(n_layers, d_sim)``.
    """

    d_sim: int
    d_target: int
    alphas: tuple[complex, ...]
    snap_phases: tuple[tuple[float, ...], ...]

    @property
    def n_layers(self) -> int:
        """Number of SNAP layers."""
        return len(self.snap_phases)

    def matrix(self) -> np.ndarray:
        """Dense ``d_sim x d_sim`` operator of the full sequence."""
        out = displacement(self.d_sim, self.alphas[0])
        for layer, phases in enumerate(self.snap_phases):
            out = snap(self.d_sim, phases) @ out
            out = displacement(self.d_sim, self.alphas[layer + 1]) @ out
        return out

    def gate_counts(self) -> dict[str, int]:
        """Native gate counts of the sequence."""
        return {"snap": self.n_layers, "disp": self.n_layers + 1}


@dataclass(frozen=True)
class SynthesisResult:
    """Outcome of a synthesis run."""

    sequence: SnapDisplacementSequence
    fidelity: float
    infidelity: float
    n_iterations: int
    n_restarts_used: int

    def achieved_unitary(self) -> np.ndarray:
        """The synthesised operator restricted to the computational block."""
        return self.sequence.matrix()[: self.sequence.d_target, : self.sequence.d_target]


def default_layer_count(d_target: int) -> int:
    """Layer-count heuristic ``L = d + 1``.

    Matches the O(d) depth reported by the direct-compilation study [24];
    one extra layer gives the optimiser slack at small d.
    """
    if d_target < 2:
        raise SynthesisError(f"target dimension {d_target} must be >= 2")
    return d_target + 1


def _pack(alphas: np.ndarray, phases: np.ndarray) -> np.ndarray:
    return np.concatenate([alphas.real, alphas.imag, phases.ravel()])


def _unpack(
    params: np.ndarray, n_layers: int, d_sim: int
) -> tuple[np.ndarray, np.ndarray]:
    n_alpha = n_layers + 1
    alphas = params[:n_alpha] + 1j * params[n_alpha : 2 * n_alpha]
    phases = params[2 * n_alpha :].reshape(n_layers, d_sim)
    return alphas, phases


def synthesize_unitary(
    target: np.ndarray,
    n_layers: int | None = None,
    guard_levels: int = 4,
    max_restarts: int = 6,
    tol_infidelity: float = 1e-4,
    maxiter: int = 400,
    seed: int | None = None,
) -> SynthesisResult:
    """Synthesise a ``d``-level unitary as a SNAP+displacement sequence.

    Args:
        target: ``d x d`` unitary to implement on the lowest ``d`` Fock levels.
        n_layers: SNAP layers (default ``d + 1``).
        guard_levels: extra Fock levels in the simulation space.
        max_restarts: random restarts before giving up.
        tol_infidelity: stop once ``1 - F`` drops below this.
        maxiter: BFGS iteration cap per restart.
        seed: RNG seed.

    Returns:
        The best :class:`SynthesisResult` across restarts (even if the
        tolerance was not met — callers check ``result.infidelity``).

    Raises:
        SynthesisError: if the target is not square or too small.
    """
    target = np.asarray(target, dtype=complex)
    d_target = target.shape[0]
    if target.ndim != 2 or target.shape != (d_target, d_target) or d_target < 2:
        raise SynthesisError("target must be a square matrix with d >= 2")
    n_layers = n_layers or default_layer_count(d_target)
    d_sim = d_target + int(guard_levels)
    rng = np.random.default_rng(seed)

    def cost(params: np.ndarray) -> float:
        alphas, phases = _unpack(params, n_layers, d_sim)
        out = displacement(d_sim, complex(alphas[0]))
        for layer in range(n_layers):
            out = snap(d_sim, phases[layer]) @ out
            out = displacement(d_sim, complex(alphas[layer + 1])) @ out
        return 1.0 - subspace_fidelity(out, target, d_target)

    best: SynthesisResult | None = None
    for restart in range(max_restarts):
        alphas0 = 0.5 * (
            rng.normal(size=n_layers + 1) + 1j * rng.normal(size=n_layers + 1)
        )
        phases0 = rng.uniform(-np.pi, np.pi, size=(n_layers, d_sim))
        x0 = _pack(alphas0, phases0)
        res = minimize(cost, x0, method="BFGS", options={"maxiter": maxiter})
        infid = float(res.fun)
        alphas, phases = _unpack(res.x, n_layers, d_sim)
        sequence = SnapDisplacementSequence(
            d_sim=d_sim,
            d_target=d_target,
            alphas=tuple(complex(a) for a in alphas),
            snap_phases=tuple(tuple(float(p) for p in row) for row in phases),
        )
        candidate = SynthesisResult(
            sequence=sequence,
            fidelity=1.0 - infid,
            infidelity=infid,
            n_iterations=int(res.nit),
            n_restarts_used=restart + 1,
        )
        if best is None or candidate.infidelity < best.infidelity:
            best = candidate
        if best.infidelity < tol_infidelity:
            break
    assert best is not None  # max_restarts >= 1
    return best
