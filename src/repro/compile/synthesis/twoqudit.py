"""Compilation of arbitrary two-qudit unitaries (after Mato et al. [14]).

Route: Givens-decompose the ``d1*d2``-dimensional unitary into two-level
rotations, then classify each rotation by locality:

* both basis states share the *control* digit  -> local on the target
  qudit (conditional on the control: a controlled one-qudit rotation,
  charged as a SNAP-class operation plus one entangling interaction);
* both share the *target* digit                -> symmetric case;
* the states differ in both digits             -> a genuinely two-qudit
  Givens rotation, costed as two CSUM-conjugations.

This gives the constructive (never-failing) cost model for two-qudit gate
synthesis that the paper says is "yet to be demonstrated in context",
including the special cases the applications rely on (diagonal phase
separators compile to a single cross-Kerr family).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.dims import index_to_digits
from ...core.exceptions import SynthesisError
from ...core.gates import is_unitary
from .givens import GivensDecomposition, decompose_unitary

__all__ = [
    "TwoQuditSynthesis",
    "synthesize_two_qudit",
    "is_diagonal_unitary",
    "entangling_count_upper_bound",
]


def is_diagonal_unitary(unitary: np.ndarray, atol: float = 1e-10) -> bool:
    """True if the unitary is diagonal (a pure phase pattern)."""
    unitary = np.asarray(unitary)
    return bool(np.allclose(unitary, np.diag(np.diag(unitary)), atol=atol))


@dataclass(frozen=True)
class TwoQuditSynthesis:
    """Classification of a two-qudit unitary's Givens factorisation.

    Attributes:
        d1: control-side dimension.
        d2: target-side dimension.
        decomposition: the underlying Givens factorisation on ``d1*d2``.
        n_local_control: rotations local to the control qudit.
        n_local_target: rotations local to the target qudit (conditioned).
        n_cross: rotations changing both digits (most expensive).
        diagonal: True if the input was diagonal (single native pulse
            family; zero Givens rotations needed for the off-diagonal part).
    """

    d1: int
    d2: int
    decomposition: GivensDecomposition
    n_local_control: int
    n_local_target: int
    n_cross: int
    diagonal: bool

    @property
    def n_rotations(self) -> int:
        """Total two-level rotations."""
        return self.n_local_control + self.n_local_target + self.n_cross

    def entangling_cost(self) -> int:
        """CSUM-equivalent entangling cost.

        Controlled-local rotations cost 1 entangling unit each; cross
        rotations cost 2 (they must be sandwiched between CSUMs to align
        the differing digits).  Diagonal unitaries cost 1 (a single
        dispersive-phase pulse implements any two-qudit diagonal).
        """
        if self.diagonal:
            return 1
        return self.n_local_control + self.n_local_target + 2 * self.n_cross


def synthesize_two_qudit(
    unitary: np.ndarray, d1: int, d2: int, atol: float = 1e-9
) -> TwoQuditSynthesis:
    """Decompose and classify a two-qudit unitary.

    Args:
        unitary: ``(d1*d2) x (d1*d2)`` unitary, big-endian digit order.
        d1: first (control) qudit dimension.
        d2: second (target) qudit dimension.
        atol: unitarity tolerance.

    Returns:
        A :class:`TwoQuditSynthesis` whose ``decomposition.reconstruct()``
        reproduces the input.

    Raises:
        SynthesisError: on shape mismatch or non-unitary input.
    """
    unitary = np.asarray(unitary, dtype=complex)
    dim = d1 * d2
    if unitary.shape != (dim, dim):
        raise SynthesisError(
            f"unitary shape {unitary.shape} != ({dim}, {dim}) for d1={d1}, d2={d2}"
        )
    if not is_unitary(unitary, atol=atol):
        raise SynthesisError("input matrix is not unitary")
    diagonal = is_diagonal_unitary(unitary)
    decomposition = decompose_unitary(unitary, atol=atol)
    n_control = n_target = n_cross = 0
    dims = (d1, d2)
    for step in decomposition.steps:
        digits_i = index_to_digits(step.i, dims)
        digits_j = index_to_digits(step.j, dims)
        same_control = digits_i[0] == digits_j[0]
        same_target = digits_i[1] == digits_j[1]
        if same_control and not same_target:
            n_target += 1
        elif same_target and not same_control:
            n_control += 1
        else:
            n_cross += 1
    return TwoQuditSynthesis(
        d1=d1,
        d2=d2,
        decomposition=decomposition,
        n_local_control=n_control,
        n_local_target=n_target,
        n_cross=n_cross,
        diagonal=diagonal,
    )


def entangling_count_upper_bound(d1: int, d2: int) -> int:
    """Worst-case CSUM-equivalent count ``2 * D(D-1)/2`` for ``D = d1*d2``.

    Every Givens rotation could in the worst case be a cross rotation;
    useful as a sanity bound in resource estimates.
    """
    if d1 < 2 or d2 < 2:
        raise SynthesisError("dimensions must be >= 2")
    dim = d1 * d2
    return dim * (dim - 1)
