"""Exact two-level (Givens) decomposition of arbitrary qudit unitaries.

Any ``U(d)`` factors into at most ``d(d-1)/2`` Givens rotations plus a
final diagonal phase layer (one SNAP).  This is the constructive,
scaling-friendly synthesis route the paper calls for ("constructive
algorithms for synthesis are the likely solution", §II.B) — unlike the
numerically optimised SNAP-displacement route it never fails and its cost
is known in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.exceptions import SynthesisError
from ...core.gates import is_unitary, level_rotation, snap

__all__ = ["GivensStep", "GivensDecomposition", "decompose_unitary", "givens_count"]


@dataclass(frozen=True)
class GivensStep:
    """One two-level rotation: levels ``(i, j)``, angles ``(theta, phi)``."""

    i: int
    j: int
    theta: float
    phi: float

    def matrix(self, d: int) -> np.ndarray:
        """Dense ``d x d`` unitary of this step."""
        return level_rotation(d, self.i, self.j, self.theta, self.phi)


@dataclass(frozen=True)
class GivensDecomposition:
    """Factorisation ``U = SNAP(phases) . G_n ... G_2 G_1``.

    Attributes:
        dim: qudit dimension.
        steps: rotations in application order (first applied first).
        phases: final diagonal phase layer.
    """

    dim: int
    steps: tuple[GivensStep, ...]
    phases: tuple[float, ...]

    def reconstruct(self) -> np.ndarray:
        """Multiply the factors back into a dense unitary."""
        out = np.eye(self.dim, dtype=complex)
        for step in self.steps:
            out = step.matrix(self.dim) @ out
        return snap(self.dim, self.phases) @ out

    @property
    def n_rotations(self) -> int:
        """Number of two-level rotations (excludes the free phase layer)."""
        return len(self.steps)


def decompose_unitary(
    unitary: np.ndarray, atol: float = 1e-9, prune: bool = True
) -> GivensDecomposition:
    """Decompose a unitary into Givens rotations and a diagonal phase layer.

    The algorithm zeroes sub-diagonal entries column by column: entry
    ``(j, c)`` is eliminated against the pivot ``(c, c)`` by a rotation in
    the ``(c, j)`` subspace.  What remains is diagonal (pure phases), which
    a single SNAP absorbs.

    Args:
        unitary: square unitary matrix.
        atol: unitarity tolerance.
        prune: drop rotations with negligible angle (|theta| < 1e-12).

    Returns:
        A :class:`GivensDecomposition` with ``reconstruct()`` equal to the
        input to numerical precision.

    Raises:
        SynthesisError: if the input is not unitary.
    """
    unitary = np.asarray(unitary, dtype=complex)
    d = unitary.shape[0]
    if not is_unitary(unitary, atol=atol):
        raise SynthesisError("input matrix is not unitary")

    work = unitary.copy()
    inverse_steps: list[GivensStep] = []
    for col in range(d - 1):
        for row in range(col + 1, d):
            target = work[row, col]
            if abs(target) < 1e-14:
                continue
            pivot = work[col, col]
            # Choose (theta, phi) so that G† zeroes work[row, col]:
            # acting on rows (col, row) we need
            #   -sin(t/2) e^{i phi'} pivot + cos(t/2) target -> 0 shape.
            theta = 2.0 * np.arctan2(abs(target), abs(pivot))
            phi = np.angle(target) - np.angle(pivot)
            rot = level_rotation(d, col, row, theta, phi)
            work = rot.conj().T @ work
            if abs(work[row, col]) > 1e-9:  # pragma: no cover - safety net
                raise SynthesisError(
                    f"Givens elimination failed at ({row}, {col})"
                )
            inverse_steps.append(GivensStep(col, row, theta, phi))
    phases = tuple(float(np.angle(work[k, k])) for k in range(d))
    # The elimination gives G_n† ... G_1† U = D, i.e. U = G_1 ... G_n D.
    # reconstruct() computes SNAP . steps[-1] ... steps[0]; commuting D to
    # the front via G'_k = D† G_k D (a Givens rotation with phase shifted
    # by theta_i - theta_j) yields U = D . G'_1 ... G'_n, so the step list
    # is the conjugated rotations in reverse elimination order.
    steps: list[GivensStep] = []
    for step in reversed(inverse_steps):
        shift = phases[step.i] - phases[step.j]
        steps.append(GivensStep(step.i, step.j, step.theta, step.phi + shift))
    if prune:
        steps = [s for s in steps if abs(s.theta) > 1e-12]
    decomposition = GivensDecomposition(d, tuple(steps), phases)
    if np.abs(decomposition.reconstruct() - unitary).max() > 1e-7:
        raise SynthesisError("reconstruction mismatch after decomposition")
    return decomposition


def givens_count(d: int) -> int:
    """Worst-case rotation count ``d(d-1)/2`` for a ``d``-level unitary."""
    if d < 2:
        raise SynthesisError(f"dimension {d} must be >= 2")
    return d * (d - 1) // 2
