"""Gate synthesis: Givens, SNAP+displacement, CSUM, two-qudit routes."""

from .csum import CsumCostModel, csum_circuit, csum_cost
from .givens import GivensDecomposition, GivensStep, decompose_unitary, givens_count
from .snap_displacement import (
    SnapDisplacementSequence,
    SynthesisResult,
    default_layer_count,
    subspace_fidelity,
    synthesize_unitary,
)
from .twoqudit import (
    TwoQuditSynthesis,
    entangling_count_upper_bound,
    is_diagonal_unitary,
    synthesize_two_qudit,
)

__all__ = [
    "CsumCostModel",
    "csum_circuit",
    "csum_cost",
    "GivensDecomposition",
    "GivensStep",
    "decompose_unitary",
    "givens_count",
    "SnapDisplacementSequence",
    "SynthesisResult",
    "default_layer_count",
    "subspace_fidelity",
    "synthesize_unitary",
    "TwoQuditSynthesis",
    "entangling_count_upper_bound",
    "is_diagonal_unitary",
    "synthesize_two_qudit",
]
