"""Routing of two-qudit gates onto the cavity connectivity graph.

Two pieces:

* :func:`route_circuit` — greedy SWAP insertion: every two-wire gate whose
  mapped modes are not directly connected is preceded by SWAPs that walk
  one operand along a shortest connectivity path.
* :func:`swap_network_layers` — the odd-even transposition network on a
  line, which brings *every* pair adjacent at least once in ``n`` layers.
  This is the "swap network to allow 3D interactions" the paper proposes
  for embedding higher-dimensional lattices on the linear cavity chain.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.circuit import QuditCircuit
from ..core.exceptions import CompilationError
from ..hardware.device import CavityQPU

__all__ = ["RoutedCircuit", "route_circuit", "swap_network_layers"]


@dataclass(frozen=True)
class RoutedCircuit:
    """Result of routing a mapped circuit.

    Attributes:
        circuit: physical circuit (wire i <-> physical slot i) with SWAPs
            inserted; wire order matches the *initial* layout.
        initial_layout: wire -> mode before the circuit starts.
        final_layout: wire -> mode after all SWAPs have executed.
        n_swaps: number of inserted two-wire SWAP gates.
        n_moves: number of moves into *empty* (unmapped) modes; physically a
            beam-splitter swap with vacuum, recorded as a single-wire
            ``move`` instruction so noise/resource accounting sees it.
    """

    circuit: QuditCircuit
    initial_layout: tuple[int, ...]
    final_layout: tuple[int, ...]
    n_swaps: int
    n_moves: int = 0


def route_circuit(
    circuit: QuditCircuit,
    device: CavityQPU,
    layout: list[int] | tuple[int, ...],
) -> RoutedCircuit:
    """Insert SWAPs so every two-wire gate acts on connected modes.

    The router tracks a dynamic wire->mode map.  For a gate on wires
    (a, b) whose modes are not adjacent in the connectivity graph, the
    operand *a* is walked along a shortest path until the pair is
    connected; each hop is a physical SWAP between same-dimension modes.

    Args:
        circuit: logical circuit.
        device: hardware model.
        layout: initial wire -> mode assignment.

    Returns:
        A :class:`RoutedCircuit`; the output circuit's wires are *logical*
        wires (dimension-preserving), with SWAP instructions annotated with
        the physical modes they exchange.

    Raises:
        CompilationError: if a SWAP would exchange modes of unequal
            dimension (no dimension-changing routing is modelled).
    """
    layout = list(layout)
    if len(layout) != circuit.num_qudits:
        raise CompilationError("layout length mismatch")
    mode_of = dict(enumerate(layout))  # wire -> mode
    wire_of = {m: w for w, m in mode_of.items()}  # mode -> wire (mapped only)

    routed = QuditCircuit(circuit.dims, name=circuit.name + "+routed")
    n_swaps = 0
    n_moves = 0
    graph = device.connectivity

    def swap_wire_along(wire: int, to_mode: int) -> None:
        """Swap the state on `wire` into `to_mode` (must be a graph edge)."""
        nonlocal n_swaps, n_moves
        from_mode = mode_of[wire]
        if device.modes[from_mode].dim != device.modes[to_mode].dim:
            raise CompilationError(
                f"cannot SWAP modes {from_mode} and {to_mode} of unequal dims"
            )
        other_wire = wire_of.get(to_mode)
        if other_wire is None:
            # Swapping with an empty (vacuum) mode: logically a relabelling,
            # physically still one beam-splitter pulse — record it.
            import numpy as np

            routed.unitary(
                np.eye(circuit.dims[wire], dtype=complex),
                wire,
                name="move",
                from_mode=from_mode,
                to_mode=to_mode,
            )
            n_moves += 1
            del wire_of[from_mode]
            mode_of[wire] = to_mode
            wire_of[to_mode] = wire
            return
        if circuit.dims[wire] != circuit.dims[other_wire]:
            raise CompilationError(
                f"cannot SWAP wires {wire} and {other_wire} of unequal dims"
            )
        routed.swap(wire, other_wire)
        n_swaps += 1
        mode_of[wire], mode_of[other_wire] = to_mode, from_mode
        wire_of[to_mode], wire_of[from_mode] = wire, other_wire

    for instruction in circuit:
        if instruction.kind == "unitary" and instruction.num_qudits == 2:
            wire_a, wire_b = instruction.qudits
            while not device.are_connected(mode_of[wire_a], mode_of[wire_b]):
                path = nx.shortest_path(graph, mode_of[wire_a], mode_of[wire_b])
                swap_wire_along(wire_a, path[1])
            routed.append(instruction)
        else:
            routed.append(instruction)
    final = tuple(mode_of[w] for w in range(circuit.num_qudits))
    return RoutedCircuit(
        circuit=routed,
        initial_layout=tuple(layout),
        final_layout=final,
        n_swaps=n_swaps,
        n_moves=n_moves,
    )


def swap_network_layers(n: int) -> list[list[tuple[int, int]]]:
    """Odd-even transposition SWAP layers bringing all pairs adjacent.

    After the full ``n`` layers the line order is reversed and every pair
    of the ``n`` slots has been adjacent exactly once — the canonical trick
    for all-to-all interactions (and higher-dimensional lattice embeddings)
    on linearly connected hardware.

    Returns:
        ``n`` layers; each layer is a list of disjoint adjacent slot pairs.
    """
    if n < 2:
        raise CompilationError("swap network needs at least 2 slots")
    layers: list[list[tuple[int, int]]] = []
    for layer in range(n):
        start = layer % 2
        layers.append([(i, i + 1) for i in range(start, n - 1, 2)])
    return layers
