"""Noise-aware mapping of program qudits onto physical cavity modes.

The novelty the reproduction bands single out: mainstream qubit toolkits
have noise-aware layout for qubits, but nothing maps *qudits with mixed
dimensions onto cavity modes with heterogeneous coherence*.  The mapper
scores an assignment by the first-order fidelity of the whole circuit —
single-qudit work prefers long-lived modes, heavily interacting pairs
prefer co-located (fast, high-fidelity) edges — and optimises with a
greedy constructor followed by pairwise-swap hill climbing with restarts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.circuit import QuditCircuit
from ..core.exceptions import CompilationError
from ..hardware.device import CavityQPU
from ..hardware.noise_model import DeviceNoiseModel

__all__ = ["MappingResult", "score_layout", "noise_aware_map", "trivial_map"]


@dataclass(frozen=True)
class MappingResult:
    """A layout plus its quality score.

    Attributes:
        layout: ``layout[wire] = physical mode index``.
        log_fidelity: estimated log-fidelity of the circuit under this
            layout (higher, i.e. closer to 0, is better).
        method: which construction produced it.
    """

    layout: tuple[int, ...]
    log_fidelity: float
    method: str

    @property
    def fidelity(self) -> float:
        """Estimated circuit fidelity ``exp(log_fidelity)``."""
        return math.exp(self.log_fidelity)


def _single_gate_weights(circuit: QuditCircuit) -> dict[int, int]:
    """Count of single-wire unitaries per wire."""
    weights: dict[int, int] = {}
    for instruction in circuit:
        if instruction.kind == "unitary" and instruction.num_qudits == 1:
            wire = instruction.qudits[0]
            weights[wire] = weights.get(wire, 0) + 1
    return weights


def _compatible(circuit: QuditCircuit, device: CavityQPU, mode: int, wire: int) -> bool:
    return device.modes[mode].dim >= circuit.dims[wire]


def score_layout(
    circuit: QuditCircuit,
    device: CavityQPU,
    layout: list[int] | tuple[int, ...],
    noise_model: DeviceNoiseModel | None = None,
) -> float:
    """Log-fidelity estimate of a circuit under a candidate layout.

    Two-wire gates between unconnected modes are charged the routing
    penalty: the gate fidelity raised to the hop distance (each extra hop
    costs roughly one SWAP of comparable infidelity).

    Raises:
        CompilationError: if the layout is malformed or dimension-infeasible.
    """
    layout = tuple(layout)
    if len(layout) != circuit.num_qudits:
        raise CompilationError(
            f"layout length {len(layout)} != {circuit.num_qudits} wires"
        )
    if len(set(layout)) != len(layout):
        raise CompilationError("layout assigns two wires to one mode")
    for wire, mode in enumerate(layout):
        if not 0 <= mode < device.n_modes:
            raise CompilationError(f"mode {mode} out of range")
        if not _compatible(circuit, device, mode, wire):
            raise CompilationError(
                f"wire {wire} needs d={circuit.dims[wire]} but mode {mode} "
                f"has d={device.modes[mode].dim}"
            )
    noise_model = noise_model or DeviceNoiseModel(device)
    log_fid = 0.0
    for instruction in circuit:
        if instruction.kind != "unitary":
            continue
        if instruction.num_qudits == 1:
            mode = layout[instruction.qudits[0]]
            fid = noise_model.gate_fidelity(instruction.name, (mode,))
            log_fid += math.log(max(fid, 1e-300))
        elif instruction.num_qudits == 2:
            mode_a, mode_b = (layout[w] for w in instruction.qudits)
            fid = noise_model.gate_fidelity(instruction.name, (mode_a, mode_b))
            hops = device.distance(mode_a, mode_b)
            log_fid += hops * math.log(max(fid, 1e-300))
        else:
            for wire in instruction.qudits:
                fid = noise_model.gate_fidelity(instruction.name, (layout[wire],))
                log_fid += math.log(max(fid, 1e-300))
    return log_fid


def trivial_map(circuit: QuditCircuit, device: CavityQPU) -> MappingResult:
    """Identity-order layout: wire i on the first compatible mode, in order."""
    layout: list[int] = []
    used: set[int] = set()
    for wire in range(circuit.num_qudits):
        for mode in range(device.n_modes):
            if mode not in used and _compatible(circuit, device, mode, wire):
                layout.append(mode)
                used.add(mode)
                break
        else:
            raise CompilationError(
                f"no free mode with dimension >= {circuit.dims[wire]} for wire {wire}"
            )
    return MappingResult(
        layout=tuple(layout),
        log_fidelity=score_layout(circuit, device, layout),
        method="trivial",
    )


def noise_aware_map(
    circuit: QuditCircuit,
    device: CavityQPU,
    noise_model: DeviceNoiseModel | None = None,
    n_restarts: int = 4,
    max_passes: int = 20,
    seed: int | None = None,
) -> MappingResult:
    """Noise-aware layout via greedy construction + swap hill climbing.

    Greedy phase: wires in decreasing interaction weight pick the free
    mode maximising their marginal score (interaction edges to already
    placed wires plus single-gate fidelity on the candidate mode).
    Improvement phase: repeatedly try swapping the assignments of two
    wires (or relocating a wire to a free mode) and keep improvements,
    until a full pass yields none.

    Args:
        circuit: logical circuit.
        device: target hardware.
        noise_model: error model (defaults to the device's).
        n_restarts: independent randomised greedy restarts.
        max_passes: hill-climbing pass cap per restart.
        seed: RNG seed.

    Returns:
        The best :class:`MappingResult` found.
    """
    if circuit.num_qudits > device.n_modes:
        raise CompilationError(
            f"circuit needs {circuit.num_qudits} modes; device has {device.n_modes}"
        )
    noise_model = noise_model or DeviceNoiseModel(device)
    rng = np.random.default_rng(seed)
    pairs = circuit.interaction_pairs()
    singles = _single_gate_weights(circuit)
    wire_weight = {w: singles.get(w, 0) for w in range(circuit.num_qudits)}
    for (a, b), count in pairs.items():
        wire_weight[a] = wire_weight.get(a, 0) + 3 * count
        wire_weight[b] = wire_weight.get(b, 0) + 3 * count

    def greedy(jitter: float) -> list[int]:
        order = sorted(
            range(circuit.num_qudits),
            key=lambda w: wire_weight[w] + jitter * rng.random(),
            reverse=True,
        )
        placed: dict[int, int] = {}
        used: set[int] = set()
        for wire in order:
            best_mode, best_gain = None, -math.inf
            for mode in range(device.n_modes):
                if mode in used or not _compatible(circuit, device, mode, wire):
                    continue
                gain = singles.get(wire, 0) * math.log(
                    max(noise_model.gate_fidelity("snap", (mode,)), 1e-300)
                )
                for (a, b), count in pairs.items():
                    other = b if a == wire else a if b == wire else None
                    if other is None or other not in placed:
                        continue
                    fid = noise_model.gate_fidelity("csum", (mode, placed[other]))
                    hops = device.distance(mode, placed[other])
                    gain += count * hops * math.log(max(fid, 1e-300))
                if gain > best_gain:
                    best_gain, best_mode = gain, mode
            if best_mode is None:
                raise CompilationError(f"no feasible mode for wire {wire}")
            placed[wire] = best_mode
            used.add(best_mode)
        return [placed[w] for w in range(circuit.num_qudits)]

    def hill_climb(layout: list[int]) -> tuple[list[int], float]:
        current = list(layout)
        current_score = score_layout(circuit, device, current, noise_model)
        free_modes = [m for m in range(device.n_modes) if m not in set(current)]
        for _ in range(max_passes):
            improved = False
            # wire-wire swaps
            for i in range(len(current)):
                for j in range(i + 1, len(current)):
                    candidate = list(current)
                    candidate[i], candidate[j] = candidate[j], candidate[i]
                    try:
                        cand_score = score_layout(
                            circuit, device, candidate, noise_model
                        )
                    except CompilationError:
                        continue
                    if cand_score > current_score + 1e-15:
                        current, current_score = candidate, cand_score
                        improved = True
            # relocations to free modes
            for i in range(len(current)):
                for k, mode in enumerate(free_modes):
                    candidate = list(current)
                    old = candidate[i]
                    candidate[i] = mode
                    try:
                        cand_score = score_layout(
                            circuit, device, candidate, noise_model
                        )
                    except CompilationError:
                        continue
                    if cand_score > current_score + 1e-15:
                        free_modes[k] = old
                        current, current_score = candidate, cand_score
                        improved = True
            if not improved:
                break
        return current, current_score

    best_layout: list[int] | None = None
    best_score = -math.inf
    for restart in range(max(1, n_restarts)):
        jitter = 0.0 if restart == 0 else 2.0
        layout, score = hill_climb(greedy(jitter))
        if score > best_score:
            best_layout, best_score = layout, score
    assert best_layout is not None
    return MappingResult(
        layout=tuple(best_layout), log_fidelity=best_score, method="noise-aware"
    )
