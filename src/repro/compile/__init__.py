"""Noise-aware qudit compilation: mapping, routing, synthesis, estimation."""

from .mapping import MappingResult, noise_aware_map, score_layout, trivial_map
from .resources import ResourceEstimate, estimate_resources
from .routing import RoutedCircuit, route_circuit, swap_network_layers
from .transpiler import TranspileResult, transpile

__all__ = [
    "MappingResult",
    "noise_aware_map",
    "score_layout",
    "trivial_map",
    "ResourceEstimate",
    "estimate_resources",
    "RoutedCircuit",
    "route_circuit",
    "swap_network_layers",
    "TranspileResult",
    "transpile",
]
