"""Resource estimation — the engine behind Table I's "implementation estimation".

Walks a circuit, expands every instruction into native-gate counts through
the ISA lowering table, and accumulates wall-clock duration and a
first-order fidelity estimate from the device noise model.  This is how the
paper-scale campaigns (9x2 lattice at d=4, N=9 coloring, ...) are costed
without simulating 10^21-dimensional Hilbert spaces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.circuit import QuditCircuit
from ..core.exceptions import CompilationError
from ..hardware.device import CavityQPU
from ..hardware.isa import lowering_cost
from ..hardware.noise_model import DeviceNoiseModel

__all__ = ["ResourceEstimate", "estimate_resources"]


@dataclass(frozen=True)
class ResourceEstimate:
    """Aggregate resource accounting for one circuit on one device.

    Attributes:
        native_counts: total native gates by name.
        n_entangling: two-mode native operations (cphase + bs).
        total_duration: sequential wall-clock duration in seconds.
        fidelity: first-order success-probability estimate.
        critical_wire_duration: busiest single mode's accumulated time —
            compared against that mode's T1 for a coherence-budget check.
        coherence_fraction: critical duration / shortest involved T1; the
            experiment is "in principle executable" (Table I footnote)
            when this is well below 1.
    """

    native_counts: dict[str, int]
    n_entangling: int
    total_duration: float
    fidelity: float
    critical_wire_duration: float
    coherence_fraction: float

    def summary(self) -> str:
        """One-line human-readable summary."""
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.native_counts.items()))
        return (
            f"native[{counts}] entangling={self.n_entangling} "
            f"T={self.total_duration * 1e6:.1f}us F~{self.fidelity:.3g} "
            f"T/T1={self.coherence_fraction:.3g}"
        )


def estimate_resources(
    circuit: QuditCircuit,
    device: CavityQPU,
    layout: list[int] | tuple[int, ...] | None = None,
    noise_model: DeviceNoiseModel | None = None,
) -> ResourceEstimate:
    """Estimate native-gate counts, duration, and fidelity of a circuit.

    Args:
        circuit: logical circuit (already routed if it contains two-wire
            gates between distant modes — no routing is performed here).
        device: hardware model.
        layout: wire -> physical-mode map (identity if omitted).
        noise_model: error model (defaults to the device's).

    Returns:
        A :class:`ResourceEstimate`.

    Raises:
        CompilationError: on layout problems.
    """
    layout = list(layout) if layout is not None else list(range(circuit.num_qudits))
    if len(layout) != circuit.num_qudits:
        raise CompilationError("layout length mismatch")
    for mode in layout:
        if not 0 <= mode < device.n_modes:
            raise CompilationError(f"mode {mode} out of range")
    noise_model = noise_model or DeviceNoiseModel(device)

    native_counts: dict[str, int] = {}
    n_entangling = 0
    total_duration = 0.0
    fidelity = 1.0
    per_wire_duration = [0.0] * circuit.num_qudits
    min_t1 = float("inf")

    for instruction in circuit:
        if instruction.kind == "channel":
            continue
        wires = instruction.qudits
        # Dimension governing the lowering cost: the largest wire involved.
        d = max(circuit.dims[w] for w in wires)
        expansion = lowering_cost(instruction.name, d)
        gate_duration = 0.0
        for native_name, count in expansion.items():
            native_counts[native_name] = native_counts.get(native_name, 0) + count
            base = device.timings.duration_of(native_name)
            if native_name in ("cphase", "bs") and len(wires) == 2:
                mode_a, mode_b = layout[wires[0]], layout[wires[1]]
                if device.are_connected(mode_a, mode_b):
                    base = device.two_mode_duration(mode_a, mode_b, base)
                n_entangling += count
            gate_duration += count * base
            for wire in wires:
                mode = layout[wire]
                fid = noise_model.gate_fidelity(native_name, (mode,))
                fidelity *= fid**count
        total_duration += gate_duration
        for wire in wires:
            per_wire_duration[wire] += gate_duration
            min_t1 = min(min_t1, device.modes[layout[wire]].coherence.t1)

    critical = max(per_wire_duration) if per_wire_duration else 0.0
    coherence_fraction = critical / min_t1 if min_t1 < float("inf") else 0.0
    return ResourceEstimate(
        native_counts=native_counts,
        n_entangling=n_entangling,
        total_duration=total_duration,
        fidelity=fidelity,
        critical_wire_duration=critical,
        coherence_fraction=coherence_fraction,
    )
