"""End-to-end transpilation pipeline: map -> route -> estimate.

A thin orchestration layer over :mod:`repro.compile.mapping`,
:mod:`repro.compile.routing` and :mod:`repro.compile.resources`, so
applications can go from a logical :class:`~repro.core.QuditCircuit` to a
device-ready circuit plus its Table-I-style cost line in one call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.circuit import QuditCircuit
from ..hardware.device import CavityQPU
from ..hardware.noise_model import DeviceNoiseModel
from .mapping import MappingResult, noise_aware_map, trivial_map
from .resources import ResourceEstimate, estimate_resources
from .routing import RoutedCircuit, route_circuit

__all__ = ["TranspileResult", "transpile"]


@dataclass(frozen=True)
class TranspileResult:
    """Everything produced by one transpilation run.

    Attributes:
        circuit: routed physical circuit (logical wire order preserved).
        mapping: the layout decision and its score.
        routing: SWAP-insertion record.
        resources: native-gate/duration/fidelity estimate.
    """

    circuit: QuditCircuit
    mapping: MappingResult
    routing: RoutedCircuit
    resources: ResourceEstimate


def transpile(
    circuit: QuditCircuit,
    device: CavityQPU,
    noise_aware: bool = True,
    noise_model: DeviceNoiseModel | None = None,
    seed: int | None = None,
) -> TranspileResult:
    """Map, route, and cost a logical circuit for a device.

    Args:
        circuit: logical circuit.
        device: target hardware.
        noise_aware: use the noise-aware mapper (else trivial order —
            the baseline the mapping ablation benchmark compares against).
        noise_model: error model override.
        seed: mapper RNG seed.

    Returns:
        A :class:`TranspileResult`.
    """
    noise_model = noise_model or DeviceNoiseModel(device)
    if noise_aware:
        mapping = noise_aware_map(circuit, device, noise_model, seed=seed)
    else:
        mapping = trivial_map(circuit, device)
    routed = route_circuit(circuit, device, mapping.layout)
    resources = estimate_resources(
        routed.circuit, device, routed.initial_layout, noise_model
    )
    return TranspileResult(
        circuit=routed.circuit,
        mapping=mapping,
        routing=routed,
        resources=resources,
    )
