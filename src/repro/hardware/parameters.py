"""Coherence and timing parameters for the cavity-QPU hardware model.

Default numbers follow the paper and its citations:

* bare SRF cavity photon lifetime T1 ~ 2 s (Romanenko et al. [3]);
* transmon-integrated cavity modes: millisecond-class T1 (the paper's
  5-year forecast assumes "d ~ 10 photons with millisecond T1 lifetime");
* transmon T1/T2 of tens of microseconds;
* SNAP gates are slow (~ 1/chi, microseconds), displacements fast (~ns),
  beam-splitter/sideband two-mode pulses in-between.

All durations are seconds; times derived from them feed the error model in
:mod:`repro.hardware.noise_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exceptions import DeviceError

__all__ = ["CoherenceParams", "GateTimings", "TRANSMON_DEFAULTS", "CAVITY_DEFAULTS"]


@dataclass(frozen=True)
class CoherenceParams:
    """T1/T2 pair with optional thermal population.

    Attributes:
        t1: energy relaxation time in seconds.
        t2: dephasing time in seconds (must satisfy t2 <= 2 * t1).
        n_thermal: equilibrium thermal occupation (dimensionless).
    """

    t1: float
    t2: float
    n_thermal: float = 0.0

    def __post_init__(self) -> None:
        if self.t1 <= 0 or self.t2 <= 0:
            raise DeviceError(f"T1={self.t1}, T2={self.t2} must be positive")
        if self.t2 > 2 * self.t1 * (1 + 1e-9):
            raise DeviceError(f"T2={self.t2} exceeds physical bound 2*T1={2 * self.t1}")
        if self.n_thermal < 0:
            raise DeviceError("thermal occupation must be >= 0")

    def scaled(self, factor: float) -> "CoherenceParams":
        """Return parameters with both lifetimes multiplied by ``factor``."""
        if factor <= 0:
            raise DeviceError("scale factor must be positive")
        return CoherenceParams(self.t1 * factor, self.t2 * factor, self.n_thermal)


@dataclass(frozen=True)
class GateTimings:
    """Durations of native operations, in seconds.

    Defaults reflect typical cQED scales: nanosecond displacements,
    microsecond SNAP (limited by the dispersive shift chi), and
    multi-microsecond two-mode operations (beam splitter via the transmon,
    and the compiled CSUM which the paper flags as the costly primitive).
    """

    displacement: float = 50e-9
    snap: float = 1.0e-6
    rotation: float = 1.0e-6
    beamsplitter: float = 2.0e-6
    cross_kerr: float = 2.0e-6
    csum: float = 4.0e-6
    swap: float = 4.0e-6
    measurement: float = 2.0e-6
    reset: float = 4.0e-6

    def duration_of(self, gate_name: str) -> float:
        """Duration of a named native gate.

        Raises:
            DeviceError: for unknown gate names.
        """
        table = {
            "disp": self.displacement,
            "displacement": self.displacement,
            "snap": self.snap,
            "rot": self.rotation,
            "rotation": self.rotation,
            "mixer": self.rotation,
            "fourier": self.snap,  # compiled from SNAP+disp; same scale
            "perm": self.snap,
            "x": self.snap,
            "z": self.snap,
            "bs": self.beamsplitter,
            "beamsplitter": self.beamsplitter,
            "cphase": self.cross_kerr,
            "cross_kerr": self.cross_kerr,
            "csum": self.csum,
            "csum_dg": self.csum,
            "swap": self.swap,
            "move": self.beamsplitter,
            "measure": self.measurement,
            "reset": self.reset,
            "unitary": self.snap,
        }
        if gate_name not in table:
            raise DeviceError(f"no duration known for gate {gate_name!r}")
        return table[gate_name]


#: Representative transmon coherence (tens of microseconds).
TRANSMON_DEFAULTS = CoherenceParams(t1=100e-6, t2=80e-6)

#: Forecast cavity-mode coherence: millisecond T1 (paper §I forecast).
CAVITY_DEFAULTS = CoherenceParams(t1=1e-3, t2=1.5e-3)
