"""Device-derived circuit-level noise model.

Converts the hardware parameters (per-mode T1/T2, gate durations) into the
channel insertions the simulators understand: after every gate, each touched
mode suffers photon loss with probability ``1 - exp(-tau / T1)`` and Weyl
dephasing with probability ``(1 - exp(-tau / T2)) / 2``, where ``tau`` is
the gate duration.  Gates that occupy the transmon additionally inherit a
depolarising contribution from the ancilla's lifetime — the mechanism behind
the paper's observation that the transmon is "used only as a catalyst" yet
still dominates the error budget of slow gates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.channels import (
    QuditChannel,
    dephasing,
    dephasing_probability_from_t2,
    depolarizing,
    loss_probability_from_t1,
    photon_loss,
)
from ..core.circuit import QuditCircuit
from ..core.exceptions import DeviceError
from .device import CavityQPU
from .isa import NATIVE_GATES

__all__ = ["DeviceNoiseModel", "NoiseParameters"]


@dataclass(frozen=True)
class NoiseParameters:
    """Noise probabilities for one gate on one mode."""

    loss: float
    dephase: float
    transmon_depol: float

    def total_error(self) -> float:
        """First-order combined error probability."""
        return 1.0 - (1.0 - self.loss) * (1.0 - self.dephase) * (
            1.0 - self.transmon_depol
        )


class DeviceNoiseModel:
    """Circuit-level noise derived from a :class:`CavityQPU`.

    Args:
        device: hardware model supplying coherences and timings.
        transmon_error_fraction: fraction of the transmon's decoherence
            (over the gate duration) charged to the mode as depolarising
            error when the gate uses the ancilla.
    """

    def __init__(
        self, device: CavityQPU, transmon_error_fraction: float = 0.5
    ) -> None:
        if not 0.0 <= transmon_error_fraction <= 1.0:
            raise DeviceError("transmon_error_fraction must be in [0, 1]")
        self.device = device
        self.transmon_error_fraction = transmon_error_fraction

    # ------------------------------------------------------------------
    # per-gate parameters
    # ------------------------------------------------------------------
    def gate_noise(self, gate_name: str, mode: int) -> NoiseParameters:
        """Noise probabilities of one gate acting on one physical mode."""
        if not 0 <= mode < self.device.n_modes:
            raise DeviceError(f"mode {mode} out of range")
        duration = self.device.timings.duration_of(gate_name)
        mode_params = self.device.modes[mode].coherence
        loss = loss_probability_from_t1(duration, mode_params.t1)
        dephase = dephasing_probability_from_t2(duration, mode_params.t2)
        transmon_depol = 0.0
        native = NATIVE_GATES.get(gate_name)
        uses_transmon = native.uses_transmon if native else True
        if uses_transmon:
            transmon = self.device.cavities[self.device.modes[mode].cavity].transmon
            transmon_depol = self.transmon_error_fraction * loss_probability_from_t1(
                duration, transmon.t1
            )
        return NoiseParameters(loss, dephase, transmon_depol)

    def gate_fidelity(self, gate_name: str, modes: tuple[int, ...]) -> float:
        """First-order fidelity of one gate across its target modes."""
        fidelity = 1.0
        for mode in modes:
            fidelity *= 1.0 - self.gate_noise(gate_name, mode).total_error()
        return fidelity

    # ------------------------------------------------------------------
    # circuit instrumentation
    # ------------------------------------------------------------------
    def channels_after_gate(
        self, gate_name: str, mode: int
    ) -> list[QuditChannel]:
        """Noise channels to insert on ``mode`` after one gate."""
        params = self.gate_noise(gate_name, mode)
        d = self.device.modes[mode].dim
        out: list[QuditChannel] = []
        if params.loss > 0:
            out.append(photon_loss(d, params.loss))
        if params.dephase > 0:
            out.append(dephasing(d, params.dephase))
        if params.transmon_depol > 0:
            out.append(depolarizing(d, params.transmon_depol))
        return out

    def apply_to_circuit(
        self, circuit: QuditCircuit, layout: list[int] | None = None
    ) -> QuditCircuit:
        """Instrument a circuit with per-gate noise channels.

        Args:
            circuit: physical circuit (wire i runs on physical mode
                ``layout[i]``).
            layout: wire -> physical-mode map; identity if omitted.

        Returns:
            A new circuit with channel instructions inserted after every
            unitary.
        """
        layout = layout or list(range(circuit.num_qudits))
        if len(layout) != circuit.num_qudits:
            raise DeviceError(
                f"layout length {len(layout)} != circuit wires {circuit.num_qudits}"
            )
        for wire, mode in enumerate(layout):
            if self.device.modes[mode].dim != circuit.dims[wire]:
                raise DeviceError(
                    f"wire {wire} (d={circuit.dims[wire]}) mapped to mode {mode} "
                    f"(d={self.device.modes[mode].dim})"
                )
        noisy = QuditCircuit(circuit.dims, name=circuit.name + "+noise")
        for instruction in circuit:
            noisy.append(instruction)
            if instruction.kind != "unitary":
                continue
            for wire in instruction.qudits:
                for channel in self.channels_after_gate(
                    instruction.name, layout[wire]
                ):
                    noisy.channel(channel.kraus, wire, name=channel.name)
        return noisy

    def circuit_fidelity_estimate(
        self, circuit: QuditCircuit, layout: list[int] | None = None
    ) -> float:
        """Product-of-gate-fidelities estimate for a whole circuit.

        The standard first-order estimate used for "implementation
        estimation" in the paper's Table I: no simulation, just the error
        budget.
        """
        layout = layout or list(range(circuit.num_qudits))
        fidelity = 1.0
        for instruction in circuit:
            if instruction.kind != "unitary":
                continue
            modes = tuple(layout[w] for w in instruction.qudits)
            fidelity *= self.gate_fidelity(instruction.name, modes)
        return fidelity
