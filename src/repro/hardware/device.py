"""Parametric model of a multi-cavity bosonic qudit processor.

The architecture follows the paper's description: a linear array of 3D
SRF cavities, each hosting several long-lived electromagnetic modes
(*qumodes*) coupled to a single transmon ancilla per cavity.  Two qumodes
interact either

* *co-located* — same cavity, mediated by the shared transmon (fast,
  first-class), or
* *adjacent* — neighbouring cavities, mediated by inter-cavity coupling
  (slower, lower fidelity), matching Table I's distinction between CSUM
  "between co-located and adjacent qumodes".

Distant modes require routing (SWAP chains) — the compiler's job.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..core.exceptions import DeviceError
from .parameters import (
    CAVITY_DEFAULTS,
    TRANSMON_DEFAULTS,
    CoherenceParams,
    GateTimings,
)

__all__ = ["Mode", "Cavity", "CavityQPU", "linear_cavity_array"]


@dataclass(frozen=True)
class Mode:
    """One cavity electromagnetic mode usable as a qudit.

    Attributes:
        cavity: index of the host cavity.
        index_in_cavity: mode number within the cavity.
        dim: usable Fock levels (the qudit dimension d).
        coherence: this mode's T1/T2.
    """

    cavity: int
    index_in_cavity: int
    dim: int
    coherence: CoherenceParams

    def __post_init__(self) -> None:
        if self.dim < 2:
            raise DeviceError(f"mode dimension {self.dim} must be >= 2")


@dataclass(frozen=True)
class Cavity:
    """A 3D cavity: several modes plus one transmon ancilla."""

    index: int
    n_modes: int
    transmon: CoherenceParams

    def __post_init__(self) -> None:
        if self.n_modes < 1:
            raise DeviceError("cavity needs at least one mode")


class CavityQPU:
    """A linear array of multimode cavities with transmon couplers.

    Modes are globally numbered ``0 .. n_modes-1`` in cavity order.  The
    connectivity graph has an edge between every co-located pair (weight
    tagged ``'colocated'``) and between every pair of modes in adjacent
    cavities (tagged ``'adjacent'``).

    Args:
        cavities: cavity descriptors, in chain order.
        modes: all modes, grouped by cavity (validated).
        timings: native gate durations.
        name: device label.
    """

    def __init__(
        self,
        cavities: list[Cavity],
        modes: list[Mode],
        timings: GateTimings | None = None,
        name: str = "cavity-qpu",
    ) -> None:
        if not cavities:
            raise DeviceError("device needs at least one cavity")
        self.cavities = list(cavities)
        self.modes = list(modes)
        self.timings = timings or GateTimings()
        self.name = name
        self._validate()
        self._graph = self._build_graph()

    def _validate(self) -> None:
        counts = [0] * len(self.cavities)
        for mode in self.modes:
            if not 0 <= mode.cavity < len(self.cavities):
                raise DeviceError(f"mode references unknown cavity {mode.cavity}")
            counts[mode.cavity] += 1
        for cavity, count in zip(self.cavities, counts):
            if count != cavity.n_modes:
                raise DeviceError(
                    f"cavity {cavity.index} declares {cavity.n_modes} modes "
                    f"but {count} were provided"
                )

    def _build_graph(self) -> nx.Graph:
        graph = nx.Graph()
        for idx, mode in enumerate(self.modes):
            graph.add_node(idx, mode=mode)
        for i, mode_i in enumerate(self.modes):
            for j in range(i + 1, len(self.modes)):
                mode_j = self.modes[j]
                if mode_i.cavity == mode_j.cavity:
                    graph.add_edge(i, j, kind="colocated")
                elif abs(mode_i.cavity - mode_j.cavity) == 1:
                    graph.add_edge(i, j, kind="adjacent")
        return graph

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def n_modes(self) -> int:
        """Total number of qumodes on the device."""
        return len(self.modes)

    @property
    def n_cavities(self) -> int:
        """Number of cavities in the chain."""
        return len(self.cavities)

    @property
    def connectivity(self) -> nx.Graph:
        """Mode-level connectivity graph (co-located + adjacent edges)."""
        return self._graph

    def mode_dims(self) -> tuple[int, ...]:
        """Per-mode qudit dimensions in global mode order."""
        return tuple(mode.dim for mode in self.modes)

    def modes_in_cavity(self, cavity: int) -> list[int]:
        """Global indices of the modes hosted by one cavity."""
        if not 0 <= cavity < self.n_cavities:
            raise DeviceError(f"cavity {cavity} out of range")
        return [i for i, mode in enumerate(self.modes) if mode.cavity == cavity]

    def are_connected(self, mode_a: int, mode_b: int) -> bool:
        """True if the two modes can interact without routing."""
        return self._graph.has_edge(mode_a, mode_b)

    def edge_kind(self, mode_a: int, mode_b: int) -> str:
        """``'colocated'`` or ``'adjacent'`` for a connected pair.

        Raises:
            DeviceError: if the modes are not directly connected.
        """
        if not self.are_connected(mode_a, mode_b):
            raise DeviceError(f"modes {mode_a} and {mode_b} are not connected")
        return self._graph.edges[mode_a, mode_b]["kind"]

    def distance(self, mode_a: int, mode_b: int) -> int:
        """Connectivity-graph hop distance between two modes."""
        return nx.shortest_path_length(self._graph, mode_a, mode_b)

    def two_mode_duration(self, mode_a: int, mode_b: int, base: float) -> float:
        """Duration of a connected two-mode gate.

        Adjacent-cavity operations run through the weaker inter-cavity
        coupling and are modelled as 2x slower than co-located ones.
        """
        kind = self.edge_kind(mode_a, mode_b)
        return base if kind == "colocated" else 2.0 * base

    def hilbert_dimension(self) -> int:
        """Total Hilbert-space dimension ``prod(d_i)``."""
        out = 1
        for mode in self.modes:
            out *= mode.dim
        return out

    def qubit_equivalent(self) -> float:
        """``log2`` of the Hilbert dimension — the paper's ">100 qubits" metric."""
        import math

        return sum(math.log2(mode.dim) for mode in self.modes)

    def __repr__(self) -> str:
        return (
            f"CavityQPU(name={self.name!r}, cavities={self.n_cavities}, "
            f"modes={self.n_modes}, dims={self.mode_dims()})"
        )


def linear_cavity_array(
    n_cavities: int,
    modes_per_cavity: int,
    dim: int,
    cavity_coherence: CoherenceParams | None = None,
    transmon_coherence: CoherenceParams | None = None,
    timings: GateTimings | None = None,
    coherence_spread: float = 0.0,
    seed: int | None = None,
    name: str | None = None,
) -> CavityQPU:
    """Build a homogeneous linear multi-cavity device.

    Args:
        n_cavities: number of cavities in the chain.
        modes_per_cavity: qumodes per cavity.
        dim: qudit dimension of every mode.
        cavity_coherence: per-mode T1/T2 (defaults to the forecast ms-class).
        transmon_coherence: ancilla T1/T2.
        timings: native gate durations.
        coherence_spread: relative log-normal spread of per-mode T1/T2,
            modelling fabrication variation; 0 gives identical modes.  A
            non-zero spread is what gives the noise-aware mapper something
            to exploit.
        seed: RNG seed for the spread.
        name: device label.

    Returns:
        A :class:`CavityQPU`.
    """
    import numpy as np

    if n_cavities < 1 or modes_per_cavity < 1:
        raise DeviceError("need at least one cavity and one mode per cavity")
    cavity_coherence = cavity_coherence or CAVITY_DEFAULTS
    transmon_coherence = transmon_coherence or TRANSMON_DEFAULTS
    rng = np.random.default_rng(seed)
    cavities = [
        Cavity(index=c, n_modes=modes_per_cavity, transmon=transmon_coherence)
        for c in range(n_cavities)
    ]
    modes = []
    for c in range(n_cavities):
        for m in range(modes_per_cavity):
            if coherence_spread > 0:
                factor = float(np.exp(rng.normal(0.0, coherence_spread)))
                coherence = cavity_coherence.scaled(factor)
            else:
                coherence = cavity_coherence
            modes.append(
                Mode(cavity=c, index_in_cavity=m, dim=dim, coherence=coherence)
            )
    label = name or f"linear-{n_cavities}x{modes_per_cavity}-d{dim}"
    return CavityQPU(cavities, modes, timings=timings, name=label)
