"""Parametric hardware model of the multi-cavity bosonic qudit QPU."""

from .device import Cavity, CavityQPU, Mode, linear_cavity_array
from .isa import (
    LOWERING_RULES,
    NATIVE_GATES,
    LoweringRule,
    NativeGate,
    is_native,
    lowering_cost,
)
from .noise_model import DeviceNoiseModel, NoiseParameters
from .parameters import (
    CAVITY_DEFAULTS,
    TRANSMON_DEFAULTS,
    CoherenceParams,
    GateTimings,
)
from .roadmap import RoadmapSummary, forecast_device, roadmap_summary

__all__ = [
    "Cavity",
    "CavityQPU",
    "Mode",
    "linear_cavity_array",
    "LOWERING_RULES",
    "NATIVE_GATES",
    "LoweringRule",
    "NativeGate",
    "is_native",
    "lowering_cost",
    "DeviceNoiseModel",
    "NoiseParameters",
    "CAVITY_DEFAULTS",
    "TRANSMON_DEFAULTS",
    "CoherenceParams",
    "GateTimings",
    "RoadmapSummary",
    "forecast_device",
    "roadmap_summary",
]
