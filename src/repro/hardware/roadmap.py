"""The paper's 5-year forecast device and its headline capacity claim.

Paper §I: "it's realistic to forecast the feasibility in the near-term of a
multi-cell array composed by ~10 linearly connected cavities, each
contributing ~4 modes that can be occupied by d ~ 10 photons with
millisecond T1 lifetime [...] Such a system would exceed 100 qubits in
Hilbert space dimension."

This module builds that device and verifies the capacity arithmetic
(experiment E-C7 in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import CavityQPU, linear_cavity_array
from .parameters import CoherenceParams

__all__ = ["forecast_device", "RoadmapSummary", "roadmap_summary"]

#: Forecast parameters straight from the paper.
FORECAST_N_CAVITIES = 10
FORECAST_MODES_PER_CAVITY = 4
FORECAST_DIM = 10
FORECAST_T1 = 1e-3  # "millisecond T1 lifetime"


def forecast_device(
    coherence_spread: float = 0.0, seed: int | None = None
) -> CavityQPU:
    """The 10-cavity x 4-mode x d=10 forecast device.

    Args:
        coherence_spread: optional per-mode T1/T2 fabrication spread.
        seed: RNG seed for the spread.
    """
    return linear_cavity_array(
        n_cavities=FORECAST_N_CAVITIES,
        modes_per_cavity=FORECAST_MODES_PER_CAVITY,
        dim=FORECAST_DIM,
        cavity_coherence=CoherenceParams(t1=FORECAST_T1, t2=1.5 * FORECAST_T1),
        coherence_spread=coherence_spread,
        seed=seed,
        name="forecast-10x4-d10",
    )


@dataclass(frozen=True)
class RoadmapSummary:
    """Capacity accounting of a device against the '>100 qubits' claim."""

    n_cavities: int
    n_modes: int
    dim_per_mode: int
    hilbert_dimension_log10: float
    qubit_equivalent: float
    exceeds_100_qubits: bool


def roadmap_summary(device: CavityQPU | None = None) -> RoadmapSummary:
    """Summarise a device's Hilbert-space capacity.

    For the forecast device: 40 modes of d=10 give ``10^40``,
    i.e. ``40 * log2(10) ~ 132.9`` qubit equivalents — comfortably above
    100, reproducing claim C7.
    """
    device = device or forecast_device()
    qubit_equivalent = device.qubit_equivalent()
    log10_dim = sum(math.log10(mode.dim) for mode in device.modes)
    dims = {mode.dim for mode in device.modes}
    return RoadmapSummary(
        n_cavities=device.n_cavities,
        n_modes=device.n_modes,
        dim_per_mode=dims.pop() if len(dims) == 1 else -1,
        hilbert_dimension_log10=log10_dim,
        qubit_equivalent=qubit_equivalent,
        exceeds_100_qubits=qubit_equivalent > 100.0,
    )
