"""Instruction-set architecture of the cavity QPU.

Formalises (after Liu et al. [5], cited by the paper) which operations are
*native* on the hybrid oscillator-ancilla hardware, and what each
non-native gate lowers to.  The compiler's resource estimator charges
circuits according to this table.

Native set used here:

* ``disp``  — cavity displacement D(alpha)           (fast, ~ns)
* ``snap``  — selective number-dependent phase        (slow, ~1/chi)
* ``rot``   — two-level Givens rotation via sideband  (SNAP+disp compiled,
              charged as one native unit following ref [20])
* ``bs``    — beam-splitter between connected modes
* ``cphase``— cross-Kerr / dispersive controlled phase between connected
              modes (diagonal entangler)
* ``measure``/``reset``

Everything else decomposes; the canonical example is the paper's
challenge gate::

    CSUM = (I x F†) . CPHASE . (I x F)

where each Fourier F itself lowers to O(d) SNAP+disp layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.exceptions import DeviceError

__all__ = ["NativeGate", "NATIVE_GATES", "LoweringRule", "LOWERING_RULES", "is_native", "lowering_cost"]


@dataclass(frozen=True)
class NativeGate:
    """One native operation of the ISA.

    Attributes:
        name: gate mnemonic (matches circuit instruction names).
        n_modes: how many qumodes it touches.
        uses_transmon: whether the ancilla is occupied during the gate
            (transmon decoherence then contributes to the error budget).
    """

    name: str
    n_modes: int
    uses_transmon: bool


#: The native gate table.
NATIVE_GATES: dict[str, NativeGate] = {
    gate.name: gate
    for gate in [
        NativeGate("disp", 1, uses_transmon=False),
        NativeGate("snap", 1, uses_transmon=True),
        NativeGate("rot", 1, uses_transmon=True),
        NativeGate("mixer", 1, uses_transmon=True),
        NativeGate("perm", 1, uses_transmon=True),
        NativeGate("bs", 2, uses_transmon=True),
        NativeGate("cphase", 2, uses_transmon=True),
        NativeGate("measure", 1, uses_transmon=True),
        NativeGate("reset", 1, uses_transmon=True),
    ]
}


@dataclass(frozen=True)
class LoweringRule:
    """Decomposition of a non-native gate into native gate counts.

    Counts may depend on the qudit dimension ``d``; they are expressed as
    coefficients of a linear model ``count = const + per_level * d`` which
    is exact for the decompositions used by the synthesis module.

    Attributes:
        target: non-native gate name.
        native_counts: mapping native-name -> (const, per_level).
    """

    target: str
    native_counts: dict[str, tuple[float, float]]

    def expand(self, d: int) -> dict[str, int]:
        """Native gate counts for dimension ``d`` (ceil of the linear model)."""
        import math

        if d < 2:
            raise DeviceError(f"dimension {d} must be >= 2")
        return {
            name: int(math.ceil(const + per_level * d))
            for name, (const, per_level) in self.native_counts.items()
        }


#: Lowering table.  Counts mirror the synthesis module:
#: * fourier: SNAP-displacement synthesis uses ~(d+1) SNAP layers with
#:   interleaved displacements (ref [24] reports ~d layers for SU(d)).
#: * x/z: single SNAP (z is exactly one SNAP; x is F Z F† but on hardware a
#:   sideband ladder of d-1 rotations is cheaper).
#: * csum: Fourier conjugation + one cphase.
#: * swap: 3 CSUM-equivalents (qudit identity: SWAP = CSUM relabellings) or
#:   natively one full beam-splitter swap; we charge the cheaper bs route.
LOWERING_RULES: dict[str, LoweringRule] = {
    "fourier": LoweringRule(
        "fourier", {"snap": (1.0, 1.0), "disp": (1.0, 1.0)}
    ),
    "x": LoweringRule("x", {"rot": (-1.0, 1.0)}),
    "z": LoweringRule("z", {"snap": (1.0, 0.0)}),
    "csum": LoweringRule(
        "csum",
        {"snap": (2.0, 2.0), "disp": (2.0, 2.0), "cphase": (1.0, 0.0)},
    ),
    "csum_dg": LoweringRule(
        "csum_dg",
        {"snap": (2.0, 2.0), "disp": (2.0, 2.0), "cphase": (1.0, 0.0)},
    ),
    "swap": LoweringRule("swap", {"bs": (1.0, 0.0), "snap": (2.0, 0.0)}),
    # move: beam-splitter swap with an empty (vacuum) mode during routing.
    "move": LoweringRule("move", {"bs": (1.0, 0.0)}),
    # --- application-term lowerings (rotor Trotter steps, QAOA layers) ---
    # electric: diagonal single-qudit phase pattern = one SNAP.
    "electric": LoweringRule("electric", {"snap": (1.0, 0.0)}),
    # boundary: generic single-qudit unitary via SNAP-displacement.
    "boundary": LoweringRule("boundary", {"snap": (1.0, 1.0), "disp": (1.0, 1.0)}),
    # hop: exp(-i t (U U† + h.c.)) via CSUM conjugation — two CSUMs plus a
    # local rotation between them.
    "hop": LoweringRule(
        "hop", {"snap": (5.0, 4.0), "disp": (5.0, 4.0), "cphase": (2.0, 0.0)}
    ),
    # zz / phase_sep: diagonal two-qudit entanglers = one dispersive pulse.
    "zz": LoweringRule("zz", {"cphase": (1.0, 0.0)}),
    "phase_sep": LoweringRule("phase_sep", {"cphase": (1.0, 0.0)}),
    "unitary": LoweringRule(
        # generic single-mode unitary via SNAP-displacement (ref [24]):
        # d+1 SNAP layers and d+1 displacements.
        "unitary",
        {"snap": (1.0, 1.0), "disp": (1.0, 1.0)},
    ),
}


def is_native(gate_name: str) -> bool:
    """True if the gate runs directly on hardware."""
    return gate_name in NATIVE_GATES


def lowering_cost(gate_name: str, d: int) -> dict[str, int]:
    """Native gate counts for one (possibly non-native) gate.

    Native gates cost exactly themselves; non-native gates expand through
    :data:`LOWERING_RULES`.

    Raises:
        DeviceError: if the gate has no lowering rule.
    """
    if is_native(gate_name):
        return {gate_name: 1}
    rule = LOWERING_RULES.get(gate_name)
    if rule is None:
        raise DeviceError(f"gate {gate_name!r} is neither native nor lowerable")
    return rule.expand(d)
