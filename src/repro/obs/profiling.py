"""Opt-in per-worker sampling profiles, merged across processes.

Metrics answer "how many, how long"; when a campaign point is slow the
next question is *where inside the task* the time went.  This module
wraps each point execution in a :mod:`cProfile` run (only when the
module-level :data:`enabled` flag is on — profiling has real overhead,
so unlike metrics/tracing it is never implied by ``obs.enable()``) and
buffers the raw stats dicts.  Campaign workers drain the buffer after
each point and piggyback it onto the existing result-pipe obs slot —
exactly how metric deltas and spans travel — and the supervisor folds
the raw dicts back in here, so :func:`merged` sees one multi-process
profile.

Raw profiles are the plain ``cProfile.Profile.stats`` mapping
``{(file, line, func): (cc, nc, tt, ct, callers)}`` — picklable for the
pipe, and merged via :class:`pstats.Stats` addition.  :func:`hot_table`
renders the merged profile as JSON-safe rows for flight reports and
ledger records.

Enable with ``obs.profiling.enable()``, ``REPRO_OBS_PROFILE=1`` in the
environment, or ``CampaignExecutor(profile=True)``.  The usual obs
contract holds: profiling reads timings only and never perturbs
simulation results.
"""

from __future__ import annotations

import cProfile
import pstats
import threading
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "enabled",
    "enable",
    "disable",
    "profiled",
    "add_raw",
    "raw_profiles",
    "drain",
    "reset",
    "merged",
    "hot_table",
]

#: One raw profile: cProfile's stats dict, picklable as-is.
RawProfile = dict[tuple[str, int, str], tuple[Any, ...]]

#: Module-level fast-path flag; :func:`profiled` is a no-op when off.
enabled: bool = False

_buffer: list[RawProfile] = []
_buffer_lock = threading.Lock()


def enable() -> None:
    """Turn point profiling on (idempotent)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn point profiling off; buffered profiles are kept."""
    global enabled
    enabled = False


@contextmanager
def profiled() -> Iterator[None]:
    """Profile the block with :mod:`cProfile` (no-op when disabled).

    The raw stats land in the module buffer even when the block raises —
    a failing point's profile is exactly the one worth reading.  cProfile
    does not nest: a block already under another active profiler runs
    unprofiled rather than crashing the point.
    """
    if not enabled:
        yield
        return
    profile = cProfile.Profile()
    try:
        profile.enable()
    except ValueError:  # another profiler is active (e.g. an outer tool)
        yield
        return
    try:
        yield
    finally:
        profile.disable()
        profile.create_stats()
        with _buffer_lock:
            _buffer.append(dict(profile.stats))  # type: ignore[attr-defined]


def add_raw(profiles: list[RawProfile]) -> None:
    """Fold raw profiles collected elsewhere in (the cross-process merge).

    Like :func:`repro.obs.tracing.add_events` this works regardless of
    :data:`enabled` — merging is bookkeeping, not collection.
    """
    if not profiles:
        return
    with _buffer_lock:
        _buffer.extend(profiles)


def raw_profiles() -> list[RawProfile]:
    """Copy of the buffered raw profiles."""
    with _buffer_lock:
        return list(_buffer)


def drain() -> list[RawProfile]:
    """Return buffered profiles and clear the buffer (worker per-point ship)."""
    with _buffer_lock:
        out = list(_buffer)
        _buffer.clear()
    return out


def reset() -> None:
    """Drop all buffered profiles (tests / fresh sessions)."""
    with _buffer_lock:
        _buffer.clear()


class _StatsCarrier:
    """Adapter giving a raw stats dict the interface ``pstats`` loads."""

    def __init__(self, raw: RawProfile) -> None:
        self.stats = raw

    def create_stats(self) -> None:
        """Already created — the dict *is* the stats."""


def merged(profiles: list[RawProfile] | None = None) -> pstats.Stats | None:
    """One :class:`pstats.Stats` over all (default: buffered) profiles."""
    if profiles is None:
        profiles = raw_profiles()
    if not profiles:
        return None
    stats = pstats.Stats(_StatsCarrier(profiles[0]))
    for raw in profiles[1:]:
        stats.add(_StatsCarrier(raw))
    return stats


def hot_table(
    limit: int = 15, profiles: list[RawProfile] | None = None
) -> list[dict[str, Any]]:
    """The merged profile's hottest functions as JSON-safe rows.

    Rows are sorted by cumulative time, one per function:
    ``{"func", "file", "line", "ncalls", "tottime_s", "cumtime_s"}`` —
    the flight report's hot-path table and the ledger record's
    ``profile`` field.
    """
    stats = merged(profiles)
    if stats is None:
        return []
    rows = []
    for (filename, lineno, func), entry in stats.stats.items():  # type: ignore[attr-defined]
        cc, nc, tt, ct = entry[0], entry[1], entry[2], entry[3]
        del cc
        rows.append(
            {
                "func": func,
                "file": filename,
                "line": int(lineno),
                "ncalls": int(nc),
                "tottime_s": round(float(tt), 6),
                "cumtime_s": round(float(ct), 6),
            }
        )
    rows.sort(key=lambda row: (-row["cumtime_s"], row["file"], row["line"]))
    return rows[: max(0, limit)]
