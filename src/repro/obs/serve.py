"""Live telemetry endpoints over the in-process observability state.

A stdlib :mod:`http.server` thread that makes a running campaign
externally visible — the day-one surface for the always-on campaign
service the ROADMAP points at:

- ``/metrics`` — the live registry as Prometheus exposition text
  (worker deltas are merged in by the supervisor as results arrive, so
  a mid-flight scrape sees the campaign's progress).
- ``/status`` — JSON per-campaign progress from
  :meth:`CampaignHandle.stats`, with the heavyweight fields (timeline,
  metrics snapshot, per-point attempts) stripped down to counts.
- ``/spans`` — the recent span buffer as JSON, newest last
  (``?limit=N``, default 256).

Everything is read-only and snapshot-under-lock: the registry and span
buffer copy their state under their own locks, and handle counters are
single reads of values the supervisor thread publishes — a scrape can
never block or perturb dispatch.  Campaign handles are tracked through
weak references, so the server never extends a handle's lifetime.

Opt in with ``CampaignExecutor(http_port=...)`` or
``REPRO_OBS_HTTP=<port>`` in the environment; port ``0`` binds an
ephemeral port, published via :attr:`ObsServer.port`.
"""

from __future__ import annotations

import json
import threading
import weakref
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any
from urllib.parse import parse_qs, urlsplit

from . import metrics as _metrics
from . import tracing as _tracing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (exec -> obs)
    from repro.exec.executor import CampaignHandle

__all__ = ["DEFAULT_SPAN_LIMIT", "ObsServer"]

#: ``/spans`` tail length when the query string does not say otherwise.
DEFAULT_SPAN_LIMIT = 256

#: Keys of :meth:`CampaignHandle.stats` too heavy for a status poll.
_STATUS_DROP = ("timeline", "metrics", "attempts")


def _ensure_http_metrics() -> None:
    """Register the server's metric family (idempotent)."""
    _metrics.REGISTRY.counter(
        "http_requests", "Telemetry endpoint requests served, by path."
    )


class _Handler(BaseHTTPRequestHandler):
    """Routes the three read-only endpoints; everything else is 404."""

    server: "ObsServer"  # narrowed from http.server's BaseServer

    # BaseHTTPRequestHandler logs every request to stderr by default —
    # unacceptable noise next to a progress bar.
    def log_message(self, format: str, *args: Any) -> None:
        del format, args

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        route = split.path.rstrip("/") or "/"
        if _metrics.enabled:
            _ensure_http_metrics()
            _metrics.inc("http_requests", path=route)
        if route == "/metrics":
            self._reply(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                _metrics.exposition().encode("utf-8"),
            )
        elif route == "/status":
            self._reply_json(self.server.status())
        elif route == "/spans":
            limit = DEFAULT_SPAN_LIMIT
            raw = parse_qs(split.query).get("limit", [])
            if raw:
                try:
                    limit = max(0, int(raw[0]))
                except ValueError:
                    self._reply_json({"error": f"bad limit: {raw[0]!r}"}, code=400)
                    return
            events = _tracing.events()
            self._reply_json(
                {"total": len(events), "spans": events[len(events) - limit :]}
            )
        else:
            self._reply_json({"error": f"no such endpoint: {route}"}, code=404)

    def _reply_json(self, payload: dict[str, Any], code: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        self._reply(code, "application/json; charset=utf-8", body)

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ObsServer(ThreadingHTTPServer):
    """The telemetry endpoint server; one daemon thread, explicit stop.

    Usually owned by a :class:`~repro.exec.executor.CampaignExecutor`
    (``http_port=``), which registers every submitted handle and stops
    the server on close — but it stands alone too::

        server = ObsServer(port=0).start()
        ...  # scrape http://127.0.0.1:{server.port}/metrics
        server.stop()
    """

    daemon_threads = True

    def __init__(self, port: int = 0, host: str = "127.0.0.1") -> None:
        super().__init__((host, port), _Handler)
        self._thread: threading.Thread | None = None
        self._handles: list["weakref.ReferenceType[CampaignHandle]"] = []
        self._handles_lock = threading.Lock()

    @property
    def port(self) -> int:
        """The bound port (the real one when constructed with ``0``)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.server_address[0]}:{self.port}"

    def start(self) -> "ObsServer":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        if self._thread is None:
            _ensure_http_metrics()
            self._thread = threading.Thread(
                target=self.serve_forever,
                name=f"repro-obs-serve:{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Shut the listener down and join the serving thread."""
        thread, self._thread = self._thread, None
        if thread is not None:
            self.shutdown()
            thread.join(timeout)
        self.server_close()

    # -- campaign registry ---------------------------------------------

    def register(self, handle: "CampaignHandle") -> None:
        """Track a campaign handle (weakly) for ``/status``."""
        with self._handles_lock:
            self._handles = [ref for ref in self._handles if ref() is not None]
            self._handles.append(weakref.ref(handle))

    def status(self) -> dict[str, Any]:
        """The ``/status`` payload: one summary per live campaign."""
        campaigns = []
        with self._handles_lock:
            handles = [ref() for ref in self._handles]
        for handle in handles:
            if handle is None:
                continue
            stats = handle.stats()
            summary = {k: v for k, v in stats.items() if k not in _STATUS_DROP}
            summary["pending"] = stats["points"] - stats["resolved"]
            campaigns.append(summary)
        return {"campaigns": campaigns}
