"""Persistent run ledger: one JSON line per completed campaign run.

Metrics and spans die with the process; the ledger is the part of the
observability story that survives it.  Every executor run appends a
structured record — campaign fingerprint, parameter shape, retry
policy, environment, final metrics snapshot, per-point timeline, error
records, wall times — to a JSON-lines file that lives beside the
:class:`~repro.exec.cache.ResultCache` (``<cache root>/ledger.jsonl``;
the cache's shard glob ``*/*.json`` never sees a root-level file, so
the ledger does not count against cache caps).

Records accumulate across processes and machines sharing a cache root,
which makes the ledger the historical sample store the ROADMAP's
error-budget autopilot recalibrates against: :meth:`RunLedger.query`
filters by fingerprint/task/date and :meth:`RunLedger.exec_s_samples`
aggregates per-point wall-time distributions across runs.

The format is deliberately boring: UTF-8 JSON lines, append-only, one
self-contained record per line.  Torn or corrupt lines (a crash mid
``write``) are skipped on read, never repaired in place.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterator

from . import metrics as _metrics

__all__ = ["LEDGER_FILENAME", "RunLedger", "RunRecord"]

#: Filename used when a ledger is co-located with a ``ResultCache``.
LEDGER_FILENAME = "ledger.jsonl"

#: One ledger entry, parsed back from its JSON line.
RunRecord = dict[str, Any]


def _ensure_ledger_metrics() -> None:
    """Register the ledger's metric families (idempotent)."""
    _metrics.REGISTRY.counter(
        "ledger_records", "Run records appended to the ledger."
    )
    _metrics.REGISTRY.histogram(
        "ledger_write_s", "Wall time spent appending one ledger record."
    )


class RunLedger:
    """Append-only JSON-lines store of campaign run records.

    Thread-safe for appends within a process (each append is a single
    ``write()`` of one line on a freshly opened descriptor in append
    mode), and safe across processes on POSIX for the record sizes we
    produce — the same discipline the result cache uses for its
    side-channel files.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)

    def __repr__(self) -> str:
        return f"RunLedger({str(self.path)!r})"

    # -- writing -------------------------------------------------------

    def append(self, record: RunRecord) -> RunRecord:
        """Append one run record, stamping ``recorded_at`` if absent.

        Returns the record as written.  The serialised line must be
        valid JSON with no embedded newline; ``json.dumps`` with
        default separators guarantees both.  A crashed writer can leave
        an unterminated tail; appending starts on a fresh line in that
        case so the torn fragment stays isolated instead of corrupting
        this record too.
        """
        _ensure_ledger_metrics()
        if "recorded_at" not in record:
            record = {**record, "recorded_at": time.time()}
        line = json.dumps(record, sort_keys=True, default=str)
        started = time.perf_counter()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        prefix = ""
        try:
            with open(self.path, "rb") as tail:
                tail.seek(-1, os.SEEK_END)
                if tail.read(1) != b"\n":
                    prefix = "\n"
        except OSError:
            pass  # missing or empty file: nothing to isolate
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(prefix + line + "\n")
            fh.flush()
        if _metrics.enabled:
            _metrics.observe("ledger_write_s", time.perf_counter() - started)
            _metrics.inc("ledger_records")
        return record

    # -- reading -------------------------------------------------------

    def records(self) -> Iterator[RunRecord]:
        """Yield records oldest-first, skipping torn/corrupt lines."""
        if not self.path.exists():
            return
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    parsed = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a crashed writer
                if isinstance(parsed, dict):
                    yield parsed

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def query(
        self,
        *,
        fingerprint: str | None = None,
        task: str | None = None,
        name: str | None = None,
        since: float | None = None,
        until: float | None = None,
        predicate: Callable[[RunRecord], bool] | None = None,
        limit: int | None = None,
    ) -> list[RunRecord]:
        """Filtered records, oldest-first.

        ``fingerprint``/``task``/``name`` match record fields exactly;
        ``since``/``until`` bound ``recorded_at`` (unix seconds,
        inclusive); ``predicate`` is an arbitrary final filter; a
        ``limit`` keeps the **newest** matches.
        """
        out = []
        for record in self.records():
            if fingerprint is not None and record.get("fingerprint") != fingerprint:
                continue
            if task is not None and record.get("task") != task:
                continue
            if name is not None and record.get("name") != name:
                continue
            stamp = record.get("recorded_at")
            if since is not None and not (
                isinstance(stamp, (int, float)) and stamp >= since
            ):
                continue
            if until is not None and not (
                isinstance(stamp, (int, float)) and stamp <= until
            ):
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        if limit is not None and limit >= 0:
            out = out[len(out) - limit :] if limit else []
        return out

    def latest(self, **filters: Any) -> RunRecord | None:
        """Newest record matching ``filters`` (see :meth:`query`)."""
        matches = self.query(**filters)
        return matches[-1] if matches else None

    # -- aggregation ---------------------------------------------------

    def exec_s_samples(self, **filters: Any) -> list[float]:
        """All per-point execution wall times across matching runs.

        Pulled from each record's timeline ``exec_s`` fields — the raw
        sample set for cost-model recalibration.
        """
        samples: list[float] = []
        for record in self.query(**filters):
            for entry in record.get("timeline") or []:
                value = entry.get("exec_s") if isinstance(entry, dict) else None
                if isinstance(value, (int, float)):
                    samples.append(float(value))
        return samples

    #: Error-account fields copied out of timeline entries by
    #: :meth:`error_account_samples` — the schema the campaign workers
    #: flatten into point metadata (``repro.core.budget.ErrorAccount``).
    _ACCOUNT_FIELDS = (
        "truncation_error",
        "purification_error",
        "max_chi",
        "max_kappa",
        "bond_truncations",
        "kraus_truncations",
    )

    def error_account_samples(self, **filters: Any) -> list[dict[str, float]]:
        """Per-point error accounts across matching runs.

        Each sample is the truncation/purification account one worker
        shipped back in a timeline entry (``truncation_error``,
        ``purification_error``, ``max_chi``, ``max_kappa``,
        ``bond_truncations``, ``kraus_truncations``) — the raw sample
        set :func:`repro.exec.autopilot.recalibrate` refits the
        accuracy-model constants against.  Entries that recorded no
        truncation events are skipped.
        """
        samples: list[dict[str, float]] = []
        for record in self.query(**filters):
            for entry in record.get("timeline") or []:
                if not isinstance(entry, dict):
                    continue
                account = {
                    field: float(entry[field])
                    for field in self._ACCOUNT_FIELDS
                    if isinstance(entry.get(field), (int, float))
                }
                if account.get("bond_truncations") or account.get(
                    "kraus_truncations"
                ):
                    samples.append(account)
        return samples

    def exec_s_distribution(self, **filters: Any) -> dict[str, float] | None:
        """Summary stats of :meth:`exec_s_samples` (count/min/max/mean/quantiles)."""
        samples = sorted(self.exec_s_samples(**filters))
        if not samples:
            return None

        def pick(q: float) -> float:
            index = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
            return samples[index]

        return {
            "count": float(len(samples)),
            "min": samples[0],
            "max": samples[-1],
            "mean": sum(samples) / len(samples),
            "p50": pick(0.50),
            "p95": pick(0.95),
            "p99": pick(0.99),
        }
