"""Campaign flight reports: one run (or a ledger query) rendered to text.

``python -m repro.obs.report <ledger.jsonl>`` picks a run record from
the persistent ledger (newest by default; filter with
``--fingerprint/--task/--name``) and renders a self-contained flight
report — campaign header, cache/retry/crash summary, `exec_point_s`
quantiles, a per-point timeline Gantt built from the recorded
spans/timeline, terminal error records, and (when profiling was on) the
merged hot-path table.  ``--format html`` emits a standalone HTML file
with inline styling; the default is markdown.  ``--aggregate`` renders
a multi-run summary over every matching record instead — the
ledger-query view of per-point wall-time distributions.

Rendering is pure: the module reads a ledger, never the live registry,
so a report can be generated long after (and far away from) the run.
"""

from __future__ import annotations

import argparse
import html
import sys
import time
from pathlib import Path
from typing import Any, Sequence

from .ledger import RunLedger, RunRecord
from .metrics import DEFAULT_BUCKETS, quantile_from_sample

__all__ = ["main", "render_html", "render_markdown", "render_aggregate"]

_BAR_WIDTH = 40

# One report section: a title plus either free lines or a header+rows table.
_Section = tuple[str, list[str], list[list[str]] | None]


def _iso(stamp: Any) -> str:
    if isinstance(stamp, (int, float)):
        return time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime(stamp))
    return str(stamp)


def _fmt_s(value: Any) -> str:
    if isinstance(value, (int, float)):
        return f"{value:.4f}s" if value < 10 else f"{value:.1f}s"
    return "-"


def _counter_total(record: RunRecord, family: str) -> int | None:
    """Sum a counter family across label sets in the record's snapshot."""
    snapshot = record.get("metrics")
    if not isinstance(snapshot, dict):
        return None
    entry = snapshot.get(family)
    if not isinstance(entry, dict):
        return None
    samples = entry.get("values")
    if not isinstance(samples, dict):
        return None
    total = 0.0
    for value in samples.values():
        if isinstance(value, (int, float)):
            total += value
    return int(total)


def _exec_quantiles(record: RunRecord) -> dict[str, float] | None:
    """p50/p95/p99 of per-point execution time, preferring the recorded set.

    Falls back to recomputing from the record's histogram snapshot (the
    fixed-bucket estimate), then to the raw timeline samples.
    """
    recorded = record.get("exec_point_quantiles")
    if isinstance(recorded, dict) and recorded:
        return {k: float(v) for k, v in recorded.items() if isinstance(v, (int, float))}
    snapshot = record.get("metrics")
    if isinstance(snapshot, dict):
        entry = snapshot.get("exec_point_s")
        if isinstance(entry, dict) and isinstance(entry.get("values"), dict):
            merged: dict[str, Any] | None = None
            for sample in entry["values"].values():
                if not isinstance(sample, dict):
                    continue
                if merged is None:
                    merged = {
                        "buckets": list(sample["buckets"]),
                        "sum": sample["sum"],
                        "count": sample["count"],
                    }
                else:
                    merged["buckets"] = [
                        a + b
                        for a, b in zip(merged["buckets"], sample["buckets"])
                    ]
                    merged["sum"] += sample["sum"]
                    merged["count"] += sample["count"]
            if merged is not None and merged["count"] > 0:
                buckets = tuple(entry.get("buckets") or DEFAULT_BUCKETS)
                out = {}
                for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                    est = quantile_from_sample(merged, buckets, q)
                    if est is not None:
                        out[name] = est
                return out or None
    samples = sorted(
        float(entry["exec_s"])
        for entry in record.get("timeline") or []
        if isinstance(entry, dict) and isinstance(entry.get("exec_s"), (int, float))
    )
    if not samples:
        return None

    def pick(q: float) -> float:
        return samples[min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))]

    return {"p50": pick(0.50), "p95": pick(0.95), "p99": pick(0.99)}


def _gantt_rows(record: RunRecord) -> list[list[str]]:
    """Per-point bars: queue wait (light) then execution (solid).

    Bars are scaled to the slowest point's wait+exec total.  Cache and
    checkpoint hits resolved at submit time and show as instant.
    """
    rows = []
    entries = [e for e in record.get("timeline") or [] if isinstance(e, dict)]
    scale = max(
        (
            float(e.get("queue_wait_s") or 0.0) + float(e.get("exec_s") or 0.0)
            for e in entries
        ),
        default=0.0,
    )
    for entry in sorted(entries, key=lambda e: e.get("index", 0)):
        source = str(entry.get("source", "?"))
        if source != "computed":
            rows.append([str(entry.get("index", "?")), source, "-", f"({source} hit)"])
            continue
        wait = float(entry.get("queue_wait_s") or 0.0)
        exec_s = float(entry.get("exec_s") or 0.0)
        if scale > 0:
            wait_cells = round(_BAR_WIDTH * wait / scale)
            exec_cells = max(1, round(_BAR_WIDTH * exec_s / scale))
        else:
            wait_cells, exec_cells = 0, 1
        bar = "░" * wait_cells + "█" * exec_cells
        status = "ok" if entry.get("ok", True) else "ERROR"
        rows.append([str(entry.get("index", "?")), status, _fmt_s(exec_s), bar])
    return rows


def _sections(record: RunRecord) -> list[_Section]:
    """The report's content, renderer-agnostic."""
    env = record.get("env") or {}
    header = [
        f"campaign: {record.get('name', '?')}",
        f"task: {record.get('task', '?')}",
        f"fingerprint: {record.get('fingerprint', '?')}",
        f"recorded: {_iso(record.get('recorded_at'))}",
        f"workers: {record.get('workers', '?')}  "
        f"policy: {record.get('policy', '?')}  "
        f"duration: {_fmt_s(record.get('duration_s'))}",
        f"host: cpu_count={env.get('cpu_count', '?')} "
        f"platform={env.get('platform', '?')} python={env.get('python', '?')}",
    ]
    sections: list[_Section] = [("Run", header, None)]

    summary_rows = [
        ["points", str(record.get("points", "?"))],
        ["cache hits", str(record.get("cache_hits", 0))],
        ["checkpoint hits", str(record.get("checkpoint_hits", 0))],
        ["computed", str(record.get("computed", 0))],
        ["errors", str(len(record.get("errors") or []))],
    ]
    for label, family in (
        ("retries", "exec_retries"),
        ("crashes", "exec_crashes"),
        ("timeouts", "exec_timeouts"),
        ("respawns", "exec_respawns"),
    ):
        total = _counter_total(record, family)
        if total is not None:
            summary_rows.append([label, str(total)])
    sections.append(("Summary", [], [["what", "count"], *summary_rows]))

    quantiles = _exec_quantiles(record)
    if quantiles:
        sections.append(
            (
                "Per-point execution time",
                [],
                [
                    ["quantile", "exec_point_s"],
                    *[[name, _fmt_s(quantiles[name])] for name in sorted(quantiles)],
                ],
            )
        )

    gantt = _gantt_rows(record)
    if gantt:
        sections.append(
            ("Timeline", [], [["point", "status", "exec", "wait░ / exec█"], *gantt])
        )

    errors = record.get("errors") or []
    if errors:
        rows = [["point", "kind", "type", "message"]]
        for err in errors:
            if not isinstance(err, dict):
                continue
            message = str(err.get("message", ""))
            rows.append(
                [
                    str(err.get("index", "?")),
                    str(err.get("kind", "?")),
                    str(err.get("error_type", "?")),
                    message if len(message) <= 80 else message[:77] + "...",
                ]
            )
        sections.append(("Errors", [], rows))

    profile = record.get("profile") or []
    if profile:
        rows = [["cumtime", "tottime", "ncalls", "function"]]
        for row in profile:
            if not isinstance(row, dict):
                continue
            location = f"{row.get('func', '?')} ({row.get('file', '?')}:{row.get('line', '?')})"
            rows.append(
                [
                    _fmt_s(row.get("cumtime_s")),
                    _fmt_s(row.get("tottime_s")),
                    str(row.get("ncalls", "?")),
                    location,
                ]
            )
        sections.append(("Hot path (merged worker profiles)", [], rows))
    return sections


# -- renderers ---------------------------------------------------------


def _markdown_table(rows: list[list[str]]) -> list[str]:
    header, *body = rows
    out = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    out.extend("| " + " | ".join(row) + " |" for row in body)
    return out


def render_markdown(record: RunRecord) -> str:
    """The flight report for one run record, as markdown."""
    lines = [f"# Flight report · {record.get('name', '?')}", ""]
    for title, text, table in _sections(record):
        lines.append(f"## {title}")
        lines.append("")
        if text:
            lines.extend(f"- {line}" for line in text)
            lines.append("")
        if table:
            lines.extend(_markdown_table(table))
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


_HTML_STYLE = (
    "body{font-family:monospace;margin:2em;max-width:72em}"
    "table{border-collapse:collapse;margin:0.5em 0}"
    "td,th{border:1px solid #999;padding:0.2em 0.6em;text-align:left;"
    "white-space:pre}"
    "h1{border-bottom:2px solid #333}h2{margin-top:1.5em}"
)


def render_html(record: RunRecord) -> str:
    """The same report as one self-contained HTML page (inline CSS only)."""
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>Flight report · {html.escape(str(record.get('name', '?')))}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>Flight report · {html.escape(str(record.get('name', '?')))}</h1>",
    ]
    for title, text, table in _sections(record):
        parts.append(f"<h2>{html.escape(title)}</h2>")
        if text:
            parts.append("<ul>")
            parts.extend(f"<li>{html.escape(line)}</li>" for line in text)
            parts.append("</ul>")
        if table:
            header, *body = table
            parts.append("<table><tr>")
            parts.extend(f"<th>{html.escape(cell)}</th>" for cell in header)
            parts.append("</tr>")
            for row in body:
                parts.append(
                    "<tr>"
                    + "".join(f"<td>{html.escape(cell)}</td>" for cell in row)
                    + "</tr>"
                )
            parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def render_aggregate(ledger: RunLedger, records: list[RunRecord]) -> str:
    """A markdown summary over a ledger query (the multi-run view)."""
    lines = [f"# Ledger summary · {ledger.path}", "", f"- runs: {len(records)}"]
    if records:
        lines.append(f"- first: {_iso(records[0].get('recorded_at'))}")
        lines.append(f"- last: {_iso(records[-1].get('recorded_at'))}")
        names = sorted({str(r.get("name", "?")) for r in records})
        lines.append(f"- campaigns: {', '.join(names)}")
        samples: list[float] = []
        for record in records:
            for entry in record.get("timeline") or []:
                if isinstance(entry, dict) and isinstance(
                    entry.get("exec_s"), (int, float)
                ):
                    samples.append(float(entry["exec_s"]))
        if samples:
            samples.sort()

            def pick(q: float) -> float:
                index = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
                return samples[index]

            lines.extend(
                [
                    "",
                    "## Per-point exec_s across runs",
                    "",
                    *_markdown_table(
                        [
                            ["stat", "value"],
                            ["samples", str(len(samples))],
                            ["min", _fmt_s(samples[0])],
                            ["p50", _fmt_s(pick(0.50))],
                            ["p95", _fmt_s(pick(0.95))],
                            ["p99", _fmt_s(pick(0.99))],
                            ["max", _fmt_s(samples[-1])],
                            ["mean", _fmt_s(sum(samples) / len(samples))],
                        ]
                    ),
                ]
            )
    return "\n".join(lines).rstrip() + "\n"


# -- CLI ---------------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.obs.report``: render a ledger run to a report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Render a campaign flight report from a run ledger.",
    )
    parser.add_argument("ledger", help="path to a ledger.jsonl file")
    parser.add_argument("--fingerprint", help="select runs by campaign fingerprint")
    parser.add_argument("--task", help="select runs by task reference")
    parser.add_argument("--name", help="select runs by campaign name")
    parser.add_argument(
        "--index",
        type=int,
        default=-1,
        help="which matching run to render (default -1, the newest)",
    )
    parser.add_argument(
        "--format", choices=("md", "html"), default="md", help="output format"
    )
    parser.add_argument(
        "--aggregate",
        action="store_true",
        help="summarise every matching run instead of rendering one",
    )
    parser.add_argument("--out", help="write here instead of stdout")
    options = parser.parse_args(argv)

    ledger = RunLedger(options.ledger)
    if not ledger.path.exists():
        print(f"error: no ledger at {ledger.path}", file=sys.stderr)
        return 2
    records = ledger.query(
        fingerprint=options.fingerprint, task=options.task, name=options.name
    )
    if not records:
        print("error: no run records match the filters", file=sys.stderr)
        return 2

    if options.aggregate:
        text = render_aggregate(ledger, records)
    else:
        try:
            record = records[options.index]
        except IndexError:
            print(
                f"error: --index {options.index} out of range "
                f"({len(records)} matching runs)",
                file=sys.stderr,
            )
            return 2
        text = render_html(record) if options.format == "html" else render_markdown(record)

    if options.out:
        Path(options.out).parent.mkdir(parents=True, exist_ok=True)
        Path(options.out).write_text(text, encoding="utf-8")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
