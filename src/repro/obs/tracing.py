"""Span tracing: nested timed regions with JSON-lines + Chrome export.

``with span("gate_apply", backend="mps"):`` times a region and records a
plain-dict event — name, monotonic start/duration, process id, thread
id, a span id, and the id of the enclosing span (parent ids come from a
per-thread stack, so nesting falls out of ``with`` scoping).  Events
accumulate in a per-process buffer; campaign workers drain the buffer
after each point and piggyback the spans onto the existing result pipe
(no extra syscalls on the hot path), and the supervisor folds them into
its own buffer via :func:`add_events`.

Timestamps are ``time.monotonic()``: on Linux that is CLOCK_MONOTONIC,
which is shared across processes on the same host, so spans from
supervisor and workers land on one comparable timeline.

Persistence is JSON-lines (:func:`write_jsonl` / :func:`read_jsonl`);
:func:`write_chrome` converts to the Chrome ``trace_event`` array format
that chrome://tracing and Perfetto load directly.

Same contract as :mod:`repro.obs.metrics`: a module-level
:data:`enabled` flag makes the disabled path a single attribute check,
and nothing here may perturb simulation results — spans only read the
clock.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "enabled",
    "enable",
    "disable",
    "span",
    "add_event",
    "add_events",
    "events",
    "drain",
    "reset",
    "write_jsonl",
    "read_jsonl",
    "to_chrome",
    "write_chrome",
]

#: Module-level fast-path flag; :func:`span` is a no-op context manager
#: when this is False.
enabled: bool = False

#: One span/event record: name, ts, dur, pid, tid, id, parent, args.
Event = dict[str, Any]

_buffer: list[Event] = []
_buffer_lock = threading.Lock()
_ids = itertools.count(1)
_stack = threading.local()


def enable() -> None:
    """Turn span collection on (idempotent)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn span collection off; buffered events are kept."""
    global enabled
    enabled = False


def _parents() -> list[int]:
    parents = getattr(_stack, "parents", None)
    if parents is None:
        parents = []
        _stack.parents = parents
    return parents


@contextmanager
def span(name: str, **args: object) -> Iterator[Event]:
    """Time a region; record an event dict on exit (when enabled).

    Extra keyword arguments become the event's ``args`` — labels such as
    ``backend="mps"`` or ``kind="diagonal"``.  The yielded dict is the
    event under construction; instrumented code may add observed values
    to ``event["args"]`` inside the block (e.g. the chi actually kept by
    a truncation).  When tracing is disabled the body runs untouched and
    a throwaway dict is yielded so call sites need no guard.
    """
    if not enabled:
        yield {"args": {}}
        return
    parents = _parents()
    span_id = next(_ids)
    event: Event = {
        "name": name,
        "ts": time.monotonic(),
        "dur": 0.0,
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "id": span_id,
        "parent": parents[-1] if parents else None,
        "args": dict(args),
    }
    parents.append(span_id)
    try:
        yield event
    finally:
        parents.pop()
        event["dur"] = time.monotonic() - event["ts"]
        with _buffer_lock:
            _buffer.append(event)


def add_event(
    name: str, ts: float, dur: float, *, args: dict[str, Any] | None = None
) -> None:
    """Record a pre-timed event (for code that measured its own window).

    Unlike :func:`span` this ignores the parent stack — the caller
    already owns the timing — but still respects :data:`enabled`.
    """
    if not enabled:
        return
    event: Event = {
        "name": name,
        "ts": float(ts),
        "dur": float(dur),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
        "id": next(_ids),
        "parent": None,
        "args": dict(args or {}),
    }
    with _buffer_lock:
        _buffer.append(event)


def add_events(incoming: list[Event]) -> None:
    """Append events collected elsewhere (the cross-process merge).

    Events keep their original pid/tid/ids, so a supervisor buffer ends
    up holding the true multi-process timeline.  Works regardless of
    :data:`enabled` — merging is bookkeeping, not collection.
    """
    if not incoming:
        return
    with _buffer_lock:
        _buffer.extend(incoming)


def events() -> list[Event]:
    """Copy of the current event buffer (chronological by append order)."""
    with _buffer_lock:
        return list(_buffer)


def drain() -> list[Event]:
    """Return buffered events and clear the buffer (worker per-point ship)."""
    with _buffer_lock:
        out = list(_buffer)
        _buffer.clear()
    return out


def reset() -> None:
    """Drop all buffered events (tests / fresh sessions)."""
    with _buffer_lock:
        _buffer.clear()


# -- persistence ------------------------------------------------------


def write_jsonl(path: str | os.PathLike[str], evs: list[Event] | None = None) -> int:
    """Write events (default: current buffer) as JSON-lines; return count."""
    if evs is None:
        evs = events()
    with open(path, "w", encoding="utf-8") as fh:
        for event in evs:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
    return len(evs)


def read_jsonl(path: str | os.PathLike[str]) -> list[Event]:
    """Load events written by :func:`write_jsonl`."""
    out: list[Event] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# -- Chrome trace_event export ---------------------------------------


def to_chrome(evs: list[Event] | None = None) -> dict[str, Any]:
    """Convert events to the Chrome ``trace_event`` JSON object format.

    Each span becomes a ``ph="X"`` (complete) event with microsecond
    ``ts``/``dur`` rebased to the earliest span, plus one ``ph="M"``
    process_name metadata event per pid so Perfetto labels the worker
    rows.  The result round-trips through ``json.dumps`` directly.
    """
    if evs is None:
        evs = events()
    trace: list[Event] = []
    if evs:
        base = min(ev["ts"] for ev in evs)
        for pid in sorted({ev["pid"] for ev in evs}):
            trace.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"pid {pid}"},
                }
            )
        for ev in evs:
            trace.append(
                {
                    "ph": "X",
                    "name": ev["name"],
                    "cat": "repro",
                    "ts": (ev["ts"] - base) * 1e6,
                    "dur": ev["dur"] * 1e6,
                    "pid": ev["pid"],
                    "tid": ev["tid"],
                    "args": ev.get("args", {}),
                }
            )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome(
    path: str | os.PathLike[str], evs: list[Event] | None = None
) -> int:
    """Write the Chrome-trace JSON for chrome://tracing / Perfetto."""
    doc = to_chrome(evs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return len(doc["traceEvents"])
