"""Observability for campaign runs: metrics, spans, endpoints, history.

Stdlib-only modules, deliberately import-light so every layer of the
codebase (executor, cache, all five backends) can instrument itself
without circular imports:

- :mod:`repro.obs.metrics` — labelled counters/gauges/histograms with
  plain-dict snapshots, cross-process merge, quantile estimation, and
  Prometheus text exposition.
- :mod:`repro.obs.tracing` — ``span()`` context manager producing
  JSON-lines trace events with monotonic timestamps and parent ids,
  exportable to Chrome ``trace_event`` format for Perfetto.
- :mod:`repro.obs.profiling` — opt-in per-point :mod:`cProfile` capture
  merged across worker processes via :mod:`pstats`.
- :mod:`repro.obs.serve` — a read-only HTTP thread exposing
  ``/metrics``, ``/status``, and ``/spans`` for a live campaign.
- :mod:`repro.obs.ledger` — the persistent JSON-lines run ledger that
  survives the process (one record per executor run, co-located with
  the result cache).
- :mod:`repro.obs.report` — ``python -m repro.obs.report`` flight
  reports rendered from ledger records.

Collection is off by default and near-free when off (one
module-attribute check per instrumented call).  ``obs.enable()`` flips
metrics and tracing on; ``REPRO_OBS=1`` in the environment enables them
at import time so scripts can be traced without code changes.
Profiling is heavier and stays separate: ``obs.profiling.enable()`` or
``REPRO_OBS_PROFILE=1``.  Telemetry never perturbs simulation results —
enabling observability changes no random stream and no numerical path,
only what gets recorded about them.
"""

from __future__ import annotations

import os

from . import ledger, metrics, profiling, serve, tracing
from .ledger import RunLedger
from .metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exposition,
    inc,
    observe,
    quantile_from_sample,
    set_gauge,
    snapshot,
)
from .serve import ObsServer
from .tracing import (
    read_jsonl,
    span,
    to_chrome,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "metrics",
    "tracing",
    "profiling",
    "serve",
    "ledger",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "exposition",
    "quantile_from_sample",
    "span",
    "write_jsonl",
    "read_jsonl",
    "to_chrome",
    "write_chrome",
    "ObsServer",
    "RunLedger",
]


def enable() -> None:
    """Enable metrics and tracing together (idempotent).

    Profiling is *not* implied — it has real overhead; opt in with
    :func:`repro.obs.profiling.enable`.
    """
    metrics.enable()
    tracing.enable()


def disable() -> None:
    """Disable metrics, tracing, and profiling; collected data is kept."""
    metrics.disable()
    tracing.disable()
    profiling.disable()


def is_enabled() -> bool:
    """True if any collection (metrics, tracing, profiling) is on."""
    return metrics.enabled or tracing.enabled or profiling.enabled


def reset() -> None:
    """Drop all collected metrics, spans, and profiles (keeps enablement)."""
    REGISTRY.reset()
    tracing.reset()
    profiling.reset()


if os.environ.get("REPRO_OBS", "").strip() not in ("", "0"):
    enable()
if os.environ.get("REPRO_OBS_PROFILE", "").strip() not in ("", "0"):
    profiling.enable()
