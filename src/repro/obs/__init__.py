"""Observability for campaign runs: metrics, tracing spans, timelines.

Two stdlib-only modules, deliberately import-light so every layer of the
codebase (executor, cache, all five backends) can instrument itself
without circular imports:

- :mod:`repro.obs.metrics` — labelled counters/gauges/histograms with
  plain-dict snapshots, cross-process merge, and Prometheus-style text
  exposition.
- :mod:`repro.obs.tracing` — ``span()`` context manager producing
  JSON-lines trace events with monotonic timestamps and parent ids,
  exportable to Chrome ``trace_event`` format for Perfetto.

Both are off by default and near-free when off (one module-attribute
check per instrumented call).  ``obs.enable()`` flips both on;
``REPRO_OBS=1`` in the environment enables them at import time so
scripts can be traced without code changes.  Telemetry never perturbs
simulation results — enabling observability changes no random stream and
no numerical path, only what gets recorded about them.
"""

from __future__ import annotations

import os

from . import metrics, tracing
from .metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exposition,
    inc,
    observe,
    set_gauge,
    snapshot,
)
from .tracing import (
    read_jsonl,
    span,
    to_chrome,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "metrics",
    "tracing",
    "enable",
    "disable",
    "is_enabled",
    "reset",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "exposition",
    "span",
    "write_jsonl",
    "read_jsonl",
    "to_chrome",
    "write_chrome",
]


def enable() -> None:
    """Enable metrics and tracing together (idempotent)."""
    metrics.enable()
    tracing.enable()


def disable() -> None:
    """Disable metrics and tracing; collected data is kept."""
    metrics.disable()
    tracing.disable()


def is_enabled() -> bool:
    """True if either metrics or tracing collection is on."""
    return metrics.enabled or tracing.enabled


def reset() -> None:
    """Drop all collected metrics and spans (does not change enablement)."""
    REGISTRY.reset()
    tracing.reset()


if os.environ.get("REPRO_OBS", "").strip() not in ("", "0"):
    enable()
