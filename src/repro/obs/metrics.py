"""Labelled metrics: counters, gauges, fixed-bucket histograms.

The registry answers "how many cache hits / retries / SVD truncations did
this run make, and how were the point durations distributed?" without a
profiler.  Design constraints, in order:

1. **Near-zero cost when disabled.**  Every instrumented call site in
   the hot layers goes through the module-level helpers (:func:`inc`,
   :func:`set_gauge`, :func:`observe`) or guards on the module-level
   :data:`enabled` flag directly; with observability off the entire cost
   is one module-attribute load (and, via the helpers, one early-return
   function call).  No objects are allocated, no locks taken.
2. **Mergeable across processes.**  :meth:`MetricsRegistry.snapshot`
   emits plain JSON-safe dicts and :meth:`MetricsRegistry.merge` folds a
   snapshot back in (counters and histograms add, gauges last-write-win),
   which is how supervised campaign workers ship their per-point deltas
   to the supervisor over the existing result pipes
   (:mod:`repro.exec.executor`) — the hot path gains no extra syscalls.
3. **Results must never be perturbed.**  Nothing here touches numpy's
   global state or any random generator; instruments only read the
   values handed to them.

Prometheus-style text exposition is available via
:meth:`MetricsRegistry.exposition` for scraping or eyeballing.
"""

from __future__ import annotations

import threading
from typing import Any, TypeVar

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "enabled",
    "enable",
    "disable",
    "quantile_from_sample",
    "inc",
    "set_gauge",
    "observe",
    "snapshot",
    "exposition",
]

_M = TypeVar("_M", bound="_Metric")

#: Module-level fast-path flag.  Instrumented call sites may read this
#: directly (``if metrics.enabled: ...``); the helpers below check it
#: first and return immediately when off.
enabled: bool = False

#: Default histogram buckets — log-spaced seconds, apt for both
#: microsecond gate applies and minute-long campaign points.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    0.1,
    1.0,
    10.0,
    60.0,
    600.0,
)


def _label_key(labels: dict[str, object]) -> str:
    """Canonical string key for a label set (sorted, JSON-safe).

    The snapshot/merge cycle keys samples by this string, so merging
    never needs to parse labels back out — identical label sets always
    produce the identical key, in any process.
    """
    if not labels:
        return ""
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


class _Metric:
    """Shared machinery: a named family of labelled samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict[str, Any] = {}
        self._lock = threading.Lock()

    def _snapshot_values(self) -> dict[str, Any]:
        return dict(self._values)

    def clear(self) -> None:
        with self._lock:
            self._values.clear()


class Counter(_Metric):
    """A monotonically-increasing labelled count."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels: object) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(value)

    def value(self, **labels: object) -> float:
        return float(self._values.get(_label_key(labels), 0.0))


class Gauge(_Metric):
    """A labelled point-in-time value (last write wins)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        return float(self._values.get(_label_key(labels), 0.0))


class Histogram(_Metric):
    """Fixed-bucket labelled histogram (cumulative-style buckets).

    Each sample records ``buckets`` (one count per upper bound, plus a
    final +Inf overflow slot), ``sum``, and ``count`` — the exact shape
    Prometheus exposes and the shape that merges across processes by
    plain elementwise addition.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} buckets must be ascending")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            sample = self._values.get(key)
            if sample is None:
                sample = {
                    "buckets": [0] * (len(self.buckets) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._values[key] = sample
            slot = len(self.buckets)  # +Inf overflow by default
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = i
                    break
            sample["buckets"][slot] += 1
            sample["sum"] += value
            sample["count"] += 1

    def sample(self, **labels: object) -> dict[str, Any] | None:
        found = self._values.get(_label_key(labels))
        if found is None:
            return None
        return {
            "buckets": list(found["buckets"]),
            "sum": found["sum"],
            "count": found["count"],
        }

    def combined_sample(self) -> dict[str, Any] | None:
        """One sample summed over every label set (``None`` if empty).

        Buckets/sum/count add elementwise — the same arithmetic as the
        cross-process merge — so quantiles over "all outcomes" of a
        family do not need the caller to know which label sets exist.
        """
        combined: dict[str, Any] | None = None
        with self._lock:
            for found in self._values.values():
                if combined is None:
                    combined = {
                        "buckets": list(found["buckets"]),
                        "sum": found["sum"],
                        "count": found["count"],
                    }
                else:
                    for i, count in enumerate(found["buckets"]):
                        combined["buckets"][i] += count
                    combined["sum"] += found["sum"]
                    combined["count"] += found["count"]
        return combined

    def quantile(self, q: float, **labels: object) -> float | None:
        """Estimate the ``q``-quantile of one label set's sample.

        Linear interpolation inside the fixed buckets (the
        ``histogram_quantile`` estimator): the bucket holding the target
        rank is found from the cumulative counts and the value is
        interpolated between its bounds (the first bucket interpolates
        up from zero; ranks landing in the +Inf overflow slot report the
        largest finite bound — the honest answer a fixed-bucket
        histogram can give).  Returns ``None`` when no observations
        exist for the label set.
        """
        return quantile_from_sample(self.sample(**labels), self.buckets, q)

    def _snapshot_values(self) -> dict[str, Any]:
        return {
            key: {
                "buckets": list(sample["buckets"]),
                "sum": sample["sum"],
                "count": sample["count"],
            }
            for key, sample in self._values.items()
        }


def quantile_from_sample(
    sample: dict[str, Any] | None, buckets: tuple[float, ...], q: float
) -> float | None:
    """The ``q``-quantile of one histogram sample dict (or ``None``).

    Works on the plain sample shape :meth:`Histogram.sample` /
    :meth:`MetricsRegistry.snapshot` emit, so ledger records and merged
    snapshots can be quantiled without reconstructing live metrics.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if sample is None or sample["count"] <= 0:
        return None
    counts = sample["buckets"]
    rank = q * sample["count"]
    cumulative = 0.0
    for i, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count > 0:
            if i >= len(buckets):
                # +Inf overflow: no finite upper bound to interpolate to.
                return float(buckets[-1])
            lo = float(buckets[i - 1]) if i > 0 else 0.0
            hi = float(buckets[i])
            fraction = (rank - previous) / count
            return lo + (hi - lo) * min(1.0, max(0.0, fraction))
    return float(buckets[-1])  # pragma: no cover - count>0 always lands


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """A named collection of metrics with snapshot / merge / exposition.

    One process-global instance (:data:`REGISTRY`) backs the module-level
    helpers; independent registries can be created for tests or isolated
    subsystems.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, cls: type[_M], name: str, help: str = "", **kwargs: Any) -> _M:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- snapshot / merge / drain ------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view of every metric: JSON-safe and mergeable.

        Shape: ``{name: {"type", "help", "values", ["buckets"]}}`` with
        ``values`` keyed by the canonical label string (see
        :func:`_label_key`); histogram values are
        ``{"buckets": [...], "sum", "count"}``.
        """
        out: dict[str, Any] = {}
        for name, metric in self._metrics.items():
            entry: dict[str, Any] = {
                "type": metric.kind,
                "help": metric.help,
                "values": metric._snapshot_values(),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            out[name] = entry
        return out

    def merge(self, snap: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` back in (the cross-process merge).

        Counters and histograms add; gauges take the incoming value
        (last write wins — the incoming snapshot is the more recent
        observation).  Unknown metrics are created on the fly so a
        worker process can report families the supervisor never
        registered locally.
        """
        for name, entry in snap.items():
            kind = entry.get("type", "counter")
            cls = _KINDS.get(kind)
            if cls is None:
                raise ValueError(f"cannot merge unknown metric type {kind!r}")
            if cls is Histogram:
                metric = self._register(
                    cls,
                    name,
                    entry.get("help", ""),
                    buckets=tuple(entry.get("buckets", DEFAULT_BUCKETS)),
                )
            else:
                metric = self._register(cls, name, entry.get("help", ""))
            with metric._lock:
                for key, value in entry.get("values", {}).items():
                    if kind == "histogram":
                        sample = metric._values.get(key)
                        if sample is None:
                            metric._values[key] = {
                                "buckets": list(value["buckets"]),
                                "sum": float(value["sum"]),
                                "count": int(value["count"]),
                            }
                        else:
                            incoming = value["buckets"]
                            if len(incoming) != len(sample["buckets"]):
                                raise ValueError(
                                    f"histogram {name!r} bucket shapes differ"
                                )
                            for i, count in enumerate(incoming):
                                sample["buckets"][i] += count
                            sample["sum"] += float(value["sum"])
                            sample["count"] += int(value["count"])
                    elif kind == "gauge":
                        metric._values[key] = float(value)
                    else:
                        previous = metric._values.get(key, 0.0)
                        metric._values[key] = previous + float(value)

    def drain(self) -> dict[str, Any]:
        """Snapshot every metric, then reset all samples (deltas survive).

        Campaign workers call this after each point: the returned
        snapshot is the point's *delta*, shipped to the supervisor and
        merged there, while the worker starts the next point from zero.
        Metric registrations (names/types/buckets) are kept.
        """
        snap = self.snapshot()
        for metric in self._metrics.values():
            metric.clear()
        return snap

    def reset(self) -> None:
        """Drop every metric entirely (tests / fresh sessions)."""
        with self._lock:
            self._metrics.clear()

    # -- text exposition ----------------------------------------------
    def exposition(self) -> str:
        """Prometheus-style text format of the current samples."""
        lines: list[str] = []
        for name, metric in sorted(self._metrics.items()):
            if metric.help:
                # HELP text escapes backslash and newline (no quotes).
                help_text = metric.help.replace("\\", r"\\").replace("\n", r"\n")
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            values = metric._snapshot_values()
            for key in sorted(values):
                value = values[key]
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in zip(metric.buckets, value["buckets"]):
                        cumulative += count
                        lines.append(
                            f"{name}_bucket{{{_merge_label(key, 'le', _fmt(bound))}}}"
                            f" {cumulative}"
                        )
                    cumulative += value["buckets"][-1]
                    lines.append(
                        f"{name}_bucket{{{_merge_label(key, 'le', '+Inf')}}}"
                        f" {cumulative}"
                    )
                    suffix = _label_suffix(key)
                    lines.append(f"{name}_sum{suffix} {_fmt(value['sum'])}")
                    lines.append(f"{name}_count{suffix} {value['count']}")
                else:
                    lines.append(f"{name}{_label_suffix(key)} {_fmt(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _label_pairs(key: str) -> list[tuple[str, str]]:
    if not key:
        return []
    pairs = []
    for item in key.split(","):
        name, _, value = item.partition("=")
        pairs.append((name, value))
    return pairs


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label-value escaping.

    The exposition grammar requires backslash, double-quote, and newline
    escaped inside quoted label values; emitted raw they produce
    unparseable text (a quote ends the value early, a newline ends the
    whole sample line).
    """
    return (
        value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
    )


def _label_suffix(key: str) -> str:
    pairs = _label_pairs(key)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _merge_label(key: str, extra_key: str, extra_value: str) -> str:
    pairs = _label_pairs(key) + [(extra_key, extra_value)]
    return ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)


#: The process-global registry behind the module-level helpers.
REGISTRY = MetricsRegistry()


def enable() -> None:
    """Turn the module-level helpers on (idempotent)."""
    global enabled
    enabled = True


def disable() -> None:
    """Turn the module-level helpers off; collected samples are kept."""
    global enabled
    enabled = False


def inc(name: str, value: float = 1.0, **labels: object) -> None:
    """Increment a counter on the global registry (no-op when disabled)."""
    if not enabled:
        return
    REGISTRY.counter(name).inc(value, **labels)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge on the global registry (no-op when disabled)."""
    if not enabled:
        return
    REGISTRY.gauge(name).set(value, **labels)


def observe(name: str, value: float, **labels: object) -> None:
    """Observe into a histogram on the global registry (no-op when disabled)."""
    if not enabled:
        return
    REGISTRY.histogram(name).observe(value, **labels)


def snapshot() -> dict[str, Any]:
    """Snapshot of the global registry (works whether or not enabled)."""
    return REGISTRY.snapshot()


def exposition() -> str:
    """Prometheus-style text of the global registry."""
    return REGISTRY.exposition()
