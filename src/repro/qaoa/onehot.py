"""Qubit one-hot baseline: constraint violation under noise.

Reproduces the failure mode the paper uses to motivate qudits (§II.B):
on qubit hardware, k-coloring needs ``N * d`` qubits with a one-hot
constraint per node; XY mixers preserve the constraint *only in the
noiseless limit* — under noise "symmetries upholding constraints are
quickly destroyed ... and the probability of obtaining valid solutions
decreases exponentially" (ref [18]).  The qudit encoding is immune by
construction: every basis state *is* a valid assignment.

This module builds the one-hot QAOA ansatz (XY ring mixers within each
node's color block, ZZ phase separation between matching colors of
adjacent nodes), injects depolarising noise, and measures the probability
that a sample still satisfies every one-hot constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from ..core.channels import depolarizing
from ..core.circuit import QuditCircuit
from ..core.exceptions import DimensionError
from ..core.trajectories import TrajectorySimulator
from .coloring import ColoringProblem

__all__ = ["OneHotEncoding", "validity_probability", "ValidityComparison", "compare_validity"]

_PAULI_X = np.array([[0, 1], [1, 0]], dtype=complex)
_PAULI_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_PAULI_Z = np.diag([1.0, -1.0]).astype(complex)


class OneHotEncoding:
    """One-hot qubit encoding of a coloring problem.

    Node ``v`` owns qubits ``v*d .. v*d + d - 1``; color ``c`` is the
    basis state with qubit ``v*d + c`` set.

    Args:
        problem: coloring instance (keep ``N * d`` <= ~14 for simulability).
    """

    def __init__(self, problem: ColoringProblem) -> None:
        self.problem = problem
        self.n_qubits = problem.n_nodes * problem.n_colors
        if self.n_qubits > 16:
            raise DimensionError(
                f"{self.n_qubits} qubits exceed the simulable baseline size"
            )

    @property
    def dims(self) -> tuple[int, ...]:
        """All-qubit register dimensions."""
        return (2,) * self.n_qubits

    def qubit_of(self, node: int, color: int) -> int:
        """Wire index of one (node, color) flag qubit."""
        d = self.problem.n_colors
        if not (0 <= node < self.problem.n_nodes and 0 <= color < d):
            raise DimensionError(f"bad (node, color) = ({node}, {color})")
        return node * d + color

    # ------------------------------------------------------------------
    # circuit construction
    # ------------------------------------------------------------------
    def initial_state_circuit(self) -> QuditCircuit:
        """Product of valid states: color 0 flagged on every node."""
        qc = QuditCircuit(self.dims, name="onehot-init")
        for node in range(self.problem.n_nodes):
            qc.x(self.qubit_of(node, 0))
        return qc

    def _xy_matrix(self, beta: float) -> np.ndarray:
        """Two-qubit ``exp(-i beta (XX + YY)/2)`` — Hamming-weight preserving."""
        gen = 0.5 * (np.kron(_PAULI_X, _PAULI_X) + np.kron(_PAULI_Y, _PAULI_Y))
        return expm(-1j * beta * gen)

    def qaoa_circuit(self, gammas, betas) -> QuditCircuit:
        """One-hot QAOA: ZZ phase separation + XY ring mixing per node."""
        if len(gammas) != len(betas):
            raise DimensionError("gammas and betas must have equal length")
        qc = self.initial_state_circuit()
        d = self.problem.n_colors

        def zz(gamma):
            return np.diag(
                np.exp(-1j * gamma * np.array([1.0, -1.0, -1.0, 1.0]))
            )

        for gamma, beta in zip(gammas, betas):
            for u, v in self.problem.edges:
                for color in range(d):
                    qc.unitary(
                        zz(gamma),
                        (self.qubit_of(u, color), self.qubit_of(v, color)),
                        name="zz",
                        gamma=gamma,
                    )
            mixer = self._xy_matrix(beta)
            for node in range(self.problem.n_nodes):
                for color in range(d):
                    a = self.qubit_of(node, color)
                    b = self.qubit_of(node, (color + 1) % d)
                    qc.unitary(mixer, (a, b), name="xy", beta=beta)
        return qc

    def with_depolarizing(self, circuit: QuditCircuit, epsilon: float) -> QuditCircuit:
        """Depolarise both qubits after every two-qubit gate."""
        noisy = QuditCircuit(self.dims, name=circuit.name + "+depol")
        channel = depolarizing(4, epsilon) if epsilon > 0 else None
        for instruction in circuit:
            noisy.append(instruction)
            if (
                channel is not None
                and instruction.kind == "unitary"
                and instruction.num_qudits == 2
            ):
                noisy.channel(channel.kraus, instruction.qudits, name="depol")
        return noisy

    # ------------------------------------------------------------------
    # validity
    # ------------------------------------------------------------------
    def is_valid(self, bits: tuple[int, ...]) -> bool:
        """True iff every node has exactly one color flag set."""
        d = self.problem.n_colors
        for node in range(self.problem.n_nodes):
            block = bits[node * d : (node + 1) * d]
            if sum(block) != 1:
                return False
        return True

    def decode(self, bits: tuple[int, ...]) -> tuple[int, ...] | None:
        """Coloring of a valid sample, or ``None`` if invalid."""
        if not self.is_valid(bits):
            return None
        d = self.problem.n_colors
        return tuple(
            int(np.argmax(bits[node * d : (node + 1) * d]))
            for node in range(self.problem.n_nodes)
        )


def validity_probability(
    encoding: OneHotEncoding,
    epsilon: float,
    p: int = 1,
    shots: int = 100,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Fraction of noisy samples satisfying every one-hot constraint.

    The ``shots`` trajectories run as one batch through the trajectory
    engine; ``seed`` may be a generator threaded from a larger study.
    """
    gammas = [0.6] * p
    betas = [0.4] * p
    circuit = encoding.qaoa_circuit(gammas, betas)
    noisy = encoding.with_depolarizing(circuit, epsilon)
    counts = TrajectorySimulator(noisy, seed=seed).sample(shots)
    valid = sum(n for bits, n in counts.items() if encoding.is_valid(bits))
    return valid / shots


@dataclass(frozen=True)
class ValidityComparison:
    """Qubit one-hot vs qudit validity at one noise level.

    The qudit direct encoding is valid *by construction* (probability
    exactly 1 at any noise); the comparison quantifies the one-hot decay.
    """

    epsilon: float
    onehot_validity: float
    qudit_validity: float = 1.0

    @property
    def advantage(self) -> float:
        """Validity ratio qudit / one-hot (>= 1)."""
        return self.qudit_validity / max(self.onehot_validity, 1e-12)


def compare_validity(
    problem: ColoringProblem,
    epsilons,
    p: int = 1,
    shots: int = 100,
    seed: int | None = None,
) -> list[ValidityComparison]:
    """Sweep noise strength and record one-hot validity decay."""
    encoding = OneHotEncoding(problem)
    out = []
    for idx, eps in enumerate(epsilons):
        validity = validity_probability(
            encoding, float(eps), p=p, shots=shots,
            seed=None if seed is None else seed + idx,
        )
        out.append(ValidityComparison(epsilon=float(eps), onehot_validity=validity))
    return out
