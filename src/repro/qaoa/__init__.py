"""Qudit combinatorial-optimisation application (paper §II.B)."""

from .circuits import (
    add_photon_loss,
    edge_phase_matrix,
    expected_clashes,
    qaoa_circuit,
    qaoa_state,
)
from .coloring import ColoringProblem, greedy_coloring_cost, random_coloring_instance
from .energy import edge_clash_projector, qaoa_energy, state_energy
from .ndar import (
    NdarResult,
    NdarRound,
    ndar_restart_battery,
    ndar_restart_task,
    run_ndar,
    sample_noisy_qaoa,
)
from .onehot import (
    OneHotEncoding,
    ValidityComparison,
    compare_validity,
    validity_probability,
)
from .optimizer import QAOAResult, linear_ramp_schedule, optimize_qaoa
from .qrac import QracEncoding, QracResult, simplex_vertices, solve_coloring_qrac

__all__ = [
    "add_photon_loss",
    "edge_phase_matrix",
    "expected_clashes",
    "qaoa_circuit",
    "qaoa_state",
    "ColoringProblem",
    "greedy_coloring_cost",
    "random_coloring_instance",
    "edge_clash_projector",
    "qaoa_energy",
    "state_energy",
    "NdarResult",
    "NdarRound",
    "run_ndar",
    "ndar_restart_battery",
    "ndar_restart_task",
    "sample_noisy_qaoa",
    "OneHotEncoding",
    "ValidityComparison",
    "compare_validity",
    "validity_probability",
    "QAOAResult",
    "linear_ramp_schedule",
    "optimize_qaoa",
    "QracEncoding",
    "QracResult",
    "simplex_vertices",
    "solve_coloring_qrac",
]
