"""Backend-agnostic QAOA energy evaluation for large registers.

The seed energy path (:func:`repro.qaoa.circuits.expected_clashes`) dots
the full ``d^n`` probability vector with the cost vector — fine to ~9
nodes, impossible beyond.  But the coloring cost is a *sum of edge-local
terms*: the expected clash count is

    E = sum_{(u,v) in edges}  <P_uv>,   P_uv = sum_c |cc><cc|

with each ``P_uv`` a ``d^2``-dimensional diagonal projector on one wire
pair.  Every backend in the unified registry exposes exactly that local
expectation, so the energy of a 20-node instance evaluates through the
MPS backend without ever enumerating the ``3^20`` basis — the path that
lets the NDAR/QAOA studies scale with the hardware roadmap instead of
with dense memory.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.backends import BackendResult, get_backend
from ..core.exceptions import SimulationError
from .circuits import qaoa_circuit
from .coloring import ColoringProblem

__all__ = ["edge_clash_projector", "state_energy", "qaoa_energy"]


def edge_clash_projector(
    d: int, permutations: tuple[Sequence[int], Sequence[int]] | None = None
) -> np.ndarray:
    """Diagonal projector onto color-matching pairs of one edge.

    Args:
        d: color count (wire dimension).
        permutations: optional per-endpoint NDAR gauge permutations
            ``(pi_u, pi_v)``; the penalised pairs become
            ``pi_u(a) == pi_v(b)``, matching the remapped phase separator.

    Returns:
        ``d^2 x d^2`` diagonal 0/1 matrix.
    """
    diag = np.zeros(d * d)
    for a in range(d):
        for b in range(d):
            aa = permutations[0][a] if permutations else a
            bb = permutations[1][b] if permutations else b
            if aa == bb:
                diag[a * d + b] = 1.0
    return np.diag(diag)


def state_energy(
    problem: ColoringProblem,
    result: BackendResult,
    permutations: list[list[int]] | None = None,
) -> float:
    """Expected clash count of a backend result via edge-local expectations.

    Args:
        problem: coloring instance.
        result: any :class:`~repro.core.backends.BackendResult` over the
            problem register.
        permutations: NDAR gauge remap matching the evaluated circuit.

    Returns:
        ``sum_edges <P_uv>`` — identical to the dense
        :func:`~repro.qaoa.circuits.expected_clashes` where both apply.
    """
    d = problem.n_colors
    projectors: dict[tuple, np.ndarray] = {}
    energy = 0.0
    for u, v in problem.edges:
        if permutations is not None:
            key = (tuple(permutations[u]), tuple(permutations[v]))
            perms = (permutations[u], permutations[v])
        else:
            key = ()
            perms = None
        projector = projectors.get(key)
        if projector is None:
            projector = edge_clash_projector(d, perms)
            projectors[key] = projector
        energy += result.expectation(projector, (u, v))
    return float(energy)


def qaoa_energy(
    problem: ColoringProblem,
    gammas: Sequence[float],
    betas: Sequence[float],
    method: str = "statevector",
    permutations: list[list[int]] | None = None,
    **backend_options,
) -> float:
    """Expected clash count of the QAOA state on any registered backend.

    Args:
        problem: coloring instance.
        gammas: per-layer phase-separation angles.
        betas: per-layer mixing angles.
        method: backend name — ``"statevector"`` reproduces the dense
            evaluation exactly; ``"mps"`` (with e.g. ``max_bond=32``)
            scales to instances whose register no dense backend can hold.
        permutations: optional NDAR gauge remap folded into both the
            circuit and the scored projectors.
        **backend_options: engine knobs forwarded to
            :func:`~repro.core.backends.get_backend` (``max_bond``,
            ``n_trajectories``, ``rng``, ...).

    Returns:
        The expected clash count ``E(gammas, betas)``.
    """
    if len(gammas) != len(betas):
        raise SimulationError("gammas and betas must have equal length")
    circuit = qaoa_circuit(problem, gammas, betas, permutations)
    backend = get_backend(method, **backend_options)
    result = backend.run(circuit)
    return state_energy(problem, result, permutations)
