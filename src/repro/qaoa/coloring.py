"""Graph-coloring problem instances and cost bookkeeping.

The paper's optimisation case study (§II.B, Table I row 2): maximise the
number of properly colored edges with ``d`` colors mapped directly onto
qudit basis states.  Cost here is the number of *monochromatic* edges (to
minimise); the approximation ratio follows the QAOA convention
``(clashes_worst - clashes) / (clashes_worst - clashes_best)`` with
``clashes_worst = |E|`` and ``clashes_best`` from brute force (small
instances) or zero for colorable graphs.
"""

from __future__ import annotations


import networkx as nx
import numpy as np

from ..core.dims import digit_matrix
from ..core.exceptions import DimensionError

__all__ = ["ColoringProblem", "random_coloring_instance", "greedy_coloring_cost"]


class ColoringProblem:
    """A ``d``-coloring instance over an undirected graph.

    Args:
        graph: undirected graph; nodes are relabelled to ``0..N-1``.
        n_colors: number of available colors (the qudit dimension).
    """

    def __init__(self, graph: nx.Graph, n_colors: int) -> None:
        if n_colors < 2:
            raise DimensionError("need at least 2 colors")
        if graph.number_of_nodes() < 2:
            raise DimensionError("graph needs at least 2 nodes")
        self.graph = nx.convert_node_labels_to_integers(graph)
        self.n_colors = int(n_colors)
        self.edges = [tuple(sorted(e)) for e in self.graph.edges()]

    @property
    def n_nodes(self) -> int:
        """Number of graph nodes (= number of qudits in direct encoding)."""
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return len(self.edges)

    @property
    def dims(self) -> tuple[int, ...]:
        """Qudit register dimensions for the direct encoding."""
        return (self.n_colors,) * self.n_nodes

    # ------------------------------------------------------------------
    # cost evaluation
    # ------------------------------------------------------------------
    def cost(self, assignment) -> int:
        """Number of monochromatic edges under a color assignment."""
        assignment = list(assignment)
        if len(assignment) != self.n_nodes:
            raise DimensionError(
                f"assignment length {len(assignment)} != {self.n_nodes} nodes"
            )
        for color in assignment:
            if not 0 <= color < self.n_colors:
                raise DimensionError(f"color {color} out of range")
        return sum(1 for u, v in self.edges if assignment[u] == assignment[v])

    def cost_vector(self) -> np.ndarray:
        """Cost of every computational basis state (vectorised).

        Shape ``(n_colors ** n_nodes,)``; used for exact QAOA expectation
        values.  Memory grows as ``d^N`` — guarded at 4x10^6 states.
        """
        dim = self.n_colors**self.n_nodes
        if dim > 4_000_000:
            raise DimensionError(f"cost vector of size {dim} too large")
        digits = digit_matrix(self.dims)
        cost = np.zeros(dim, dtype=float)
        for u, v in self.edges:
            cost += digits[:, u] == digits[:, v]
        return cost

    def best_cost(self) -> int:
        """Minimum clash count by brute force (small instances only)."""
        return int(self.cost_vector().min())

    def approximation_ratio(self, clashes: float, best: int | None = None) -> float:
        """``(worst - clashes) / (worst - best)`` with worst = all edges clash."""
        best = self.best_cost() if best is None else best
        worst = self.n_edges
        if worst == best:
            return 1.0
        return float((worst - clashes) / (worst - best))

    def __repr__(self) -> str:
        return (
            f"ColoringProblem(nodes={self.n_nodes}, edges={self.n_edges}, "
            f"colors={self.n_colors})"
        )


def random_coloring_instance(
    n_nodes: int,
    n_colors: int = 3,
    degree: int = 3,
    seed: int | None = None,
) -> ColoringProblem:
    """Random regular graph coloring instance (the NDAR-QAOA workload).

    Args:
        n_nodes: node count (Table I uses N = 9).
        n_colors: colors (Table I uses 3).
        degree: regular degree; clipped to ``n_nodes - 1`` and adjusted so
            ``n * degree`` is even, as random regular graphs require.
        seed: RNG seed.
    """
    degree = min(degree, n_nodes - 1)
    if (n_nodes * degree) % 2 == 1:
        degree = max(1, degree - 1)
    graph = nx.random_regular_graph(degree, n_nodes, seed=seed)
    return ColoringProblem(graph, n_colors)


def greedy_coloring_cost(problem: ColoringProblem, seed: int | None = None) -> int:
    """Clash count of a randomised greedy coloring — the classical baseline."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(problem.n_nodes)
    colors = [-1] * problem.n_nodes
    adjacency = {v: set(problem.graph.neighbors(v)) for v in range(problem.n_nodes)}
    for node in order:
        used = [0] * problem.n_colors
        for nbr in adjacency[node]:
            if colors[nbr] >= 0:
                used[colors[nbr]] += 1
        colors[node] = int(np.argmin(used))
    return problem.cost(colors)
