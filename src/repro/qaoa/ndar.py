"""Noise-Directed Adaptive Remapping (NDAR) for qudit QAOA.

Reproduction of claim C3 (paper §II.B, via Maciejewski et al. [21]): on a
noisy processor whose dominant error channel has an *attractor* state —
photon loss drives every cavity qudit toward ``|0>`` — the attractor can be
used as a search primitive.  After each round, relabel every qudit's basis
(a gauge transformation of the cost function) so that the best solution
found so far sits at the attractor ``|0...0>``.  Subsequent noisy rounds
then sample the neighbourhood of the incumbent, and the bias that destroys
vanilla QAOA becomes hill-climbing pressure.

The qudit generalisation replaces the Ising Z2 gauge freedom with the
``S_d`` per-qudit level-permutation freedom.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import SimulationError
from ..core.rng import derive_seed, spawn_seeds
from ..core.trajectories import TrajectorySimulator
from .circuits import add_photon_loss, qaoa_circuit
from .coloring import ColoringProblem
from .optimizer import linear_ramp_schedule

__all__ = [
    "NdarRound",
    "NdarResult",
    "run_ndar",
    "sample_noisy_qaoa",
    "ndar_restart_task",
    "ndar_restart_battery",
]


def sample_noisy_qaoa(
    problem: ColoringProblem,
    gammas,
    betas,
    loss_per_layer: float,
    shots: int,
    permutations: list[list[int]] | None = None,
    seed: int | np.random.Generator | None = None,
    method: str = "trajectories",
    target_error: float | None = None,
) -> dict[tuple[int, ...], int]:
    """Sample a noisy QAOA circuit via batched quantum trajectories.

    All ``shots`` trajectories evolve together through the batched engine
    (one vectorised kernel call per gate/channel).

    Args:
        problem: coloring instance.
        gammas: phase angles.
        betas: mixing angles.
        loss_per_layer: photon-loss probability inserted per mixing layer.
        shots: samples (= trajectories).
        permutations: NDAR gauge remap folded into the phase separator.
        seed: integer seed or a generator to draw from — pass one generator
            across rounds for end-to-end reproducibility.
        method: ``"trajectories"`` (the seed behaviour — batched MC
            unravelling) or ``"auto"``, which routes through
            :func:`repro.core.backends.get_backend` and lets the cost
            model pick the engine; sampling engines are allowed since
            the output is a shot histogram anyway.
        target_error: accuracy contract for ``method="auto"`` — the
            autopilot sizes caps/trajectory counts so the predicted
            error meets the budget.
    """
    circuit = qaoa_circuit(problem, gammas, betas, permutations)
    noisy = add_photon_loss(circuit, loss_per_layer)
    if method == "trajectories":
        return TrajectorySimulator(noisy, seed=seed).sample(shots)
    if method != "auto":
        raise SimulationError(f"unknown sampling method {method!r}")
    from ..core.backends import get_backend

    options: dict = {"allow_sampling": True}
    if target_error is not None:
        options["target_error"] = target_error
    backend = get_backend("auto", **options)
    run_seed, sample_seed = spawn_seeds(derive_seed(seed), 2)
    return backend.run(noisy, rng=run_seed).sample(shots, rng=sample_seed)


def _decode(sample: tuple[int, ...], permutations: list[list[int]]) -> tuple[int, ...]:
    """Map a measured digit string back to an original-problem coloring."""
    return tuple(permutations[node][digit] for node, digit in enumerate(sample))


def _attractor_permutation(best: tuple[int, ...], d: int) -> list[list[int]]:
    """Per-node permutations sending the incumbent coloring to |0...0>.

    We need ``pi_v(0) = best_v`` so that the attractor state decodes to the
    incumbent; the rest of each permutation is the cyclic completion.
    """
    perms = []
    for color in best:
        perms.append([(color + k) % d for k in range(d)])
    return perms


@dataclass(frozen=True)
class NdarRound:
    """Bookkeeping for one NDAR round."""

    round_index: int
    best_cost_seen: int
    round_best_cost: int
    mean_sampled_cost: float
    attractor_cost: int


@dataclass(frozen=True)
class NdarResult:
    """Outcome of an NDAR (or vanilla) noisy-QAOA campaign.

    Attributes:
        best_cost: lowest clash count ever sampled.
        best_assignment: the corresponding coloring (original problem frame).
        approximation_ratio: against brute-force best.
        rounds: per-round records.
    """

    best_cost: int
    best_assignment: tuple[int, ...]
    approximation_ratio: float
    rounds: tuple[NdarRound, ...]


def run_ndar(
    problem: ColoringProblem,
    n_rounds: int = 5,
    shots: int = 60,
    loss_per_layer: float = 0.15,
    p: int = 1,
    adaptive: bool = True,
    angles: tuple | None = None,
    seed: int | np.random.Generator | None = None,
    method: str = "trajectories",
    target_error: float | None = None,
) -> NdarResult:
    """Run the NDAR loop (or the vanilla baseline with ``adaptive=False``).

    Each round samples the noisy QAOA circuit, decodes samples through the
    current gauge, updates the incumbent, and (if adaptive) re-gauges so
    the incumbent sits at the photon-loss attractor.

    Args:
        problem: coloring instance.
        n_rounds: NDAR rounds.
        shots: samples per round.
        loss_per_layer: photon-loss strength per QAOA layer.
        p: QAOA depth.
        adaptive: enable the remapping (False = vanilla noisy QAOA with the
            same total shot budget, the paper's comparison baseline).
        angles: optional fixed ``(gammas, betas)``; defaults to the linear
            ramp (NDAR's gain does not require per-round re-optimisation).
        seed: RNG seed.
        method, target_error: sampling engine and accuracy contract,
            forwarded to :func:`sample_noisy_qaoa` each round.

    Returns:
        An :class:`NdarResult`.
    """
    if n_rounds < 1 or shots < 1:
        raise SimulationError("need >= 1 round and >= 1 shot")
    # One spawned child seed per round: round i's sampling depends only on
    # (seed, i), not on how many draws earlier rounds consumed, so a
    # campaign re-running a prefix of rounds reproduces them bit-for-bit.
    round_seeds = spawn_seeds(derive_seed(seed), n_rounds)
    d = problem.n_colors
    gammas, betas = angles if angles is not None else linear_ramp_schedule(p)
    identity = [list(range(d)) for _ in range(problem.n_nodes)]
    permutations = identity
    best_cost: int | None = None
    best_assignment: tuple[int, ...] | None = None
    rounds: list[NdarRound] = []
    for round_index in range(n_rounds):
        counts = sample_noisy_qaoa(
            problem,
            gammas,
            betas,
            loss_per_layer,
            shots,
            permutations=permutations if adaptive else None,
            seed=round_seeds[round_index],
            method=method,
            target_error=target_error,
        )
        round_best = None
        weighted_cost = 0.0
        total = 0
        for sample, count in counts.items():
            decoded = _decode(sample, permutations) if adaptive else sample
            cost = problem.cost(decoded)
            weighted_cost += cost * count
            total += count
            if round_best is None or cost < round_best[0]:
                round_best = (cost, decoded)
        assert round_best is not None
        if best_cost is None or round_best[0] < best_cost:
            best_cost, best_assignment = round_best
        attractor = _decode((0,) * problem.n_nodes, permutations)
        rounds.append(
            NdarRound(
                round_index=round_index,
                best_cost_seen=int(best_cost),
                round_best_cost=int(round_best[0]),
                mean_sampled_cost=weighted_cost / total,
                attractor_cost=problem.cost(attractor),
            )
        )
        if adaptive:
            permutations = _attractor_permutation(best_assignment, d)
    assert best_cost is not None and best_assignment is not None
    return NdarResult(
        best_cost=int(best_cost),
        best_assignment=tuple(best_assignment),
        approximation_ratio=problem.approximation_ratio(best_cost),
        rounds=tuple(rounds),
    )


# ----------------------------------------------------------------------
# campaign layer (repro.exec)
# ----------------------------------------------------------------------
def ndar_restart_task(
    restart: int = 0,
    n_nodes: int = 6,
    n_colors: int = 3,
    degree: int = 3,
    graph_seed: int = 0,
    n_rounds: int = 5,
    shots: int = 60,
    loss_per_layer: float = 0.15,
    p: int = 1,
    adaptive: bool = True,
    method: str = "trajectories",
    target_error: float | None = None,
    seed: int = 0,
) -> dict:
    """Campaign task: one independent seeded NDAR run on a fixed instance.

    The coloring instance is rebuilt from ``(n_nodes, n_colors, degree,
    graph_seed)`` inside the worker, so the point is fully described by
    plain parameters — hashable for the result cache, picklable for the
    pool.  ``restart`` carries no physics; it distinguishes the battery's
    otherwise-identical points so each draws its own spawned ``seed``.

    Returns:
        ``{"best_cost", "approximation_ratio", "best_assignment"}``.
    """
    from .coloring import random_coloring_instance

    problem = random_coloring_instance(
        n_nodes, n_colors, degree=degree, seed=graph_seed
    )
    result = run_ndar(
        problem,
        n_rounds=n_rounds,
        shots=shots,
        loss_per_layer=loss_per_layer,
        p=p,
        adaptive=adaptive,
        seed=seed,
        method=method,
        target_error=target_error,
    )
    return {
        "restart": int(restart),
        "best_cost": int(result.best_cost),
        "approximation_ratio": float(result.approximation_ratio),
        "best_assignment": list(result.best_assignment),
    }


def ndar_restart_battery(
    n_restarts: int = 8,
    *,
    workers: int | None = None,
    cache=None,
    checkpoint=None,
    seed: int = 0,
    target_cost: int | None = None,
    method: str = "trajectories",
    target_error: float | None = None,
    executor=None,
    policy=None,
    ledger=None,
    on_result=None,
    **task_params,
) -> dict:
    """Run an NDAR restart battery as one streamed, cached campaign.

    The paper's NDAR protocol is usually repeated from independent seeds
    and the best incumbent kept; this driver turns that battery into a
    campaign — restarts fan out across the worker pool, completed
    restarts are cached/checkpointed, and the summary aggregates
    deterministically (per-restart seeds are spawned, so the battery's
    outcome is independent of scheduling).

    With ``target_cost`` the battery **early-stops**: restarts are
    consumed as a stream in restart order, and consumption halts at the
    first restart whose best cost reaches the target — later restarts
    are neither waited for nor aggregated.  Because the stream order is
    the deterministic point order (not pool completion order), the
    early-stopped summary is bit-identical at any worker count.

    Args:
        n_restarts: independent NDAR repetitions.
        workers, cache, checkpoint, seed: forwarded to the executor /
            campaign spec (``workers`` is ignored when ``executor`` is
            given).
        target_cost: stop consuming once a restart's ``best_cost`` is
            ``<=`` this value (``None`` = run the full battery).
        method: sampling engine for every restart
            (:func:`sample_noisy_qaoa` semantics).
        target_error: accuracy contract for ``method="auto"`` restarts;
            also arms the executor's mid-run cap escalation.
        executor: an existing :class:`repro.exec.CampaignExecutor` whose
            warm pool should be reused.
        policy: a :class:`repro.exec.FailurePolicy` (or mode string) for
            the battery; defaults to the executor's policy.
        ledger: run-ledger override (a
            :class:`repro.obs.ledger.RunLedger`, a path, or ``False``
            to disable); by default the run record lands in the ledger
            co-located with the effective result cache.
        on_result: optional ``callback(point, value)`` fired as each
            restart resolves (completion order), via
            :meth:`repro.exec.CampaignHandle.on_result`; independent of
            the early-stop stream, which consumes in point order.
        **task_params: fixed :func:`ndar_restart_task` parameters
            (``n_nodes``, ``loss_per_layer``, ``n_rounds``, ...).

    Returns:
        ``{"best_cost", "best_restart", "approximation_ratio",
        "best_assignment", "mean_best_cost", "n_evaluated",
        "stopped_early", "campaign"}`` with ``campaign`` the underlying
        :class:`repro.exec.CampaignResult`.  When early-stopped it is a
        partial result over whatever points had resolved by stop time
        (at least the evaluated prefix; its ``points`` say exactly
        which) — the *summary* fields aggregate only the deterministic
        evaluated prefix.
    """
    from ..exec import Campaign, executor_scope, zip_sweep

    task_params = dict(task_params, method=method)
    if target_error is not None:
        task_params["target_error"] = target_error
    campaign = Campaign(
        task="repro.qaoa.ndar:ndar_restart_task",
        sweep=zip_sweep(restart=list(range(int(n_restarts)))),
        name="ndar-restart-battery",
        base_params=task_params,
        seed=seed,
        target_error=target_error,
    )
    scope = executor_scope(
        executor, workers=workers, cache=cache, policy=policy, ledger=ledger
    )
    with scope as (ex, kwargs):
        handle = ex.submit(campaign, checkpoint=checkpoint, **kwargs)
        handle.on_result(on_result)
        records: list[dict] = []
        stopped_early = False
        for record in handle.stream_results():
            records.append(record)
            if target_cost is not None and record["best_cost"] <= target_cost:
                stopped_early = True
                break
        result = handle.partial_result() if stopped_early else handle.result()
    best = min(records, key=lambda record: record["best_cost"])
    return {
        "best_cost": best["best_cost"],
        "best_restart": best["restart"],
        "approximation_ratio": best["approximation_ratio"],
        "best_assignment": best["best_assignment"],
        "mean_best_cost": float(
            np.mean([record["best_cost"] for record in records])
        ),
        "n_evaluated": len(records),
        "stopped_early": stopped_early,
        "campaign": result,
    }
