"""Qudit quantum random access codes (QRACs) for large coloring instances.

Claim C4 (paper §II.B via refs [22][23]): QRAC-style relaxations pack many
problem variables into few quantum registers by associating variables with
*expectation values of orthogonal observables* rather than basis states —
"combinatorial problems with 1000+ nodes were solved ... though no studies
yet generalize these quantum optimization algorithms to qudits".  This
module supplies that qudit generalisation at laptop scale:

1. **Packing** — each node gets ``d - 1`` generalised Gell-Mann observables
   on one of ``n_qudits`` registers; a dimension-``D`` qudit carries
   ``D^2 - 1`` observables, so it hosts ``floor((D^2-1)/(d-1))`` nodes.
2. **Relaxation** — optimise a product state ``|psi_1> x ... x |psi_Q>``
   to push the per-node expectation vectors ``y_v in R^{d-1}`` of adjacent
   nodes apart (smooth proxy for "differently colored").
3. **Rounding** — map each ``y_v`` to the nearest vertex of the regular
   ``d``-simplex; vertices index colors.

The result: 50+ node instances optimised on 2-3 simulated d=8 qudits,
scored by true clash count against the greedy classical baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from ..core.exceptions import DimensionError
from ..core.gates import gell_mann_basis
from .coloring import ColoringProblem

__all__ = [
    "simplex_vertices",
    "QracEncoding",
    "QracResult",
    "solve_coloring_qrac",
]


def simplex_vertices(d: int) -> np.ndarray:
    """Vertices of the regular ``d``-simplex in ``R^{d-1}``, unit norm.

    The color anchors for rounding: pairwise inner products are
    ``-1/(d-1)``, the maximally-spread configuration.
    """
    if d < 2:
        raise DimensionError("need at least 2 colors")
    # Start from d unit vectors in R^d, project out the mean direction.
    basis = np.eye(d)
    centered = basis - basis.mean(axis=0, keepdims=True)
    # Orthonormal coordinates of the (d-1)-dim affine hull via SVD.
    _, _, vt = np.linalg.svd(centered, full_matrices=False)
    coords = centered @ vt[: d - 1].T
    norms = np.linalg.norm(coords, axis=1, keepdims=True)
    return coords / norms


class QracEncoding:
    """Assignment of graph nodes to (qudit, observable-block) slots.

    Args:
        problem: coloring instance.
        qudit_dim: dimension ``D`` of each carrier qudit.
    """

    def __init__(self, problem: ColoringProblem, qudit_dim: int = 8) -> None:
        if qudit_dim < 2:
            raise DimensionError("carrier qudit dimension must be >= 2")
        self.problem = problem
        self.qudit_dim = int(qudit_dim)
        self.block_size = problem.n_colors - 1
        per_qudit = (qudit_dim**2 - 1) // self.block_size
        if per_qudit < 1:
            raise DimensionError(
                f"qudit of dimension {qudit_dim} cannot host a "
                f"{self.block_size}-observable block"
            )
        self.nodes_per_qudit = per_qudit
        self.n_qudits = -(-problem.n_nodes // per_qudit)  # ceil division
        self._basis = gell_mann_basis(qudit_dim)

    def slot_of(self, node: int) -> tuple[int, int]:
        """``(qudit index, first observable index)`` for one node."""
        if not 0 <= node < self.problem.n_nodes:
            raise DimensionError(f"node {node} out of range")
        qudit = node // self.nodes_per_qudit
        offset = (node % self.nodes_per_qudit) * self.block_size
        return qudit, offset

    def observables_of(self, node: int) -> list[np.ndarray]:
        """The node's ``d - 1`` Gell-Mann observables."""
        _, offset = self.slot_of(node)
        return self._basis[offset : offset + self.block_size]

    def expectation_vectors(self, states: list[np.ndarray]) -> np.ndarray:
        """Per-node expectation vectors ``y_v`` under given qudit states.

        Args:
            states: one normalised state vector per carrier qudit.

        Returns:
            Array of shape ``(n_nodes, d - 1)``.
        """
        if len(states) != self.n_qudits:
            raise DimensionError(
                f"need {self.n_qudits} states, got {len(states)}"
            )
        out = np.empty((self.problem.n_nodes, self.block_size))
        for node in range(self.problem.n_nodes):
            qudit, _ = self.slot_of(node)
            psi = states[qudit]
            for k, obs in enumerate(self.observables_of(node)):
                out[node, k] = float(np.real(psi.conj() @ obs @ psi))
        return out

    def round_to_coloring(self, vectors: np.ndarray) -> tuple[int, ...]:
        """Nearest-simplex-vertex rounding of expectation vectors."""
        anchors = simplex_vertices(self.problem.n_colors)
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        safe = np.where(norms > 1e-12, norms, 1.0)
        unit = vectors / safe
        scores = unit @ anchors.T  # cosine similarity to each color anchor
        return tuple(int(c) for c in np.argmax(scores, axis=1))


@dataclass(frozen=True)
class QracResult:
    """Outcome of the QRAC relaxation pipeline.

    Attributes:
        coloring: rounded assignment.
        clashes: true clash count of the rounded assignment.
        relaxation_value: final smooth objective (lower = more separated).
        n_qudits: carrier registers used.
        nodes_per_qudit: packing density.
        approximation_ratio: vs brute force when available, else vs 0.
    """

    coloring: tuple[int, ...]
    clashes: int
    relaxation_value: float
    n_qudits: int
    nodes_per_qudit: int
    approximation_ratio: float


def solve_coloring_qrac(
    problem: ColoringProblem,
    qudit_dim: int = 8,
    n_restarts: int = 3,
    maxiter: int = 300,
    seed: int | None = None,
    best_cost: int | None = None,
) -> QracResult:
    """Run the full QRAC relaxation + rounding pipeline.

    The relaxation objective sums ``y_u . y_v`` over edges (alignment
    penalty) plus a soft confidence term pulling ``|y_v|`` toward 1 so the
    rounding is well conditioned.

    Args:
        problem: coloring instance (any size that fits the packing).
        qudit_dim: carrier qudit dimension D.
        n_restarts: random restarts of the product-state optimisation.
        maxiter: L-BFGS iterations per restart.
        seed: RNG seed.
        best_cost: known optimum (0 for colorable instances); brute force
            is only attempted for small registers.

    Returns:
        The best :class:`QracResult` across restarts.
    """
    encoding = QracEncoding(problem, qudit_dim)
    rng = np.random.default_rng(seed)
    dim = encoding.qudit_dim
    n_params = 2 * dim * encoding.n_qudits

    def unpack(params: np.ndarray) -> list[np.ndarray]:
        states = []
        for q in range(encoding.n_qudits):
            chunk = params[q * 2 * dim : (q + 1) * 2 * dim]
            vec = chunk[:dim] + 1j * chunk[dim:]
            norm = np.linalg.norm(vec)
            states.append(vec / norm if norm > 1e-12 else np.ones(dim) / np.sqrt(dim))
        return states

    def objective(params: np.ndarray) -> float:
        vectors = encoding.expectation_vectors(unpack(params))
        value = 0.0
        for u, v in problem.edges:
            value += float(vectors[u] @ vectors[v])
        # Confidence: push each node's vector away from the origin.
        value += 0.1 * float(np.sum((1.0 - np.sum(vectors**2, axis=1)) ** 2))
        return value

    best: QracResult | None = None
    if best_cost is None:
        dim_total = problem.n_colors**problem.n_nodes
        best_cost = problem.best_cost() if dim_total <= 4_000_000 else 0
    for _ in range(max(1, n_restarts)):
        x0 = rng.normal(size=n_params)
        res = minimize(
            objective, x0, method="L-BFGS-B", options={"maxiter": maxiter}
        )
        vectors = encoding.expectation_vectors(unpack(res.x))
        coloring = encoding.round_to_coloring(vectors)
        clashes = problem.cost(coloring)
        ratio = problem.approximation_ratio(clashes, best=best_cost)
        candidate = QracResult(
            coloring=coloring,
            clashes=clashes,
            relaxation_value=float(res.fun),
            n_qudits=encoding.n_qudits,
            nodes_per_qudit=encoding.nodes_per_qudit,
            approximation_ratio=ratio,
        )
        if best is None or candidate.clashes < best.clashes:
            best = candidate
    assert best is not None
    return best
