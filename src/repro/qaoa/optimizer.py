"""Classical outer loop for qudit QAOA.

Nelder-Mead over the ``2p`` angles with a linear-ramp initial schedule —
the standard, restart-friendly choice for small p.  Expectation values are
exact (statevector + cost vector); the noisy/sampled path lives in
:mod:`repro.qaoa.ndar`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize

from ..core.exceptions import SimulationError
from .circuits import expected_clashes, qaoa_state
from .coloring import ColoringProblem

__all__ = ["QAOAResult", "linear_ramp_schedule", "optimize_qaoa"]


@dataclass(frozen=True)
class QAOAResult:
    """Optimised QAOA angles and their quality.

    Attributes:
        gammas: phase-separation angles.
        betas: mixing angles.
        expected_cost: expected clash count at the optimum.
        approximation_ratio: against brute-force best (exact for small N).
        n_evaluations: cost-function calls spent.
    """

    gammas: tuple[float, ...]
    betas: tuple[float, ...]
    expected_cost: float
    approximation_ratio: float
    n_evaluations: int


def linear_ramp_schedule(p: int, gamma_max: float = 0.8, beta_max: float = 0.6):
    """Linear-ramp initial angles: gamma ramps up, beta ramps down."""
    if p < 1:
        raise SimulationError("need at least one QAOA layer")
    ks = (np.arange(p) + 1.0) / p
    gammas = gamma_max * ks
    betas = beta_max * (1.0 - ks + 1.0 / p)
    return gammas, betas


def optimize_qaoa(
    problem: ColoringProblem,
    p: int = 1,
    permutations: list[list[int]] | None = None,
    maxiter: int = 120,
    initial: tuple[np.ndarray, np.ndarray] | None = None,
) -> QAOAResult:
    """Optimise the 2p QAOA angles by Nelder-Mead.

    Args:
        problem: coloring instance.
        p: QAOA depth.
        permutations: optional NDAR gauge remap folded into the cost —
            note the *scored* cost is remapped accordingly.
        maxiter: Nelder-Mead iteration cap.
        initial: optional ``(gammas, betas)`` warm start.

    Returns:
        A :class:`QAOAResult`.
    """
    cost_vector = problem.cost_vector()
    if permutations is not None:
        cost_vector = _remap_cost_vector(problem, cost_vector, permutations)
    evaluations = 0

    def objective(params: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        gammas, betas = params[:p], params[p:]
        state = qaoa_state(problem, gammas, betas, permutations)
        return expected_clashes(problem, state, cost_vector)

    if initial is None:
        g0, b0 = linear_ramp_schedule(p)
    else:
        g0, b0 = initial
    x0 = np.concatenate([g0, b0])
    res = minimize(
        objective, x0, method="Nelder-Mead", options={"maxiter": maxiter, "fatol": 1e-4}
    )
    gammas, betas = res.x[:p], res.x[p:]
    expected = float(res.fun)
    ratio = problem.approximation_ratio(expected)
    return QAOAResult(
        gammas=tuple(float(g) for g in gammas),
        betas=tuple(float(b) for b in betas),
        expected_cost=expected,
        approximation_ratio=ratio,
        n_evaluations=evaluations,
    )


def _remap_cost_vector(
    problem: ColoringProblem,
    cost_vector: np.ndarray,
    permutations: list[list[int]],
) -> np.ndarray:
    """Cost vector of the gauge-remapped problem: cost'(x) = cost(pi(x))."""
    from ..core.dims import digit_matrix

    digits = digit_matrix(problem.dims)
    remapped = np.empty_like(cost_vector)
    perm_arrays = [np.asarray(p) for p in permutations]
    mapped_digits = np.column_stack(
        [perm_arrays[node][digits[:, node]] for node in range(problem.n_nodes)]
    )
    # flat index of mapped digits (same dims for every wire)
    d = problem.n_colors
    flat = np.zeros(len(cost_vector), dtype=np.int64)
    for node in range(problem.n_nodes):
        flat = flat * d + mapped_digits[:, node]
    remapped = cost_vector[flat]
    return remapped
