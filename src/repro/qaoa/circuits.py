"""Qudit QAOA circuits for graph coloring.

The encoding the paper advocates (§II.B): colors are qudit basis states,
so one-hot constraints are enforced *by construction* — "the assignment of
multiple colors to the same graph node is physically forbidden".  The
ansatz alternates:

* **phase separation** — for each edge, the diagonal two-qudit unitary
  ``exp(-i gamma sum_c |cc><cc|)`` penalising monochromatic pairs (one
  dispersive-phase pulse per edge; the gate family synthesised at >99%
  fidelity in ref [20]);
* **mixing** — single-qudit rotations ``exp(-i beta H_mix)`` hopping
  between adjacent color levels.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.channels import photon_loss
from ..core.circuit import QuditCircuit
from ..core.exceptions import CircuitError
from ..core.gates import qudit_complete_mixer
from ..core.statevector import Statevector
from .coloring import ColoringProblem

__all__ = [
    "edge_phase_matrix",
    "qaoa_circuit",
    "qaoa_state",
    "expected_clashes",
    "add_photon_loss",
]


def edge_phase_matrix(d: int, gamma: float, permutations=None) -> np.ndarray:
    """Diagonal two-qudit phase ``exp(-i gamma)`` on color-matching pairs.

    Args:
        d: color count.
        gamma: phase-separation angle.
        permutations: optional pair of per-qudit level permutations
            ``(pi_u, pi_v)`` applied to the *cost* (NDAR gauge remap): the
            penalised pairs become ``pi_u(a) == pi_v(b)``.

    Returns:
        ``d^2 x d^2`` diagonal unitary.
    """
    diag = np.ones(d * d, dtype=complex)
    for a in range(d):
        for b in range(d):
            aa = permutations[0][a] if permutations else a
            bb = permutations[1][b] if permutations else b
            if aa == bb:
                diag[a * d + b] = np.exp(-1j * gamma)
    return np.diag(diag)


def qaoa_circuit(
    problem: ColoringProblem,
    gammas: Sequence[float],
    betas: Sequence[float],
    permutations: list[list[int]] | None = None,
) -> QuditCircuit:
    """Build the p-layer qudit QAOA circuit.

    Args:
        problem: coloring instance.
        gammas: per-layer phase-separation angles.
        betas: per-layer mixing angles.
        permutations: optional per-node level permutations (NDAR remap)
            folded into the phase separator.

    Raises:
        CircuitError: if gamma/beta layer counts differ.
    """
    if len(gammas) != len(betas):
        raise CircuitError("gammas and betas must have equal length")
    d = problem.n_colors
    qc = QuditCircuit(problem.dims, name=f"qaoa-p{len(gammas)}")
    for node in range(problem.n_nodes):
        qc.fourier(node)
    for gamma, beta in zip(gammas, betas):
        for u, v in problem.edges:
            perms = None
            if permutations is not None:
                perms = (permutations[u], permutations[v])
            qc.unitary(
                edge_phase_matrix(d, gamma, perms),
                (u, v),
                name="phase_sep",
                gamma=gamma,
            )
        for node in range(problem.n_nodes):
            qc.unitary(
                qudit_complete_mixer(d, beta), node, name="mixer", beta=beta
            )
    return qc


def qaoa_state(
    problem: ColoringProblem,
    gammas: Sequence[float],
    betas: Sequence[float],
    permutations: list[list[int]] | None = None,
) -> Statevector:
    """Noiseless QAOA output state."""
    circuit = qaoa_circuit(problem, gammas, betas, permutations)
    return Statevector.zero(problem.dims).evolve(circuit)


def expected_clashes(
    problem: ColoringProblem,
    state: Statevector,
    cost_vector: np.ndarray | None = None,
) -> float:
    """Exact expected clash count of a register state."""
    cost_vector = problem.cost_vector() if cost_vector is None else cost_vector
    return float(np.dot(state.probabilities(), cost_vector))


def add_photon_loss(
    circuit: QuditCircuit, loss_per_layer: float, layer_marker: str = "mixer"
) -> QuditCircuit:
    """Insert photon-loss channels after each mixing layer on every wire.

    Photon loss is the cavity platform's dominant noise and — crucially for
    NDAR — biases populations toward ``|0...0>``.  Inserting it per layer
    models idling + gate loss accumulated across one QAOA round.

    Args:
        circuit: QAOA circuit.
        loss_per_layer: per-layer single-photon loss probability.
        layer_marker: instruction name after which loss is inserted.
    """
    if not 0.0 <= loss_per_layer <= 1.0:
        raise CircuitError(f"loss {loss_per_layer} outside [0, 1]")
    noisy = QuditCircuit(circuit.dims, name=circuit.name + "+loss")
    for instruction in circuit:
        noisy.append(instruction)
        if instruction.name == layer_marker and loss_per_layer > 0:
            wire = instruction.qudits[0]
            channel = photon_loss(circuit.dims[wire], loss_per_layer)
            noisy.channel(channel.kraus, wire, name="loss")
    return noisy
