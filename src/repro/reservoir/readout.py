"""Ridge-regression readout and scoring for reservoir computing.

Training is purely classical and linear — the defining property of the
reservoir paradigm the paper highlights (no gradients through the quantum
system, no barren plateaus).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import SimulationError

__all__ = ["RidgeReadout", "nmse", "train_test_split"]


def nmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Normalised mean squared error ``<(y - yhat)^2> / var(y)``."""
    predictions = np.asarray(predictions, dtype=float).ravel()
    targets = np.asarray(targets, dtype=float).ravel()
    if predictions.shape != targets.shape:
        raise SimulationError("prediction/target length mismatch")
    var = float(np.var(targets))
    if var < 1e-30:
        raise SimulationError("target variance is zero; NMSE undefined")
    return float(np.mean((predictions - targets) ** 2) / var)


def train_test_split(
    features: np.ndarray,
    targets: np.ndarray,
    train_fraction: float = 0.7,
    washout: int = 0,
):
    """Chronological split with an initial washout discard.

    Args:
        features: ``(T, F)`` feature matrix.
        targets: ``(T,)`` target vector.
        train_fraction: fraction of post-washout samples used for training.
        washout: initial transient samples to drop entirely.

    Returns:
        ``(f_train, y_train, f_test, y_test)``.
    """
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float).ravel()
    if features.shape[0] != targets.shape[0]:
        raise SimulationError("feature/target length mismatch")
    if not 0.0 < train_fraction < 1.0:
        raise SimulationError("train_fraction must be in (0, 1)")
    features = features[washout:]
    targets = targets[washout:]
    n_train = int(len(targets) * train_fraction)
    if n_train < 2 or len(targets) - n_train < 2:
        raise SimulationError("too few samples after washout/split")
    return (
        features[:n_train],
        targets[:n_train],
        features[n_train:],
        targets[n_train:],
    )


@dataclass
class RidgeReadout:
    """Linear readout ``y = F w + b`` fit by ridge regression.

    Attributes:
        alpha: L2 regularisation strength.
    """

    alpha: float = 1e-6

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise SimulationError("ridge alpha must be >= 0")
        self.weights: np.ndarray | None = None
        self.bias: float = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeReadout":
        """Solve ``(F^T F + alpha I) w = F^T y`` on centred data."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float).ravel()
        if features.shape[0] != targets.shape[0]:
            raise SimulationError("feature/target length mismatch")
        f_mean = features.mean(axis=0)
        y_mean = targets.mean()
        centred = features - f_mean
        gram = centred.T @ centred + self.alpha * np.eye(features.shape[1])
        self.weights = np.linalg.solve(gram, centred.T @ (targets - y_mean))
        self.bias = float(y_mean - f_mean @ self.weights)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Apply the trained readout."""
        if self.weights is None:
            raise SimulationError("readout is not trained")
        return np.asarray(features, dtype=float) @ self.weights + self.bias

    def score_nmse(self, features: np.ndarray, targets: np.ndarray) -> float:
        """NMSE of the readout on given data."""
        return nmse(self.predict(features), targets)
