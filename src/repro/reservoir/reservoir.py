"""The quantum reservoir: input feeding and feature extraction.

Implements the processing loop of refs [25][27]: at each time step the
input sample modulates a displacement drive on mode 1, the coupled lossy
system evolves for one clock period, and the joint Fock populations
``P(n_1, n_2)`` are read out as the feature vector — ``levels^2`` features,
the "neurons" of the reservoir (81 for nine levels/mode).  Dissipation
provides the fading memory; the beam-splitter coupling provides mixing;
the number-basis readout provides the nonlinearity (populations are
quadratic in amplitudes).
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import SimulationError
from .oscillators import CoupledOscillators, SplitStepEvolver

__all__ = ["QuantumReservoir"]


class QuantumReservoir:
    """Two-mode bosonic reservoir computer.

    Args:
        oscillators: physical parameters.
        dt: clock period (evolution time per input sample).
        input_gain: drive amplitude per unit input.
        drive_bias: constant carrier amplitude added to the drive.  A
            non-zero bias makes the Fock populations respond *linearly* to
            the input (interference with the coherent carrier) instead of
            quadratically, which dramatically improves the feature map —
            the analog-QRC experiments drive around a carrier the same way.
        feature_set: ``'populations'`` (levels^2 joint Fock populations,
            the 81-neuron readout) or ``'moments'`` (a compact vector of
            photon-number and quadrature moments, 8 features).
    """

    def __init__(
        self,
        oscillators: CoupledOscillators | None = None,
        dt: float = 1.0,
        input_gain: float = 1.0,
        drive_bias: float = 1.0,
        feature_set: str = "populations",
    ) -> None:
        if feature_set not in ("populations", "moments"):
            raise SimulationError(f"unknown feature set {feature_set!r}")
        self.osc = oscillators or CoupledOscillators()
        self.dt = float(dt)
        self.input_gain = float(input_gain)
        self.drive_bias = float(drive_bias)
        self.feature_set = feature_set
        self._evolver = SplitStepEvolver(self.osc, self.dt)
        self._moment_ops = self._build_moment_ops()

    def _build_moment_ops(self) -> list[np.ndarray]:
        a1, a2 = self.osc.a1(), self.osc.a2()
        n1, n2 = self.osc.n1(), self.osc.n2()
        x1 = (a1 + a1.conj().T) / np.sqrt(2)
        p1 = -1j * (a1 - a1.conj().T) / np.sqrt(2)
        x2 = (a2 + a2.conj().T) / np.sqrt(2)
        p2 = -1j * (a2 - a2.conj().T) / np.sqrt(2)
        return [n1, n2, x1, p1, x2, p2, n1 @ n1, n1 @ n2]

    @property
    def n_features(self) -> int:
        """Feature-vector length ('neuron' count)."""
        if self.feature_set == "populations":
            return self.osc.dim
        return len(self._moment_ops)

    def features_of(self, rho: np.ndarray) -> np.ndarray:
        """Feature vector of one state."""
        if self.feature_set == "populations":
            return np.real(np.diag(rho)).clip(min=0.0)
        return np.array(
            [float(np.real(np.trace(rho @ op))) for op in self._moment_ops]
        )

    def run(
        self,
        inputs: np.ndarray,
        initial: np.ndarray | None = None,
        reset: bool = True,
    ) -> np.ndarray:
        """Feed an input sequence; collect one feature vector per step.

        Args:
            inputs: 1-D input samples.
            initial: starting density matrix (vacuum if omitted).
            reset: ignored placeholder for API symmetry with ESNs (the
                reservoir always starts from ``initial``).

        Returns:
            Feature matrix of shape ``(len(inputs), n_features)``.
        """
        inputs = np.asarray(inputs, dtype=float).ravel()
        if inputs.size == 0:
            raise SimulationError("empty input sequence")
        rho = self.osc.vacuum() if initial is None else np.asarray(initial, complex)
        out = np.empty((inputs.size, self.n_features))
        for t, u in enumerate(inputs):
            drive = self.drive_bias + self.input_gain * float(u)
            rho = self._evolver.step(rho, drive)
            out[t] = self.features_of(rho)
        return out

    def effective_neurons(self) -> int:
        """The paper's neuron-equivalent count: joint Fock populations."""
        return self.osc.dim


def neuron_scaling(levels: int, n_modes: int) -> int:
    """Joint-population neuron count ``levels ** n_modes`` (paper §II.C).

    The paper's extrapolation: "with just two oscillators, up to around 9
    levels are used to create a reservoir of effectively 81 neurons ...
    ten oscillators could emulate millions of neurons, in principle" —
    indeed ``9 ** 10 ~ 3.5 x 10^9``.  Only the 2-mode case is simulated
    here; this helper is the capacity arithmetic behind Table I row 3's
    "1000+ equivalent neurons".
    """
    if levels < 2 or n_modes < 1:
        raise SimulationError("need levels >= 2 and n_modes >= 1")
    return levels**n_modes
