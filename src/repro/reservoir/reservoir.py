"""The quantum reservoir: input feeding and feature extraction.

Implements the processing loop of refs [25][27]: at each time step the
input sample modulates a displacement drive on mode 1, the coupled lossy
system evolves for one clock period, and the joint Fock populations
``P(n_1, n_2)`` are read out as the feature vector — ``levels^2`` features,
the "neurons" of the reservoir (81 for nine levels/mode).  Dissipation
provides the fading memory; the beam-splitter coupling provides mixing;
the number-basis readout provides the nonlinearity (populations are
quadratic in amplitudes).
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import QuditCircuit
from ..core.exceptions import SimulationError
from .oscillators import CoupledOscillators, SplitStepEvolver

__all__ = ["QuantumReservoir"]


class QuantumReservoir:
    """Two-mode bosonic reservoir computer.

    Args:
        oscillators: physical parameters.
        dt: clock period (evolution time per input sample).
        input_gain: drive amplitude per unit input.
        drive_bias: constant carrier amplitude added to the drive.  A
            non-zero bias makes the Fock populations respond *linearly* to
            the input (interference with the coherent carrier) instead of
            quadratically, which dramatically improves the feature map —
            the analog-QRC experiments drive around a carrier the same way.
        feature_set: ``'populations'`` (levels^2 joint Fock populations,
            the 81-neuron readout) or ``'moments'`` (a compact vector of
            photon-number and quadrature moments, 8 features).
        method: ``'splitstep'`` (the seed direct density-matrix propagator)
            or any registered simulation backend name (``'density'``,
            ``'mps'``, ``'lpdo'``, ...) — each clock period is then
            executed as a two-wire circuit (driven unitary + per-mode loss
            channels) through :mod:`repro.core.backends`.  ``'density'``
            reproduces the split-step physics exactly; ``'lpdo'`` is also
            exact (channels applied through the Kraus leg, no trajectory
            sampling) while scaling to multi-mode reservoirs whose joint
            space outgrows dense storage; ``'mps'`` reaches the same sizes
            but with stochastically unravelled loss.
        backend_options: engine knobs for non-splitstep methods
            (``max_bond``, ``max_kraus``, ``n_trajectories``, ``rng``, ...).
    """

    def __init__(
        self,
        oscillators: CoupledOscillators | None = None,
        dt: float = 1.0,
        input_gain: float = 1.0,
        drive_bias: float = 1.0,
        feature_set: str = "populations",
        method: str = "splitstep",
        backend_options: dict | None = None,
    ) -> None:
        if feature_set not in ("populations", "moments"):
            raise SimulationError(f"unknown feature set {feature_set!r}")
        self.osc = oscillators or CoupledOscillators()
        self.dt = float(dt)
        self.input_gain = float(input_gain)
        self.drive_bias = float(drive_bias)
        self.feature_set = feature_set
        self.method = method
        self.backend_options = dict(backend_options or {})
        self._evolver = SplitStepEvolver(self.osc, self.dt)
        self._moment_ops = self._build_moment_ops()
        self._circuit_cache: dict[float, QuditCircuit] = {}

    def _build_moment_ops(self) -> list[np.ndarray]:
        a1, a2 = self.osc.a1(), self.osc.a2()
        n1, n2 = self.osc.n1(), self.osc.n2()
        x1 = (a1 + a1.conj().T) / np.sqrt(2)
        p1 = -1j * (a1 - a1.conj().T) / np.sqrt(2)
        x2 = (a2 + a2.conj().T) / np.sqrt(2)
        p2 = -1j * (a2 - a2.conj().T) / np.sqrt(2)
        return [n1, n2, x1, p1, x2, p2, n1 @ n1, n1 @ n2]

    @property
    def n_features(self) -> int:
        """Feature-vector length ('neuron' count)."""
        if self.feature_set == "populations":
            return self.osc.dim
        return len(self._moment_ops)

    def features_of(self, rho: np.ndarray) -> np.ndarray:
        """Feature vector of one state."""
        if self.feature_set == "populations":
            return np.real(np.diag(rho)).clip(min=0.0)
        return np.array(
            [float(np.real(np.trace(rho @ op))) for op in self._moment_ops]
        )

    def _step_circuit(self, drive: float) -> QuditCircuit:
        """One clock period as a two-wire circuit (cached per drive value).

        Delegates drive quantisation and the propagator itself to the
        split-step evolver, so both evolution paths share one unitary
        cache and one rounding rule.
        """
        from ..core.channels import photon_loss

        key = self._evolver.quantise_drive(drive)
        cached = self._circuit_cache.get(key)
        if cached is not None:
            return cached
        qc = QuditCircuit(self.osc.dims, name="reservoir-step")
        qc.unitary(self._evolver.unitary_for(key), (0, 1), name="drive", drive=key)
        d = self.osc.levels
        for mode, kappa in ((0, self.osc.kappa_1), (1, self.osc.kappa_2)):
            gamma = 1.0 - np.exp(-kappa * self.dt)
            if gamma > 0:
                qc.channel(photon_loss(d, gamma).kraus, mode, name="loss")
        if len(self._circuit_cache) >= self._evolver._cache_size:
            self._circuit_cache.pop(next(iter(self._circuit_cache)))
        self._circuit_cache[key] = qc
        return qc

    def _features_from_result(self, result) -> np.ndarray:
        """Feature vector of one backend result."""
        if self.feature_set == "populations":
            return np.asarray(result.probabilities(), dtype=float)
        return np.array(
            [result.expectation(op, (0, 1)) for op in self._moment_ops]
        )

    def _run_backend(self, inputs: np.ndarray) -> np.ndarray:
        """Clock loop through the unified backend registry."""
        from ..core.backends import get_backend

        backend = get_backend(self.method, **self.backend_options)
        state = backend.prepare(self.osc.dims)
        out = np.empty((inputs.size, self.n_features))
        for t, u in enumerate(inputs):
            drive = self.drive_bias + self.input_gain * float(u)
            state = backend.run(self._step_circuit(drive), initial=state)
            out[t] = self._features_from_result(state)
        return out

    def run(
        self,
        inputs: np.ndarray,
        initial: np.ndarray | None = None,
        reset: bool = True,
    ) -> np.ndarray:
        """Feed an input sequence; collect one feature vector per step.

        Args:
            inputs: 1-D input samples.
            initial: starting density matrix (vacuum if omitted;
                ``'splitstep'`` method only).
            reset: ignored placeholder for API symmetry with ESNs (the
                reservoir always starts from ``initial``).

        Returns:
            Feature matrix of shape ``(len(inputs), n_features)``.
        """
        inputs = np.asarray(inputs, dtype=float).ravel()
        if inputs.size == 0:
            raise SimulationError("empty input sequence")
        if self.method != "splitstep":
            if initial is not None:
                raise SimulationError(
                    "initial states are only supported with method='splitstep'"
                )
            return self._run_backend(inputs)
        rho = self.osc.vacuum() if initial is None else np.asarray(initial, complex)
        out = np.empty((inputs.size, self.n_features))
        for t, u in enumerate(inputs):
            drive = self.drive_bias + self.input_gain * float(u)
            rho = self._evolver.step(rho, drive)
            out[t] = self.features_of(rho)
        return out

    def effective_neurons(self) -> int:
        """The paper's neuron-equivalent count: joint Fock populations."""
        return self.osc.dim


def neuron_scaling(levels: int, n_modes: int) -> int:
    """Joint-population neuron count ``levels ** n_modes`` (paper §II.C).

    The paper's extrapolation: "with just two oscillators, up to around 9
    levels are used to create a reservoir of effectively 81 neurons ...
    ten oscillators could emulate millions of neurons, in principle" —
    indeed ``9 ** 10 ~ 3.5 x 10^9``.  Only the 2-mode case is simulated
    here; this helper is the capacity arithmetic behind Table I row 3's
    "1000+ equivalent neurons".
    """
    if levels < 2 or n_modes < 1:
        raise SimulationError("need levels >= 2 and n_modes >= 1")
    return levels**n_modes
