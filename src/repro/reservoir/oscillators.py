"""Coupled dissipative oscillators — the physical reservoir (paper §II.C).

Implements the two-mode interacting reservoir of Dudas et al. (ref [25])::

    H = sum_i omega_i a_i† a_i + g (a_1† a_2 + h.c.),    L_i = sqrt(kappa_i) a_i

with input injected by a resonant displacement drive on mode 1.  With nine
usable Fock levels per mode the joint basis provides 81 measurable
populations — the "81 neurons" of claim C5.

Two evolution backends:

* exact vectorised Lindblad (``LindbladPropagator``) — O(D^4) memory in the
  joint dimension, fine for validation at small truncation;
* split-step (unitary half-step + exact per-mode photon-loss channel) —
  O(D^2), used for the full 9x9 reservoir.  The splitting error is
  O((kappa dt) * (g dt)) per step, negligible at reservoir time scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import expm

from ..core.channels import photon_loss
from ..core.exceptions import DimensionError, SimulationError
from ..core.gates import annihilation, number_op

__all__ = ["CoupledOscillators", "SplitStepEvolver"]


@dataclass(frozen=True)
class CoupledOscillators:
    """Parameters and operators of the two-mode reservoir.

    Attributes:
        levels: Fock truncation per mode (9 reproduces the 81-neuron setup).
        omega_1: detuning of mode 1 (rotating frame of the drive).
        omega_2: detuning of mode 2.
        coupling: beam-splitter coupling ``g``.
        kappa_1: loss rate of mode 1.
        kappa_2: loss rate of mode 2.

    The defaults are the NARMA-2-tuned working point found by the
    hyperparameter sweep in ``benchmarks/bench_table1_reservoir.py``.
    """

    levels: int = 9
    omega_1: float = 0.0
    omega_2: float = 2.5
    coupling: float = 1.2
    kappa_1: float = 0.2
    kappa_2: float = 0.2

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise DimensionError("need at least 2 Fock levels per mode")
        if self.kappa_1 < 0 or self.kappa_2 < 0:
            raise DimensionError("loss rates must be >= 0")

    @property
    def dim(self) -> int:
        """Joint Hilbert-space dimension ``levels^2``."""
        return self.levels**2

    @property
    def dims(self) -> tuple[int, int]:
        """Per-mode dimensions."""
        return (self.levels, self.levels)

    # ------------------------------------------------------------------
    # operators (joint space, mode 1 is the leading factor)
    # ------------------------------------------------------------------
    def a1(self) -> np.ndarray:
        """Annihilation operator of mode 1 on the joint space."""
        return np.kron(annihilation(self.levels), np.eye(self.levels))

    def a2(self) -> np.ndarray:
        """Annihilation operator of mode 2 on the joint space."""
        return np.kron(np.eye(self.levels), annihilation(self.levels))

    def n1(self) -> np.ndarray:
        """Photon number of mode 1."""
        return np.kron(number_op(self.levels), np.eye(self.levels))

    def n2(self) -> np.ndarray:
        """Photon number of mode 2."""
        return np.kron(np.eye(self.levels), number_op(self.levels))

    def hamiltonian(self) -> np.ndarray:
        """Drift Hamiltonian ``sum omega_i n_i + g (a1† a2 + h.c.)``."""
        a1, a2 = self.a1(), self.a2()
        ham = self.omega_1 * self.n1() + self.omega_2 * self.n2()
        ham = ham + self.coupling * (a1.conj().T @ a2 + a2.conj().T @ a1)
        return ham

    def drive_operator(self) -> np.ndarray:
        """Input-coupling operator ``a1 + a1†`` (resonant displacement)."""
        a1 = self.a1()
        return a1 + a1.conj().T

    def collapse_ops(self) -> list[np.ndarray]:
        """Lindblad jump operators with rates absorbed."""
        ops = []
        if self.kappa_1 > 0:
            ops.append(np.sqrt(self.kappa_1) * self.a1())
        if self.kappa_2 > 0:
            ops.append(np.sqrt(self.kappa_2) * self.a2())
        return ops

    def vacuum(self) -> np.ndarray:
        """Joint vacuum density matrix."""
        rho = np.zeros((self.dim, self.dim), dtype=complex)
        rho[0, 0] = 1.0
        return rho


class SplitStepEvolver:
    """Split-step propagator: driven unitary + exact per-mode loss channel.

    One step of duration ``dt`` with drive value ``u`` applies::

        rho -> Loss_2( Loss_1( U(u) rho U(u)† ) )

    with ``U(u) = exp(-i dt (H + u * D))`` and ``Loss_i`` the exact
    amplitude-damping channel with ``gamma_i = 1 - exp(-kappa_i dt)``.

    Args:
        oscillators: reservoir parameters.
        dt: step duration.
        drive_quantisation: inputs are rounded to this many decimals before
            propagator lookup so repeated values hit the unitary cache.
        cache_size: cached drive unitaries.
    """

    def __init__(
        self,
        oscillators: CoupledOscillators,
        dt: float,
        drive_quantisation: int = 4,
        cache_size: int = 512,
    ) -> None:
        if dt <= 0:
            raise SimulationError("dt must be positive")
        self.osc = oscillators
        self.dt = float(dt)
        self.drive_quantisation = int(drive_quantisation)
        self._cache: dict[float, np.ndarray] = {}
        self._cache_size = int(cache_size)
        self._ham = oscillators.hamiltonian()
        self._drive = oscillators.drive_operator()
        d = oscillators.levels
        gamma_1 = 1.0 - np.exp(-oscillators.kappa_1 * dt)
        gamma_2 = 1.0 - np.exp(-oscillators.kappa_2 * dt)
        eye = np.eye(d, dtype=complex)
        self._loss_1 = [
            np.kron(k, eye) for k in photon_loss(d, gamma_1).kraus
        ] if gamma_1 > 0 else None
        self._loss_2 = [
            np.kron(eye, k) for k in photon_loss(d, gamma_2).kraus
        ] if gamma_2 > 0 else None

    def _unitary(self, drive: float) -> np.ndarray:
        key = round(float(drive), self.drive_quantisation)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        u = expm(-1j * self.dt * (self._ham + key * self._drive))
        if len(self._cache) >= self._cache_size:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = u
        return u

    def quantise_drive(self, drive: float) -> float:
        """The drive value rounded to the propagator-cache resolution."""
        return round(float(drive), self.drive_quantisation)

    def unitary_for(self, drive: float) -> np.ndarray:
        """The cached one-step joint unitary ``exp(-i dt (H + drive D))``."""
        return self._unitary(drive)

    @staticmethod
    def _apply_kraus(rho: np.ndarray, kraus: list[np.ndarray]) -> np.ndarray:
        out = np.zeros_like(rho)
        for op in kraus:
            out += op @ rho @ op.conj().T
        return out

    def step(self, rho: np.ndarray, drive: float = 0.0) -> np.ndarray:
        """Advance one step under the given drive value."""
        u = self._unitary(drive)
        rho = u @ rho @ u.conj().T
        if self._loss_1 is not None:
            rho = self._apply_kraus(rho, self._loss_1)
        if self._loss_2 is not None:
            rho = self._apply_kraus(rho, self._loss_2)
        trace = float(np.real(np.trace(rho)))
        if trace <= 0:
            raise SimulationError("trace collapsed in split-step evolution")
        return rho / trace
