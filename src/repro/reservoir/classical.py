"""Echo State Network — the classical baseline of claim C5.

Dudas et al. observed that matching the two-oscillator quantum reservoir's
prediction quality "required a much larger reservoir" classically.  This
module supplies the standard leaky-tanh ESN so the size sweep can be run
head-to-head against the 81-feature quantum reservoir.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import SimulationError

__all__ = ["EchoStateNetwork"]


class EchoStateNetwork:
    """Leaky-integrator tanh echo state network.

    State update::

        s_t = (1 - leak) s_{t-1} + leak * tanh(W s_{t-1} + W_in u_t + b)

    Args:
        n_neurons: reservoir size.
        spectral_radius: rescaled largest |eigenvalue| of ``W`` (< 1 for
            the echo-state property).
        input_scale: input weight range.
        leak: leak rate in (0, 1].
        density: fraction of non-zero recurrent weights.
        seed: RNG seed for the fixed random weights.
    """

    def __init__(
        self,
        n_neurons: int,
        spectral_radius: float = 0.9,
        input_scale: float = 0.8,
        leak: float = 0.5,
        density: float = 0.2,
        seed: int | None = None,
    ) -> None:
        if n_neurons < 1:
            raise SimulationError("need at least one neuron")
        if not 0.0 < leak <= 1.0:
            raise SimulationError("leak must be in (0, 1]")
        if not 0.0 < density <= 1.0:
            raise SimulationError("density must be in (0, 1]")
        rng = np.random.default_rng(seed)
        self.n_neurons = int(n_neurons)
        self.leak = float(leak)
        weights = rng.normal(size=(n_neurons, n_neurons))
        mask = rng.random(size=weights.shape) < density
        weights = weights * mask
        radius = float(np.max(np.abs(np.linalg.eigvals(weights)))) if n_neurons > 1 else abs(weights[0, 0])
        if radius > 1e-12:
            weights *= spectral_radius / radius
        self.recurrent = weights
        self.input_weights = rng.uniform(-input_scale, input_scale, size=n_neurons)
        self.bias = rng.uniform(-0.1, 0.1, size=n_neurons)

    @property
    def n_features(self) -> int:
        """Feature-vector length (one per neuron)."""
        return self.n_neurons

    def run(self, inputs: np.ndarray, initial: np.ndarray | None = None) -> np.ndarray:
        """Drive the ESN; return the ``(T, n_neurons)`` state matrix."""
        inputs = np.asarray(inputs, dtype=float).ravel()
        if inputs.size == 0:
            raise SimulationError("empty input sequence")
        state = (
            np.zeros(self.n_neurons) if initial is None else np.asarray(initial, float)
        )
        out = np.empty((inputs.size, self.n_neurons))
        for t, u in enumerate(inputs):
            pre = self.recurrent @ state + self.input_weights * u + self.bias
            state = (1.0 - self.leak) * state + self.leak * np.tanh(pre)
            out[t] = state
        return out
