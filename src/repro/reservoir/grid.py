"""Campaign-driven hyperparameter grids for the quantum reservoir.

The reservoir's prediction quality hinges on a handful of analog knobs —
drive gain/bias, ridge regularisation, shot budget — and the cited studies
tune them by grid search.  Serially that is hours of repeated Lindblad
propagation; as a campaign (:mod:`repro.exec`) the grid fans out over
worker processes, every (reservoir, task, split) evaluation is cached by
content, and re-tuning after a code change reuses every unchanged point.
"""

from __future__ import annotations

import numpy as np

from ..core.exceptions import SimulationError
from .oscillators import CoupledOscillators
from .readout import RidgeReadout, train_test_split
from .reservoir import QuantumReservoir
from .shots import sample_population_features
from .tasks import mackey_glass_task, narma_task, sine_square_task

__all__ = ["reservoir_nmse_task", "reservoir_grid_campaign"]


def _build_task(task: str, length: int, task_seed: int):
    if task == "narma2":
        return narma_task(length, order=2, seed=task_seed)
    if task == "narma10":
        return narma_task(length, order=10, seed=task_seed)
    if task == "mackey_glass":
        return mackey_glass_task(length)
    if task == "sine_square":
        return sine_square_task(length)
    raise SimulationError(f"unknown reservoir task {task!r}")


def reservoir_nmse_task(
    task: str = "narma2",
    length: int = 120,
    task_seed: int = 7,
    levels: int = 4,
    coupling: float = 1.2,
    kappa: float = 0.2,
    input_gain: float = 1.0,
    drive_bias: float = 1.0,
    dt: float = 1.0,
    feature_set: str = "populations",
    method: str = "splitstep",
    alpha: float = 1e-4,
    washout: int = 20,
    train_fraction: float = 0.7,
    shots: int = 0,
    target_error: float | None = None,
    seed: int = 0,
) -> dict:
    """Campaign task: train/test NMSE of one reservoir configuration.

    Builds the two-mode reservoir from plain parameters inside the worker,
    runs the input sequence, optionally corrupts the features with a
    ``shots``-shot multinomial readout (``shots=0`` = exact features),
    fits the ridge readout on the chronological training split, and
    scores the held-out test span.

    Args:
        task: ``"narma2"`` / ``"narma10"`` / ``"mackey_glass"`` /
            ``"sine_square"``.
        length, task_seed: input-sequence spec.
        levels, coupling, kappa, dt: oscillator parameters (symmetric
            ``kappa`` on both modes).
        input_gain, drive_bias, feature_set, method: reservoir knobs.
        alpha, washout, train_fraction: readout training spec.
        shots: projective shots per time step (0 = exact populations).
        target_error: accuracy contract forwarded to the ``"auto"``
            backend when ``method="auto"`` (ignored by the direct
            ``"splitstep"`` propagator and explicit engines).
        seed: the campaign's spawned per-point seed (drives shot noise).

    Returns:
        ``{"nmse", "train_nmse", "n_features"}``.
    """
    series = _build_task(task, int(length), int(task_seed))
    osc = CoupledOscillators(
        levels=int(levels),
        coupling=float(coupling),
        kappa_1=float(kappa),
        kappa_2=float(kappa),
    )
    backend_options = (
        {"target_error": float(target_error)}
        if target_error is not None and method == "auto"
        else None
    )
    reservoir = QuantumReservoir(
        osc,
        dt=float(dt),
        input_gain=float(input_gain),
        drive_bias=float(drive_bias),
        feature_set=feature_set,
        method=method,
        backend_options=backend_options,
    )
    features = reservoir.run(series.inputs)
    if int(shots) > 0:
        features = sample_population_features(features, int(shots), seed)
    f_tr, y_tr, f_te, y_te = train_test_split(
        features, series.targets, train_fraction, washout
    )
    readout = RidgeReadout(alpha=float(alpha)).fit(f_tr, y_tr)
    return {
        "nmse": float(readout.score_nmse(f_te, y_te)),
        "train_nmse": float(readout.score_nmse(f_tr, y_tr)),
        "n_features": int(reservoir.n_features),
    }


def reservoir_grid_campaign(
    *,
    input_gains=(0.5, 1.0),
    drive_biases=(0.5, 1.0),
    alphas=(1e-4,),
    shot_budgets=(0,),
    workers: int | None = None,
    cache=None,
    checkpoint=None,
    seed: int = 0,
    method: str = "splitstep",
    target_error: float | None = None,
    executor=None,
    policy=None,
    ledger=None,
    on_result=None,
    **task_params,
) -> dict:
    """Grid-search reservoir hyperparameters as one streamed campaign.

    Args:
        input_gains, drive_biases, alphas, shot_budgets: grid axes
            (Cartesian product).
        workers, cache, checkpoint, seed: campaign execution knobs
            (see :func:`repro.exec.run_campaign`; ``workers`` is ignored
            when an ``executor`` is given).
        method: reservoir propagator — ``"splitstep"`` (the seed direct
            density-matrix propagator) or a backend name such as
            ``"auto"`` (:func:`repro.core.backends.get_backend`).
        target_error: accuracy contract for ``method="auto"`` points;
            also arms the executor's mid-run cap escalation.
        executor: an existing :class:`repro.exec.CampaignExecutor` —
            re-tuning loops that sweep many grids reuse its warm pool.
        policy: a :class:`repro.exec.FailurePolicy` (or mode string) for
            the grid campaign; defaults to the executor's policy.
        ledger: run-ledger override (a
            :class:`repro.obs.ledger.RunLedger`, a path, or ``False``
            to disable); by default the run record lands in the ledger
            co-located with the effective result cache.
        on_result: optional ``callback(point, value)`` invoked as each
            grid point completes (pool completion order) — a progress
            hook for long grids; the returned ``best`` is selected from
            the final deterministic ordering either way.
        **task_params: fixed :func:`reservoir_nmse_task` parameters.

    Returns:
        ``{"best": {...best point's params + nmse...}, "campaign":
        CampaignResult}`` — ``campaign.as_table()`` is the full grid.
    """
    from ..exec import Campaign, executor_scope, grid_sweep

    task_params = dict(task_params, method=method)
    if target_error is not None:
        task_params["target_error"] = target_error
    campaign = Campaign(
        task="repro.reservoir.grid:reservoir_nmse_task",
        sweep=grid_sweep(
            input_gain=[float(v) for v in input_gains],
            drive_bias=[float(v) for v in drive_biases],
            alpha=[float(v) for v in alphas],
            shots=[int(v) for v in shot_budgets],
        ),
        name="reservoir-grid",
        base_params=task_params,
        seed=seed,
        target_error=target_error,
    )
    scope = executor_scope(
        executor, workers=workers, cache=cache, policy=policy, ledger=ledger
    )
    with scope as (ex, kwargs):
        handle = ex.submit(campaign, checkpoint=checkpoint, **kwargs)
        result = handle.on_result(on_result).result()
    best_index = int(
        np.argmin([record["nmse"] for record in result.values])
    )
    best_point = result.points[best_index]
    return {
        "best": {**best_point.params, **result.values[best_index]},
        "campaign": result,
    }
