"""Quantum reservoir computing application (paper §II.C)."""

from .classical import EchoStateNetwork
from .grid import reservoir_grid_campaign, reservoir_nmse_task
from .oscillators import CoupledOscillators, SplitStepEvolver
from .readout import RidgeReadout, nmse, train_test_split
from .reservoir import QuantumReservoir, neuron_scaling
from .shots import ShotSweepPoint, sample_population_features, shot_noise_sweep
from .tasks import TimeSeriesTask, mackey_glass_task, narma_task, sine_square_task
from .tomography import (
    ReservoirTomograph,
    displaced_parity_features,
    displaced_population_features,
    project_to_physical,
    state_fidelity,
)

__all__ = [
    "EchoStateNetwork",
    "reservoir_grid_campaign",
    "reservoir_nmse_task",
    "CoupledOscillators",
    "SplitStepEvolver",
    "RidgeReadout",
    "nmse",
    "train_test_split",
    "QuantumReservoir",
    "neuron_scaling",
    "ShotSweepPoint",
    "sample_population_features",
    "shot_noise_sweep",
    "TimeSeriesTask",
    "mackey_glass_task",
    "narma_task",
    "sine_square_task",
    "ReservoirTomograph",
    "displaced_parity_features",
    "displaced_population_features",
    "project_to_physical",
    "state_fidelity",
]
