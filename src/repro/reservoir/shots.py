"""Shot-noise model for reservoir readout — claim C6.

Table I row 3 names the reservoir campaign's main challenge: "measurement
scheme with low sampling overhead (shot noise)".  The population features
are probabilities; estimating them from ``S`` projective shots per time
step replaces each feature vector with a multinomial draw ``counts / S``,
injecting ``O(1/sqrt(S))`` noise that degrades the trained readout.  This
module applies that corruption and runs the NMSE-vs-shots sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import SimulationError
from ..core.rng import ensure_rng, spawn_seeds
from .readout import RidgeReadout, nmse, train_test_split

__all__ = ["sample_population_features", "ShotSweepPoint", "shot_noise_sweep"]


def sample_population_features(
    features: np.ndarray,
    shots: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Replace exact population features by ``shots``-shot multinomial estimates.

    All time steps are drawn in one batched multinomial call (NumPy
    broadcasts ``pvals`` over leading axes), so the cost is one vectorised
    draw instead of a Python loop over the time series.

    Args:
        features: ``(T, F)`` matrix of per-step population vectors (rows
            are probability vectors up to numerical clipping).
        shots: projective measurements per time step.
        rng: generator, integer seed, or ``None`` for the shared global
            generator.

    Returns:
        Matrix of empirical frequencies, same shape.
    """
    if shots < 1:
        raise SimulationError("shots must be >= 1")
    rng = ensure_rng(rng)
    features = np.asarray(features, dtype=float).clip(min=0.0)
    totals = features.sum(axis=1, keepdims=True)
    bad = np.nonzero(totals.ravel() <= 0)[0]
    if bad.size:
        raise SimulationError(f"feature row {int(bad[0])} sums to zero")
    return rng.multinomial(shots, features / totals) / shots


@dataclass(frozen=True)
class ShotSweepPoint:
    """NMSE at one shot budget."""

    shots: int
    nmse: float


def shot_noise_sweep(
    features: np.ndarray,
    targets: np.ndarray,
    shot_budgets: list[int],
    washout: int = 20,
    train_fraction: float = 0.7,
    alpha: float = 1e-4,
    seed: int | None = None,
    include_exact: bool = True,
) -> list[ShotSweepPoint]:
    """Readout NMSE as a function of shots per time step.

    Both training and test features are sampled at the same budget — the
    experimentally honest protocol (training data is just as shot-limited).

    Args:
        features: exact ``(T, F)`` population features.
        targets: prediction targets.
        shot_budgets: shot counts to evaluate.
        washout: transient steps discarded.
        train_fraction: chronological split.
        alpha: ridge regularisation.
        seed: RNG seed.
        include_exact: append an infinite-shot reference point (shots = 0
            sentinel).

    Returns:
        One :class:`ShotSweepPoint` per budget (exact point last).
    """
    # One spawned child seed per budget: budget i's multinomial draws
    # depend only on (seed, i), not on how much stream earlier budgets
    # consumed, so sweep points can be evaluated in any order (or split
    # across campaign workers) with identical results.
    budget_seeds = spawn_seeds(seed, len(shot_budgets))
    out: list[ShotSweepPoint] = []
    for shots, point_seed in zip(shot_budgets, budget_seeds):
        noisy = sample_population_features(features, int(shots), point_seed)
        f_tr, y_tr, f_te, y_te = train_test_split(
            noisy, targets, train_fraction, washout
        )
        readout = RidgeReadout(alpha=alpha).fit(f_tr, y_tr)
        out.append(ShotSweepPoint(int(shots), readout.score_nmse(f_te, y_te)))
    if include_exact:
        f_tr, y_tr, f_te, y_te = train_test_split(
            features, targets, train_fraction, washout
        )
        readout = RidgeReadout(alpha=alpha).fit(f_tr, y_tr)
        out.append(ShotSweepPoint(0, readout.score_nmse(f_te, y_te)))
    return out
