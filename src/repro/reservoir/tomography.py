"""Quantum state tomography via reservoir processing (paper §II.C, ref [28]).

The pipeline of Krisnanda et al.: an unknown cavity state is processed by
a *fixed* sequence of calibrated displacements, each followed by a
transmon parity measurement; the resulting feature vector feeds a linear
map trained on known states.  The learned map absorbs decoherence and
control imperfections; a physicality projection (Smolin-Gambetta
eigenvalue clipping) enforces a valid density matrix.

Two feature families are provided: displaced-parity expectations
``f_k = Tr( D(alpha_k) rho D(alpha_k)† P )`` (Wigner samples — rank
deficient on a truncated space, kept for reference) and displaced
photon-number populations (informationally complete; the tomograph's
default).  Training states are random mixed states; testing reports
reconstruction fidelity vs the training-set size (experiment E-TOMO).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import SimulationError
from ..core.rng import ensure_rng
from ..core.gates import displacement, parity_op
from ..core.random_ops import random_density_matrix

__all__ = [
    "displaced_parity_features",
    "displaced_population_features",
    "project_to_physical",
    "ReservoirTomograph",
    "state_fidelity",
]


def displaced_parity_features(
    rho: np.ndarray,
    alphas: np.ndarray,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Displaced-parity (Wigner-sample) feature vector of a cavity state.

    Args:
        rho: ``d x d`` density matrix.
        alphas: complex displacement amplitudes (the processing sequence).
        shots: if given, each parity expectation is estimated from this
            many binary shots (binomial sampling).
        rng: RNG for the shot sampling.

    Returns:
        Real feature vector of length ``len(alphas)``.
    """
    rho = np.asarray(rho, dtype=complex)
    d = rho.shape[0]
    parity = parity_op(d)
    rng = ensure_rng(rng)
    out = np.empty(len(alphas))
    for k, alpha in enumerate(alphas):
        disp = displacement(d, -complex(alpha))
        value = float(np.real(np.trace(disp @ rho @ disp.conj().T @ parity)))
        value = float(np.clip(value, -1.0, 1.0))
        if shots is not None:
            if shots < 1:
                raise SimulationError("shots must be >= 1")
            p_plus = (1.0 + value) / 2.0
            value = 2.0 * rng.binomial(shots, p_plus) / shots - 1.0
        out[k] = value
    return out


def displaced_population_features(
    rho: np.ndarray,
    alphas: np.ndarray,
    shots: int | None = None,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Photon-number populations after each probe displacement.

    For every probe amplitude the feature block is the full Fock
    distribution ``p_n = <n| D(-alpha) rho D(-alpha)† |n>`` — the
    photon-number-resolved transmon readout.  Unlike the single displaced
    parity, these blocks are informationally complete on the truncated
    space with a handful of probes (the truncated parity operator's
    ``D† P D`` family is rank-deficient; see ``tests/reservoir``).

    Args:
        rho: ``d x d`` density matrix.
        alphas: complex probe amplitudes.
        shots: per-probe multinomial shot budget (None = exact).
        rng: RNG for shot sampling.

    Returns:
        Feature vector of length ``len(alphas) * d``.
    """
    rho = np.asarray(rho, dtype=complex)
    d = rho.shape[0]
    rng = ensure_rng(rng)
    out = np.empty(len(alphas) * d)
    for k, alpha in enumerate(alphas):
        disp = displacement(d, -complex(alpha))
        populations = np.real(np.diag(disp @ rho @ disp.conj().T)).clip(min=0.0)
        total = populations.sum()
        if total > 0:
            populations = populations / total
        if shots is not None:
            if shots < 1:
                raise SimulationError("shots must be >= 1")
            populations = rng.multinomial(shots, populations) / shots
        out[k * d : (k + 1) * d] = populations
    return out


def project_to_physical(matrix: np.ndarray) -> np.ndarray:
    """Nearest density matrix: Hermitise, clip eigenvalues, renormalise.

    The Smolin-Gambetta-style maximum-likelihood projection used as the
    "Bayesian inference step enforcing physical consistency" stand-in
    (documented substitution in DESIGN.md).
    """
    matrix = np.asarray(matrix, dtype=complex)
    herm = (matrix + matrix.conj().T) / 2.0
    eigvals, eigvecs = np.linalg.eigh(herm)
    clipped = np.clip(eigvals, 0.0, None)
    total = clipped.sum()
    if total <= 1e-300:
        # Degenerate input: fall back to the maximally mixed state.
        d = matrix.shape[0]
        return np.eye(d, dtype=complex) / d
    clipped /= total
    return (eigvecs * clipped) @ eigvecs.conj().T


def state_fidelity(rho: np.ndarray, sigma: np.ndarray) -> float:
    """Uhlmann fidelity ``(Tr sqrt(sqrt(rho) sigma sqrt(rho)))^2``."""
    rho = np.asarray(rho, dtype=complex)
    sigma = np.asarray(sigma, dtype=complex)
    eigvals, eigvecs = np.linalg.eigh(rho)
    sqrt_rho = (eigvecs * np.sqrt(np.clip(eigvals, 0, None))) @ eigvecs.conj().T
    inner = sqrt_rho @ sigma @ sqrt_rho
    inner_eigs = np.linalg.eigvalsh(inner)
    return float(np.sum(np.sqrt(np.clip(inner_eigs, 0.0, None))) ** 2)


@dataclass
class ReservoirTomograph:
    """Learned linear map from displaced-population features to density matrices.

    Args:
        dim: cavity truncation of the states to reconstruct.
        n_probes: number of displacement amplitudes in the fixed sequence.
        probe_radius: maximum |alpha| of the probe grid.
        ridge: regularisation of the linear map.
        seed: RNG seed (probe layout + training-state generation).
    """

    dim: int = 4
    n_probes: int | None = None
    probe_radius: float = 1.6
    ridge: float = 1e-6
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.dim < 2:
            raise SimulationError("cavity dimension must be >= 2")
        rng = np.random.default_rng(self.seed)
        # Each probe contributes d population features; 3d probes give a
        # 3 d^2 feature vector, comfortably over the d^2 completeness bar.
        n_probes = self.n_probes or 3 * self.dim
        if n_probes * self.dim < self.dim**2:
            raise SimulationError(
                f"need >= d = {self.dim} probes for informational completeness"
            )
        radii = self.probe_radius * np.sqrt(rng.uniform(0.05, 1.0, size=n_probes))
        angles = rng.uniform(0.0, 2.0 * np.pi, size=n_probes)
        self.alphas = radii * np.exp(1j * angles)
        self._map: np.ndarray | None = None
        self._rng = rng

    # ------------------------------------------------------------------
    # vectorisation helpers (real parameterisation of Hermitian matrices)
    # ------------------------------------------------------------------
    def _rho_to_real(self, rho: np.ndarray) -> np.ndarray:
        d = self.dim
        out = []
        for i in range(d):
            out.append(np.real(rho[i, i]))
        for i in range(d):
            for j in range(i + 1, d):
                out.append(np.real(rho[i, j]))
                out.append(np.imag(rho[i, j]))
        return np.asarray(out)

    def _real_to_rho(self, params: np.ndarray) -> np.ndarray:
        d = self.dim
        rho = np.zeros((d, d), dtype=complex)
        idx = 0
        for i in range(d):
            rho[i, i] = params[idx]
            idx += 1
        for i in range(d):
            for j in range(i + 1, d):
                rho[i, j] = params[idx] + 1j * params[idx + 1]
                rho[j, i] = params[idx] - 1j * params[idx + 1]
                idx += 2
        return rho

    # ------------------------------------------------------------------
    # training / reconstruction
    # ------------------------------------------------------------------
    def train(
        self,
        n_training_states: int = 60,
        shots: int | None = None,
    ) -> "ReservoirTomograph":
        """Fit the linear map on random known states.

        Args:
            n_training_states: training-set size (the paper's selling point
                is that this can be small).
            shots: per-probe shot budget (None = exact expectations).
        """
        if n_training_states < 2:
            raise SimulationError("need at least 2 training states")
        feats = []
        labels = []
        for _ in range(n_training_states):
            rho = random_density_matrix(self.dim, rng=self._rng)
            feats.append(
                displaced_population_features(rho, self.alphas, shots, self._rng)
            )
            labels.append(self._rho_to_real(rho))
        f = np.asarray(feats)
        y = np.asarray(labels)
        # Augment with a bias column, ridge-solve the multi-output map.
        f_aug = np.hstack([f, np.ones((f.shape[0], 1))])
        gram = f_aug.T @ f_aug + self.ridge * np.eye(f_aug.shape[1])
        self._map = np.linalg.solve(gram, f_aug.T @ y)
        return self

    def reconstruct(
        self, rho_true: np.ndarray, shots: int | None = None
    ) -> np.ndarray:
        """Measure an unknown state and reconstruct it.

        Args:
            rho_true: the state being measured (used only to generate the
                feature vector, as the physical cavity would).
            shots: per-probe shot budget.

        Returns:
            Physical density matrix estimate.
        """
        if self._map is None:
            raise SimulationError("tomograph is not trained")
        features = displaced_population_features(
            rho_true, self.alphas, shots, self._rng
        )
        f_aug = np.concatenate([features, [1.0]])
        params = f_aug @ self._map
        return project_to_physical(self._real_to_rho(params))

    def evaluate(
        self,
        n_test_states: int = 20,
        shots: int | None = None,
    ) -> float:
        """Mean reconstruction fidelity over random test states."""
        fidelities = []
        for _ in range(n_test_states):
            rho = random_density_matrix(self.dim, rng=self._rng)
            estimate = self.reconstruct(rho, shots)
            fidelities.append(state_fidelity(rho, estimate))
        return float(np.mean(fidelities))
