"""Benchmark tasks for reservoir computing.

The workloads of the cited studies: NARMA recurrences (the standard fading
-memory benchmark used by Dudas et al. [25]), Mackey-Glass chaotic
prediction, and the sine/square waveform-classification task of the analog
microwave QRC demonstration (Senanian et al. [27]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.exceptions import SimulationError

__all__ = [
    "TimeSeriesTask",
    "narma_task",
    "mackey_glass_task",
    "sine_square_task",
]


@dataclass(frozen=True)
class TimeSeriesTask:
    """An input sequence and its per-step prediction target.

    Attributes:
        name: task label.
        inputs: drive samples fed to the reservoir.
        targets: values the readout must reproduce at each step.
    """

    name: str
    inputs: np.ndarray
    targets: np.ndarray

    def __post_init__(self) -> None:
        if self.inputs.shape != self.targets.shape:
            raise SimulationError("inputs and targets must be equal length")

    @property
    def length(self) -> int:
        """Number of time steps."""
        return self.inputs.size


def narma_task(
    length: int = 300, order: int = 2, seed: int | None = None
) -> TimeSeriesTask:
    """NARMA-k benchmark: nonlinear auto-regressive moving average.

    ``y_{t+1} = 0.4 y_t + 0.4 y_t y_{t-1} + 0.6 u_t^3 + 0.1`` for order 2
    (Dudas et al.'s headline task); the order-10 variant uses the standard
    Atiya-Parlos recurrence.  Inputs are i.i.d. uniform on [0, 0.5].

    Args:
        length: sequence length.
        order: 2 or 10.
        seed: RNG seed.
    """
    if length < 20:
        raise SimulationError("NARMA sequence too short")
    rng = np.random.default_rng(seed)
    u = rng.uniform(0.0, 0.5, size=length)
    y = np.zeros(length)
    if order == 2:
        for t in range(1, length - 1):
            y[t + 1] = 0.4 * y[t] + 0.4 * y[t] * y[t - 1] + 0.6 * u[t] ** 3 + 0.1
    elif order == 10:
        for t in range(9, length - 1):
            y[t + 1] = (
                0.3 * y[t]
                + 0.05 * y[t] * np.sum(y[t - 9 : t + 1])
                + 1.5 * u[t] * u[t - 9]
                + 0.1
            )
    else:
        raise SimulationError(f"unsupported NARMA order {order}")
    return TimeSeriesTask(name=f"narma{order}", inputs=u, targets=y)


def mackey_glass_task(
    length: int = 300,
    horizon: int = 5,
    tau: float = 17.0,
    dt: float = 1.0,
    seed: int | None = None,
) -> TimeSeriesTask:
    """Mackey-Glass chaotic series, ``horizon``-step-ahead prediction.

    Integrates ``x' = 0.2 x(t - tau) / (1 + x(t - tau)^10) - 0.1 x`` with
    RK4 on a discretised delay line, then normalises to [0, 0.5] (matching
    the reservoir's drive range).

    Args:
        length: usable sequence length.
        horizon: prediction lead (target is ``x_{t+horizon}``).
        tau: delay constant (17 = mildly chaotic standard).
        dt: integration step.
        seed: seed for the random initial history.
    """
    if length < 20 or horizon < 1:
        raise SimulationError("bad Mackey-Glass parameters")
    rng = np.random.default_rng(seed)
    delay_steps = max(1, int(round(tau / dt)))
    warmup = 40 * delay_steps
    total = warmup + length + horizon
    x = np.zeros(total + delay_steps)
    x[:delay_steps] = 1.2 + 0.05 * rng.standard_normal(delay_steps)

    def deriv(current: float, delayed: float) -> float:
        return 0.2 * delayed / (1.0 + delayed**10) - 0.1 * current

    for t in range(delay_steps, total + delay_steps - 1):
        delayed = x[t - delay_steps]
        k1 = deriv(x[t], delayed)
        k2 = deriv(x[t] + 0.5 * dt * k1, delayed)
        k3 = deriv(x[t] + 0.5 * dt * k2, delayed)
        k4 = deriv(x[t] + dt * k3, delayed)
        x[t + 1] = x[t] + dt * (k1 + 2 * k2 + 2 * k3 + k4) / 6.0
    series = x[delay_steps + warmup :]
    lo, hi = series.min(), series.max()
    series = 0.5 * (series - lo) / max(hi - lo, 1e-12)
    inputs = series[:length]
    targets = series[horizon : horizon + length]
    return TimeSeriesTask(name=f"mackey-glass-h{horizon}", inputs=inputs, targets=targets)


def sine_square_task(
    n_segments: int = 30,
    segment_length: int = 10,
    seed: int | None = None,
) -> TimeSeriesTask:
    """Waveform classification: sine vs square segments (ref [27]'s task).

    The input alternates randomly between one period of a sine and of a
    square wave per segment; the target is the segment's class label
    (0 = sine, 1 = square) at every step, scaled to the drive range.
    """
    if n_segments < 2 or segment_length < 4:
        raise SimulationError("bad segmentation parameters")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n_segments)
    phase = np.linspace(0.0, 2.0 * np.pi, segment_length, endpoint=False)
    sine = 0.25 + 0.25 * np.sin(phase)
    square = 0.25 + 0.25 * np.sign(np.sin(phase))
    inputs = np.concatenate([square if label else sine for label in labels])
    targets = np.concatenate(
        [np.full(segment_length, float(label)) for label in labels]
    )
    return TimeSeriesTask(name="sine-square", inputs=inputs, targets=targets)
