"""Campaign execution: worker pools, checkpoints, deterministic results.

:func:`run_campaign` takes a :class:`~repro.exec.sweep.Campaign` and
returns one value per point, **in point order**, regardless of how the
points were scheduled.  Three layers of work-skipping compose:

1. **result cache** — points whose content key is already in the
   :class:`~repro.exec.cache.ResultCache` are served without executing;
2. **checkpoint** — completed points are appended to a JSON-lines file as
   they finish, so a killed campaign resumes where it stopped (corrupted
   or partial trailing lines — the signature of a crash mid-write — are
   skipped harmlessly);
3. **worker pool** — remaining points run on a ``multiprocessing`` pool
   with chunked scheduling.  Because every point's seed is spawned from
   the campaign root (never drawn from a shared stream), the results are
   bit-identical to a serial run.

Task return values are normalised to plain JSON types *before* being
returned or stored, so a value observed from a fresh computation, a
cache hit, and a checkpoint replay is always exactly the same object
shape.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.exceptions import SimulationError
from .cache import MISS, ResultCache
from .sweep import Campaign, CampaignPoint, resolve_task

__all__ = ["run_campaign", "CampaignResult"]


def to_jsonable(value):
    """Normalise a task return value to plain JSON types.

    Numpy scalars become python numbers, numpy arrays and tuples become
    lists, dict keys are stringified where JSON requires it.  Raises for
    values JSON cannot represent (the task should return data, not
    objects).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                key = str(key)
            out[key] = to_jsonable(item)
        return out
    raise SimulationError(
        f"campaign task returned non-serialisable {type(value).__name__!r}; "
        f"return numbers, strings, lists, dicts, or numpy data"
    )


def _call_task(task_ref: str, point: CampaignPoint):
    """Execute one point's task with its seed injected."""
    task = resolve_task(task_ref)
    params = dict(point.params)
    if point.seed is not None and "seed" not in params:
        params["seed"] = point.seed
    return to_jsonable(task(**params))


def _pool_worker(payload):
    """Module-level pool target (must be picklable under spawn)."""
    task_ref, point = payload
    return point.index, point.key, _call_task(task_ref, point)


@dataclass(frozen=True)
class CampaignResult:
    """Everything a campaign run produced.

    Attributes:
        name: the campaign's label.
        values: one task value per point, ordered by point index.
        points: the resolved points (same order).
        cache_hits: points served from the result cache.
        checkpoint_hits: points replayed from the checkpoint file.
        computed: points actually executed this run.
        workers: pool width used (1 = serial).
        duration_s: wall-clock time of the run.
    """

    name: str
    values: list
    points: list[CampaignPoint]
    cache_hits: int
    checkpoint_hits: int
    computed: int
    workers: int
    duration_s: float

    def __len__(self) -> int:
        return len(self.values)

    @property
    def hit_fraction(self) -> float:
        """Fraction of points that skipped execution (cache + checkpoint)."""
        if not self.values:
            return 0.0
        return (self.cache_hits + self.checkpoint_hits) / len(self.values)

    def as_table(self) -> list[dict]:
        """Per-point records ``{**params, "seed": ..., "value": ...}``."""
        return [
            {**point.params, "seed": point.seed, "value": value}
            for point, value in zip(self.points, self.values)
        ]


def _load_checkpoint(path: Path) -> dict[str, object]:
    """Replay a JSON-lines checkpoint, skipping corrupt/partial lines.

    A crash mid-append leaves at most one truncated trailing line; a
    corrupted file may contain arbitrary garbage.  Either way every
    well-formed line is recovered and the rest are recomputed — the
    checkpoint can only ever *save* work, never wedge a campaign.
    """
    done: dict[str, object] = {}
    try:
        text = path.read_text()
    except (FileNotFoundError, OSError):
        return done
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            done[record["key"]] = record["value"]
        except (ValueError, KeyError, TypeError):
            continue
    return done


def _append_checkpoint(handle, point: CampaignPoint, value) -> None:
    handle.write(
        json.dumps({"key": point.key, "index": point.index, "value": value})
        + "\n"
    )
    handle.flush()


def run_campaign(
    campaign: Campaign,
    *,
    workers: int | None = None,
    cache: ResultCache | str | Path | None = None,
    checkpoint: str | Path | None = None,
    chunk_size: int | None = None,
) -> CampaignResult:
    """Execute every point of a campaign, skipping already-known results.

    Args:
        campaign: the declarative spec.
        workers: worker-process count; ``None``/``0``/``1`` runs serially
            in-process.  Results are bit-identical either way (per-point
            spawned seeds), so parallelism is purely a wall-clock choice.
        cache: a :class:`ResultCache` (or a directory path for one).
            Points found by content key are served without executing —
            across reruns *and* across different campaigns that share
            points.  Freshly computed values are written back.
        checkpoint: JSON-lines file appended as points complete; an
            existing file is replayed first (resume after a kill), with
            corrupted lines skipped.
        chunk_size: points handed to a worker per scheduling quantum
            (default: balanced so each worker sees ~4 chunks, amortising
            IPC without starving the tail).

    Returns:
        A :class:`CampaignResult` with values in point order.
    """
    start = time.perf_counter()
    points = campaign.points()
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)

    values: dict[int, object] = {}
    cache_hits = 0
    checkpoint_hits = 0

    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    replayed = _load_checkpoint(checkpoint_path) if checkpoint_path else {}

    pending: list[CampaignPoint] = []
    for point in points:
        if cache is not None:
            hit = cache.get(point.key)
            if hit is not MISS:
                values[point.index] = hit
                cache_hits += 1
                continue
        if point.key in replayed:
            values[point.index] = replayed[point.key]
            checkpoint_hits += 1
            if cache is not None:
                cache.put(point.key, replayed[point.key])
            continue
        pending.append(point)

    task_reference = campaign.task_reference
    n_workers = int(workers or 1)
    if n_workers < 0:
        raise SimulationError("workers must be >= 0")
    n_workers = max(1, n_workers)

    checkpoint_handle = None
    if checkpoint_path is not None and pending:
        checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
        checkpoint_handle = checkpoint_path.open("a")

    computed = 0
    try:
        if n_workers == 1 or len(pending) <= 1:
            n_workers = 1
            for point in pending:
                value = _call_task(task_reference, point)
                values[point.index] = value
                computed += 1
                if cache is not None:
                    cache.put(point.key, value)
                if checkpoint_handle is not None:
                    _append_checkpoint(checkpoint_handle, point, value)
        else:
            if chunk_size is None:
                chunk_size = max(1, len(pending) // (n_workers * 4))
            # The interpreter's default start method: fork where the
            # platform still defaults to it, forkserver/spawn where
            # forking a (potentially BLAS-threaded) parent is unsafe.
            # Workers only need the picklable (task_ref, point) payload —
            # the task itself is re-imported inside the child — so every
            # start method works.
            ctx = multiprocessing.get_context()
            payloads = [(task_reference, point) for point in pending]
            with ctx.Pool(processes=n_workers) as pool:
                for index, key, value in pool.imap_unordered(
                    _pool_worker, payloads, chunksize=chunk_size
                ):
                    values[index] = value
                    computed += 1
                    if cache is not None:
                        cache.put(key, value)
                    if checkpoint_handle is not None:
                        point = points[index]
                        _append_checkpoint(checkpoint_handle, point, value)
    finally:
        if checkpoint_handle is not None:
            checkpoint_handle.close()

    ordered = [values[point.index] for point in points]
    return CampaignResult(
        name=campaign.name,
        values=ordered,
        points=points,
        cache_hits=cache_hits,
        checkpoint_hits=checkpoint_hits,
        computed=computed,
        workers=n_workers,
        duration_s=time.perf_counter() - start,
    )
