"""One-shot campaign execution (compatibility module).

The execution machinery lives in :mod:`repro.exec.executor` since the
persistent :class:`~repro.exec.executor.CampaignExecutor` subsumed the
original runner: :func:`run_campaign` is now a thin wrapper that builds
a single-use executor, runs the campaign to the barrier, and tears the
pool down.  This module keeps the historical import surface
(``repro.exec.runner.run_campaign`` / ``CampaignResult`` /
``to_jsonable``) stable.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.exec.runner is deprecated; import run_campaign / CampaignResult "
    "from repro.exec instead",
    DeprecationWarning,
    stacklevel=2,
)

# The private helpers are re-exported too, so existing imports (and any
# supervised worker payloads referencing them) keep resolving.
from .executor import (  # noqa: F401,E402
    CampaignResult,
    _append_checkpoint,
    _call_task,
    _load_checkpoint,
    _worker_main,
    run_campaign,
    to_jsonable,
)

__all__ = ["run_campaign", "CampaignResult", "to_jsonable"]
