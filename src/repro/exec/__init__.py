"""Campaign orchestration: declarative sweeps, parallel execution, caching.

The workload packages turn one circuit into one number; paper-scale
studies need *thousands* of parameterised runs — noise-threshold
bisections, restart batteries, training grids.  This subpackage is the
layer between the two:

* :mod:`repro.exec.sweep` — declarative parameter sweeps (``grid_sweep``,
  ``zip_sweep``, ``random_sweep``) and the :class:`Campaign` spec, with
  per-point seeds derived by ``SeedSequence`` spawning so every point is
  reproducible independent of execution order;
* :mod:`repro.exec.executor` — :class:`CampaignExecutor`: a persistent
  worker-pool service; one warm pool of *supervised* worker processes
  amortised across many submissions, with streaming consumption
  (:meth:`~CampaignHandle.as_completed` / ``stream_results``) so callers
  act on points as they finish; dead workers are respawned and their
  in-flight points re-dispatched, and :func:`run_campaign` is the
  one-shot barrier wrapper (resumable checkpoints, deterministic result
  ordering);
* :mod:`repro.exec.policy` — :class:`FailurePolicy`: per-submission
  handling of task exceptions, worker crashes, and per-point timeouts
  (``fail_fast`` / ``continue`` / ``retry`` with deterministic backoff);
* :mod:`repro.exec.faults` — :class:`FaultPlan`: seeded, reproducible
  fault injection (exceptions, delays, worker kills, cache corruption)
  powering the chaos test suite;
* :mod:`repro.exec.cache` — a content-addressed on-disk result cache
  keyed by a stable hash of (task, parameters, seed), so reruns and
  overlapping campaigns skip completed points; LRU size caps
  (``max_bytes`` / ``max_entries``) keep long-lived caches bounded;
* :mod:`repro.exec.costmodel` — the cost model behind
  ``get_backend("auto")``: picks statevector / density / trajectories /
  MPS / LPDO from register dims, noise content, requested observables,
  and the memory budget, using calibration constants from the committed
  ``BENCH_exec.json``;
* :mod:`repro.exec.autopilot` — the error-budget autopilot behind
  ``select_backend(..., target_error=...)``: an accuracy model beside
  the cost model, so a single ``target_error`` contract picks the engine
  *and* its chi/kappa caps / trajectory count at minimum predicted cost
  (:class:`BackendPlan`), with ledger-driven recalibration
  (:func:`recalibrate`) and mid-run cap escalation in the executor.
"""

from ..obs.ledger import RunLedger
from .autopilot import BackendPlan, plan_backend, recalibrate
from .cache import ResultCache, point_key, stable_hash
from .costmodel import AutoBackend, BackendChoice, select_backend
from .executor import (
    CampaignExecutor,
    CampaignHandle,
    CampaignResult,
    PointResult,
    executor_scope,
    run_campaign,
)
from .faults import FaultPlan, InjectedFault, corrupt_cache, corrupt_cache_entry
from .policy import CONTINUE, FAIL_FAST, RETRY, FailurePolicy
from .sweep import (
    Campaign,
    CampaignPoint,
    Sweep,
    grid_sweep,
    random_sweep,
    retry_seed,
    zip_sweep,
)

__all__ = [
    "Campaign",
    "CampaignPoint",
    "Sweep",
    "grid_sweep",
    "zip_sweep",
    "random_sweep",
    "retry_seed",
    "run_campaign",
    "CampaignResult",
    "CampaignExecutor",
    "CampaignHandle",
    "PointResult",
    "executor_scope",
    "FailurePolicy",
    "FAIL_FAST",
    "CONTINUE",
    "RETRY",
    "FaultPlan",
    "InjectedFault",
    "corrupt_cache",
    "corrupt_cache_entry",
    "ResultCache",
    "point_key",
    "stable_hash",
    "AutoBackend",
    "BackendChoice",
    "BackendPlan",
    "RunLedger",
    "plan_backend",
    "recalibrate",
    "select_backend",
]
