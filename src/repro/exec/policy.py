"""Failure policies: what a campaign does when a point fails.

A long campaign meets three kinds of trouble:

* a **task exception** — the point's own computation raised;
* a **worker crash** — the process executing the point died outright
  (segfault, OOM kill, ``os._exit``), taking its in-flight point with it;
* a **timeout** — the point ran past its per-point wall-clock budget.

:class:`FailurePolicy` decides the response, per submission:

* ``"fail_fast"`` (the default, and the historical behaviour) raises the
  first task failure out of the consuming iterator; the executor and its
  pool survive and later campaigns run normally.
* ``"continue"`` records a structured error for the failed point (in
  :attr:`~repro.exec.CampaignResult.errors`, the event stream, and the
  checkpoint) and keeps going; the point's value is ``None``.
* ``"retry"`` re-executes a failed point up to ``max_attempts`` times
  with **deterministic** exponential backoff — the jitter is derived
  from the point's spawned retry seed (:func:`repro.exec.sweep.retry_seed`),
  never from wall-clock entropy, so two runs of the same campaign back
  off identically.  A point that exhausts its attempts is recorded like
  ``"continue"``.

Worker crashes are infrastructure faults, not task verdicts: under
*every* mode the supervisor respawns the dead worker and re-dispatches
its in-flight point, up to ``max_crashes`` times per point, before the
mode's terminal handling applies.  Because a re-dispatched point reuses
its original content-spawned seed, recovery never changes the campaign's
values — the chaos invariant (crash-recovered parallel == serial,
bit-identical) is tested in ``tests/exec/test_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.exceptions import SimulationError

if TYPE_CHECKING:
    from .sweep import CampaignPoint

__all__ = ["FailurePolicy", "FAIL_FAST", "CONTINUE", "RETRY"]

#: The recognised policy modes.
_MODES = ("fail_fast", "continue", "retry")


@dataclass(frozen=True)
class FailurePolicy:
    """Per-submission failure handling for campaign execution.

    Attributes:
        mode: ``"fail_fast"`` | ``"continue"`` | ``"retry"`` (see the
            module docstring for the semantics).
        max_attempts: executions a point may consume before its failure
            is terminal (only consulted in ``"retry"`` mode; must be
            >= 1).  Worker crashes do **not** count against this budget.
        timeout: per-point wall-clock budget in seconds, enforced under
            pool dispatch (``workers > 1``): an overdue point's worker is
            killed and respawned, and the timeout is handled like a task
            failure under the mode.  ``None`` disables.  The in-process
            serial path cannot pre-empt a running task, so timeouts are
            not enforced there.
        max_crashes: worker-death re-dispatches allowed per point (any
            mode) before the crash is treated as a terminal failure.
        max_escalations: error-budget escalations allowed per point when
            the submission carries a ``target_error`` contract — each
            escalation re-runs the point with doubled truncation caps.
            After the budget is spent the best delivered result stands.
            Escalations count as executions but never as failures.
        backoff_base: first retry delay in seconds.
        backoff_factor: multiplier per subsequent retry.
        backoff_max: delay ceiling in seconds.
        backoff_jitter: deterministic jitter fraction — the delay is
            scaled by ``1 + jitter * u`` with ``u`` drawn from the
            point's retry seed, decorrelating retries of neighbouring
            points without sacrificing reproducibility.
    """

    mode: str = "fail_fast"
    max_attempts: int = 3
    timeout: float | None = None
    max_crashes: int = 3
    max_escalations: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 5.0
    backoff_jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise SimulationError(
                f"unknown failure-policy mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.max_attempts < 1:
            raise SimulationError("max_attempts must be >= 1")
        if self.max_crashes < 0:
            raise SimulationError("max_crashes must be >= 0")
        if self.max_escalations < 0:
            raise SimulationError("max_escalations must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise SimulationError("timeout must be positive (or None)")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise SimulationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise SimulationError("backoff_factor must be >= 1")
        if self.backoff_jitter < 0:
            raise SimulationError("backoff_jitter must be >= 0")

    @classmethod
    def coerce(cls, value: "FailurePolicy | str | None") -> "FailurePolicy":
        """Normalise a policy argument: ``None`` / mode string / instance."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise SimulationError(
            f"expected a FailurePolicy, a mode string, or None — got "
            f"{type(value).__name__!r}"
        )

    def backoff_delay(self, point: CampaignPoint, attempt: int) -> float:
        """Deterministic backoff before retrying ``point``'s ``attempt``-th try.

        Exponential in the attempt number, capped at ``backoff_max``,
        with a jitter fraction drawn from the point's retry seed — the
        same ``(point, attempt)`` always waits the same time.
        """
        from .sweep import retry_seed

        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if base <= 0 or self.backoff_jitter <= 0:
            return base
        u = float(np.random.default_rng(retry_seed(point, attempt)).random())
        return base * (1.0 + self.backoff_jitter * u)


#: Ready-made policies for the common cases.
FAIL_FAST = FailurePolicy(mode="fail_fast")
CONTINUE = FailurePolicy(mode="continue")
RETRY = FailurePolicy(mode="retry")
